file(REMOVE_RECURSE
  "CMakeFiles/osrs_coverage.dir/coverage_graph.cpp.o"
  "CMakeFiles/osrs_coverage.dir/coverage_graph.cpp.o.d"
  "CMakeFiles/osrs_coverage.dir/item_graph.cpp.o"
  "CMakeFiles/osrs_coverage.dir/item_graph.cpp.o.d"
  "libosrs_coverage.a"
  "libosrs_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
