# Empty compiler generated dependencies file for osrs_coverage.
# This may be replaced when dependencies are built.
