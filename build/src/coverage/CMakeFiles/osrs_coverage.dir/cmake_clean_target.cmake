file(REMOVE_RECURSE
  "libosrs_coverage.a"
)
