file(REMOVE_RECURSE
  "libosrs_extraction.a"
)
