# Empty compiler generated dependencies file for osrs_extraction.
# This may be replaced when dependencies are built.
