file(REMOVE_RECURSE
  "CMakeFiles/osrs_extraction.dir/aho_corasick.cpp.o"
  "CMakeFiles/osrs_extraction.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/osrs_extraction.dir/dictionary_extractor.cpp.o"
  "CMakeFiles/osrs_extraction.dir/dictionary_extractor.cpp.o.d"
  "CMakeFiles/osrs_extraction.dir/double_propagation.cpp.o"
  "CMakeFiles/osrs_extraction.dir/double_propagation.cpp.o.d"
  "CMakeFiles/osrs_extraction.dir/hierarchy_induction.cpp.o"
  "CMakeFiles/osrs_extraction.dir/hierarchy_induction.cpp.o.d"
  "libosrs_extraction.a"
  "libosrs_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
