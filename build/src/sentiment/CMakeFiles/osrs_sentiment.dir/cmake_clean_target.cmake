file(REMOVE_RECURSE
  "libosrs_sentiment.a"
)
