# Empty dependencies file for osrs_sentiment.
# This may be replaced when dependencies are built.
