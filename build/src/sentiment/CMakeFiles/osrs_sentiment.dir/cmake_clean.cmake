file(REMOVE_RECURSE
  "CMakeFiles/osrs_sentiment.dir/embeddings.cpp.o"
  "CMakeFiles/osrs_sentiment.dir/embeddings.cpp.o.d"
  "CMakeFiles/osrs_sentiment.dir/estimator.cpp.o"
  "CMakeFiles/osrs_sentiment.dir/estimator.cpp.o.d"
  "CMakeFiles/osrs_sentiment.dir/lexicon.cpp.o"
  "CMakeFiles/osrs_sentiment.dir/lexicon.cpp.o.d"
  "CMakeFiles/osrs_sentiment.dir/regression.cpp.o"
  "CMakeFiles/osrs_sentiment.dir/regression.cpp.o.d"
  "libosrs_sentiment.a"
  "libosrs_sentiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_sentiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
