
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sentiment/embeddings.cpp" "src/sentiment/CMakeFiles/osrs_sentiment.dir/embeddings.cpp.o" "gcc" "src/sentiment/CMakeFiles/osrs_sentiment.dir/embeddings.cpp.o.d"
  "/root/repo/src/sentiment/estimator.cpp" "src/sentiment/CMakeFiles/osrs_sentiment.dir/estimator.cpp.o" "gcc" "src/sentiment/CMakeFiles/osrs_sentiment.dir/estimator.cpp.o.d"
  "/root/repo/src/sentiment/lexicon.cpp" "src/sentiment/CMakeFiles/osrs_sentiment.dir/lexicon.cpp.o" "gcc" "src/sentiment/CMakeFiles/osrs_sentiment.dir/lexicon.cpp.o.d"
  "/root/repo/src/sentiment/regression.cpp" "src/sentiment/CMakeFiles/osrs_sentiment.dir/regression.cpp.o" "gcc" "src/sentiment/CMakeFiles/osrs_sentiment.dir/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/osrs_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
