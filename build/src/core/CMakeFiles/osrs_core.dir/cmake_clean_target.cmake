file(REMOVE_RECURSE
  "libosrs_core.a"
)
