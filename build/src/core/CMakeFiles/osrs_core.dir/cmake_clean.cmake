file(REMOVE_RECURSE
  "CMakeFiles/osrs_core.dir/cost.cpp.o"
  "CMakeFiles/osrs_core.dir/cost.cpp.o.d"
  "CMakeFiles/osrs_core.dir/distance.cpp.o"
  "CMakeFiles/osrs_core.dir/distance.cpp.o.d"
  "CMakeFiles/osrs_core.dir/model.cpp.o"
  "CMakeFiles/osrs_core.dir/model.cpp.o.d"
  "CMakeFiles/osrs_core.dir/reduction.cpp.o"
  "CMakeFiles/osrs_core.dir/reduction.cpp.o.d"
  "libosrs_core.a"
  "libosrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
