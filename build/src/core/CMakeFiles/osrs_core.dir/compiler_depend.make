# Empty compiler generated dependencies file for osrs_core.
# This may be replaced when dependencies are built.
