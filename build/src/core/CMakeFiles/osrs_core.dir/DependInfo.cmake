
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/osrs_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/osrs_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/distance.cpp" "src/core/CMakeFiles/osrs_core.dir/distance.cpp.o" "gcc" "src/core/CMakeFiles/osrs_core.dir/distance.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/osrs_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/osrs_core.dir/model.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/core/CMakeFiles/osrs_core.dir/reduction.cpp.o" "gcc" "src/core/CMakeFiles/osrs_core.dir/reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
