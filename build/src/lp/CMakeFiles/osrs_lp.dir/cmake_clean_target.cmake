file(REMOVE_RECURSE
  "libosrs_lp.a"
)
