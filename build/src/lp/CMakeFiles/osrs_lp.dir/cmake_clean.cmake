file(REMOVE_RECURSE
  "CMakeFiles/osrs_lp.dir/lp_problem.cpp.o"
  "CMakeFiles/osrs_lp.dir/lp_problem.cpp.o.d"
  "CMakeFiles/osrs_lp.dir/mip.cpp.o"
  "CMakeFiles/osrs_lp.dir/mip.cpp.o.d"
  "CMakeFiles/osrs_lp.dir/simplex.cpp.o"
  "CMakeFiles/osrs_lp.dir/simplex.cpp.o.d"
  "libosrs_lp.a"
  "libosrs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
