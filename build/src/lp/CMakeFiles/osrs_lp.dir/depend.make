# Empty dependencies file for osrs_lp.
# This may be replaced when dependencies are built.
