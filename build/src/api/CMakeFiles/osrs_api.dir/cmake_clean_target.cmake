file(REMOVE_RECURSE
  "libosrs_api.a"
)
