file(REMOVE_RECURSE
  "CMakeFiles/osrs_api.dir/annotator.cpp.o"
  "CMakeFiles/osrs_api.dir/annotator.cpp.o.d"
  "CMakeFiles/osrs_api.dir/batch_summarizer.cpp.o"
  "CMakeFiles/osrs_api.dir/batch_summarizer.cpp.o.d"
  "CMakeFiles/osrs_api.dir/review_summarizer.cpp.o"
  "CMakeFiles/osrs_api.dir/review_summarizer.cpp.o.d"
  "libosrs_api.a"
  "libosrs_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
