# Empty dependencies file for osrs_api.
# This may be replaced when dependencies are built.
