file(REMOVE_RECURSE
  "CMakeFiles/osrs_eval.dir/coverage_report.cpp.o"
  "CMakeFiles/osrs_eval.dir/coverage_report.cpp.o.d"
  "CMakeFiles/osrs_eval.dir/elbow.cpp.o"
  "CMakeFiles/osrs_eval.dir/elbow.cpp.o.d"
  "CMakeFiles/osrs_eval.dir/sent_err.cpp.o"
  "CMakeFiles/osrs_eval.dir/sent_err.cpp.o.d"
  "CMakeFiles/osrs_eval.dir/sentiment_eval.cpp.o"
  "CMakeFiles/osrs_eval.dir/sentiment_eval.cpp.o.d"
  "libosrs_eval.a"
  "libosrs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
