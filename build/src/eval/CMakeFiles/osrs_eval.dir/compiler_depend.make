# Empty compiler generated dependencies file for osrs_eval.
# This may be replaced when dependencies are built.
