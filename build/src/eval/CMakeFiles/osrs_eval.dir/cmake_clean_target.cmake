file(REMOVE_RECURSE
  "libosrs_eval.a"
)
