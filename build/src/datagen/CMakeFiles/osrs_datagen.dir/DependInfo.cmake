
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/cellphone_corpus.cpp" "src/datagen/CMakeFiles/osrs_datagen.dir/cellphone_corpus.cpp.o" "gcc" "src/datagen/CMakeFiles/osrs_datagen.dir/cellphone_corpus.cpp.o.d"
  "/root/repo/src/datagen/corpus.cpp" "src/datagen/CMakeFiles/osrs_datagen.dir/corpus.cpp.o" "gcc" "src/datagen/CMakeFiles/osrs_datagen.dir/corpus.cpp.o.d"
  "/root/repo/src/datagen/corpus_io.cpp" "src/datagen/CMakeFiles/osrs_datagen.dir/corpus_io.cpp.o" "gcc" "src/datagen/CMakeFiles/osrs_datagen.dir/corpus_io.cpp.o.d"
  "/root/repo/src/datagen/doctor_corpus.cpp" "src/datagen/CMakeFiles/osrs_datagen.dir/doctor_corpus.cpp.o" "gcc" "src/datagen/CMakeFiles/osrs_datagen.dir/doctor_corpus.cpp.o.d"
  "/root/repo/src/datagen/review_generator.cpp" "src/datagen/CMakeFiles/osrs_datagen.dir/review_generator.cpp.o" "gcc" "src/datagen/CMakeFiles/osrs_datagen.dir/review_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sentiment/CMakeFiles/osrs_sentiment.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/osrs_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
