file(REMOVE_RECURSE
  "libosrs_datagen.a"
)
