file(REMOVE_RECURSE
  "CMakeFiles/osrs_datagen.dir/cellphone_corpus.cpp.o"
  "CMakeFiles/osrs_datagen.dir/cellphone_corpus.cpp.o.d"
  "CMakeFiles/osrs_datagen.dir/corpus.cpp.o"
  "CMakeFiles/osrs_datagen.dir/corpus.cpp.o.d"
  "CMakeFiles/osrs_datagen.dir/corpus_io.cpp.o"
  "CMakeFiles/osrs_datagen.dir/corpus_io.cpp.o.d"
  "CMakeFiles/osrs_datagen.dir/doctor_corpus.cpp.o"
  "CMakeFiles/osrs_datagen.dir/doctor_corpus.cpp.o.d"
  "CMakeFiles/osrs_datagen.dir/review_generator.cpp.o"
  "CMakeFiles/osrs_datagen.dir/review_generator.cpp.o.d"
  "libosrs_datagen.a"
  "libosrs_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
