# Empty dependencies file for osrs_datagen.
# This may be replaced when dependencies are built.
