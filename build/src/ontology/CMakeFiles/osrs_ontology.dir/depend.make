# Empty dependencies file for osrs_ontology.
# This may be replaced when dependencies are built.
