
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/cellphone_hierarchy.cpp" "src/ontology/CMakeFiles/osrs_ontology.dir/cellphone_hierarchy.cpp.o" "gcc" "src/ontology/CMakeFiles/osrs_ontology.dir/cellphone_hierarchy.cpp.o.d"
  "/root/repo/src/ontology/ontology.cpp" "src/ontology/CMakeFiles/osrs_ontology.dir/ontology.cpp.o" "gcc" "src/ontology/CMakeFiles/osrs_ontology.dir/ontology.cpp.o.d"
  "/root/repo/src/ontology/snomed_like.cpp" "src/ontology/CMakeFiles/osrs_ontology.dir/snomed_like.cpp.o" "gcc" "src/ontology/CMakeFiles/osrs_ontology.dir/snomed_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
