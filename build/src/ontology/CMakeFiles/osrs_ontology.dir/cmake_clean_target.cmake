file(REMOVE_RECURSE
  "libosrs_ontology.a"
)
