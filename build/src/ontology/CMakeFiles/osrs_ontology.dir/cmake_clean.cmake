file(REMOVE_RECURSE
  "CMakeFiles/osrs_ontology.dir/cellphone_hierarchy.cpp.o"
  "CMakeFiles/osrs_ontology.dir/cellphone_hierarchy.cpp.o.d"
  "CMakeFiles/osrs_ontology.dir/ontology.cpp.o"
  "CMakeFiles/osrs_ontology.dir/ontology.cpp.o.d"
  "CMakeFiles/osrs_ontology.dir/snomed_like.cpp.o"
  "CMakeFiles/osrs_ontology.dir/snomed_like.cpp.o.d"
  "libosrs_ontology.a"
  "libosrs_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
