# Empty compiler generated dependencies file for osrs_text.
# This may be replaced when dependencies are built.
