file(REMOVE_RECURSE
  "libosrs_text.a"
)
