file(REMOVE_RECURSE
  "CMakeFiles/osrs_text.dir/porter_stemmer.cpp.o"
  "CMakeFiles/osrs_text.dir/porter_stemmer.cpp.o.d"
  "CMakeFiles/osrs_text.dir/sentence_splitter.cpp.o"
  "CMakeFiles/osrs_text.dir/sentence_splitter.cpp.o.d"
  "CMakeFiles/osrs_text.dir/stopwords.cpp.o"
  "CMakeFiles/osrs_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/osrs_text.dir/tokenizer.cpp.o"
  "CMakeFiles/osrs_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/osrs_text.dir/vocabulary.cpp.o"
  "CMakeFiles/osrs_text.dir/vocabulary.cpp.o.d"
  "libosrs_text.a"
  "libosrs_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
