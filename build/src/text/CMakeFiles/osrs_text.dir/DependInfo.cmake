
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/porter_stemmer.cpp" "src/text/CMakeFiles/osrs_text.dir/porter_stemmer.cpp.o" "gcc" "src/text/CMakeFiles/osrs_text.dir/porter_stemmer.cpp.o.d"
  "/root/repo/src/text/sentence_splitter.cpp" "src/text/CMakeFiles/osrs_text.dir/sentence_splitter.cpp.o" "gcc" "src/text/CMakeFiles/osrs_text.dir/sentence_splitter.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "src/text/CMakeFiles/osrs_text.dir/stopwords.cpp.o" "gcc" "src/text/CMakeFiles/osrs_text.dir/stopwords.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/osrs_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/osrs_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/text/CMakeFiles/osrs_text.dir/vocabulary.cpp.o" "gcc" "src/text/CMakeFiles/osrs_text.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
