file(REMOVE_RECURSE
  "libosrs_common.a"
)
