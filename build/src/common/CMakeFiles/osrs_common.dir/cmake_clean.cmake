file(REMOVE_RECURSE
  "CMakeFiles/osrs_common.dir/math_util.cpp.o"
  "CMakeFiles/osrs_common.dir/math_util.cpp.o.d"
  "CMakeFiles/osrs_common.dir/rng.cpp.o"
  "CMakeFiles/osrs_common.dir/rng.cpp.o.d"
  "CMakeFiles/osrs_common.dir/status.cpp.o"
  "CMakeFiles/osrs_common.dir/status.cpp.o.d"
  "CMakeFiles/osrs_common.dir/strings.cpp.o"
  "CMakeFiles/osrs_common.dir/strings.cpp.o.d"
  "CMakeFiles/osrs_common.dir/table_writer.cpp.o"
  "CMakeFiles/osrs_common.dir/table_writer.cpp.o.d"
  "libosrs_common.a"
  "libosrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
