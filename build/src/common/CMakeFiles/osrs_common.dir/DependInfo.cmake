
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/math_util.cpp" "src/common/CMakeFiles/osrs_common.dir/math_util.cpp.o" "gcc" "src/common/CMakeFiles/osrs_common.dir/math_util.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/osrs_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/osrs_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/osrs_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/osrs_common.dir/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/osrs_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/osrs_common.dir/strings.cpp.o.d"
  "/root/repo/src/common/table_writer.cpp" "src/common/CMakeFiles/osrs_common.dir/table_writer.cpp.o" "gcc" "src/common/CMakeFiles/osrs_common.dir/table_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
