# Empty compiler generated dependencies file for osrs_common.
# This may be replaced when dependencies are built.
