# Empty compiler generated dependencies file for osrs_solver.
# This may be replaced when dependencies are built.
