file(REMOVE_RECURSE
  "libosrs_solver.a"
)
