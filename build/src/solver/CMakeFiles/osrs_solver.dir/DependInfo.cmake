
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/exhaustive.cpp" "src/solver/CMakeFiles/osrs_solver.dir/exhaustive.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/exhaustive.cpp.o.d"
  "/root/repo/src/solver/greedy.cpp" "src/solver/CMakeFiles/osrs_solver.dir/greedy.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/greedy.cpp.o.d"
  "/root/repo/src/solver/ilp_summarizer.cpp" "src/solver/CMakeFiles/osrs_solver.dir/ilp_summarizer.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/ilp_summarizer.cpp.o.d"
  "/root/repo/src/solver/kmedian_model.cpp" "src/solver/CMakeFiles/osrs_solver.dir/kmedian_model.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/kmedian_model.cpp.o.d"
  "/root/repo/src/solver/local_search.cpp" "src/solver/CMakeFiles/osrs_solver.dir/local_search.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/local_search.cpp.o.d"
  "/root/repo/src/solver/randomized_rounding.cpp" "src/solver/CMakeFiles/osrs_solver.dir/randomized_rounding.cpp.o" "gcc" "src/solver/CMakeFiles/osrs_solver.dir/randomized_rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/osrs_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/osrs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
