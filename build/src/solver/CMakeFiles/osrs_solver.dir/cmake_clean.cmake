file(REMOVE_RECURSE
  "CMakeFiles/osrs_solver.dir/exhaustive.cpp.o"
  "CMakeFiles/osrs_solver.dir/exhaustive.cpp.o.d"
  "CMakeFiles/osrs_solver.dir/greedy.cpp.o"
  "CMakeFiles/osrs_solver.dir/greedy.cpp.o.d"
  "CMakeFiles/osrs_solver.dir/ilp_summarizer.cpp.o"
  "CMakeFiles/osrs_solver.dir/ilp_summarizer.cpp.o.d"
  "CMakeFiles/osrs_solver.dir/kmedian_model.cpp.o"
  "CMakeFiles/osrs_solver.dir/kmedian_model.cpp.o.d"
  "CMakeFiles/osrs_solver.dir/local_search.cpp.o"
  "CMakeFiles/osrs_solver.dir/local_search.cpp.o.d"
  "CMakeFiles/osrs_solver.dir/randomized_rounding.cpp.o"
  "CMakeFiles/osrs_solver.dir/randomized_rounding.cpp.o.d"
  "libosrs_solver.a"
  "libosrs_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
