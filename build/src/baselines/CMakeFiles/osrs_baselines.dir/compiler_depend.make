# Empty compiler generated dependencies file for osrs_baselines.
# This may be replaced when dependencies are built.
