file(REMOVE_RECURSE
  "libosrs_baselines.a"
)
