
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/coverage_selector.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/coverage_selector.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/coverage_selector.cpp.o.d"
  "/root/repo/src/baselines/lexrank.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/lexrank.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/lexrank.cpp.o.d"
  "/root/repo/src/baselines/lsa.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/lsa.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/lsa.cpp.o.d"
  "/root/repo/src/baselines/most_popular.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/most_popular.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/most_popular.cpp.o.d"
  "/root/repo/src/baselines/pagerank.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/pagerank.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/pagerank.cpp.o.d"
  "/root/repo/src/baselines/proportional.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/proportional.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/proportional.cpp.o.d"
  "/root/repo/src/baselines/sentence_selector.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/sentence_selector.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/sentence_selector.cpp.o.d"
  "/root/repo/src/baselines/textrank.cpp" "src/baselines/CMakeFiles/osrs_baselines.dir/textrank.cpp.o" "gcc" "src/baselines/CMakeFiles/osrs_baselines.dir/textrank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/osrs_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/osrs_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/osrs_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/osrs_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
