file(REMOVE_RECURSE
  "CMakeFiles/osrs_baselines.dir/coverage_selector.cpp.o"
  "CMakeFiles/osrs_baselines.dir/coverage_selector.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/lexrank.cpp.o"
  "CMakeFiles/osrs_baselines.dir/lexrank.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/lsa.cpp.o"
  "CMakeFiles/osrs_baselines.dir/lsa.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/most_popular.cpp.o"
  "CMakeFiles/osrs_baselines.dir/most_popular.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/pagerank.cpp.o"
  "CMakeFiles/osrs_baselines.dir/pagerank.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/proportional.cpp.o"
  "CMakeFiles/osrs_baselines.dir/proportional.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/sentence_selector.cpp.o"
  "CMakeFiles/osrs_baselines.dir/sentence_selector.cpp.o.d"
  "CMakeFiles/osrs_baselines.dir/textrank.cpp.o"
  "CMakeFiles/osrs_baselines.dir/textrank.cpp.o.d"
  "libosrs_baselines.a"
  "libosrs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
