# Empty compiler generated dependencies file for cellphone_reviews.
# This may be replaced when dependencies are built.
