file(REMOVE_RECURSE
  "CMakeFiles/cellphone_reviews.dir/cellphone_reviews.cpp.o"
  "CMakeFiles/cellphone_reviews.dir/cellphone_reviews.cpp.o.d"
  "cellphone_reviews"
  "cellphone_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellphone_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
