# Empty compiler generated dependencies file for doctor_reviews.
# This may be replaced when dependencies are built.
