file(REMOVE_RECURSE
  "CMakeFiles/doctor_reviews.dir/doctor_reviews.cpp.o"
  "CMakeFiles/doctor_reviews.dir/doctor_reviews.cpp.o.d"
  "doctor_reviews"
  "doctor_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doctor_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
