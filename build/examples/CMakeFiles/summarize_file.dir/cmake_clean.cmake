file(REMOVE_RECURSE
  "CMakeFiles/summarize_file.dir/summarize_file.cpp.o"
  "CMakeFiles/summarize_file.dir/summarize_file.cpp.o.d"
  "summarize_file"
  "summarize_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarize_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
