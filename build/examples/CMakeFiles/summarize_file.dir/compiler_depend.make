# Empty compiler generated dependencies file for summarize_file.
# This may be replaced when dependencies are built.
