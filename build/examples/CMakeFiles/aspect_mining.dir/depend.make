# Empty dependencies file for aspect_mining.
# This may be replaced when dependencies are built.
