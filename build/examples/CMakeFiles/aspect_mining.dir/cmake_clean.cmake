file(REMOVE_RECURSE
  "CMakeFiles/aspect_mining.dir/aspect_mining.cpp.o"
  "CMakeFiles/aspect_mining.dir/aspect_mining.cpp.o.d"
  "aspect_mining"
  "aspect_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
