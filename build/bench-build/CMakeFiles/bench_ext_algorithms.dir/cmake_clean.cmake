file(REMOVE_RECURSE
  "../bench/bench_ext_algorithms"
  "../bench/bench_ext_algorithms.pdb"
  "CMakeFiles/bench_ext_algorithms.dir/bench_ext_algorithms.cpp.o"
  "CMakeFiles/bench_ext_algorithms.dir/bench_ext_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
