# Empty dependencies file for bench_ablation_greedy.
# This may be replaced when dependencies are built.
