file(REMOVE_RECURSE
  "../bench/bench_ablation_greedy"
  "../bench/bench_ablation_greedy.pdb"
  "CMakeFiles/bench_ablation_greedy.dir/bench_ablation_greedy.cpp.o"
  "CMakeFiles/bench_ablation_greedy.dir/bench_ablation_greedy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
