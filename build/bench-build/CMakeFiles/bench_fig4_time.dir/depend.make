# Empty dependencies file for bench_fig4_time.
# This may be replaced when dependencies are built.
