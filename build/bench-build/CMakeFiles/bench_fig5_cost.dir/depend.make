# Empty dependencies file for bench_fig5_cost.
# This may be replaced when dependencies are built.
