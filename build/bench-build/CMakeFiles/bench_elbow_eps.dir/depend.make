# Empty dependencies file for bench_elbow_eps.
# This may be replaced when dependencies are built.
