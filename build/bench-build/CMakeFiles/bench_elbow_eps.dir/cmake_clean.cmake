file(REMOVE_RECURSE
  "../bench/bench_elbow_eps"
  "../bench/bench_elbow_eps.pdb"
  "CMakeFiles/bench_elbow_eps.dir/bench_elbow_eps.cpp.o"
  "CMakeFiles/bench_elbow_eps.dir/bench_elbow_eps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elbow_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
