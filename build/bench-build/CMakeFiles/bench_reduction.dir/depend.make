# Empty dependencies file for bench_reduction.
# This may be replaced when dependencies are built.
