file(REMOVE_RECURSE
  "../bench/bench_reduction"
  "../bench/bench_reduction.pdb"
  "CMakeFiles/bench_reduction.dir/bench_reduction.cpp.o"
  "CMakeFiles/bench_reduction.dir/bench_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
