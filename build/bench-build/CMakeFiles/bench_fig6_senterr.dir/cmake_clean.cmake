file(REMOVE_RECURSE
  "../bench/bench_fig6_senterr"
  "../bench/bench_fig6_senterr.pdb"
  "CMakeFiles/bench_fig6_senterr.dir/bench_fig6_senterr.cpp.o"
  "CMakeFiles/bench_fig6_senterr.dir/bench_fig6_senterr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_senterr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
