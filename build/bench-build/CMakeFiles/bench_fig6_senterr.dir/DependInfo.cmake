
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_senterr.cpp" "bench-build/CMakeFiles/bench_fig6_senterr.dir/bench_fig6_senterr.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig6_senterr.dir/bench_fig6_senterr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/osrs_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/osrs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/osrs_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sentiment/CMakeFiles/osrs_sentiment.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/osrs_text.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/osrs_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/osrs_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/osrs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
