file(REMOVE_RECURSE
  "../bench/bench_ablation_init"
  "../bench/bench_ablation_init.pdb"
  "CMakeFiles/bench_ablation_init.dir/bench_ablation_init.cpp.o"
  "CMakeFiles/bench_ablation_init.dir/bench_ablation_init.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
