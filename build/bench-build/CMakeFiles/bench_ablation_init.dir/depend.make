# Empty dependencies file for bench_ablation_init.
# This may be replaced when dependencies are built.
