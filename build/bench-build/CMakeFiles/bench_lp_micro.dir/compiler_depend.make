# Empty compiler generated dependencies file for bench_lp_micro.
# This may be replaced when dependencies are built.
