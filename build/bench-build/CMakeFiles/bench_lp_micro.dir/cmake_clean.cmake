file(REMOVE_RECURSE
  "../bench/bench_lp_micro"
  "../bench/bench_lp_micro.pdb"
  "CMakeFiles/bench_lp_micro.dir/bench_lp_micro.cpp.o"
  "CMakeFiles/bench_lp_micro.dir/bench_lp_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
