file(REMOVE_RECURSE
  "CMakeFiles/lp_property_test.dir/lp_property_test.cpp.o"
  "CMakeFiles/lp_property_test.dir/lp_property_test.cpp.o.d"
  "lp_property_test"
  "lp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
