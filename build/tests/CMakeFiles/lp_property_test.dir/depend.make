# Empty dependencies file for lp_property_test.
# This may be replaced when dependencies are built.
