# Empty dependencies file for datagen_property_test.
# This may be replaced when dependencies are built.
