file(REMOVE_RECURSE
  "CMakeFiles/datagen_property_test.dir/datagen_property_test.cpp.o"
  "CMakeFiles/datagen_property_test.dir/datagen_property_test.cpp.o.d"
  "datagen_property_test"
  "datagen_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
