file(REMOVE_RECURSE
  "CMakeFiles/api_test.dir/api_test.cpp.o"
  "CMakeFiles/api_test.dir/api_test.cpp.o.d"
  "api_test"
  "api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
