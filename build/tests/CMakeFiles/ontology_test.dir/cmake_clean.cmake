file(REMOVE_RECURSE
  "CMakeFiles/ontology_test.dir/ontology_test.cpp.o"
  "CMakeFiles/ontology_test.dir/ontology_test.cpp.o.d"
  "ontology_test"
  "ontology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
