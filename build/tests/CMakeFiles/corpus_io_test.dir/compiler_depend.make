# Empty compiler generated dependencies file for corpus_io_test.
# This may be replaced when dependencies are built.
