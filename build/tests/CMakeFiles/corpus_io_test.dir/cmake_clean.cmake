file(REMOVE_RECURSE
  "CMakeFiles/corpus_io_test.dir/corpus_io_test.cpp.o"
  "CMakeFiles/corpus_io_test.dir/corpus_io_test.cpp.o.d"
  "corpus_io_test"
  "corpus_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
