file(REMOVE_RECURSE
  "CMakeFiles/coverage_report_test.dir/coverage_report_test.cpp.o"
  "CMakeFiles/coverage_report_test.dir/coverage_report_test.cpp.o.d"
  "coverage_report_test"
  "coverage_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
