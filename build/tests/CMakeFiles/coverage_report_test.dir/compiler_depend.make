# Empty compiler generated dependencies file for coverage_report_test.
# This may be replaced when dependencies are built.
