# Empty dependencies file for weighted_coverage_test.
# This may be replaced when dependencies are built.
