
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/weighted_coverage_test.cpp" "tests/CMakeFiles/weighted_coverage_test.dir/weighted_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/weighted_coverage_test.dir/weighted_coverage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/osrs_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/osrs_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/osrs_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/osrs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
