file(REMOVE_RECURSE
  "CMakeFiles/weighted_coverage_test.dir/weighted_coverage_test.cpp.o"
  "CMakeFiles/weighted_coverage_test.dir/weighted_coverage_test.cpp.o.d"
  "weighted_coverage_test"
  "weighted_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
