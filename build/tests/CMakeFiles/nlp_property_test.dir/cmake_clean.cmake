file(REMOVE_RECURSE
  "CMakeFiles/nlp_property_test.dir/nlp_property_test.cpp.o"
  "CMakeFiles/nlp_property_test.dir/nlp_property_test.cpp.o.d"
  "nlp_property_test"
  "nlp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
