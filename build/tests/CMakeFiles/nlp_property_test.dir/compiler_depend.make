# Empty compiler generated dependencies file for nlp_property_test.
# This may be replaced when dependencies are built.
