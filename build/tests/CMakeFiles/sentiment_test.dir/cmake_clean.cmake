file(REMOVE_RECURSE
  "CMakeFiles/sentiment_test.dir/sentiment_test.cpp.o"
  "CMakeFiles/sentiment_test.dir/sentiment_test.cpp.o.d"
  "sentiment_test"
  "sentiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
