# Empty compiler generated dependencies file for sentiment_test.
# This may be replaced when dependencies are built.
