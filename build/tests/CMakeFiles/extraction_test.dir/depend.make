# Empty dependencies file for extraction_test.
# This may be replaced when dependencies are built.
