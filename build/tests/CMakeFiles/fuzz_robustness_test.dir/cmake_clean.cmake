file(REMOVE_RECURSE
  "CMakeFiles/fuzz_robustness_test.dir/fuzz_robustness_test.cpp.o"
  "CMakeFiles/fuzz_robustness_test.dir/fuzz_robustness_test.cpp.o.d"
  "fuzz_robustness_test"
  "fuzz_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
