// Quickstart: summarize raw review texts of one product in ~30 lines.
//
// Pipeline: build (or load) a concept hierarchy -> annotate raw texts
// (concept extraction + sentence sentiment) -> pick the k most
// representative sentences under the ontology- and sentiment-aware
// coverage objective.

#include <cstdio>

#include "api/annotator.h"
#include "api/review_summarizer.h"
#include "ontology/cellphone_hierarchy.h"

int main() {
  // 1. The domain hierarchy (Fig. 3 of the paper).
  osrs::Ontology phones = osrs::BuildCellPhoneHierarchy();

  // 2. Annotate raw reviews: sentences -> concept-sentiment pairs.
  osrs::ReviewAnnotator annotator(&phones,
                                  osrs::SentimentEstimator::LexiconOnly());
  auto item = annotator.AnnotateTexts(
      "acme-phone-5",
      {
          "The screen is absolutely gorgeous and very sharp. Battery life "
          "is excellent too. Came with a cheap case.",
          "Battery life is good but the speaker is terrible. The screen "
          "resolution is great.",
          "Terrible battery life after the update. The camera is amazing "
          "in daylight. Support was unhelpful.",
          "The price is great for what you get. The screen scratches "
          "easily though.",
      },
      /*ratings=*/{0.8, 0.2, -0.4, 0.5});
  if (!item.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 item.status().ToString().c_str());
    return 1;
  }

  // 3. Summarize: the 3 sentences that best cover all opinions, honoring
  //    the hierarchy ("screen" covers "screen resolution") and the graded
  //    sentiment scale ("excellent battery" does not cover "terrible
  //    battery").
  osrs::ReviewSummarizer summarizer(&phones, {});
  auto summary = summarizer.Summarize(*item, /*k=*/3);
  if (!summary.ok()) {
    std::fprintf(stderr, "summarization failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::printf("Summary of %zu review pairs (coverage cost %.1f):\n",
              summary->num_pairs, summary->cost);
  for (const auto& entry : summary->entries) {
    std::printf("  - %s\n", entry.display.c_str());
  }
  return 0;
}
