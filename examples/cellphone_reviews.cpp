// Cell-phone review walkthrough (the paper's qualitative dataset, §5.3):
// prints the Fig. 3 aspect hierarchy, summarizes one phone with the
// greedy coverage summarizer, and scores every baseline of Table 2 with
// the sent-err measures of Eq. 1.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/coverage_selector.h"
#include "baselines/lexrank.h"
#include "baselines/lsa.h"
#include "baselines/most_popular.h"
#include "baselines/proportional.h"
#include "baselines/sentence_selector.h"
#include "baselines/textrank.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "datagen/cellphone_corpus.h"
#include "eval/sent_err.h"

int main() {
  osrs::CellPhoneCorpusOptions options;
  options.scale = 0.04;  // 2 phones, ~1300 reviews
  osrs::Corpus corpus = osrs::GenerateCellPhoneCorpus(options);

  std::printf("Cell phone aspect hierarchy (Fig. 3):\n%s\n",
              corpus.ontology.ToTreeString(2).c_str());

  const osrs::Item& phone = corpus.items[0];
  auto candidates = osrs::BuildCandidates(phone);
  if (candidates.size() > 300) candidates.resize(300);
  std::vector<osrs::ConceptSentimentPair> all_pairs;
  for (const auto& candidate : candidates) {
    all_pairs.insert(all_pairs.end(), candidate.pairs.begin(),
                     candidate.pairs.end());
  }
  std::printf("Summarizing %s: %zu candidate sentences, %zu pairs\n\n",
              phone.id.c_str(), candidates.size(), all_pairs.size());

  const int k = 6;
  std::vector<std::unique_ptr<osrs::SentenceSelector>> selectors;
  selectors.push_back(
      std::make_unique<osrs::CoverageGreedySelector>(&corpus.ontology));
  selectors.push_back(std::make_unique<osrs::MostPopularSelector>());
  selectors.push_back(std::make_unique<osrs::ProportionalSelector>());
  selectors.push_back(std::make_unique<osrs::TextRankSelector>());
  selectors.push_back(std::make_unique<osrs::LexRankSelector>());
  selectors.push_back(std::make_unique<osrs::LsaSelector>());

  osrs::TableWriter table("Summary quality on one phone (k=6)");
  table.SetHeader({"method", "sent-err", "sent-err-penalized"});
  for (auto& selector : selectors) {
    auto selected = selector->Select(candidates, k);
    if (!selected.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", selector->name().c_str(),
                   selected.status().ToString().c_str());
      continue;
    }
    auto summary_pairs = osrs::PairsOfSelection(candidates, *selected);
    table.AddRow(
        {selector->name(),
         osrs::StrFormat("%.4f", osrs::SentErr(corpus.ontology, all_pairs,
                                               summary_pairs, false)),
         osrs::StrFormat("%.4f", osrs::SentErr(corpus.ontology, all_pairs,
                                               summary_pairs, true))});
  }
  table.Print();

  // The actual sentences our method picked.
  osrs::CoverageGreedySelector ours(&corpus.ontology);
  auto selected = ours.Select(candidates, k);
  if (selected.ok()) {
    std::printf("\nOur %d-sentence summary of %s:\n", k, phone.id.c_str());
    for (int index : *selected) {
      std::printf("  - %s\n",
                  candidates[static_cast<size_t>(index)].text.c_str());
    }
  }
  return 0;
}
