// Summarizes reviews read from a TSV file — the "bring your own data"
// entry point. Each line is "<rating>\t<review text>"; "@item <id>" lines
// start a new item; '#' lines are comments. With no argument the bundled
// examples/data/sample_reviews.tsv content is used.
//
// Usage: summarize_file [reviews.tsv [k]]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/annotator.h"
#include "api/review_summarizer.h"
#include "common/strings.h"
#include "ontology/cellphone_hierarchy.h"

namespace {

constexpr const char* kBuiltinSample = R"(@item aurora-x2
0.9	Absolutely love this phone. The screen is gorgeous and very bright. Battery life is excellent, lasts two days.
0.6	The camera is amazing in daylight but struggles in low light. Speaker is decent.
-0.2	Battery life was great at first but terrible after the update. The fingerprint sensor is unreliable.
0.7	Great value for the price. Shipping was fast and the seller was helpful.
-0.6	The touchscreen is laggy and the apps crash constantly. Support was unhelpful.
0.4	Screen resolution is sharp. The case feels cheap though.
@item pebble-mini
-0.4	The battery drains fast and charging is slow. Otherwise a decent little phone.
0.5	Nice compact size and the weight is perfect for one-handed use.
-0.7	Terrible signal and the wifi keeps dropping. The bluetooth is unreliable too.
0.2	The camera is fine for the price. Photo quality is grainy at night.
0.8	Excellent screen for such a cheap phone. Very responsive touchscreen.
)";

struct RawItem {
  std::string id;
  std::vector<std::string> texts;
  std::vector<double> ratings;
};

std::vector<RawItem> ParseReviews(const std::string& contents) {
  std::vector<RawItem> items;
  for (const std::string& line : osrs::Split(contents, '\n')) {
    std::string_view trimmed = osrs::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (osrs::StartsWith(trimmed, "@item")) {
      items.emplace_back();
      items.back().id = std::string(osrs::Trim(trimmed.substr(5)));
      continue;
    }
    if (items.empty()) items.push_back({"item-1", {}, {}});
    std::vector<std::string> fields = osrs::Split(trimmed, '\t');
    if (fields.size() < 2) {
      std::fprintf(stderr, "skipping malformed line: %s\n", line.c_str());
      continue;
    }
    items.back().ratings.push_back(std::atof(fields[0].c_str()));
    items.back().texts.push_back(fields[1]);
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  std::string contents = kBuiltinSample;
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  } else {
    std::printf("(no file given — using the built-in sample; pass a TSV "
                "path to summarize your own reviews)\n");
  }
  int k = argc >= 3 ? std::atoi(argv[2]) : 3;

  osrs::Ontology phones = osrs::BuildCellPhoneHierarchy();
  osrs::ReviewAnnotator annotator(&phones,
                                  osrs::SentimentEstimator::LexiconOnly());
  osrs::ReviewSummarizer summarizer(&phones, {});

  for (const RawItem& raw : ParseReviews(contents)) {
    auto item = annotator.AnnotateTexts(raw.id, raw.texts, raw.ratings);
    if (!item.ok()) {
      std::fprintf(stderr, "%s: %s\n", raw.id.c_str(),
                   item.status().ToString().c_str());
      continue;
    }
    auto summary = summarizer.Summarize(*item, k);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s: %s\n", raw.id.c_str(),
                   summary.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s — %zu reviews, %zu opinion pairs, top %zu sentences "
                "(cost %.1f):\n",
                raw.id.c_str(), raw.texts.size(), summary->num_pairs,
                summary->entries.size(), summary->cost);
    for (const auto& entry : summary->entries) {
      std::printf("  - %s\n", entry.display.c_str());
    }
  }
  return 0;
}
