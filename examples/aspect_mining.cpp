// Fully unsupervised path: no curated hierarchy at all. Double
// Propagation mines the aspects from raw sentences (§5.1), the mined
// aspects are arranged into a hierarchy, and the coverage summarizer runs
// on top — the workflow for a brand-new domain where neither SNOMED nor a
// hand-built tree exists.

#include <cstdio>
#include <vector>

#include "api/annotator.h"
#include "api/review_summarizer.h"
#include "datagen/cellphone_corpus.h"
#include "extraction/double_propagation.h"
#include "extraction/hierarchy_induction.h"
#include "text/tokenizer.h"

int main() {
  // Raw text only: strip the generator's annotations.
  osrs::CellPhoneCorpusOptions options;
  options.scale = 0.03;
  osrs::Corpus corpus = osrs::GenerateCellPhoneCorpus(options);

  std::vector<std::vector<std::string>> sentences;
  for (const auto& item : corpus.items) {
    for (const auto& review : item.reviews) {
      for (const auto& sentence : review.sentences) {
        sentences.push_back(osrs::Tokenize(sentence.text));
      }
    }
  }
  std::printf("Mining aspects from %zu raw sentences...\n", sentences.size());

  osrs::DoublePropagationOptions mining_options;
  mining_options.min_aspect_frequency = 10;
  osrs::DoublePropagation miner(mining_options);
  auto aspects = miner.ExtractAspects(sentences,
                                      osrs::SentimentLexicon::Default());
  std::printf("Mined %zu aspects. Top 15 by frequency:\n", aspects.size());
  for (size_t i = 0; i < std::min<size_t>(aspects.size(), 15); ++i) {
    std::printf("  %-25s %6lld\n", aspects[i].term.c_str(),
                static_cast<long long>(aspects[i].frequency));
  }

  // Two ways to arrange the mined aspects into a hierarchy: term-containment
  // nesting ("battery life" under "battery") and distributional subsumption
  // induced from co-occurrence statistics (the Kim-et-al.-style automatic
  // alternative §2 mentions).
  osrs::Ontology mined = osrs::BuildAspectHierarchy(aspects, "product");
  std::printf("\nTerm-containment hierarchy (%zu concepts, depth %d):\n%s\n",
              mined.num_concepts(), mined.max_depth(),
              mined.ToTreeString(2).c_str());

  osrs::Ontology induced =
      osrs::InduceAspectHierarchy(sentences, aspects, "product");
  std::printf("Co-occurrence-induced hierarchy (%zu concepts, depth %d):\n%s\n",
              induced.num_concepts(), induced.max_depth(),
              induced.ToTreeString(2).c_str());

  // Re-annotate one item against the MINED hierarchy and summarize.
  osrs::ReviewAnnotator annotator(&mined,
                                  osrs::SentimentEstimator::LexiconOnly());
  osrs::Item item = corpus.items[0];
  if (osrs::Status status = annotator.Annotate(item); !status.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  osrs::ReviewSummarizer summarizer(&mined, {});
  auto summary = summarizer.Summarize(item, /*k=*/5);
  if (!summary.ok()) {
    std::fprintf(stderr, "summarization failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("5-sentence summary of %s over the mined hierarchy "
              "(cost %.1f, %zu pairs):\n",
              item.id.c_str(), summary->cost, summary->num_pairs);
  for (const auto& entry : summary->entries) {
    std::printf("  - %s\n", entry.display.c_str());
  }
  return 0;
}
