// Doctor-review walkthrough (the paper's primary dataset, §5.1-5.2):
// generates a synthetic vitals.com-like corpus over a SNOMED-like
// hierarchy, shows how one doctor's concept-sentiment pairs sit on the
// hierarchy (the Fig. 1 picture, in text), and compares the three §4
// algorithms at all three granularities.

#include <algorithm>
#include <cstdio>


#include "api/review_summarizer.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "core/model.h"
#include "datagen/doctor_corpus.h"
#include "eval/coverage_report.h"

namespace {

/// Prints the Fig.-1-style view: the item's pairs grouped by concept with
/// the concept's depth in the hierarchy.
void PrintPairsOnHierarchy(const osrs::Ontology& onto,
                           const osrs::Item& item) {
  std::printf(
      "\nConcept-sentiment pairs of %s on the hierarchy (top 10 concepts):\n%s",
      item.id.c_str(),
      osrs::RenderPairsOnHierarchy(
          onto, osrs::PairsOf(osrs::CollectPairs(item)), 10)
          .c_str());
}

}  // namespace

int main() {
  osrs::DoctorCorpusOptions options;
  options.scale = 0.01;  // 10 doctors, ~687 reviews
  options.ontology_concepts = 1500;
  osrs::Corpus corpus = osrs::GenerateDoctorCorpus(options);
  std::printf("Generated %zu doctors over a %zu-concept SNOMED-like DAG "
              "(max depth %d, avg ancestors %.1f)\n",
              corpus.items.size(), corpus.ontology.num_concepts(),
              corpus.ontology.max_depth(),
              corpus.ontology.AverageAncestorCount());

  // The most-reviewed doctor, as the paper's running example.
  const osrs::Item* busiest = &corpus.items[0];
  for (const auto& item : corpus.items) {
    if (item.reviews.size() > busiest->reviews.size()) busiest = &item;
  }
  std::printf("Most reviewed doctor: %s with %zu reviews\n",
              busiest->id.c_str(), busiest->reviews.size());
  // Cap the instance so the exact ILP stays interactive (the paper uses
  // Gurobi; see DESIGN.md on the bundled-solver substitution).
  osrs::Item capped = osrs::TruncateToPairBudget(*busiest, 250);
  busiest = &capped;
  PrintPairsOnHierarchy(corpus.ontology, *busiest);

  // Compare the three algorithms at each granularity (k = 5, eps = 0.5).
  const int k = 5;
  osrs::TableWriter table("ILP vs RR vs Greedy on one doctor (k=5, eps=0.5)");
  table.SetHeader({"granularity", "algorithm", "cost", "time_ms"});
  for (osrs::SummaryGranularity granularity :
       {osrs::SummaryGranularity::kPairs, osrs::SummaryGranularity::kSentences,
        osrs::SummaryGranularity::kReviews}) {
    for (osrs::SummaryAlgorithm algorithm :
         {osrs::SummaryAlgorithm::kIlp,
          osrs::SummaryAlgorithm::kRandomizedRounding,
          osrs::SummaryAlgorithm::kGreedy}) {
      osrs::ReviewSummarizerOptions summarizer_options;
      summarizer_options.granularity = granularity;
      summarizer_options.algorithm = algorithm;
      osrs::ReviewSummarizer summarizer(&corpus.ontology, summarizer_options);
      auto summary = summarizer.Summarize(*busiest, k);
      if (!summary.ok()) {
        std::fprintf(stderr, "%s failed: %s\n",
                     osrs::SummaryAlgorithmToString(algorithm),
                     summary.status().ToString().c_str());
        continue;
      }
      table.AddRow({osrs::SummaryGranularityToString(granularity),
                    osrs::SummaryAlgorithmToString(algorithm),
                    osrs::StrFormat("%.1f", summary->cost),
                    osrs::StrFormat("%.2f", summary->solver_seconds * 1e3)});
    }
  }
  table.Print();

  // Show the greedy sentence summary itself.
  osrs::ReviewSummarizer summarizer(&corpus.ontology, {});
  auto summary = summarizer.Summarize(*busiest, k);
  if (summary.ok()) {
    std::printf("\nGreedy %d-sentence summary of %s:\n", k,
                busiest->id.c_str());
    for (const auto& entry : summary->entries) {
      std::printf("  - %s\n", entry.display.c_str());
    }
  }
  return 0;
}
