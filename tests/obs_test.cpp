// Tests of the runtime telemetry layer (src/obs): metric primitives,
// trace semantics, SolverStats rendering, and the facade/batch plumbing.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch_summarizer.h"
#include "api/review_summarizer.h"
#include "common/execution_budget.h"
#include "common/rng.h"
#include "core/distance.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/request_trace.h"
#include "obs/solver_stats.h"
#include "obs/trace.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/snomed_like.h"
#include "solver/greedy.h"

namespace osrs {
namespace {

// With -DOSRS_OBS=OFF a TraceSpan must shrink to an empty object: the
// instrumentation points in the solvers then cost exactly nothing.
static_assert(obs::kCompiledIn || sizeof(obs::TraceSpan) == 1,
              "disabled TraceSpan must be an empty type");

/// Restores the registry's enabled flag (tests flip it on).
class ScopedRegistryEnable {
 public:
  ScopedRegistryEnable() {
    obs::MetricsRegistry::Global().SetEnabled(true);
  }
  ~ScopedRegistryEnable() {
    obs::MetricsRegistry::Global().SetEnabled(false);
  }
};

/// Random instance over the synthetic ontology (same recipe as
/// solver_test) for the greedy determinism checks.
struct Instance {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
};

Instance MakeInstance(uint64_t seed, int num_pairs) {
  SnomedLikeOptions options;
  options.num_concepts = 60;
  options.max_depth = 5;
  options.seed = seed;
  Instance instance;
  instance.ontology = BuildSnomedLikeOntology(options);
  Rng rng(seed * 77 + 1);
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(instance.ontology.num_concepts() - 1));
    double s = rng.NextBernoulli(0.6) ? 0.6 : -0.4;
    instance.pairs.push_back({c, s});
  }
  return instance;
}

Item SmallItem(const Ontology& onto) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  ConceptId price = onto.FindByName("price");
  Item item;
  item.id = "phone-x";
  Review r1;
  r1.sentences.push_back({"screen is great", {{screen, 0.75}}});
  r1.sentences.push_back({"battery is awful", {{battery, -0.9}}});
  Review r2;
  r2.sentences.push_back({"price is decent", {{price, 0.35}}});
  r2.sentences.push_back({"screen is nice", {{screen, 0.5}}});
  item.reviews = {r1, r2};
  return item;
}

// ---------------------------------------------------------------- Counter --

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ScopedRegistryEnable enable;
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.test.concurrent");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kPerThread);
}

TEST(CounterTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry::Global().SetEnabled(false);
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.test.disabled");
  counter->Reset();
  counter->Add(41);
  counter->Increment();
  EXPECT_EQ(counter->value(), 0);
}

TEST(CounterTest, RegistryInternsHandlesByName) {
  obs::Counter* a =
      obs::MetricsRegistry::Global().GetCounter("osrs.test.interned");
  obs::Counter* b =
      obs::MetricsRegistry::Global().GetCounter("osrs.test.interned");
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, BucketBoundariesInclusiveExclusive) {
  // Bucket i covers [bounds[i-1], bounds[i]): inclusive lower edge,
  // exclusive upper edge; bucket 0 is (-inf, 1); overflow is [4, +inf).
  obs::HistogramSnapshot h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.BucketOf(0.0), 0u);
  EXPECT_EQ(h.BucketOf(0.999), 0u);
  EXPECT_EQ(h.BucketOf(1.0), 1u);  // == bound: lower edge, next bucket
  EXPECT_EQ(h.BucketOf(1.999), 1u);
  EXPECT_EQ(h.BucketOf(2.0), 2u);
  EXPECT_EQ(h.BucketOf(3.999), 2u);
  EXPECT_EQ(h.BucketOf(4.0), 3u);  // == last bound: overflow bucket
  EXPECT_EQ(h.BucketOf(1e18), 3u);

  h.Observe(1.0);
  h.Observe(1.5);
  h.Observe(4.0);
  EXPECT_EQ(h.counts[1], 2);
  EXPECT_EQ(h.counts[3], 1);
  EXPECT_EQ(h.total_count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 6.5);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  obs::HistogramSnapshot h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram

  // 10 observations spread 4 / 4 / 2 across the first three buckets.
  for (int i = 0; i < 4; ++i) h.Observe(0.5);
  for (int i = 0; i < 4; ++i) h.Observe(1.5);
  for (int i = 0; i < 2; ++i) h.Observe(3.0);

  // rank 5 lands 1 observation into bucket [1, 2): 1 + (5-4)/4 * (2-1).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.25);
  // rank 9 lands 1 observation into bucket [2, 4): 2 + (9-8)/2 * (4-2).
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 3.0);
  // Extremes clamp to the bucket edges rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));  // q clamps to [0,1]
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(HistogramTest, QuantileInOverflowBucketReturnsLastBound) {
  obs::HistogramSnapshot h({1.0, 2.0, 4.0});
  h.Observe(100.0);
  h.Observe(200.0);
  // The overflow bucket has no upper edge; the last finite bound is the
  // most honest answer available.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4.0);
}

TEST(HistogramTest, QuantileWithSingleObservationHitsItsBucket) {
  obs::HistogramSnapshot h({1.0, 2.0, 4.0});
  h.Observe(1.5);
  // One sample: every quantile interpolates inside its bucket [1, 2).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1.99);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(HistogramTest, ThreadSafeObserveMatchesSnapshot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ScopedRegistryEnable enable;
  obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "osrs.test.histogram", {1.0, 10.0});
  histogram->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram]() {
      for (int i = 0; i < kPerThread; ++i) histogram->Observe(5.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.total_count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snapshot.counts[1], int64_t{kThreads} * kPerThread);
}

// ------------------------------------------------------------------ Trace --

TEST(TraceTest, SpansRecordIntoInstalledTrace) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  obs::SolveTrace trace;
  {
    obs::Tracer::Scope scope(&trace);
    obs::TraceSpan outer(obs::Phase::kGreedyIterations);
    {
      obs::TraceSpan inner(obs::Phase::kHeapInit);
      obs::TraceStat(obs::Stat::kHeapPops, 3);
    }
  }
  EXPECT_EQ(trace.phase_calls(obs::Phase::kGreedyIterations), 1);
  EXPECT_EQ(trace.phase_calls(obs::Phase::kHeapInit), 1);
  EXPECT_GE(trace.phase_nanos(obs::Phase::kHeapInit), 0);
  EXPECT_EQ(trace.stat(obs::Stat::kHeapPops), 3);
  EXPECT_EQ(trace.open_spans(), 0);
  EXPECT_EQ(trace.max_depth(), 2);
  EXPECT_FALSE(trace.empty());
  trace.Reset();
  EXPECT_TRUE(trace.empty());
}

TEST(TraceTest, NoInstalledTraceRecordsNothing) {
  // Spans and stats with no trace installed must be harmless no-ops.
  obs::TraceSpan span(obs::Phase::kLpRelaxation);
  obs::TraceStat(obs::Stat::kSimplexPivots, 5);
  SUCCEED();
}

TEST(TraceTest, NestingBalancedOnEarlyBudgetReturn) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Instance inst = MakeInstance(11, 120);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);

  obs::SolveTrace trace;
  obs::Tracer::Scope scope(&trace);
  ExecutionBudget budget;
  budget.SetMaxWork(1);  // trips during greedy selection
  GreedySummarizer greedy;
  auto result = greedy.Summarize(graph, 10, budget);
  // Whether the budget surfaced as an error or an approximate incumbent,
  // every span opened on the early path must have closed again.
  EXPECT_EQ(trace.open_spans(), 0);
  EXPECT_GE(trace.max_depth(), 1);
  (void)result;
}

// ------------------------------------------------------------ SolverStats --

TEST(SolverStatsTest, FromTraceKeepsOnlyNonZero) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  obs::SolveTrace trace;
  trace.RecordPhase(obs::Phase::kHeapInit, 2'000'000);
  trace.AddStat(obs::Stat::kHeapPops, 7);
  obs::SolverStats stats = obs::SolverStats::FromTrace(trace);
  ASSERT_EQ(stats.phases.size(), 1u);
  EXPECT_EQ(stats.phases[0].name, "heap_init");
  EXPECT_DOUBLE_EQ(stats.phases[0].millis, 2.0);
  EXPECT_EQ(stats.phases[0].calls, 1);
  ASSERT_EQ(stats.counters.size(), 1u);
  EXPECT_EQ(stats.counter("heap_pops"), 7);
  EXPECT_EQ(stats.counter("missing"), 0);
}

TEST(SolverStatsTest, MergeFromSumsByName) {
  obs::SolverStats a;
  a.phases.push_back({"heap_init", 1.5, 1});
  a.counters.push_back({"heap_pops", 4});
  obs::SolverStats b;
  b.phases.push_back({"heap_init", 0.5, 2});
  b.phases.push_back({"lp_relaxation", 3.0, 1});
  b.counters.push_back({"simplex_pivots", 9});
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.phase_millis("heap_init"), 2.0);
  EXPECT_DOUBLE_EQ(a.phase_millis("lp_relaxation"), 3.0);
  EXPECT_EQ(a.counter("heap_pops"), 4);
  EXPECT_EQ(a.counter("simplex_pivots"), 9);
  std::string json = a.ToJson();
  EXPECT_NE(json.find("\"heap_init\""), std::string::npos);
  EXPECT_NE(json.find("\"simplex_pivots\":9"), std::string::npos);
}

// ----------------------------------------------- Determinism (greedy runs) --

TEST(TraceTest, GreedyDistanceEvaluationsDeterministicAcrossRuns) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Instance inst = MakeInstance(5, 80);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  GreedySummarizer greedy;

  int64_t first_run = -1;
  for (int run = 0; run < 3; ++run) {
    obs::SolveTrace trace;
    obs::Tracer::Scope scope(&trace);
    auto result = greedy.Summarize(graph, 6);
    ASSERT_TRUE(result.ok());
    int64_t evals = trace.stat(obs::Stat::kDistanceEvaluations);
    EXPECT_GT(evals, 0);
    if (first_run < 0) {
      first_run = evals;
    } else {
      EXPECT_EQ(evals, first_run) << "run " << run;
    }
  }
}

// ----------------------------------------------------------------- Facade --

TEST(FacadeStatsTest, SummarizePopulatesStats) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  if (obs::kCompiledIn) {
    EXPECT_FALSE(summary->stats.empty());
    EXPECT_GT(summary->stats.counter("distance_evaluations"), 0);
    EXPECT_GT(summary->stats.counter("graph_edges_built"), 0);
    EXPECT_GT(summary->stats.counter("heap_pops"), 0);
    EXPECT_GE(summary->stats.phase_millis("solve_attempt"), 0.0);
  } else {
    EXPECT_TRUE(summary->stats.empty());
  }
  // The diagnostics object carries the stats in JSON either way.
  std::string json = summary->ToJson();
  EXPECT_NE(json.find("\"diagnostics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
  // Deprecated top-level aliases still present.
  EXPECT_NE(json.find("\"degraded\":"), std::string::npos);
  EXPECT_NE(json.find("\"budget_spent_ms\":"), std::string::npos);
}

TEST(FacadeStatsTest, CollectStatsOffLeavesStatsEmpty) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.collect_stats = false;
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->stats.empty());
}

// ------------------------------------------------------------- BatchStats --

TEST(BatchStatsTest, AggregatesCountsLatenciesAndStats) {
  Ontology onto = BuildCellPhoneHierarchy();
  BatchSummarizer batch(&onto, {});
  std::vector<Item> items(3, SmallItem(onto));
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  ASSERT_EQ(entries.size(), 3u);

  BatchStats stats = AggregateBatchStats(entries);
  EXPECT_EQ(stats.total, 3);
  EXPECT_EQ(stats.ok, 3);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.total_ms.total_count, 3);
  if (obs::kCompiledIn) {
    EXPECT_EQ(stats.stats.counter("distance_evaluations"),
              3 * entries[0].summary.stats.counter("distance_evaluations"));
  }
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"ok\":3"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":{"), std::string::npos);

  // A failed entry is counted without contributing to the histograms.
  entries.push_back(BatchEntry{Status::Internal("boom"), ItemSummary{}});
  BatchStats with_failure = AggregateBatchStats(entries);
  EXPECT_EQ(with_failure.failed, 1);
  EXPECT_EQ(with_failure.total_ms.total_count, 3);
}

// ------------------------------------------ export (OpenMetrics) -----------

TEST(OpenMetricsTest, SanitizeMetricNameMapsDottedNames) {
  EXPECT_EQ(obs::SanitizeMetricName("osrs.serve.cache_hit"),
            "osrs_serve_cache_hit");
  EXPECT_EQ(obs::SanitizeMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::SanitizeMetricName("7up"), "_7up");
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
}

TEST(OpenMetricsTest, SnapshotCapturesAllThreeKinds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ScopedRegistryEnable enable;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("osrs.test.snap_hits")->Reset();
  registry.GetCounter("osrs.test.snap_hits")->Add(3);
  registry.GetGauge("osrs.test.snap_depth")->Set(7);
  registry.GetHistogram("osrs.test.snap_ms", {1.0, 10.0})->Observe(0.5);
  registry.GetHistogram("osrs.test.snap_ms", {1.0, 10.0})->Observe(100.0);

  obs::RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.enabled);
  bool counter_found = false, gauge_found = false, histogram_found = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name != "osrs.test.snap_hits") continue;
    counter_found = true;
    EXPECT_EQ(counter.value, 3);
  }
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name != "osrs.test.snap_depth") continue;
    gauge_found = true;
    EXPECT_EQ(gauge.value, 7);
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name != "osrs.test.snap_ms") continue;
    histogram_found = true;
    EXPECT_EQ(histogram.histogram.total_count, 2);
  }
  EXPECT_TRUE(counter_found && gauge_found && histogram_found);
}

TEST(OpenMetricsTest, RenderedTextHasMonotoneCumulativeBuckets) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ScopedRegistryEnable enable;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("osrs.test.om_hits")->Reset();
  registry.GetCounter("osrs.test.om_hits")->Add(5);
  obs::Histogram* histogram =
      registry.GetHistogram("osrs.test.om_latency_ms", {1.0, 10.0, 100.0});
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  histogram->Observe(5000.0);  // overflow bucket

  std::string text = obs::RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE osrs_test_om_hits counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("osrs_test_om_hits_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE osrs_test_om_latency_ms histogram"),
            std::string::npos);
  // Cumulative buckets: 1, 2, 3, and +Inf picks up the overflow count.
  EXPECT_NE(text.find("osrs_test_om_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("osrs_test_om_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("osrs_test_om_latency_ms_bucket{le=\"100\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("osrs_test_om_latency_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("osrs_test_om_latency_ms_count 4"), std::string::npos);
  EXPECT_NE(text.find("osrs_test_om_latency_ms_sum"), std::string::npos);
  // Spec terminator, exactly once, at the end.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

// --------------------------------------------- request-scoped traces -------

TEST(RequestTraceTest, DeriveTraceIdIsDeterministicAndDispersed) {
  EXPECT_EQ(obs::DeriveTraceId(1), obs::DeriveTraceId(1));
  EXPECT_NE(obs::DeriveTraceId(1), obs::DeriveTraceId(2));
  EXPECT_NE(obs::DeriveTraceId(1), 0u) << "ids must not collapse to zero";
}

TEST(RequestTraceTest, NestedSpansBalanceAndRecordDepth) {
  obs::RequestTrace trace;
  size_t root = trace.BeginSpan(obs::RequestSpanKind::kServe);
  size_t inner = trace.BeginSpan(obs::RequestSpanKind::kCacheProbe);
  EXPECT_FALSE(trace.balanced()) << "open spans are unbalanced";
  trace.EndSpan(inner);
  trace.AddSpan(obs::RequestSpanKind::kQueueWait, 10, 5);
  trace.EndSpan(root);
  EXPECT_TRUE(trace.balanced());
  EXPECT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_EQ(trace.spans()[1].depth, 1);
  EXPECT_TRUE(trace.HasSpan(obs::RequestSpanKind::kQueueWait));
  EXPECT_GE(trace.SpanDurationNs(obs::RequestSpanKind::kServe), 0);

  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"trace_id\":\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"cache_probe\""), std::string::npos);
}

}  // namespace
}  // namespace osrs
