#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/lp_problem.h"
#include "lp/mip.h"
#include "lp/simplex.h"

namespace osrs {
namespace {

// -------------------------------------------------------------- LpProblem --

TEST(LpProblemTest, MergesDuplicateTerms) {
  LpProblem lp;
  int x = lp.AddVariable(0, 10, 1.0);
  auto row = lp.AddConstraint({{x, 1.0}, {x, 2.0}}, ConstraintSense::kLessEqual,
                              5.0);
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(lp.row_terms(*row).size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row_terms(*row)[0].second, 3.0);
}

TEST(LpProblemTest, RejectsUnknownVariable) {
  LpProblem lp;
  lp.AddVariable(0, 1, 0.0);
  EXPECT_FALSE(lp.AddConstraint({{7, 1.0}}, ConstraintSense::kEqual, 1.0).ok());
}

TEST(LpProblemTest, FeasibilityCheck) {
  LpProblem lp;
  int x = lp.AddVariable(0, 1, 0.0);
  int y = lp.AddVariable(0, 1, 0.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kEqual, 1.0)
          .ok());
  EXPECT_TRUE(lp.IsFeasible({0.5, 0.5}));
  EXPECT_FALSE(lp.IsFeasible({1.0, 1.0}));
  EXPECT_FALSE(lp.IsFeasible({-0.5, 1.5}));
  EXPECT_FALSE(lp.IsFeasible({0.5}));
}

TEST(LpProblemTest, EvaluateObjective) {
  LpProblem lp;
  lp.AddVariable(0, 1, 2.0);
  lp.AddVariable(0, 1, -1.0);
  EXPECT_DOUBLE_EQ(lp.EvaluateObjective({1.0, 0.5}), 1.5);
}

// ---------------------------------------------------------------- Simplex --

TEST(SimplexTest, SolvesTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example).
  // Optimum (2, 6) with value 36; as minimization: -36.
  LpProblem lp;
  int x = lp.AddVariable(0, kLpInfinity, -3.0);
  int y = lp.AddVariable(0, kLpInfinity, -5.0);
  ASSERT_TRUE(lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLessEqual, 4.0).ok());
  ASSERT_TRUE(lp.AddConstraint({{y, 2.0}}, ConstraintSense::kLessEqual, 12.0).ok());
  ASSERT_TRUE(lp.AddConstraint({{x, 3.0}, {y, 2.0}},
                               ConstraintSense::kLessEqual, 18.0)
                  .ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<size_t>(y)], 6.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraintsViaPhaseOne) {
  // min x + 2y s.t. x + y = 10, x - y = 2  ->  x=6, y=4, obj 14.
  LpProblem lp;
  int x = lp.AddVariable(0, kLpInfinity, 1.0);
  int y = lp.AddVariable(0, kLpInfinity, 2.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kEqual, 10.0)
          .ok());
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}, {y, -1.0}}, ConstraintSense::kEqual, 2.0)
          .ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 14.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 6.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<size_t>(y)], 4.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x >= 5 and x <= 2 with x in [0, 10].
  LpProblem lp;
  int x = lp.AddVariable(0, 10, 1.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGreaterEqual, 5.0).ok());
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLessEqual, 2.0).ok());
  EXPECT_EQ(RevisedSimplex().Solve(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x s.t. x >= 1, x unbounded above.
  LpProblem lp;
  int x = lp.AddVariable(0, kLpInfinity, -1.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGreaterEqual, 1.0).ok());
  EXPECT_EQ(RevisedSimplex().Solve(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, UpperBoundedVariablesFlip) {
  // min -x - y s.t. x + y <= 1.5, x,y in [0,1] -> obj -1.5.
  LpProblem lp;
  int x = lp.AddVariable(0, 1, -1.0);
  int y = lp.AddVariable(0, 1, -1.0);
  ASSERT_TRUE(lp.AddConstraint({{x, 1.0}, {y, 1.0}},
                               ConstraintSense::kLessEqual, 1.5)
                  .ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.5, 1e-7);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -7 with x free -> -7.
  LpProblem lp;
  int x = lp.AddVariable(-kLpInfinity, kLpInfinity, 1.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGreaterEqual, -7.0).ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -7.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsEquality) {
  // min |ish| with b < 0 exercises the sign-flipped artificial basis.
  // min x + y s.t. -x - y = -4, x,y >= 0 -> obj 4.
  LpProblem lp;
  int x = lp.AddVariable(0, kLpInfinity, 1.0);
  int y = lp.AddVariable(0, kLpInfinity, 1.0);
  ASSERT_TRUE(
      lp.AddConstraint({{x, -1.0}, {y, -1.0}}, ConstraintSense::kEqual, -4.0)
          .ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
}

TEST(SimplexTest, NoConstraintsPureBounds) {
  LpProblem lp;
  int x = lp.AddVariable(-2, 3, 1.0);
  int y = lp.AddVariable(-2, 3, -1.0);
  int z = lp.AddVariable(-2, 3, 0.0);
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.values[static_cast<size_t>(x)], -2.0);
  EXPECT_DOUBLE_EQ(sol.values[static_cast<size_t>(y)], 3.0);
  EXPECT_DOUBLE_EQ(sol.values[static_cast<size_t>(z)], -2.0);
}

TEST(SimplexTest, NoConstraintsUnbounded) {
  LpProblem lp;
  lp.AddVariable(0, kLpInfinity, -1.0);
  EXPECT_EQ(RevisedSimplex().Solve(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Beale's classic cycling example (terminates thanks to Bland fallback).
  // min -0.75x4 + 150x5 - 0.02x6 + 6x7
  // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
  //      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
  //      x6 <= 1         -> optimum -0.05.
  LpProblem lp;
  int x4 = lp.AddVariable(0, kLpInfinity, -0.75);
  int x5 = lp.AddVariable(0, kLpInfinity, 150.0);
  int x6 = lp.AddVariable(0, kLpInfinity, -0.02);
  int x7 = lp.AddVariable(0, kLpInfinity, 6.0);
  ASSERT_TRUE(lp.AddConstraint(
                    {{x4, 0.25}, {x5, -60.0}, {x6, -0.04}, {x7, 9.0}},
                    ConstraintSense::kLessEqual, 0.0)
                  .ok());
  ASSERT_TRUE(lp.AddConstraint(
                    {{x4, 0.5}, {x5, -90.0}, {x6, -0.02}, {x7, 3.0}},
                    ConstraintSense::kLessEqual, 0.0)
                  .ok());
  ASSERT_TRUE(
      lp.AddConstraint({{x6, 1.0}}, ConstraintSense::kLessEqual, 1.0).ok());
  LpSolution sol = RevisedSimplex().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-7);
}

TEST(SimplexTest, SolutionSatisfiesConstraints) {
  // Random feasible LPs: optimal point must be feasible.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem lp;
    const int n = 6;
    for (int j = 0; j < n; ++j) {
      lp.AddVariable(0.0, rng.NextDouble(0.5, 3.0),
                     rng.NextDouble(-2.0, 2.0));
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.6)) {
          terms.emplace_back(j, rng.NextDouble(-1.0, 2.0));
        }
      }
      if (terms.empty()) continue;
      // rhs >= 0 keeps the all-zeros point feasible for <= rows.
      ASSERT_TRUE(lp.AddConstraint(std::move(terms),
                                   ConstraintSense::kLessEqual,
                                   rng.NextDouble(0.5, 4.0))
                      .ok());
    }
    LpSolution sol = RevisedSimplex().Solve(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    EXPECT_TRUE(lp.IsFeasible(sol.values, 1e-6));
    EXPECT_NEAR(sol.objective, lp.EvaluateObjective(sol.values), 1e-6);
  }
}

// -------------------------------------------------------------------- MIP --

/// Brute-force optimum of a pure-binary problem by subset enumeration.
double BruteForceBinaryOptimum(const LpProblem& lp) {
  int n = lp.num_variables();
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) x[static_cast<size_t>(j)] = (mask >> j) & 1;
    if (lp.IsFeasible(x)) best = std::min(best, lp.EvaluateObjective(x));
  }
  return best;
}

TEST(MipTest, SolvesKnapsack) {
  // max value subject to a weight budget: min -v.x, w.x <= W, x binary.
  LpProblem lp;
  std::vector<double> values{10, 13, 7, 8, 4, 9};
  std::vector<double> weights{5, 6, 3, 4, 2, 5};
  for (size_t j = 0; j < values.size(); ++j) {
    lp.AddVariable(0, 1, -values[j], /*is_integer=*/true);
  }
  std::vector<std::pair<int, double>> terms;
  for (size_t j = 0; j < weights.size(); ++j) {
    terms.emplace_back(static_cast<int>(j), weights[j]);
  }
  ASSERT_TRUE(
      lp.AddConstraint(terms, ConstraintSense::kLessEqual, 12.0).ok());

  double expected = BruteForceBinaryOptimum(lp);
  MipSolution sol = MipSolver().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, expected, 1e-6);
  for (int j = 0; j < lp.num_variables(); ++j) {
    double v = sol.values[static_cast<size_t>(j)];
    EXPECT_NEAR(v, std::round(v), 1e-6);
  }
}

TEST(MipTest, RandomBinaryProblemsMatchBruteForce) {
  Rng rng(1234);
  for (int trial = 0; trial < 15; ++trial) {
    LpProblem lp;
    const int n = 8;
    for (int j = 0; j < n; ++j) {
      lp.AddVariable(0, 1, rng.NextDouble(-3.0, 3.0), /*is_integer=*/true);
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.5)) {
          terms.emplace_back(j, rng.NextDouble(0.0, 2.0));
        }
      }
      if (terms.empty()) continue;
      ASSERT_TRUE(lp.AddConstraint(std::move(terms),
                                   ConstraintSense::kLessEqual,
                                   rng.NextDouble(1.0, 5.0))
                      .ok());
    }
    double expected = BruteForceBinaryOptimum(lp);
    MipSolution sol = MipSolver().Solve(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(sol.objective, expected, 1e-5) << "trial " << trial;
  }
}

TEST(MipTest, InfeasibleIntegerProblem) {
  // 2x = 1 with x binary has a feasible relaxation (x=0.5) but no integer
  // solution.
  LpProblem lp;
  int x = lp.AddVariable(0, 1, 1.0, /*is_integer=*/true);
  ASSERT_TRUE(lp.AddConstraint({{x, 2.0}}, ConstraintSense::kEqual, 1.0).ok());
  MipSolution sol = MipSolver().Solve(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
  EXPECT_FALSE(sol.has_incumbent);
}

TEST(MipTest, MixedIntegerKeepsContinuousFree) {
  // min -x - y, x binary, y in [0, 0.5]; x + y <= 1.2 -> x=1, y=0.2.
  LpProblem lp;
  int x = lp.AddVariable(0, 1, -1.0, /*is_integer=*/true);
  int y = lp.AddVariable(0, 0.5, -1.0);
  ASSERT_TRUE(lp.AddConstraint({{x, 1.0}, {y, 1.0}},
                               ConstraintSense::kLessEqual, 1.2)
                  .ok());
  MipSolution sol = MipSolver().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[static_cast<size_t>(y)], 0.2, 1e-6);
}

TEST(MipTest, GeneralIntegerVariable) {
  // min -x with x integer in [0, 10], 3x <= 17 -> x = 5.
  LpProblem lp;
  int x = lp.AddVariable(0, 10, -1.0, /*is_integer=*/true);
  ASSERT_TRUE(
      lp.AddConstraint({{x, 3.0}}, ConstraintSense::kLessEqual, 17.0).ok());
  MipSolution sol = MipSolver().Solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 5.0, 1e-6);
}

TEST(MipTest, NodeBudgetReturnsIterationLimit) {
  MipOptions options;
  options.max_nodes = 1;
  LpProblem lp;
  int x = lp.AddVariable(0, 1, -1.0, true);
  int y = lp.AddVariable(0, 1, -1.0, true);
  ASSERT_TRUE(lp.AddConstraint({{x, 1.0}, {y, 1.0}},
                               ConstraintSense::kLessEqual, 1.5)
                  .ok());
  MipSolution sol = MipSolver(options).Solve(lp);
  EXPECT_EQ(sol.status, LpStatus::kIterationLimit);
}

}  // namespace
}  // namespace osrs
