// Bit-identity diff tests between the SIMD and scalar kernel backends.
//
// The fixed accumulation-order contract (src/common/simd_kernels.h) promises
// that every kernel produces bit-identical results whichever backend runs.
// These tests force each backend in turn over randomized coverage graphs —
// including sentiment pairs placed *exactly* on the |ds| == eps boundary —
// and demand byte-equal graphs, identical selections, and exactly equal
// costs from every solver. On hosts without AVX2 (or with OSRS_SIMD=OFF)
// ForceBackend degrades to scalar and the diff trivially holds, so the test
// is green in every build flavor ci.sh exercises.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/greedy.h"
#include "solver/local_search.h"
#include "solver/randomized_rounding.h"

namespace osrs {
namespace {

/// Forces a kernel backend for the enclosing scope.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend) {
    installed_ = simd::ForceBackend(backend);
  }
  ~ScopedBackend() { simd::ResetBackendOverride(); }
  simd::Backend installed() const { return installed_; }

 private:
  simd::Backend installed_;
};

/// Pairs whose sentiments sit on a 1/8 grid, so with eps = 0.25 the
/// |ds| == eps case occurs exactly (0.125 and 0.25 are exact doubles; their
/// differences are exact too). Reuses a small concept set so per-concept
/// sentiment windows exceed the builder's SIMD crossover (16 lanes).
std::vector<ConceptSentimentPair> GridPairs(const Ontology& ontology,
                                            uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<ConceptSentimentPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(ontology.num_concepts() - 1));
    double s = static_cast<double>(rng.NextInt(-8, 8)) / 8.0;
    pairs.push_back({c, s});
  }
  return pairs;
}

/// Byte-level equality of two graphs' SoA lanes.
void ExpectGraphsIdentical(const CoverageGraph& a, const CoverageGraph& b) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  ASSERT_EQ(a.num_targets(), b.num_targets());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int u = 0; u < a.num_candidates(); ++u) {
    CoverageGraph::EdgeLanes la = a.ForwardLanesOf(u);
    CoverageGraph::EdgeLanes lb = b.ForwardLanesOf(u);
    ASSERT_EQ(la.size, lb.size) << "candidate " << u;
    ASSERT_EQ(0, std::memcmp(la.endpoint, lb.endpoint,
                             la.size * sizeof(int32_t)));
    ASSERT_EQ(0, std::memcmp(la.distance, lb.distance,
                             la.size * sizeof(float)));
  }
  for (int w = 0; w < a.num_targets(); ++w) {
    ASSERT_EQ(a.root_distance(w), b.root_distance(w));
    ASSERT_EQ(a.target_weight(w), b.target_weight(w));
  }
}

struct SolverRun {
  std::vector<int> selected;
  double cost = 0.0;
};

/// Runs every solver on `graph` and returns (selection, cost) per solver.
/// Costs are compared with EXPECT_EQ — exact, not approximate — because
/// that is the contract under test.
std::vector<SolverRun> RunAllSolvers(const CoverageGraph& graph, int k) {
  std::vector<SolverRun> runs;
  auto record = [&runs](const Result<SummaryResult>& result) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    runs.push_back({result->selected, result->cost});
  };
  record(GreedySummarizer().Summarize(graph, k));
  GreedyOptions lazy;
  lazy.heap = GreedyOptions::Heap::kLazy;
  record(GreedySummarizer(lazy).Summarize(graph, k));
  record(LocalSearchSummarizer().Summarize(graph, k));
  RandomizedRoundingOptions rr;
  rr.seed = 0xC0FFEE;
  rr.trials = 6;
  record(RandomizedRoundingSummarizer(rr).Summarize(graph, k));
  return runs;
}

class SolverSimdDiffTest : public testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    SnomedLikeOptions options;
    options.num_concepts = 24;  // few concepts => wide sentiment windows
    options.max_depth = 4;
    options.multi_parent_prob = 0.2;
    options.seed = GetParam();
    ontology_ = BuildSnomedLikeOntology(options);
  }

  Ontology ontology_;
};

TEST_P(SolverSimdDiffTest, GraphBuildIsBackendInvariant) {
  // The eps-window scan runs inside both the counting and scatter passes;
  // 300 pairs over 24 concepts makes most windows cross the 16-lane SIMD
  // threshold while the smallest stay on the scalar tail.
  auto pairs = GridPairs(ontology_, GetParam() * 77 + 5, 300);
  PairDistance distance(&ontology_, /*epsilon=*/0.25);
  CoverageGraph scalar_graph;
  {
    ScopedBackend backend(simd::Backend::kScalar);
    scalar_graph = CoverageGraph::BuildForPairs(distance, pairs);
  }
  {
    ScopedBackend backend(simd::Backend::kAvx2);
    CoverageGraph vec_graph = CoverageGraph::BuildForPairs(distance, pairs);
    ExpectGraphsIdentical(scalar_graph, vec_graph);
  }
}

TEST_P(SolverSimdDiffTest, AllSolversBitIdenticalAcrossBackends) {
  auto pairs = GridPairs(ontology_, GetParam() * 131 + 9, 220);
  PairDistance distance(&ontology_, /*epsilon=*/0.25);
  CoverageGraph graph = CoverageGraph::BuildForPairs(distance, pairs);
  for (int k : {1, 4, 9}) {
    std::vector<SolverRun> scalar_runs;
    {
      ScopedBackend backend(simd::Backend::kScalar);
      scalar_runs = RunAllSolvers(graph, k);
      if (HasFatalFailure()) return;
    }
    std::vector<SolverRun> vec_runs;
    {
      ScopedBackend backend(simd::Backend::kAvx2);
      vec_runs = RunAllSolvers(graph, k);
      if (HasFatalFailure()) return;
    }
    ASSERT_EQ(scalar_runs.size(), vec_runs.size());
    for (size_t i = 0; i < scalar_runs.size(); ++i) {
      EXPECT_EQ(scalar_runs[i].selected, vec_runs[i].selected)
          << "solver " << i << " k=" << k;
      // Exact equality: the accumulation order is fixed by contract.
      EXPECT_EQ(scalar_runs[i].cost, vec_runs[i].cost)
          << "solver " << i << " k=" << k;
    }
  }
}

TEST_P(SolverSimdDiffTest, WeightedGraphsBitIdenticalAcrossBackends) {
  // Integer multiplicities, as DedupePairs produces: products and sums stay
  // exact, so weighted gains are order-independent and must diff clean.
  auto pairs = GridPairs(ontology_, GetParam() * 53 + 3, 160);
  Rng rng(GetParam() * 17 + 1);
  std::vector<double> weights(pairs.size());
  for (auto& w : weights) w = static_cast<double>(1 + rng.NextUint64(4));
  PairDistance distance(&ontology_, /*epsilon=*/0.25);
  CoverageGraph graph =
      CoverageGraph::BuildForPairsWeighted(distance, pairs, weights);
  for (int k : {2, 6}) {
    std::vector<SolverRun> scalar_runs;
    {
      ScopedBackend backend(simd::Backend::kScalar);
      scalar_runs = RunAllSolvers(graph, k);
      if (HasFatalFailure()) return;
    }
    std::vector<SolverRun> vec_runs;
    {
      ScopedBackend backend(simd::Backend::kAvx2);
      vec_runs = RunAllSolvers(graph, k);
      if (HasFatalFailure()) return;
    }
    for (size_t i = 0; i < scalar_runs.size(); ++i) {
      EXPECT_EQ(scalar_runs[i].selected, vec_runs[i].selected);
      EXPECT_EQ(scalar_runs[i].cost, vec_runs[i].cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSimdDiffTest,
                         testing::Values(1u, 7u, 23u, 61u));

// ---------------------------------------------------------------------------
// Kernel-level boundary checks (no graph, raw lanes).

TEST(SimdKernelDiff, EpsWindowMaskExactBoundaries) {
  // Sorted sentiment window with values exactly eps away from the target:
  // the predicate |s - center| <= eps must include them in both backends,
  // and values one ulp beyond must be excluded identically.
  const double center = 0.25;
  const double eps = 0.25;
  std::vector<double> sentiments;
  for (int i = -16; i <= 16; ++i) {
    sentiments.push_back(static_cast<double>(i) / 16.0);  // exact grid
  }
  sentiments.push_back(std::nextafter(0.5, 1.0));   // just outside
  sentiments.push_back(std::nextafter(0.0, -1.0));  // just outside
  std::sort(sentiments.begin(), sentiments.end());

  const size_t words = (sentiments.size() + 63) / 64;
  std::vector<uint64_t> scalar_mask(words), vec_mask(words);
  size_t scalar_count = 0;
  size_t vec_count = 0;
  {
    ScopedBackend backend(simd::Backend::kScalar);
    scalar_count = simd::EpsWindowMask(sentiments.data(), sentiments.size(),
                                       center, eps, scalar_mask.data());
  }
  {
    ScopedBackend backend(simd::Backend::kAvx2);
    vec_count = simd::EpsWindowMask(sentiments.data(), sentiments.size(),
                                    center, eps, vec_mask.data());
  }
  EXPECT_EQ(scalar_count, vec_count);
  EXPECT_EQ(scalar_mask, vec_mask);
  // And both match the exact predicate, boundary inclusive.
  for (size_t i = 0; i < sentiments.size(); ++i) {
    bool in = std::abs(sentiments[i] - center) <= eps;
    EXPECT_EQ((scalar_mask[i / 64] >> (i % 64)) & 1u, in ? 1u : 0u)
        << "s=" << sentiments[i];
  }
}

TEST(SimdKernelDiff, GainReduceAndApplyPickMinMatchScalar) {
  Rng rng(0xFEED5EEDULL);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t num_targets = 32 + rng.NextUint64(96);
    // Distinct endpoints, as in a real CSR row (a candidate covers each
    // target at most once) — required for the gain == apply-delta identity.
    const size_t num_edges =
        std::min(rng.NextUint64(70), num_targets);  // all tail sizes
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(num_targets, num_edges);
    std::vector<int32_t> endpoints(num_edges);
    std::vector<float> distances(num_edges);
    std::vector<float> best(num_targets);
    std::vector<double> weights(num_targets);
    for (auto& b : best) b = static_cast<float>(rng.NextUint64(12));
    for (auto& w : weights) w = static_cast<double>(1 + rng.NextUint64(3));
    for (size_t i = 0; i < num_edges; ++i) {
      endpoints[i] = static_cast<int32_t>(picks[i]);
      distances[i] = static_cast<float>(rng.NextUint64(12));
    }
    const double* tw = (trial % 2 == 0) ? weights.data() : nullptr;

    double scalar_gain, vec_gain;
    std::vector<float> scalar_best = best, vec_best = best;
    double scalar_delta, vec_delta;
    {
      ScopedBackend backend(simd::Backend::kScalar);
      scalar_gain = simd::GainReduce(endpoints.data(), distances.data(),
                                     num_edges, best.data(), tw);
      scalar_delta = simd::ApplyPickMin(endpoints.data(), distances.data(),
                                        num_edges, scalar_best.data(), tw);
    }
    {
      ScopedBackend backend(simd::Backend::kAvx2);
      vec_gain = simd::GainReduce(endpoints.data(), distances.data(),
                                  num_edges, best.data(), tw);
      vec_delta = simd::ApplyPickMin(endpoints.data(), distances.data(),
                                     num_edges, vec_best.data(), tw);
    }
    EXPECT_EQ(scalar_gain, vec_gain) << "trial " << trial;
    EXPECT_EQ(scalar_delta, vec_delta) << "trial " << trial;
    EXPECT_EQ(0, std::memcmp(scalar_best.data(), vec_best.data(),
                             num_targets * sizeof(float)));
    // The gain a candidate advertises equals the delta applying it yields.
    EXPECT_EQ(scalar_gain, scalar_delta);
  }
}

TEST(SimdKernelDiff, ReportsActiveBackend) {
  // Purely informational: record which backend this host actually diffs
  // against, so a scalar-only log line is visible in CI output.
  RecordProperty("compiled_in", simd::Avx2CompiledIn() ? "avx2" : "scalar");
  RecordProperty("active", simd::BackendName(simd::ActiveBackend()));
  SUCCEED() << "active backend: " << simd::BackendName(simd::ActiveBackend());
}

}  // namespace
}  // namespace osrs
