// End-to-end integration tests: miniature versions of the paper's
// experiments, pinning the qualitative SHAPES the benches report so a
// regression in any layer (datagen → extraction → graph → solver → eval)
// surfaces as a test failure rather than a silently drifting figure.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "api/annotator.h"
#include "api/review_summarizer.h"
#include "baselines/coverage_selector.h"
#include "baselines/most_popular.h"
#include "baselines/sentence_selector.h"
#include "baselines/textrank.h"
#include "core/cost.h"
#include "coverage/item_graph.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/doctor_corpus.h"
#include "eval/elbow.h"
#include "eval/sent_err.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/randomized_rounding.h"

namespace osrs {
namespace {

class QuantitativeShape : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    DoctorCorpusOptions options;
    options.scale = 0.005;  // 5 doctors
    options.ontology_concepts = 800;
    corpus_ = new Corpus(GenerateDoctorCorpus(options));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static const Corpus* corpus_;
};

const Corpus* QuantitativeShape::corpus_ = nullptr;

TEST_F(QuantitativeShape, Figure5CostOrderingHolds) {
  // ILP <= RR and ILP <= Greedy on every item and granularity; average
  // cost decreases from pairs to sentences to reviews.
  PairDistance distance(&corpus_->ontology, 0.5);
  const int k = 5;
  double avg_cost[3] = {0, 0, 0};
  int granularity_index = 0;
  for (SummaryGranularity granularity :
       {SummaryGranularity::kPairs, SummaryGranularity::kSentences,
        SummaryGranularity::kReviews}) {
    for (const Item& item : corpus_->items) {
      Item capped = TruncateToPairBudget(item, 150);
      ItemGraph graph = BuildItemGraph(distance, capped, granularity);
      int effective_k = std::min(k, graph.graph.num_candidates());
      auto ilp = IlpSummarizer().Summarize(graph.graph, effective_k);
      auto rr = RandomizedRoundingSummarizer().Summarize(graph.graph,
                                                         effective_k);
      auto greedy = GreedySummarizer().Summarize(graph.graph, effective_k);
      ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
      ASSERT_TRUE(rr.ok());
      ASSERT_TRUE(greedy.ok());
      EXPECT_LE(ilp->cost, rr->cost + 1e-9);
      EXPECT_LE(ilp->cost, greedy->cost + 1e-9);
      // §5.2 observes greedy within 8% of optimal on full-size items;
      // these miniature capped instances can gap slightly wider, so pin a
      // loose 20% regression bound here (the bench reports the real gap).
      if (ilp->cost > 0) {
        EXPECT_LE(greedy->cost, ilp->cost * 1.20 + 1e-9);
      }
      avg_cost[granularity_index] += ilp->cost;
    }
    ++granularity_index;
  }
  EXPECT_LT(avg_cost[1], avg_cost[0]);  // sentences < pairs
  EXPECT_LT(avg_cost[2], avg_cost[1]);  // reviews < sentences
}

TEST_F(QuantitativeShape, Figure4GreedyIsFastest) {
  PairDistance distance(&corpus_->ontology, 0.5);
  Item capped = TruncateToPairBudget(corpus_->items[0], 150);
  ItemGraph graph =
      BuildItemGraph(distance, capped, SummaryGranularity::kPairs);
  auto ilp = IlpSummarizer().Summarize(graph.graph, 5);
  auto greedy = GreedySummarizer().Summarize(graph.graph, 5);
  ASSERT_TRUE(ilp.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_LT(greedy->seconds, ilp->seconds);
}

TEST_F(QuantitativeShape, CostDecreasesInK) {
  PairDistance distance(&corpus_->ontology, 0.5);
  Item capped = TruncateToPairBudget(corpus_->items[1], 150);
  ItemGraph graph =
      BuildItemGraph(distance, capped, SummaryGranularity::kSentences);
  GreedySummarizer greedy;
  double previous = graph.graph.EmptySummaryCost();
  for (int k = 1; k <= std::min(10, graph.graph.num_candidates()); ++k) {
    auto result = greedy.Summarize(graph.graph, k);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, previous + 1e-9);
    previous = result->cost;
  }
}

TEST(QualitativeShape, Figure6OursBeatsBaselines) {
  CellPhoneCorpusOptions options;
  options.scale = 0.05;
  Corpus corpus = GenerateCellPhoneCorpus(options);
  const int k = 6;
  double ours_err = 0, popular_err = 0, textrank_err = 0;
  double ours_pen = 0, popular_pen = 0, textrank_pen = 0;
  for (const Item& item : corpus.items) {
    auto candidates = BuildCandidates(item);
    if (candidates.size() > 200) candidates.resize(200);
    std::vector<ConceptSentimentPair> all_pairs;
    for (const auto& candidate : candidates) {
      all_pairs.insert(all_pairs.end(), candidate.pairs.begin(),
                       candidate.pairs.end());
    }
    CoverageGreedySelector ours(&corpus.ontology);
    MostPopularSelector popular;
    TextRankSelector textrank;
    auto score = [&](SentenceSelector& selector, double& plain,
                     double& penalized) {
      auto selected = selector.Select(candidates, k);
      ASSERT_TRUE(selected.ok());
      auto pairs = PairsOfSelection(candidates, *selected);
      plain += SentErr(corpus.ontology, all_pairs, pairs, false);
      penalized += SentErr(corpus.ontology, all_pairs, pairs, true);
    };
    score(ours, ours_err, ours_pen);
    score(popular, popular_err, popular_pen);
    score(textrank, textrank_err, textrank_pen);
  }
  EXPECT_LT(ours_err, popular_err);
  EXPECT_LT(ours_err, textrank_err);
  EXPECT_LT(ours_pen, popular_pen);
  EXPECT_LT(ours_pen, textrank_pen);
}

TEST(QualitativeShape, ElbowLandsNearHalf) {
  DoctorCorpusOptions options;
  options.scale = 0.004;
  options.ontology_concepts = 800;
  Corpus corpus = GenerateDoctorCorpus(options);
  Item capped = TruncateToPairBudget(corpus.items[0], 250);
  auto pairs = PairsOf(CollectPairs(capped));
  ElbowResult result = SelectEpsilonByElbow(
      corpus.ontology, pairs, 8, {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0, 1.5});
  // The generator's sentiment clusters make the knee land in the paper's
  // neighborhood of 0.5.
  EXPECT_GE(result.chosen_epsilon, 0.2);
  EXPECT_LE(result.chosen_epsilon, 1.0);
}

TEST(PipelineShape, RawTextPipelineSupportsAllAlgorithms) {
  // The full path: generate text, strip annotations, re-annotate through
  // extraction+sentiment, then run every facade algorithm.
  CellPhoneCorpusOptions options;
  options.scale = 0.02;
  Corpus corpus = GenerateCellPhoneCorpus(options);
  ReviewAnnotator annotator(&corpus.ontology,
                            SentimentEstimator::LexiconOnly());
  Item item = TruncateToPairBudget(corpus.items[0], 200);
  ASSERT_TRUE(annotator.Annotate(item).ok());
  double ilp_cost = -1;
  for (SummaryAlgorithm algorithm :
       {SummaryAlgorithm::kIlp, SummaryAlgorithm::kGreedy,
        SummaryAlgorithm::kGreedyLazy, SummaryAlgorithm::kRandomizedRounding,
        SummaryAlgorithm::kLocalSearch}) {
    ReviewSummarizerOptions summarizer_options;
    summarizer_options.algorithm = algorithm;
    ReviewSummarizer summarizer(&corpus.ontology, summarizer_options);
    auto summary = summarizer.Summarize(item, 5);
    ASSERT_TRUE(summary.ok()) << SummaryAlgorithmToString(algorithm) << ": "
                              << summary.status().ToString();
    EXPECT_EQ(summary->entries.size(), 5u);
    if (algorithm == SummaryAlgorithm::kIlp) {
      ilp_cost = summary->cost;
    } else {
      EXPECT_GE(summary->cost, ilp_cost - 1e-9);
    }
  }
}

}  // namespace
}  // namespace osrs
