#include <cmath>

#include <gtest/gtest.h>

#include "eval/elbow.h"
#include "eval/sent_err.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/ontology.h"

namespace osrs {
namespace {

Ontology BuildChain() {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId s = onto.AddConcept("s");
  EXPECT_TRUE(onto.AddEdge(root, a).ok());
  EXPECT_TRUE(onto.AddEdge(a, b).ok());
  EXPECT_TRUE(onto.AddEdge(root, s).ok());
  EXPECT_TRUE(onto.Finalize().ok());
  return onto;
}

// ----------------------------------------------------------------- SentErr

TEST(SentErrTest, ExactConceptMatchUsesClosestSentiment) {
  Ontology onto = BuildChain();
  ConceptId a = onto.FindByName("a");
  std::vector<ConceptSentimentPair> reviews{{a, 0.8}};
  std::vector<ConceptSentimentPair> summary{{a, 0.5}, {a, 0.7}};
  // Closest summary sentiment on 'a' is 0.7 -> err 0.1.
  EXPECT_NEAR(SentErr(onto, reviews, summary, false), 0.1, 1e-12);
}

TEST(SentErrTest, LowestAncestorFallback) {
  Ontology onto = BuildChain();
  ConceptId a = onto.FindByName("a");
  ConceptId b = onto.FindByName("b");
  std::vector<ConceptSentimentPair> reviews{{b, 0.6}};
  // b absent; its lowest summary ancestor is a (not root).
  std::vector<ConceptSentimentPair> summary{{a, 0.1},
                                            {onto.root(), -1.0}};
  EXPECT_NEAR(SentErr(onto, reviews, summary, false), 0.5, 1e-12);
}

TEST(SentErrTest, MissingConceptNeutralVsPenalized) {
  Ontology onto = BuildChain();
  ConceptId s = onto.FindByName("s");
  std::vector<ConceptSentimentPair> reviews{{s, 0.6}};
  std::vector<ConceptSentimentPair> summary{
      {onto.FindByName("a"), 0.0}};  // unrelated branch
  // Plain: |0.6| = 0.6. Penalized: max(|1-0.6|, |-1-0.6|) = 1.6.
  EXPECT_NEAR(SentErr(onto, reviews, summary, false), 0.6, 1e-12);
  EXPECT_NEAR(SentErr(onto, reviews, summary, true), 1.6, 1e-12);
}

TEST(SentErrTest, RootMeanSquareAggregation) {
  Ontology onto = BuildChain();
  ConceptId a = onto.FindByName("a");
  ConceptId s = onto.FindByName("s");
  std::vector<ConceptSentimentPair> reviews{{a, 0.5}, {s, 0.5}};
  std::vector<ConceptSentimentPair> summary{{a, 0.5}};
  // errs: 0 and 0.5 -> rms = sqrt(0.25/2).
  EXPECT_NEAR(SentErr(onto, reviews, summary, false),
              std::sqrt(0.125), 1e-12);
}

TEST(SentErrTest, EmptyReviewsZero) {
  Ontology onto = BuildChain();
  EXPECT_DOUBLE_EQ(SentErr(onto, {}, {}, false), 0.0);
}

TEST(SentErrTest, PerfectSummaryZeroError) {
  Ontology onto = BuildChain();
  ConceptId a = onto.FindByName("a");
  ConceptId b = onto.FindByName("b");
  std::vector<ConceptSentimentPair> reviews{{a, 0.4}, {b, -0.2}};
  EXPECT_DOUBLE_EQ(SentErr(onto, reviews, reviews, true), 0.0);
  (void)b;
}

TEST(SentErrTest, PenalizedAtLeastPlain) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<ConceptSentimentPair> reviews;
  for (ConceptId c : {onto.FindByName("screen"), onto.FindByName("battery"),
                      onto.FindByName("camera"), onto.FindByName("price")}) {
    reviews.push_back({c, 0.3});
    reviews.push_back({c, -0.6});
  }
  std::vector<ConceptSentimentPair> summary{
      {onto.FindByName("screen"), 0.3}};
  EXPECT_GE(SentErr(onto, reviews, summary, true),
            SentErr(onto, reviews, summary, false));
}

// ------------------------------------------------------------------- Elbow

TEST(ElbowTest, CoverageNonDecreasingInEpsilon) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<ConceptSentimentPair> pairs;
  // Clustered sentiments: small eps covers within clusters only.
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  for (int i = 0; i < 10; ++i) {
    pairs.push_back({screen, 0.8 - 0.02 * i});
    pairs.push_back({battery, -0.5 + 0.02 * i});
    pairs.push_back({onto.FindByName("camera"), 0.1 * (i % 3)});
  }
  ElbowResult result = SelectEpsilonByElbow(
      onto, pairs, 3, {0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0});
  ASSERT_EQ(result.covered_fraction.size(), 7u);
  for (size_t i = 1; i < result.covered_fraction.size(); ++i) {
    EXPECT_GE(result.covered_fraction[i],
              result.covered_fraction[i - 1] - 0.15);
  }
  EXPECT_GE(result.chosen_epsilon, 0.1);
  EXPECT_LE(result.chosen_epsilon, 2.0);
}

TEST(ElbowTest, SingleEpsilonChosen) {
  Ontology onto = BuildChain();
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.5}};
  ElbowResult result = SelectEpsilonByElbow(onto, pairs, 1, {0.5});
  EXPECT_DOUBLE_EQ(result.chosen_epsilon, 0.5);
}

}  // namespace
}  // namespace osrs
