// Seeded violation: acquiring a mutex the scope already holds.
// EXPECT: acquiring mutex 'mu' that is already held
#include "common/sync.h"

int main() {
  osrs::Mutex mu;
  mu.Lock();
  mu.Lock();  // already held: must not compile
  mu.Unlock();
  return 0;
}
