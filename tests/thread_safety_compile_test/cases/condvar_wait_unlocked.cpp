// Seeded violation: CondVar::Wait without holding the mutex it re-locks.
// EXPECT: calling function 'Wait' requires holding mutex 'mu'
#include "common/sync.h"

int main() {
  osrs::Mutex mu;
  osrs::CondVar cv;
  cv.Wait(mu);  // mutex not held: must not compile
  return 0;
}
