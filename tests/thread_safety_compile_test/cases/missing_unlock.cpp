// Seeded violation: function returns with the mutex still held.
// EXPECT: mutex 'mu' is still held at the end of function
#include "common/sync.h"

namespace {

void LeakLock(osrs::Mutex& mu) {
  mu.Lock();
  // no Unlock: must not compile
}

}  // namespace

int main() {
  osrs::Mutex mu;
  LeakLock(mu);
  return 0;
}
