// Seeded violation: holding mutex B while touching a field guarded by A.
// EXPECT: requires holding mutex 'a_'
#include "common/sync.h"

namespace {

class TwoLocks {
 public:
  void Bump() {
    osrs::MutexLock lock(b_);  // wrong mutex: must not compile
    ++value_;
  }

 private:
  osrs::Mutex a_;
  osrs::Mutex b_;
  int value_ OSRS_GUARDED_BY(a_) = 0;
};

}  // namespace

int main() {
  TwoLocks two;
  two.Bump();
  return 0;
}
