// Seeded violation: calling an OSRS_EXCLUDES method while holding the
// mutex it acquires itself (self-deadlock).
// EXPECT: cannot call function 'Bump' while mutex 'mu_' is held
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Bump() OSRS_EXCLUDES(mu_) {
    osrs::MutexLock lock(mu_);
    ++value_;
  }
  void BumpTwice() {
    osrs::MutexLock lock(mu_);
    Bump();  // would self-deadlock: must not compile
  }

 private:
  osrs::Mutex mu_;
  int value_ OSRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.BumpTwice();
  return 0;
}
