// Seeded violation: writing a guarded field with no lock held.
// EXPECT: writing variable 'value_' requires holding mutex 'mu_' exclusively
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // no lock: must not compile

 private:
  osrs::Mutex mu_;
  int value_ OSRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}
