// Seeded violation: reading a guarded field with no lock held.
// EXPECT: reading variable 'value_' requires holding mutex 'mu_'
#include "common/sync.h"

namespace {

class Counter {
 public:
  int Peek() { return value_; }  // no lock: must not compile

 private:
  osrs::Mutex mu_;
  int value_ OSRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Peek();
}
