// Seeded violation: releasing a mutex this scope never acquired.
// EXPECT: releasing mutex 'mu' that was not held
#include "common/sync.h"

int main() {
  osrs::Mutex mu;
  mu.Unlock();  // never locked: must not compile
  return 0;
}
