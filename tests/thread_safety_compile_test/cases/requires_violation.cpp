// Seeded violation: calling an OSRS_REQUIRES method without the mutex.
// EXPECT: calling function 'BumpLocked' requires holding mutex 'mu_'
#include "common/sync.h"

namespace {

class Counter {
 public:
  void BumpLocked() OSRS_REQUIRES(mu_) { ++value_; }
  void Bump() { BumpLocked(); }  // caller holds nothing: must not compile

 private:
  osrs::Mutex mu_;
  int value_ OSRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}
