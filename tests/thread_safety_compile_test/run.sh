#!/usr/bin/env bash
# Negative-compile harness for the Clang thread-safety layer (see
# src/common/sync.h and DESIGN.md, "Static analysis v2").
#
# Each cases/*.cpp seeds exactly one lock-discipline violation — an
# unguarded read/write, a double lock, a leaked lock, the wrong mutex, a
# REQUIRES/EXCLUDES breach, a CondVar wait without the lock, an unlock of
# a lock never taken — and declares the diagnostic it must provoke on a
# `// EXPECT: <substring>` line. The harness compiles every case with the
# same flags the OSRS_THREAD_SAFETY build uses and fails if any case is
# ACCEPTED or rejected with the wrong diagnostic: both mean the analysis
# (or our annotations) stopped doing its job. positive_control.cpp is the
# inverse — correct usage of every primitive that must compile clean,
# proving the flags themselves work.
#
# Requires clang++; exits 77 (the ctest/automake skip code) when it is
# not installed, since GCC compiles the annotations away.
#
# Usage: tests/thread_safety_compile_test/run.sh [clang++-binary]
set -uo pipefail

cd "$(dirname "$0")"
CXX="${1:-clang++}"

if ! command -v "$CXX" > /dev/null; then
  echo "thread_safety_compile_test: $CXX not on PATH — skipped" >&2
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I ../../src
       -Wthread-safety -Wthread-safety-beta -Werror=thread-safety)

failures=0

# Positive control first: if correct code does not compile, every
# rejection below would be vacuous.
if ! "$CXX" "${FLAGS[@]}" positive_control.cpp 2> /tmp/osrs_ts_positive.err; then
  echo "FAIL positive_control.cpp: correct code was rejected:" >&2
  cat /tmp/osrs_ts_positive.err >&2
  failures=$((failures + 1))
else
  echo "ok   positive_control.cpp (compiles clean)"
fi

for case_file in cases/*.cpp; do
  expect=$(sed -n 's|^// EXPECT: ||p' "$case_file" | head -n 1)
  if [[ -z "$expect" ]]; then
    echo "FAIL $case_file: no '// EXPECT:' line" >&2
    failures=$((failures + 1))
    continue
  fi
  if "$CXX" "${FLAGS[@]}" "$case_file" 2> /tmp/osrs_ts_case.err; then
    echo "FAIL $case_file: seeded violation was ACCEPTED by the compiler" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! grep -qF "$expect" /tmp/osrs_ts_case.err; then
    echo "FAIL $case_file: rejected, but without the expected" >&2
    echo "     diagnostic [$expect]; got:" >&2
    cat /tmp/osrs_ts_case.err >&2
    failures=$((failures + 1))
    continue
  fi
  echo "ok   $case_file (rejected: $expect)"
done

if [[ $failures -gt 0 ]]; then
  echo "thread_safety_compile_test: ${failures} failure(s)" >&2
  exit 1
fi
echo "thread_safety_compile_test: all cases behaved"
