// Positive control: correct use of every sync.h primitive and annotation.
// The harness compiles this with the same flags as the violation cases
// and requires a clean pass — if it fails, the flags (not the cases) are
// broken, and every "rejected" violation would be meaningless.
#include "common/sync.h"

namespace {

class Everything {
 public:
  void Bump() OSRS_EXCLUDES(mu_) {
    osrs::MutexLock lock(mu_);
    ++value_;
    cv_.NotifyOne();
  }

  int WaitForPositive() OSRS_EXCLUDES(mu_) {
    osrs::MutexLock lock(mu_);
    while (value_ <= 0) cv_.Wait(mu_);
    return value_;
  }

  int PeekOrZero() OSRS_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return 0;
    int out = value_;
    mu_.Unlock();
    return out;
  }

  int BumpLocked() OSRS_REQUIRES(mu_) { return ++value_; }

  int TwoPhase() OSRS_EXCLUDES(mu_) {
    osrs::ReleasableMutexLock lock(mu_);
    int decision = value_;
    lock.Release();
    return decision;  // acting after the early release, no guarded access
  }

  int Compose() OSRS_EXCLUDES(mu_) {
    osrs::MutexLock lock(mu_);
    return BumpLocked();
  }

 private:
  osrs::Mutex mu_;
  osrs::CondVar cv_;
  int value_ OSRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Everything everything;
  everything.Bump();
  int got = everything.WaitForPositive();
  got += everything.PeekOrZero();
  got += everything.TwoPhase();
  got += everything.Compose();
  return got > 0 ? 0 : 1;
}
