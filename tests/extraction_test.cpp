#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "extraction/aho_corasick.h"
#include "extraction/dictionary_extractor.h"
#include "extraction/double_propagation.h"
#include "ontology/cellphone_hierarchy.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

// ------------------------------------------------------------ Aho-Corasick

TEST(AhoCorasickTest, FindsSingleTokenPattern) {
  TokenAhoCorasick ac;
  ac.AddPattern({"battery"}, 1);
  ac.Build();
  auto matches = ac.Find({"the", "battery", "died"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].payload, 1);
  EXPECT_EQ(matches[0].begin, 1u);
  EXPECT_EQ(matches[0].end, 2u);
}

TEST(AhoCorasickTest, FindsMultiTokenPattern) {
  TokenAhoCorasick ac;
  ac.AddPattern({"battery", "life"}, 7);
  ac.Build();
  auto matches = ac.Find({"great", "battery", "life", "here"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 1u);
  EXPECT_EQ(matches[0].end, 3u);
}

TEST(AhoCorasickTest, OverlappingPatternsAllReported) {
  TokenAhoCorasick ac;
  ac.AddPattern({"battery"}, 1);
  ac.AddPattern({"battery", "life"}, 2);
  ac.AddPattern({"life"}, 3);
  ac.Build();
  auto matches = ac.Find({"battery", "life"});
  std::set<int> payloads;
  for (const auto& m : matches) payloads.insert(m.payload);
  EXPECT_EQ(payloads, (std::set<int>{1, 2, 3}));
}

TEST(AhoCorasickTest, SuffixPatternFoundViaFailLinks) {
  TokenAhoCorasick ac;
  ac.AddPattern({"very", "good", "screen"}, 1);
  ac.AddPattern({"good", "screen"}, 2);
  ac.Build();
  auto matches = ac.Find({"very", "good", "screen"});
  std::set<int> payloads;
  for (const auto& m : matches) payloads.insert(m.payload);
  EXPECT_EQ(payloads, (std::set<int>{1, 2}));
}

TEST(AhoCorasickTest, UnknownTokensResetState) {
  TokenAhoCorasick ac;
  ac.AddPattern({"battery", "life"}, 1);
  ac.Build();
  // "battery xyz life" must not match.
  EXPECT_TRUE(ac.Find({"battery", "xyz", "life"}).empty());
}

TEST(AhoCorasickTest, RepeatedMatches) {
  TokenAhoCorasick ac;
  ac.AddPattern({"good"}, 1);
  ac.Build();
  EXPECT_EQ(ac.Find({"good", "good", "good"}).size(), 3u);
}

TEST(AhoCorasickTest, EmptyPatternIgnored) {
  TokenAhoCorasick ac;
  ac.AddPattern({}, 1);
  ac.AddPattern({"x"}, 2);
  ac.Build();
  EXPECT_EQ(ac.num_patterns(), 1u);
}

// ----------------------------------------------------- DictionaryExtractor

TEST(DictionaryExtractorTest, ExtractsKnownAspects) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  auto concepts =
      extractor.ExtractConcepts(Tokenize("The battery life is great"));
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0], onto.FindByName("battery life"));
}

TEST(DictionaryExtractorTest, LongestSpanWins) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  // "battery life" must suppress the nested "battery" mention.
  auto mentions = extractor.FindMentions(Tokenize("battery life is great"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].concept_id, onto.FindByName("battery life"));
  EXPECT_EQ(mentions[0].begin, 0u);
  EXPECT_EQ(mentions[0].end, 2u);
}

TEST(DictionaryExtractorTest, StemmedVariantsMatch) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  auto concepts = extractor.ExtractConcepts(Tokenize("the batteries die"));
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0], onto.FindByName("battery"));
}

TEST(DictionaryExtractorTest, SynonymsResolveToCanonicalConcept) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  auto concepts = extractor.ExtractConcepts(Tokenize("the display is dim"));
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0], onto.FindByName("screen"));
}

TEST(DictionaryExtractorTest, MultipleConceptsInOneSentence) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  auto concepts = extractor.ExtractConcepts(
      Tokenize("camera is fine but the speaker crackles"));
  std::set<ConceptId> ids(concepts.begin(), concepts.end());
  EXPECT_TRUE(ids.count(onto.FindByName("camera")));
  EXPECT_TRUE(ids.count(onto.FindByName("speaker")));
}

TEST(DictionaryExtractorTest, DeduplicatesRepeatedMentions) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  auto concepts =
      extractor.ExtractConcepts(Tokenize("camera camera camera"));
  EXPECT_EQ(concepts.size(), 1u);
}

TEST(DictionaryExtractorTest, NoMentionsInUnrelatedText) {
  Ontology onto = BuildCellPhoneHierarchy();
  DictionaryExtractor extractor(&onto);
  EXPECT_TRUE(
      extractor.ExtractConcepts(Tokenize("completely unrelated words"))
          .empty());
}

// ------------------------------------------------------- DoublePropagation

std::vector<std::vector<std::string>> PhoneReviewSentences() {
  std::vector<std::vector<std::string>> sentences;
  auto add = [&sentences](const char* text, int copies) {
    for (int i = 0; i < copies; ++i) sentences.push_back(Tokenize(text));
  };
  add("the screen is great", 10);
  add("great battery here", 8);
  add("the camera is terrible", 7);
  add("awesome battery life overall", 6);
  add("speaker sounds bad", 5);
  add("random chatter about nothing specific", 10);
  return sentences;
}

TEST(DoublePropagationTest, MinesSeededAspects) {
  DoublePropagationOptions options;
  options.min_aspect_frequency = 3;
  DoublePropagation miner(options);
  auto aspects =
      miner.ExtractAspects(PhoneReviewSentences(), SentimentLexicon::Default());
  std::set<std::string> terms;
  for (const auto& a : aspects) terms.insert(a.term);
  EXPECT_TRUE(terms.count("screen"));
  EXPECT_TRUE(terms.count("battery"));
  EXPECT_TRUE(terms.count("camera"));
  EXPECT_TRUE(terms.count("speaker"));
  // Bigram aspect from adjacent candidates.
  EXPECT_TRUE(terms.count("battery life"));
  // Stopwords and opinion words are never aspects.
  EXPECT_FALSE(terms.count("the"));
  EXPECT_FALSE(terms.count("great"));
}

TEST(DoublePropagationTest, FrequencyRankedAndCapped) {
  DoublePropagationOptions options;
  options.min_aspect_frequency = 3;
  options.max_aspects = 2;
  DoublePropagation miner(options);
  auto aspects =
      miner.ExtractAspects(PhoneReviewSentences(), SentimentLexicon::Default());
  ASSERT_EQ(aspects.size(), 2u);
  EXPECT_GE(aspects[0].frequency, aspects[1].frequency);
}

TEST(DoublePropagationTest, MinFrequencyPrunes) {
  DoublePropagationOptions options;
  options.min_aspect_frequency = 1000;
  DoublePropagation miner(options);
  auto aspects =
      miner.ExtractAspects(PhoneReviewSentences(), SentimentLexicon::Default());
  EXPECT_TRUE(aspects.empty());
}

// ---------------------------------------------------- BuildAspectHierarchy

TEST(AspectHierarchyTest, CompoundAspectsNestUnderHead) {
  std::vector<ExtractedAspect> aspects = {
      {"battery", 50}, {"battery life", 20}, {"screen", 40}, {"price", 10}};
  Ontology onto = BuildAspectHierarchy(aspects, "product");
  EXPECT_EQ(onto.name(onto.root()), "product");
  ConceptId battery = onto.FindByName("battery");
  ConceptId battery_life = onto.FindByName("battery life");
  ASSERT_NE(battery, kInvalidConcept);
  ASSERT_NE(battery_life, kInvalidConcept);
  EXPECT_EQ(onto.AncestorDistance(battery, battery_life), 1);
  EXPECT_EQ(onto.DepthFromRoot(onto.FindByName("price")), 1);
}

TEST(AspectHierarchyTest, SuffixFallbackParent) {
  std::vector<ExtractedAspect> aspects = {{"quality", 30},
                                          {"picture quality", 12}};
  Ontology onto = BuildAspectHierarchy(aspects, "product");
  EXPECT_EQ(onto.AncestorDistance(onto.FindByName("quality"),
                                  onto.FindByName("picture quality")),
            1);
}

TEST(AspectHierarchyTest, ExtractorWorksOverMinedHierarchy) {
  // End-to-end: mine aspects, build the hierarchy, extract with it.
  DoublePropagationOptions options;
  options.min_aspect_frequency = 3;
  DoublePropagation miner(options);
  auto aspects =
      miner.ExtractAspects(PhoneReviewSentences(), SentimentLexicon::Default());
  Ontology onto = BuildAspectHierarchy(aspects, "product");
  DictionaryExtractor extractor(&onto);
  auto concepts =
      extractor.ExtractConcepts(Tokenize("the battery life is short"));
  ASSERT_FALSE(concepts.empty());
  EXPECT_EQ(concepts[0], onto.FindByName("battery life"));
}

}  // namespace
}  // namespace osrs
