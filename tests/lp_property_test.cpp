// Parameterized property tests of the LP/MIP substrate: feasibility and
// optimality of simplex solutions on random instances, grid-certified
// optimality in two dimensions, determinism, and row-scaling invariance.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "lp/lp_problem.h"
#include "lp/mip.h"
#include "lp/simplex.h"

namespace osrs {
namespace {

/// Random bounded-feasible LP: x in [0, box], <= rows with nonneg rhs (so
/// the origin is feasible and the optimum is finite).
LpProblem RandomLp(Rng& rng, int num_vars, int num_rows) {
  LpProblem lp;
  for (int j = 0; j < num_vars; ++j) {
    lp.AddVariable(0.0, rng.NextDouble(0.5, 4.0), rng.NextDouble(-3.0, 3.0));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextBernoulli(0.7)) {
        terms.emplace_back(j, rng.NextDouble(-1.5, 2.5));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    ConstraintSense sense = rng.NextBernoulli(0.25)
                                ? ConstraintSense::kGreaterEqual
                                : ConstraintSense::kLessEqual;
    double rhs = sense == ConstraintSense::kLessEqual
                     ? rng.NextDouble(0.5, 5.0)
                     : rng.NextDouble(-5.0, -0.5);
    EXPECT_TRUE(lp.AddConstraint(std::move(terms), sense, rhs).ok());
  }
  return lp;
}

class SimplexProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SimplexProperty, OptimumIsFeasible) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    LpProblem lp = RandomLp(rng, 5 + static_cast<int>(rng.NextUint64(4)),
                            3 + static_cast<int>(rng.NextUint64(3)));
    LpSolution solution = RevisedSimplex().Solve(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(lp.IsFeasible(solution.values, 1e-6)) << "trial " << trial;
    EXPECT_NEAR(solution.objective, lp.EvaluateObjective(solution.values),
                1e-6);
  }
}

TEST_P(SimplexProperty, NoRandomFeasiblePointBeatsOptimum) {
  Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 6; ++trial) {
    LpProblem lp = RandomLp(rng, 4, 3);
    LpSolution solution = RevisedSimplex().Solve(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    int tested = 0;
    for (int sample = 0; sample < 4000 && tested < 300; ++sample) {
      std::vector<double> point(4);
      for (int j = 0; j < 4; ++j) {
        point[static_cast<size_t>(j)] = rng.NextDouble(lp.lower(j), lp.upper(j));
      }
      if (!lp.IsFeasible(point, 1e-9)) continue;
      ++tested;
      EXPECT_GE(lp.EvaluateObjective(point), solution.objective - 1e-6);
    }
    EXPECT_GT(tested, 0);
  }
}

TEST_P(SimplexProperty, TwoVarGridCertifiesOptimality) {
  Rng rng(GetParam() * 7 + 5);
  for (int trial = 0; trial < 5; ++trial) {
    LpProblem lp = RandomLp(rng, 2, 3);
    LpSolution solution = RevisedSimplex().Solve(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    // Exhaustive grid over the box.
    double best = std::numeric_limits<double>::infinity();
    const int steps = 140;
    for (int a = 0; a <= steps; ++a) {
      for (int b = 0; b <= steps; ++b) {
        std::vector<double> point{
            lp.lower(0) + (lp.upper(0) - lp.lower(0)) * a / steps,
            lp.lower(1) + (lp.upper(1) - lp.lower(1)) * b / steps};
        if (lp.IsFeasible(point, 1e-9)) {
          best = std::min(best, lp.EvaluateObjective(point));
        }
      }
    }
    ASSERT_TRUE(std::isfinite(best));
    // Grid optimum can only be >= the true optimum; and it must come
    // close (the box is small).
    EXPECT_GE(best, solution.objective - 1e-6);
    EXPECT_LE(best, solution.objective + 0.4);
  }
}

TEST_P(SimplexProperty, DeterministicResolve) {
  Rng rng(GetParam() * 11 + 3);
  LpProblem lp = RandomLp(rng, 6, 4);
  LpSolution a = RevisedSimplex().Solve(lp);
  LpSolution b = RevisedSimplex().Solve(lp);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.values, b.values);
}

TEST_P(SimplexProperty, RowScalingDoesNotChangeOptimum) {
  Rng rng(GetParam() * 13 + 7);
  LpProblem lp = RandomLp(rng, 5, 3);
  LpSolution base = RevisedSimplex().Solve(lp);
  ASSERT_EQ(base.status, LpStatus::kOptimal);

  // Rebuild with every row multiplied by a positive constant.
  LpProblem scaled;
  for (int j = 0; j < lp.num_variables(); ++j) {
    scaled.AddVariable(lp.lower(j), lp.upper(j), lp.objective(j));
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    double factor = rng.NextDouble(0.2, 8.0);
    std::vector<std::pair<int, double>> terms;
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      terms.emplace_back(var, coeff * factor);
    }
    ASSERT_TRUE(
        scaled.AddConstraint(std::move(terms), lp.sense(i), lp.rhs(i) * factor)
            .ok());
  }
  LpSolution rescaled = RevisedSimplex().Solve(scaled);
  ASSERT_EQ(rescaled.status, LpStatus::kOptimal);
  EXPECT_NEAR(rescaled.objective, base.objective, 1e-6);
}

class MipProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(MipProperty, BinaryProblemsMatchBruteForce) {
  Rng rng(GetParam() * 17 + 9);
  for (int trial = 0; trial < 6; ++trial) {
    LpProblem lp;
    const int n = 7;
    for (int j = 0; j < n; ++j) {
      lp.AddVariable(0, 1, rng.NextDouble(-3, 3), /*is_integer=*/true);
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.5)) terms.emplace_back(j, rng.NextDouble(0, 2));
      }
      if (terms.empty()) continue;
      ASSERT_TRUE(lp.AddConstraint(std::move(terms),
                                   ConstraintSense::kLessEqual,
                                   rng.NextDouble(1, 4))
                      .ok());
    }
    double best = std::numeric_limits<double>::infinity();
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<double> x(static_cast<size_t>(n));
      for (int j = 0; j < n; ++j) x[static_cast<size_t>(j)] = (mask >> j) & 1;
      if (lp.IsFeasible(x)) best = std::min(best, lp.EvaluateObjective(x));
    }
    MipSolution solution = MipSolver().Solve(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(solution.objective, best, 1e-5);
    EXPECT_TRUE(lp.IsFeasible(solution.values, 1e-6));
  }
}

TEST_P(MipProperty, MipNeverBeatsRelaxation) {
  Rng rng(GetParam() * 19 + 11);
  for (int trial = 0; trial < 6; ++trial) {
    LpProblem relaxed = RandomLp(rng, 6, 4);
    LpProblem integral = relaxed;
    // Flag a random subset of variables integral by rebuilding.
    LpProblem mip;
    for (int j = 0; j < relaxed.num_variables(); ++j) {
      mip.AddVariable(relaxed.lower(j), relaxed.upper(j),
                      relaxed.objective(j), rng.NextBernoulli(0.5));
    }
    for (int i = 0; i < relaxed.num_constraints(); ++i) {
      ASSERT_TRUE(mip.AddConstraint(relaxed.row_terms(i), relaxed.sense(i),
                                    relaxed.rhs(i))
                      .ok());
    }
    LpSolution lp_solution = RevisedSimplex().Solve(relaxed);
    MipSolution mip_solution = MipSolver().Solve(mip);
    ASSERT_EQ(lp_solution.status, LpStatus::kOptimal);
    if (mip_solution.status != LpStatus::kOptimal) continue;  // infeasible ok
    EXPECT_GE(mip_solution.objective, lp_solution.objective - 1e-6);
    // Integral variables really are integral.
    for (int j = 0; j < mip.num_variables(); ++j) {
      if (mip.is_integer(j)) {
        double v = mip_solution.values[static_cast<size_t>(j)];
        EXPECT_NEAR(v, std::round(v), 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         testing::Values(1u, 2u, 3u, 4u, 5u));
INSTANTIATE_TEST_SUITE_P(Seeds, MipProperty,
                         testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace osrs
