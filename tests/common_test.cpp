#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/execution_budget.h"
#include "common/indexed_heap.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/slog.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_writer.h"

namespace osrs {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  OSRS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextUint64IsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextUint64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.NextGaussian());
  EXPECT_NEAR(Mean(samples), 0.0, 0.05);
  EXPECT_NEAR(StdDev(samples), 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(21);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t r = rng.NextZipf(100, 1.1);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], 10 * counts[50]);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  hello   world \t x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "x");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  abc \n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("battery life", "battery"));
  EXPECT_FALSE(StartsWith("batt", "battery"));
  EXPECT_TRUE(EndsWith("battery life", "life"));
  EXPECT_FALSE(EndsWith("life", "battery life"));
}

TEST(StringsTest, ParseInt64AcceptsWholeIntegers) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-17", &value));
  EXPECT_EQ(value, -17);
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12x", &value));
  EXPECT_FALSE(ParseInt64("x12", &value));
  EXPECT_FALSE(ParseInt64("1 2", &value));
  EXPECT_FALSE(ParseInt64("999999999999999999999999", &value));  // overflow
}

TEST(StringsTest, ParseDoubleAcceptsWholeNumbers) {
  double value = 0;
  EXPECT_TRUE(ParseDouble("0.5", &value));
  EXPECT_DOUBLE_EQ(value, 0.5);
  EXPECT_TRUE(ParseDouble("-1e-3", &value));
  EXPECT_DOUBLE_EQ(value, -1e-3);
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("0.5abc", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("k=%d eps=%.1f", 5, 0.5), "k=5 eps=0.5");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

// ------------------------------------------------------------- MathUtil --

TEST(MathUtilTest, MeanAndStdDev) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathUtilTest, PercentileInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

TEST(MathUtilTest, HarmonicNumber) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(MathUtilTest, VectorOps) {
  std::vector<double> a{1.0, 0.0}, b{0.0, 2.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Norm2(b), 2.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, {0.0, 0.0}), 0.0);
}

TEST(MathUtilTest, ClampAndNearlyEqual) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1));
}

// ----------------------------------------------------------- IndexedHeap --

TEST(IndexedHeapTest, PopsInDescendingOrder) {
  IndexedMaxHeap heap({3.0, 1.0, 4.0, 1.5, 9.0});
  std::vector<int> order;
  while (!heap.empty()) order.push_back(heap.PopMax());
  EXPECT_EQ(order, (std::vector<int>{4, 2, 0, 3, 1}));
}

TEST(IndexedHeapTest, TieBreaksTowardSmallerId) {
  IndexedMaxHeap heap({2.0, 2.0, 2.0});
  EXPECT_EQ(heap.PopMax(), 0);
  EXPECT_EQ(heap.PopMax(), 1);
  EXPECT_EQ(heap.PopMax(), 2);
}

TEST(IndexedHeapTest, UpdateKeyMovesElement) {
  IndexedMaxHeap heap({1.0, 2.0, 3.0});
  heap.UpdateKey(0, 10.0);
  EXPECT_EQ(heap.PeekMax(), 0);
  heap.UpdateKey(0, 0.5);
  EXPECT_EQ(heap.PeekMax(), 2);
}

TEST(IndexedHeapTest, ContainsTracksPops) {
  IndexedMaxHeap heap({1.0, 2.0});
  EXPECT_TRUE(heap.Contains(0));
  int popped = heap.PopMax();
  EXPECT_FALSE(heap.Contains(popped));
  EXPECT_TRUE(heap.Contains(1 - popped));
}

TEST(IndexedHeapTest, RandomizedAgainstSort) {
  Rng rng(55);
  std::vector<double> keys(200);
  for (double& k : keys) k = rng.NextDouble();
  IndexedMaxHeap heap(keys);
  // Apply random updates.
  for (int i = 0; i < 100; ++i) {
    int id = static_cast<int>(rng.NextUint64(200));
    double nk = rng.NextDouble();
    keys[static_cast<size_t>(id)] = nk;
    heap.UpdateKey(id, nk);
  }
  double prev = std::numeric_limits<double>::infinity();
  while (!heap.empty()) {
    int id = heap.PopMax();
    EXPECT_LE(keys[static_cast<size_t>(id)], prev + 1e-15);
    prev = keys[static_cast<size_t>(id)];
  }
}

// ----------------------------------------------------------- TableWriter --

TEST(TableWriterTest, CsvOutput) {
  TableWriter table("demo");
  table.SetHeader({"k", "cost"});
  table.AddRow({"1", "3.5"});
  table.AddRow("2", {4.25}, 2);
  EXPECT_EQ(table.ToCsv(), "k,cost\n1,3.5\n2,4.25\n");
  EXPECT_EQ(table.row_count(), 2u);
}

// ------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  watch.Reset();
  EXPECT_GE(watch.ElapsedMillis(), 0.0);
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
}

// ------------------------------------------------------------ JsonEscape --

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("battery life"), "battery life");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\path"), "C:\\\\path");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
  // Control chars without a shorthand use \u00XX.
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // NUL must not truncate the string.
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, LeavesUtf8BytesAlone) {
  // Multi-byte UTF-8 (é) passes through unescaped; \u00e9 would be wrong
  // byte-wise and escaping is optional above 0x1f anyway.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

// ------------------------------------------------------- ExecutionBudget --

TEST(ExecutionBudgetTest, DefaultIsUnlimited) {
  ExecutionBudget budget;
  EXPECT_TRUE(budget.IsUnlimited());
  EXPECT_TRUE(budget.Check().ok());
  EXPECT_TRUE(budget.Check(1'000'000'000).ok());
  EXPECT_EQ(budget.RemainingMs(),
            std::numeric_limits<double>::infinity());
}

TEST(ExecutionBudgetTest, ExpiredDeadlineTripsWithDeadlineExceeded) {
  ExecutionBudget budget = ExecutionBudget::FromDeadlineMs(-1.0);
  Status status = budget.Check();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(budget.RemainingMs(), 0.0);
}

TEST(ExecutionBudgetTest, FutureDeadlinePassesChecks) {
  ExecutionBudget budget = ExecutionBudget::FromDeadlineMs(60'000.0);
  EXPECT_TRUE(budget.Check().ok());
  EXPECT_GT(budget.RemainingMs(), 0.0);
}

TEST(ExecutionBudgetTest, WorkBudgetTripsWithResourceExhausted) {
  ExecutionBudget budget;
  budget.SetMaxWork(100);
  EXPECT_TRUE(budget.Check(99).ok());
  EXPECT_EQ(budget.Check(100).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.Check(101).code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionBudgetTest, CancellationWinsOverEverything) {
  CancellationFlag flag;
  ExecutionBudget budget = ExecutionBudget::FromDeadlineMs(-1.0);
  budget.SetMaxWork(1);
  budget.AddCancellation(&flag);
  EXPECT_EQ(budget.Check(5).code(), StatusCode::kDeadlineExceeded);
  flag.Cancel();
  EXPECT_EQ(budget.Check(5).code(), StatusCode::kCancelled);
  flag.Reset();
  EXPECT_EQ(budget.Check(5).code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecutionBudgetTest, AnyOfSeveralFlagsCancels) {
  CancellationFlag a;
  CancellationFlag b;
  ExecutionBudget budget;
  budget.AddCancellation(&a);
  budget.AddCancellation(&b);
  budget.AddCancellation(nullptr);  // ignored
  EXPECT_TRUE(budget.Check().ok());
  b.Cancel();
  EXPECT_EQ(budget.Check().code(), StatusCode::kCancelled);
}

TEST(ExecutionBudgetTest, TightenedByTakesTheStricterOfEach) {
  CancellationFlag flag;
  ExecutionBudget a = ExecutionBudget::FromDeadlineMs(60'000.0);
  a.SetMaxWork(500);
  ExecutionBudget b;
  b.SetMaxWork(100);
  b.AddCancellation(&flag);
  ExecutionBudget merged = a.TightenedBy(b);
  EXPECT_TRUE(merged.has_deadline());
  EXPECT_EQ(merged.max_work(), 100);
  EXPECT_TRUE(merged.Check(99).ok());
  flag.Cancel();
  EXPECT_EQ(merged.Check(0).code(), StatusCode::kCancelled);
}

TEST(ExecutionBudgetTest, CancellationOnlyDropsDeadlineAndWork) {
  CancellationFlag flag;
  ExecutionBudget budget = ExecutionBudget::FromDeadlineMs(-1.0);
  budget.SetMaxWork(1);
  budget.AddCancellation(&flag);
  ExecutionBudget relaxed = budget.CancellationOnly();
  EXPECT_TRUE(relaxed.Check(1'000'000).ok());
  flag.Cancel();
  EXPECT_EQ(relaxed.Check().code(), StatusCode::kCancelled);
}

TEST(StatusTest, NewBudgetCodesRoundTrip) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("stop").code(), StatusCode::kCancelled);
  EXPECT_NE(std::string(StatusCodeToString(StatusCode::kDeadlineExceeded)),
            std::string(StatusCodeToString(StatusCode::kCancelled)));
}

// ------------------------------------------------- structured logging ------

/// Captures emitted lines; restores the stderr sink on destruction.
class ScopedLogCapture {
 public:
  ScopedLogCapture() {
    slog::SetSink(
        [](std::string_view line, void* user_data) {
          static_cast<std::string*>(user_data)->append(line);
        },
        &captured_);
  }
  ~ScopedLogCapture() { slog::SetSink(nullptr, nullptr); }
  const std::string& text() const { return captured_; }

 private:
  std::string captured_;
};

TEST(SlogTest, EmitRendersOneParseableJsonLine) {
  ScopedLogCapture capture;
  slog::Emit(slog::Level::kWarn, "test", 0xabcdef0123456789ull,
             "something \"odd\"",
             {{"item", std::string_view("a\tb")},
              {"count", 42},
              {"ratio", 0.5},
              {"ok", true}});
  const std::string& line = capture.text();
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"module\":\"test\""), std::string::npos);
  EXPECT_NE(line.find("\"trace_id\":\"abcdef0123456789\""), std::string::npos)
      << "trace ids render as zero-padded hex strings";
  EXPECT_NE(line.find("\"message\":\"something \\\"odd\\\"\""),
            std::string::npos)
      << "messages must be JSON-escaped";
  EXPECT_NE(line.find("\"item\":\"a\\tb\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":42"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(SlogTest, ZeroTraceIdIsOmitted) {
  ScopedLogCapture capture;
  slog::Emit(slog::Level::kInfo, "test", 0, "plain", {});
  EXPECT_EQ(capture.text().find("trace_id"), std::string::npos);
}

TEST(SlogTest, DroppedCountRendersWhenPositive) {
  ScopedLogCapture capture;
  slog::Emit(slog::Level::kInfo, "test", 0, "m", {}, 3);
  EXPECT_NE(capture.text().find("\"dropped\":3"), std::string::npos)
      << capture.text();
}

TEST(SlogTest, MinLevelFiltersAndRestores) {
  // With -DOSRS_LOGGING=OFF ShouldLog constant-folds to false at every
  // level; only the positive expectations depend on the compiled-in path.
  slog::SetMinLevel(slog::Level::kError);
  EXPECT_FALSE(slog::ShouldLog(slog::Level::kWarn));
  EXPECT_EQ(slog::ShouldLog(slog::Level::kError), slog::kCompiledIn);
  slog::SetMinLevel(slog::Level::kInfo);
  EXPECT_EQ(slog::ShouldLog(slog::Level::kWarn), slog::kCompiledIn);
  EXPECT_FALSE(slog::ShouldLog(slog::Level::kDebug));
}

TEST(SlogTest, SiteRateLimiterAdmitsBurstThenDropsAndCounts) {
  // Burst of 2, effectively no refill: two admits, then drops accumulate
  // until the next admitted event reports them.
  slog::SiteRateLimiter limiter(2.0, 1e-9);
  uint64_t dropped = 0;
  EXPECT_TRUE(limiter.Admit(&dropped));
  EXPECT_EQ(dropped, 0u);
  EXPECT_TRUE(limiter.Admit(&dropped));
  EXPECT_EQ(dropped, 0u);
  EXPECT_FALSE(limiter.Admit(&dropped));
  EXPECT_FALSE(limiter.Admit(&dropped));
  // Refill two tokens' worth by hand is impossible without waiting, so
  // just verify the drop count is surfaced once tokens reappear: a fresh
  // limiter models the post-refill state.
  slog::SiteRateLimiter refilled(1.0, 1e-9);
  uint64_t later = 0;
  EXPECT_TRUE(refilled.Admit(&later));
  EXPECT_FALSE(refilled.Admit(&later));
  EXPECT_FALSE(refilled.Admit(&later));
}

TEST(SlogTest, LogMacroEmitsWhenCompiledIn) {
  ScopedLogCapture capture;
  OSRS_LOG(slog::Level::kWarn, "test_macro", "macro event", {"k", 1});
  if (slog::kCompiledIn) {
    EXPECT_NE(capture.text().find("\"message\":\"macro event\""),
              std::string::npos);
  } else {
    EXPECT_TRUE(capture.text().empty());
  }
}

// -- CRC-32C (the checksum guarding src/store's on-disk bytes) -----------

TEST(Crc32cTest, KnownVectors) {
  // Published CRC-32C test vectors (RFC 3720 appendix B.4 / the values
  // every Castagnoli implementation agrees on).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainingMatchesOnePass) {
  // Crc32c(b, seed=Crc32c(a)) == Crc32c(a+b): the property the snapshot
  // header relies on to checksum in pieces. Check every split point.
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t head = Crc32c(data.data(), split);
    uint32_t chained = Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::string data = "journal record payload bytes";
  uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped.data(), flipped.size()), clean)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(Crc32cTest, StringViewOverloadMatchesPointerForm) {
  std::string data = "overload equivalence";
  EXPECT_EQ(Crc32c(std::string_view(data)), Crc32c(data.data(), data.size()));
}

}  // namespace
}  // namespace osrs
