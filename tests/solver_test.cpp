#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/cost.h"
#include "core/reduction.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/exhaustive.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/kmedian_model.h"
#include "solver/randomized_rounding.h"

namespace osrs {
namespace {

/// Random k-Pairs instance over a small synthetic ontology.
struct Instance {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
};

Instance MakeInstance(uint64_t seed, int num_pairs, int num_concepts = 60) {
  SnomedLikeOptions options;
  options.num_concepts = num_concepts;
  options.max_depth = 5;
  options.seed = seed;
  Instance instance;
  instance.ontology = BuildSnomedLikeOntology(options);
  Rng rng(seed * 77 + 1);
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(instance.ontology.num_concepts() - 1));
    // Cluster sentiments around a few modes so coverage is non-trivial.
    double mode = rng.NextBernoulli(0.6) ? 0.6 : -0.4;
    double s = Clamp(mode + rng.NextGaussian(0.0, 0.3), -1.0, 1.0);
    instance.pairs.push_back({c, s});
  }
  return instance;
}

// ----------------------------------------------------------------- Greedy --

TEST(GreedyTest, RejectsBadK) {
  Instance inst = MakeInstance(1, 10);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  GreedySummarizer greedy;
  EXPECT_FALSE(greedy.Summarize(graph, -1).ok());
  EXPECT_FALSE(greedy.Summarize(graph, 11).ok());
  EXPECT_TRUE(greedy.Summarize(graph, 10).ok());
}

TEST(GreedyTest, KZeroReturnsEmptySummary) {
  Instance inst = MakeInstance(2, 10);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  auto result = GreedySummarizer().Summarize(graph, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->selected.empty());
  EXPECT_DOUBLE_EQ(result->cost, graph.EmptySummaryCost());
}

TEST(GreedyTest, CostMatchesGraphEvaluation) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    Instance inst = MakeInstance(seed, 40);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    auto result = GreedySummarizer().Summarize(graph, 6);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->cost, graph.CostOfSelection(result->selected), 1e-9);
    EXPECT_EQ(result->selected.size(), 6u);
    std::set<int> unique(result->selected.begin(), result->selected.end());
    EXPECT_EQ(unique.size(), 6u);
  }
}

TEST(GreedyTest, EagerAndLazyAgreeOnCost) {
  for (uint64_t seed : {6u, 7u, 8u, 9u}) {
    Instance inst = MakeInstance(seed, 60);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    GreedyOptions lazy_options;
    lazy_options.heap = GreedyOptions::Heap::kLazy;
    auto eager = GreedySummarizer().Summarize(graph, 5);
    auto lazy = GreedySummarizer(lazy_options).Summarize(graph, 5);
    ASSERT_TRUE(eager.ok());
    ASSERT_TRUE(lazy.ok());
    // Identical selections except possibly on exact gain ties; cost must
    // match because both take a maximum-gain candidate each round.
    EXPECT_NEAR(eager->cost, lazy->cost, 1e-9);
  }
}

TEST(GreedyTest, GreedyIsMonotoneInK) {
  Instance inst = MakeInstance(10, 50);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  GreedySummarizer greedy;
  double prev = graph.EmptySummaryCost();
  for (int k = 1; k <= 8; ++k) {
    auto result = greedy.Summarize(graph, k);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, prev + 1e-9);
    prev = result->cost;
  }
}

TEST(GreedyTest, PrefixProperty) {
  // Greedy with k and k+1 share the first k selections (deterministic ties).
  Instance inst = MakeInstance(11, 50);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  GreedySummarizer greedy;
  auto small = greedy.Summarize(graph, 4);
  auto large = greedy.Summarize(graph, 5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(small->selected[i], large->selected[i]);
  }
}

TEST(GreedyTest, MatchesExhaustiveOnEasyInstance) {
  // With k = 1 greedy IS optimal (single best candidate).
  for (uint64_t seed : {12u, 13u, 14u}) {
    Instance inst = MakeInstance(seed, 25);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    auto greedy = GreedySummarizer().Summarize(graph, 1);
    auto exact = ExhaustiveSummarizer().Summarize(graph, 1);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(greedy->cost, exact->cost, 1e-9);
  }
}

TEST(GreedyTest, WithinTheoreticalReachOfOptimal) {
  // §5.2 observes greedy within 8% of optimal; on these small instances we
  // allow a loose 25% just to catch gross regressions.
  for (uint64_t seed : {15u, 16u}) {
    Instance inst = MakeInstance(seed, 18);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    auto greedy = GreedySummarizer().Summarize(graph, 3);
    auto exact = ExhaustiveSummarizer().Summarize(graph, 3);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(greedy->cost, exact->cost * 1.25 + 1e-9);
    EXPECT_GE(greedy->cost, exact->cost - 1e-9);
  }
}

// ------------------------------------------------------------- Exhaustive --

TEST(ExhaustiveTest, FindsObviousOptimum) {
  // Chain root->a->b, pairs on a and b. k=1: picking the 'a' pair covers
  // both (a at 0, b at 1) = 1 < picking b (a covered by root at 1, b at 0).
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.AddEdge(a, b).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{a, 0.0}, {b, 0.0}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  auto result = ExhaustiveSummarizer().Summarize(graph, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, std::vector<int>{0});
  EXPECT_DOUBLE_EQ(result->cost, 1.0);
}

TEST(ExhaustiveTest, RefusesHugeInstances) {
  Instance inst = MakeInstance(17, 40);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  ExhaustiveSummarizer tiny_budget(/*max_subsets=*/100);
  auto result = tiny_budget.Summarize(graph, 10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// -------------------------------------------------------------------- ILP --

TEST(IlpTest, MatchesExhaustiveOnRandomInstances) {
  for (uint64_t seed : {20u, 21u, 22u, 23u}) {
    Instance inst = MakeInstance(seed, 16);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    for (int k : {1, 2, 3}) {
      auto ilp = IlpSummarizer().Summarize(graph, k);
      auto exact = ExhaustiveSummarizer().Summarize(graph, k);
      ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
      ASSERT_TRUE(exact.ok());
      EXPECT_NEAR(ilp->cost, exact->cost, 1e-6)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(IlpTest, SentenceGroupsMatchExhaustive) {
  // §4.5 variant: candidates are groups.
  for (uint64_t seed : {24u, 25u}) {
    Instance inst = MakeInstance(seed, 18);
    PairDistance dist(&inst.ontology, 0.5);
    // Groups of 3 consecutive pairs = 6 "sentences".
    std::vector<std::vector<int>> groups;
    for (int g = 0; g < 6; ++g) {
      groups.push_back({3 * g, 3 * g + 1, 3 * g + 2});
    }
    CoverageGraph graph =
        CoverageGraph::BuildForGroups(dist, inst.pairs, groups);
    auto ilp = IlpSummarizer().Summarize(graph, 2);
    auto exact = ExhaustiveSummarizer().Summarize(graph, 2);
    ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(ilp->cost, exact->cost, 1e-6);
  }
}

TEST(IlpTest, RejectsBadK) {
  Instance inst = MakeInstance(26, 8);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  EXPECT_FALSE(IlpSummarizer().Summarize(graph, -2).ok());
  EXPECT_FALSE(IlpSummarizer().Summarize(graph, 100).ok());
}

// ----------------------------------------------------- k-median LP model --

TEST(KMedianModelTest, LpRelaxationLowerBoundsIlp) {
  for (uint64_t seed : {27u, 28u}) {
    Instance inst = MakeInstance(seed, 20);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    const int k = 3;
    KMedianModel model = BuildKMedianModel(graph, k, /*integral_x=*/false);
    LpSolution lp = RevisedSimplex().Solve(model.problem);
    ASSERT_EQ(lp.status, LpStatus::kOptimal);
    auto exact = ExhaustiveSummarizer().Summarize(graph, k);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(lp.objective, exact->cost + 1e-6);
    // And the LP is bounded below by 0.
    EXPECT_GE(lp.objective, -1e-9);
  }
}

TEST(KMedianModelTest, IntegralCostFlagDetected) {
  Instance inst = MakeInstance(29, 12);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  KMedianModel model = BuildKMedianModel(graph, 2, false);
  EXPECT_TRUE(model.integral_costs);  // hop distances are integers
}

// --------------------------------------------------- Randomized rounding --

TEST(RandomizedRoundingTest, CostBetweenOptimalAndEmpty) {
  for (uint64_t seed : {30u, 31u}) {
    Instance inst = MakeInstance(seed, 20);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    const int k = 3;
    auto rr = RandomizedRoundingSummarizer().Summarize(graph, k);
    auto exact = ExhaustiveSummarizer().Summarize(graph, k);
    ASSERT_TRUE(rr.ok()) << rr.status().ToString();
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(rr->cost, exact->cost - 1e-9);
    EXPECT_LE(rr->cost, graph.EmptySummaryCost() + 1e-9);
    EXPECT_EQ(rr->selected.size(), static_cast<size_t>(k));
    std::set<int> unique(rr->selected.begin(), rr->selected.end());
    EXPECT_EQ(unique.size(), static_cast<size_t>(k));
  }
}

TEST(RandomizedRoundingTest, DeterministicForSeed) {
  Instance inst = MakeInstance(32, 25);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  RandomizedRoundingOptions options;
  options.seed = 5;
  auto a = RandomizedRoundingSummarizer(options).Summarize(graph, 4);
  auto b = RandomizedRoundingSummarizer(options).Summarize(graph, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(RandomizedRoundingTest, TopKStrategyIsDeterministicAndSound) {
  Instance inst = MakeInstance(34, 22);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  RandomizedRoundingOptions options;
  options.strategy = RoundingStrategy::kTopK;
  RandomizedRoundingSummarizer topk(options);
  EXPECT_EQ(topk.name(), "LP-top-k");
  auto a = topk.Summarize(graph, 3);
  auto b = topk.Summarize(graph, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
  EXPECT_EQ(a->selected.size(), 3u);
  auto exact = ExhaustiveSummarizer().Summarize(graph, 3);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(a->cost, exact->cost - 1e-9);
  EXPECT_LE(a->cost, graph.EmptySummaryCost() + 1e-9);
}

TEST(RandomizedRoundingTest, MoreTrialsNeverWorse) {
  Instance inst = MakeInstance(33, 25);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  RandomizedRoundingOptions one;
  one.seed = 5;
  one.trials = 1;
  RandomizedRoundingOptions many = one;
  many.trials = 8;
  auto a = RandomizedRoundingSummarizer(one).Summarize(graph, 4);
  auto b = RandomizedRoundingSummarizer(many).Summarize(graph, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->cost, a->cost + 1e-9);
}

// ------------------------------------------------- Degenerate graph sizes

TEST(DegenerateGraphTest, AllAlgorithmsHandleZeroCandidates) {
  // An empty pair set: no candidates, no targets, cost 0 for every k=0.
  Instance inst = MakeInstance(50, 10);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph =
      CoverageGraph::BuildForPairs(dist, std::vector<ConceptSentimentPair>{});
  EXPECT_EQ(graph.num_candidates(), 0);
  EXPECT_DOUBLE_EQ(graph.EmptySummaryCost(), 0.0);
  auto greedy = GreedySummarizer().Summarize(graph, 0);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->selected.empty());
  auto ilp = IlpSummarizer().Summarize(graph, 0);
  ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
  EXPECT_TRUE(ilp->selected.empty());
  auto rr = RandomizedRoundingSummarizer().Summarize(graph, 0);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  EXPECT_TRUE(rr->selected.empty());
  auto exact = ExhaustiveSummarizer().Summarize(graph, 0);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->selected.empty());
}

TEST(DegenerateGraphTest, KEqualsCandidateCount) {
  Instance inst = MakeInstance(51, 12);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  const int k = graph.num_candidates();
  auto greedy = GreedySummarizer().Summarize(graph, k);
  auto ilp = IlpSummarizer().Summarize(graph, k);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
  // Selecting everything: both achieve the all-selected cost, where each
  // pair covers itself at distance 0.
  std::vector<int> all(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) all[static_cast<size_t>(i)] = i;
  double full_cost = graph.CostOfSelection(all);
  EXPECT_DOUBLE_EQ(full_cost, 0.0);
  EXPECT_DOUBLE_EQ(greedy->cost, 0.0);
  EXPECT_NEAR(ilp->cost, 0.0, 1e-9);
}

TEST(DegenerateGraphTest, SingleCandidate) {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{a, 0.5}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  for (int k : {0, 1}) {
    auto greedy = GreedySummarizer().Summarize(graph, k);
    ASSERT_TRUE(greedy.ok());
    EXPECT_DOUBLE_EQ(greedy->cost, k == 0 ? 1.0 : 0.0);
  }
}

// ---------------------------------------------- NP-hardness reduction E2E --

TEST(ReductionSolverTest, IlpDecidesSetCover) {
  // Theorem 1, both directions, via the exact solver: the optimal k-pair
  // summary cost equals the target iff a size-k set cover exists.
  SetCoverInstance coverable;
  coverable.universe_size = 4;
  coverable.sets = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  coverable.k = 2;

  SetCoverInstance uncoverable;
  uncoverable.universe_size = 5;
  uncoverable.sets = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  uncoverable.k = 2;  // every pair of sets misses an element

  for (const auto& [instance, expect_cover] :
       {std::pair<SetCoverInstance, bool>{coverable, true},
        std::pair<SetCoverInstance, bool>{uncoverable, false}}) {
    KPairsReduction red = BuildKPairsReduction(instance);
    PairDistance dist(&red.ontology, 0.1);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, red.pairs);
    auto result = IlpSummarizer().Summarize(graph, red.k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (expect_cover) {
      EXPECT_NEAR(result->cost, red.target, 1e-6);
    } else {
      EXPECT_GT(result->cost, red.target + 0.5);
    }
  }
}

TEST(ReductionSolverTest, GreedySolvesEasyCovers) {
  // Greedy achieves the target on an instance where greedy set-cover works.
  SetCoverInstance instance;
  instance.universe_size = 6;
  instance.sets = {{0, 1, 2}, {3, 4, 5}, {0, 3}, {1, 4}};
  instance.k = 2;
  KPairsReduction red = BuildKPairsReduction(instance);
  PairDistance dist(&red.ontology, 0.1);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, red.pairs);
  auto result = GreedySummarizer().Summarize(graph, red.k);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, red.target, 1e-9);
}

}  // namespace
}  // namespace osrs
