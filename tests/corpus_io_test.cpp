#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/strings.h"

#include "datagen/cellphone_corpus.h"
#include "datagen/corpus_io.h"
#include "fault/failpoint.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {
namespace {

Corpus SmallCorpus() {
  CellPhoneCorpusOptions options;
  options.scale = 0.02;  // 1 phone, ~670 reviews
  return GenerateCellPhoneCorpus(options);
}

TEST(CorpusIoTest, RoundTripPreservesEverything) {
  Corpus corpus = SmallCorpus();
  auto serialized = SaveCorpus(corpus);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  auto restored = LoadCorpus(*serialized);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->domain, corpus.domain);
  EXPECT_EQ(restored->ontology.num_concepts(),
            corpus.ontology.num_concepts());
  EXPECT_EQ(restored->ontology.Serialize(), corpus.ontology.Serialize());
  ASSERT_EQ(restored->items.size(), corpus.items.size());
  for (size_t i = 0; i < corpus.items.size(); ++i) {
    const Item& a = corpus.items[i];
    const Item& b = restored->items[i];
    EXPECT_EQ(a.id, b.id);
    ASSERT_EQ(a.reviews.size(), b.reviews.size());
    for (size_t r = 0; r < a.reviews.size(); ++r) {
      EXPECT_DOUBLE_EQ(a.reviews[r].rating, b.reviews[r].rating);
      ASSERT_EQ(a.reviews[r].sentences.size(), b.reviews[r].sentences.size());
      for (size_t s = 0; s < a.reviews[r].sentences.size(); ++s) {
        const Sentence& sa = a.reviews[r].sentences[s];
        const Sentence& sb = b.reviews[r].sentences[s];
        EXPECT_EQ(sa.text, sb.text);
        ASSERT_EQ(sa.pairs.size(), sb.pairs.size());
        for (size_t p = 0; p < sa.pairs.size(); ++p) {
          EXPECT_EQ(sa.pairs[p].concept_id, sb.pairs[p].concept_id);
          EXPECT_DOUBLE_EQ(sa.pairs[p].sentiment, sb.pairs[p].sentiment);
        }
      }
    }
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  Corpus corpus = SmallCorpus();
  std::string path = testing::TempDir() + "/osrs_corpus_io_test.tsv";
  ASSERT_TRUE(SaveCorpusToFile(corpus, path).ok());
  auto restored = LoadCorpusFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->items.size(), corpus.items.size());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, FailedWriteLeavesPreviousFileIntact) {
  // WriteTextFile goes through the durability layer's atomic temp + fsync
  // + rename (store/atomic_file.h), so a failure at ANY stage of the
  // write must leave the previous contents observable — a torn corpus
  // file can no longer exist. Inject a failure at each store-level stage
  // and re-read the original after every one.
  if (!fault::kCompiledIn)
    GTEST_SKIP() << "failpoints compiled out (-DOSRS_FAILPOINTS=OFF)";
  std::string path = testing::TempDir() + "/osrs_corpus_atomic.tsv";
  ASSERT_TRUE(WriteTextFile(path, "original contents\n").ok());

  for (const char* site :
       {"osrs.store.write", "osrs.store.fsync", "osrs.store.rename"}) {
    SCOPED_TRACE(site);
    fault::FailpointSpec spec;
    spec.code = StatusCode::kUnavailable;
    spec.trigger = fault::FailTrigger::kOnce;
    fault::FailpointRegistry::Global().Get(site)->Arm(spec);
    Status failed = WriteTextFile(path, "replacement that must not land\n");
    fault::FailpointRegistry::Global().DisarmAll();
    ASSERT_FALSE(failed.ok());

    auto contents = ReadTextFile(path);
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    EXPECT_EQ(*contents, "original contents\n")
        << "failed write tore the previous file";
  }

  // And once the fault clears, the replacement goes through whole.
  ASSERT_TRUE(WriteTextFile(path, "second version\n").ok());
  auto contents = ReadTextFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "second version\n");
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileFails) {
  auto result = LoadCorpusFromFile("/nonexistent/osrs/corpus.tsv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CorpusIoTest, UnreadableFileIsRetryableWithErrnoContext) {
  // A directory opens fine but fails on the first read (EISDIR), the same
  // shape as a disk error mid-file: kUnavailable — retryable, unlike the
  // permanent kNotFound of a missing path — with strerror/errno context.
  auto result = LoadCorpusFromFile(testing::TempDir());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(StatusCodeIsRetryable(result.status().code()));
  EXPECT_NE(result.status().message().find("errno"), std::string::npos)
      << result.status().ToString();
}

TEST(CorpusIoTest, TruncatedFileNamesTheFailingLine) {
  Corpus corpus = SmallCorpus();
  auto serialized = SaveCorpus(corpus);
  ASSERT_TRUE(serialized.ok());
  // Cut the file mid-pair: the last "concept:sentiment" field loses its
  // ':' and everything after, as if the writer died mid-flush.
  std::string truncated = *serialized;
  size_t cut = truncated.rfind(':');
  ASSERT_NE(cut, std::string::npos);
  truncated.resize(cut);
  int64_t bad_line = 1;
  for (char c : truncated) {
    if (c == '\n') ++bad_line;
  }
  std::string path = testing::TempDir() + "/osrs_corpus_truncated.tsv";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fwrite(truncated.data(), 1, truncated.size(), file);
  std::fclose(file);

  auto result = LoadCorpusFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::string expected = StrFormat("line %lld:",
                                   static_cast<long long>(bad_line));
  EXPECT_NE(result.status().message().find(expected), std::string::npos)
      << "message: " << result.status().ToString()
      << " expected prefix: " << expected;
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(LoadCorpus("Z\tgarbage\n").ok());
  EXPECT_FALSE(LoadCorpus("D\tphone\n").ok());  // no ontology
  EXPECT_FALSE(LoadCorpus("R\t0.5\n").ok());    // review before item
  // Sentence before review.
  Corpus corpus = SmallCorpus();
  std::string onto = corpus.ontology.Serialize();
  for (char& c : onto) {
    if (c == '\n') c = '|';
  }
  EXPECT_FALSE(LoadCorpus("O\t" + onto + "\nI\tx\nS\thello\n").ok());
  // Pair referencing an unknown concept.
  EXPECT_FALSE(
      LoadCorpus("O\t" + onto + "\nI\tx\nR\t0\nS\thi\t99999:0.5\n").ok());
}

TEST(CorpusIoTest, RejectsUnserializableText) {
  Corpus corpus;
  corpus.domain = "phone";
  corpus.ontology = BuildCellPhoneHierarchy();
  Item item;
  item.id = "x";
  Review review;
  review.sentences.push_back({"tab\there", {}});
  item.reviews.push_back(review);
  corpus.items.push_back(item);
  EXPECT_FALSE(SaveCorpus(corpus).ok());
}

TEST(CorpusIoTest, EmptyCorpusNeedsOntology) {
  Corpus corpus;
  corpus.domain = "phone";
  EXPECT_FALSE(SaveCorpus(corpus).ok());  // unfinalized ontology
  corpus.ontology = BuildCellPhoneHierarchy();
  auto serialized = SaveCorpus(corpus);
  ASSERT_TRUE(serialized.ok());
  auto restored = LoadCorpus(*serialized);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->items.empty());
}

}  // namespace
}  // namespace osrs
