// Property tests of the NLP substrate: the Aho-Corasick matcher against a
// brute-force reference, tokenizer/splitter invariants on random text, and
// ontology serialization round-trips across generator shapes.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "extraction/aho_corasick.h"
#include "ontology/snomed_like.h"
#include "text/porter_stemmer.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

// ----------------------------------------------- Aho-Corasick vs brute force

/// Reference matcher: try every pattern at every position.
std::vector<TokenAhoCorasick::Match> BruteForceFind(
    const std::vector<std::vector<std::string>>& patterns,
    const std::vector<std::string>& text) {
  std::vector<TokenAhoCorasick::Match> matches;
  for (size_t start = 0; start < text.size(); ++start) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      const auto& pattern = patterns[p];
      if (pattern.empty() || start + pattern.size() > text.size()) continue;
      bool hit = true;
      for (size_t i = 0; i < pattern.size(); ++i) {
        if (text[start + i] != pattern[i]) {
          hit = false;
          break;
        }
      }
      if (hit) {
        matches.push_back(
            {static_cast<int>(p), start, start + pattern.size()});
      }
    }
  }
  return matches;
}

/// Canonical ordering for comparing match sets.
void SortMatches(std::vector<TokenAhoCorasick::Match>& matches) {
  std::sort(matches.begin(), matches.end(),
            [](const TokenAhoCorasick::Match& a,
               const TokenAhoCorasick::Match& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end < b.end;
              return a.payload < b.payload;
            });
}

class AhoCorasickProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(AhoCorasickProperty, MatchesBruteForceOnRandomInput) {
  Rng rng(GetParam());
  const std::vector<std::string> alphabet{"a", "b", "c", "d"};
  for (int trial = 0; trial < 20; ++trial) {
    // Random patterns of length 1-4 over a tiny alphabet (maximizes
    // overlaps and fail-link traffic).
    std::vector<std::vector<std::string>> patterns;
    size_t num_patterns = 1 + rng.NextUint64(8);
    std::set<std::vector<std::string>> unique_patterns;
    for (size_t p = 0; p < num_patterns; ++p) {
      std::vector<std::string> pattern;
      size_t length = 1 + rng.NextUint64(4);
      for (size_t i = 0; i < length; ++i) {
        pattern.push_back(alphabet[rng.NextUint64(alphabet.size())]);
      }
      if (unique_patterns.insert(pattern).second) {
        patterns.push_back(std::move(pattern));
      }
    }
    TokenAhoCorasick automaton;
    for (size_t p = 0; p < patterns.size(); ++p) {
      automaton.AddPattern(patterns[p], static_cast<int>(p));
    }
    automaton.Build();

    std::vector<std::string> text;
    size_t text_length = rng.NextUint64(60);
    for (size_t i = 0; i < text_length; ++i) {
      // Occasionally inject an out-of-alphabet token (state reset path).
      text.push_back(rng.NextBernoulli(0.1)
                         ? "zz"
                         : alphabet[rng.NextUint64(alphabet.size())]);
    }

    auto expected = BruteForceFind(patterns, text);
    auto actual = automaton.Find(text);
    SortMatches(expected);
    SortMatches(actual);
    ASSERT_EQ(actual.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].payload, expected[i].payload);
      EXPECT_EQ(actual[i].begin, expected[i].begin);
      EXPECT_EQ(actual[i].end, expected[i].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoCorasickProperty,
                         testing::Values(101u, 202u, 303u, 404u));

// ----------------------------------------------------- Tokenizer invariants

class TextProperty : public testing::TestWithParam<uint64_t> {};

std::string RandomText(Rng& rng, size_t length) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "
      ".,!?'-()\n\t";
  std::string text;
  for (size_t i = 0; i < length; ++i) {
    text.push_back(kChars[rng.NextUint64(sizeof(kChars) - 1)]);
  }
  return text;
}

TEST_P(TextProperty, TokenizerInvariantsOnRandomText) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::string text = RandomText(rng, rng.NextUint64(200));
    auto spans = TokenizeWithOffsets(text);
    size_t previous_end = 0;
    for (const auto& span : spans) {
      // Tokens are non-empty, lowercase, in left-to-right order, and their
      // offset points at a matching character of the source.
      ASSERT_FALSE(span.token.empty());
      EXPECT_GE(span.offset, previous_end);
      previous_end = span.offset + 1;
      for (char c : span.token) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '\'')
            << "token '" << span.token << "'";
      }
      char source = text[span.offset];
      char lowered = static_cast<char>(
          std::tolower(static_cast<unsigned char>(source)));
      EXPECT_EQ(lowered, span.token[0]);
    }
    // Tokenize agrees with TokenizeWithOffsets.
    auto tokens = Tokenize(text);
    ASSERT_EQ(tokens.size(), spans.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      EXPECT_EQ(tokens[i], spans[i].token);
    }
  }
}

TEST_P(TextProperty, SentenceSplitterNeverLosesNonSpaceContent) {
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 30; ++trial) {
    std::string text = RandomText(rng, rng.NextUint64(300));
    auto sentences = SplitSentences(text);
    // Joined sentences contain every alphanumeric character of the input
    // in order (terminators and whitespace may be dropped).
    std::string joined;
    for (const auto& sentence : sentences) joined += sentence;
    size_t cursor = 0;
    for (char c : text) {
      if (!std::isalnum(static_cast<unsigned char>(c))) continue;
      while (cursor < joined.size() && joined[cursor] != c) ++cursor;
      ASSERT_LT(cursor, joined.size()) << "lost character '" << c << "'";
      ++cursor;
    }
    for (const auto& sentence : sentences) {
      EXPECT_FALSE(sentence.empty());
      EXPECT_EQ(std::string(Trim(sentence)), sentence);
    }
  }
}

TEST_P(TextProperty, StemmerIsIdempotentOnItsOutputsMostly) {
  // Porter is not strictly idempotent in general, but on our extraction
  // vocabulary (short noun-ish words) double-stemming must be stable —
  // the dictionary extractor relies on stem(stem(w)) == stem(w) for terms.
  Rng rng(GetParam() * 13 + 5);
  const char* words[] = {"battery",  "batteries", "charging", "screens",
                         "cameras",  "shipping",  "pictures", "resolution",
                         "speakers", "services",  "doctors",  "treatments",
                         "imaging",  "disorders", "therapy",  "syndrome"};
  for (const char* word : words) {
    std::string once = PorterStem(word);
    EXPECT_EQ(PorterStem(once), once) << word;
  }
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextProperty, testing::Values(7u, 8u, 9u));

// ------------------------------------------------ Ontology round-trip sweep

class OntologyRoundTrip : public testing::TestWithParam<uint64_t> {};

TEST_P(OntologyRoundTrip, SerializeDeserializeAcrossShapes) {
  SnomedLikeOptions options;
  options.seed = GetParam();
  options.num_concepts = 150 + static_cast<int>(GetParam() % 100);
  options.max_depth = 3 + static_cast<int>(GetParam() % 4);
  options.multi_parent_prob = 0.2;
  Ontology onto = BuildSnomedLikeOntology(options);
  auto restored = Ontology::Deserialize(onto.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), onto.Serialize());
  EXPECT_EQ(restored->max_depth(), onto.max_depth());
  EXPECT_EQ(restored->root(), onto.root());
  EXPECT_DOUBLE_EQ(restored->AverageAncestorCount(),
                   onto.AverageAncestorCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OntologyRoundTrip,
                         testing::Values(1u, 12u, 123u, 1234u));

}  // namespace
}  // namespace osrs
