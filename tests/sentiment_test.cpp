#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "sentiment/embeddings.h"
#include "sentiment/estimator.h"
#include "sentiment/lexicon.h"
#include "sentiment/regression.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

// ----------------------------------------------------------------- Lexicon

TEST(LexiconTest, GradedStrengths) {
  const auto& lex = SentimentLexicon::Default();
  EXPECT_GT(lex.OpinionStrength("excellent"), lex.OpinionStrength("good"));
  EXPECT_GT(lex.OpinionStrength("good"), 0.0);
  EXPECT_LT(lex.OpinionStrength("bad"), 0.0);
  EXPECT_LT(lex.OpinionStrength("terrible"), lex.OpinionStrength("bad"));
  EXPECT_DOUBLE_EQ(lex.OpinionStrength("table"), 0.0);
  EXPECT_TRUE(lex.IsOpinionWord("great"));
  EXPECT_FALSE(lex.IsOpinionWord("phone"));
}

TEST(LexiconTest, PositiveSentenceScoresPositive) {
  const auto& lex = SentimentLexicon::Default();
  EXPECT_GT(lex.ScoreSentence(Tokenize("the screen is great")), 0.0);
  EXPECT_LT(lex.ScoreSentence(Tokenize("the screen is terrible")), 0.0);
  EXPECT_DOUBLE_EQ(lex.ScoreSentence(Tokenize("the screen has pixels")), 0.0);
}

TEST(LexiconTest, IntensifierAmplifies) {
  const auto& lex = SentimentLexicon::Default();
  double base = lex.ScoreSentence(Tokenize("it is good"));
  double intense = lex.ScoreSentence(Tokenize("it is very good"));
  double weak = lex.ScoreSentence(Tokenize("it is slightly good"));
  EXPECT_GT(intense, base);
  EXPECT_LT(weak, base);
  EXPECT_GT(weak, 0.0);
}

TEST(LexiconTest, NegationFlips) {
  const auto& lex = SentimentLexicon::Default();
  double positive = lex.ScoreSentence(Tokenize("it is good"));
  double negated = lex.ScoreSentence(Tokenize("it is not good"));
  EXPECT_GT(positive, 0.0);
  EXPECT_LT(negated, 0.0);
  // Damped flip: |not good| < |good|.
  EXPECT_LT(std::abs(negated), std::abs(positive) + 1e-12);
}

TEST(LexiconTest, DoubleNegationRestores) {
  const auto& lex = SentimentLexicon::Default();
  EXPECT_GT(lex.ScoreSentence(Tokenize("never not good")), 0.0);
}

TEST(LexiconTest, ScoresClampToUnitRange) {
  const auto& lex = SentimentLexicon::Default();
  double s = lex.ScoreSentence(
      Tokenize("extremely incredibly absolutely amazing perfect excellent"));
  EXPECT_LE(s, 1.0);
  EXPECT_GE(s, -1.0);
}

TEST(LexiconTest, WordForStrengthRoundTrips) {
  const auto& lex = SentimentLexicon::Default();
  for (double target : {-0.9, -0.5, -0.3, 0.3, 0.5, 0.75, 0.95}) {
    const std::string& word = lex.WordForStrength(target);
    ASSERT_FALSE(word.empty());
    EXPECT_NEAR(lex.OpinionStrength(word), target, 0.2) << word;
  }
}

// -------------------------------------------------------------- Regression

TEST(RidgeRegressionTest, RecoversLinearFunction) {
  // y = 2 x0 - 3 x1 + 1 with no noise.
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble(-1, 1), b = rng.NextDouble(-1, 1);
    x.push_back({a, b});
    y.push_back(2 * a - 3 * b + 1);
  }
  auto model = RidgeRegression::Fit(x, y, 1e-6);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 2.0, 1e-3);
  EXPECT_NEAR(model->weights()[1], -3.0, 1e-3);
  EXPECT_NEAR(model->intercept(), 1.0, 1e-3);
  EXPECT_NEAR(model->Predict({0.5, 0.5}), 0.5, 1e-3);
}

TEST(RidgeRegressionTest, RegularizationShrinksWeights) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double a = rng.NextDouble(-1, 1);
    x.push_back({a});
    y.push_back(5 * a);
  }
  auto weak = RidgeRegression::Fit(x, y, 1e-6);
  auto strong = RidgeRegression::Fit(x, y, 100.0);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_LT(std::abs(strong->weights()[0]), std::abs(weak->weights()[0]));
}

TEST(RidgeRegressionTest, RejectsBadInput) {
  EXPECT_FALSE(RidgeRegression::Fit({}, {}, 1.0).ok());
  EXPECT_FALSE(RidgeRegression::Fit({{1.0}}, {1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(RidgeRegression::Fit({{1.0}}, {1.0}, 0.0).ok());
  EXPECT_FALSE(RidgeRegression::Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}, 1.0).ok());
}

// -------------------------------------------------------------- Embeddings

std::vector<std::vector<std::string>> ToySentences() {
  // Two topical clusters: display words co-occur; battery words co-occur.
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 60; ++i) {
    sentences.push_back(Tokenize("the screen display resolution is sharp"));
    sentences.push_back(Tokenize("screen brightness and display colors"));
    sentences.push_back(Tokenize("battery charge lasts long charging"));
    sentences.push_back(Tokenize("battery drains fast while charging"));
  }
  return sentences;
}

TEST(EmbeddingsTest, TopicalWordsAreCloserThanCrossTopic) {
  EmbeddingOptions options;
  options.dimensions = 16;
  auto emb = CooccurrenceEmbeddings::Train(ToySentences(), options);
  double same_topic =
      CosineSimilarity(emb.VectorOf("screen"), emb.VectorOf("display"));
  double cross_topic =
      CosineSimilarity(emb.VectorOf("screen"), emb.VectorOf("battery"));
  EXPECT_GT(same_topic, cross_topic);
}

TEST(EmbeddingsTest, OovWordsGetZeroVectors) {
  EmbeddingOptions options;
  options.dimensions = 8;
  auto emb = CooccurrenceEmbeddings::Train(ToySentences(), options);
  EXPECT_FALSE(emb.Contains("xylophone"));
  auto v = emb.VectorOf("xylophone");
  EXPECT_EQ(v.size(), 8u);
  EXPECT_DOUBLE_EQ(Norm2(v), 0.0);
}

TEST(EmbeddingsTest, SentenceVectorIsNormalized) {
  EmbeddingOptions options;
  options.dimensions = 8;
  auto emb = CooccurrenceEmbeddings::Train(ToySentences(), options);
  auto v = emb.SentenceVector(Tokenize("screen display brightness"));
  EXPECT_NEAR(Norm2(v), 1.0, 1e-9);
  auto empty = emb.SentenceVector(Tokenize("zzz qqq"));
  EXPECT_DOUBLE_EQ(Norm2(empty), 0.0);
}

TEST(EmbeddingsTest, DeterministicForSeed) {
  EmbeddingOptions options;
  options.dimensions = 8;
  auto a = CooccurrenceEmbeddings::Train(ToySentences(), options);
  auto b = CooccurrenceEmbeddings::Train(ToySentences(), options);
  EXPECT_EQ(a.VectorOf("screen"), b.VectorOf("screen"));
}

TEST(EmbeddingsTest, RespectsMaxVocab) {
  EmbeddingOptions options;
  options.dimensions = 4;
  options.max_vocab = 3;
  auto emb = CooccurrenceEmbeddings::Train(ToySentences(), options);
  EXPECT_LE(emb.vocabulary_size(), 3u);
}

// --------------------------------------------------------------- Estimator

TEST(SentimentEstimatorTest, LexiconOnlyMatchesLexicon) {
  auto estimator = SentimentEstimator::LexiconOnly();
  EXPECT_FALSE(estimator.has_regression());
  auto tokens = Tokenize("the camera is excellent");
  EXPECT_DOUBLE_EQ(estimator.ScoreSentence(tokens),
                   SentimentLexicon::Default().ScoreSentence(tokens));
}

TEST(SentimentEstimatorTest, TrainedEstimatorSeparatesPolarity) {
  // Weak supervision: positive-rated sentences use positive vocabulary.
  std::vector<std::vector<std::string>> sentences;
  std::vector<double> ratings;
  for (int i = 0; i < 80; ++i) {
    sentences.push_back(Tokenize("great phone amazing screen love it"));
    ratings.push_back(1.0);
    sentences.push_back(Tokenize("terrible phone awful screen hate it"));
    ratings.push_back(-1.0);
  }
  SentimentEstimatorOptions options;
  options.embedding.dimensions = 12;
  options.lexicon_weight = 0.0;  // regression path only
  auto estimator = SentimentEstimator::Train(sentences, ratings, options);
  ASSERT_TRUE(estimator.ok());
  EXPECT_TRUE(estimator->has_regression());
  double pos = estimator->ScoreSentence(Tokenize("amazing screen love"));
  double neg = estimator->ScoreSentence(Tokenize("awful screen hate"));
  EXPECT_GT(pos, neg);
  EXPECT_GT(pos, 0.0);
  EXPECT_LT(neg, 0.0);
}

TEST(SentimentEstimatorTest, RejectsBadInput) {
  SentimentEstimatorOptions options;
  EXPECT_FALSE(SentimentEstimator::Train({}, {}, options).ok());
  options.lexicon_weight = 2.0;
  EXPECT_FALSE(
      SentimentEstimator::Train({Tokenize("hello")}, {0.5}, options).ok());
}

TEST(SentimentEstimatorTest, BlendStaysInRange) {
  std::vector<std::vector<std::string>> sentences;
  std::vector<double> ratings;
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    sentences.push_back(Tokenize("good bad screen battery random words"));
    ratings.push_back(rng.NextDouble(-1, 1));
  }
  SentimentEstimatorOptions options;
  options.embedding.dimensions = 8;
  options.lexicon_weight = 0.5;
  auto estimator = SentimentEstimator::Train(sentences, ratings, options);
  ASSERT_TRUE(estimator.ok());
  for (const auto& s : sentences) {
    double score = estimator->ScoreSentence(s);
    EXPECT_LE(score, 1.0);
    EXPECT_GE(score, -1.0);
  }
}

}  // namespace
}  // namespace osrs
