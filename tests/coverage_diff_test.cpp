// Differential tests of the fast-path coverage-graph builder (§4.1):
// precomputed ancestor closure + binary-searched sentiment windows +
// sharded parallel build, checked against a naive reference builder that
// shares no code with the production path (its ancestor distances come
// from a fresh upward BFS per query, its edges from an O(|U|·|W|) scan).
// Every comparison runs at 1, 2 and 8 threads and demands identical
// graphs — same edges, same weights, same CSR order.

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "coverage/coverage_graph.h"
#include "ontology/ontology.h"

namespace osrs {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Naive reference implementation.

/// Shortest directed path length from `ancestor` down to `descendant` via
/// upward BFS over parents(); -1 when not an ancestor-or-self. Independent
/// of Ontology's precomputed closure.
int NaiveAncestorDistance(const Ontology& onto, ConceptId ancestor,
                          ConceptId descendant) {
  std::vector<int> dist(onto.num_concepts(), -1);
  dist[static_cast<size_t>(descendant)] = 0;
  std::vector<ConceptId> frontier{descendant};
  int hops = 0;
  while (!frontier.empty()) {
    if (dist[static_cast<size_t>(ancestor)] >= 0) {
      return dist[static_cast<size_t>(ancestor)];
    }
    std::vector<ConceptId> next;
    ++hops;
    for (ConceptId c : frontier) {
      for (ConceptId parent : onto.parents(c)) {
        if (dist[static_cast<size_t>(parent)] < 0) {
          dist[static_cast<size_t>(parent)] = hops;
          next.push_back(parent);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist[static_cast<size_t>(ancestor)];
}

/// One reference edge; sorted comparisons use the derived ordering.
struct RefEdge {
  int candidate;
  int target;
  double weight;

  bool operator<(const RefEdge& other) const {
    return std::tie(candidate, target) <
           std::tie(other.candidate, other.target);
  }
};

/// All (u, w, weight) edges of the pairs graph by definition: u covers w
/// iff u's concept is an ancestor-or-self of w's concept and (u's concept
/// is the root or |s_u - s_w| <= eps).
std::vector<RefEdge> NaivePairsEdges(
    const Ontology& onto, const std::vector<ConceptSentimentPair>& pairs,
    double eps) {
  std::vector<RefEdge> edges;
  for (int u = 0; u < static_cast<int>(pairs.size()); ++u) {
    for (int w = 0; w < static_cast<int>(pairs.size()); ++w) {
      const auto& source = pairs[static_cast<size_t>(u)];
      const auto& target = pairs[static_cast<size_t>(w)];
      int d = NaiveAncestorDistance(onto, source.concept_id,
                                    target.concept_id);
      if (d < 0) continue;
      if (source.concept_id != onto.root() &&
          std::abs(source.sentiment - target.sentiment) > eps) {
        continue;
      }
      edges.push_back({u, w, static_cast<double>(d)});
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Group-level edges: min weight over the group's member pairs.
std::vector<RefEdge> NaiveGroupEdges(
    const Ontology& onto, const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<std::vector<int>>& groups, double eps) {
  std::vector<RefEdge> pair_edges = NaivePairsEdges(onto, pairs, eps);
  std::vector<int> group_of(pairs.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int member : groups[g]) {
      group_of[static_cast<size_t>(member)] = static_cast<int>(g);
    }
  }
  std::map<std::pair<int, int>, double> best;
  for (const RefEdge& e : pair_edges) {
    int g = group_of[static_cast<size_t>(e.candidate)];
    if (g < 0) continue;
    auto [it, inserted] = best.emplace(std::make_pair(g, e.target), e.weight);
    if (!inserted) it->second = std::min(it->second, e.weight);
  }
  std::vector<RefEdge> edges;
  edges.reserve(best.size());
  for (const auto& [key, weight] : best) {
    edges.push_back({key.first, key.second, weight});
  }
  return edges;  // map iteration is already (candidate, target)-sorted
}

/// Flattens a CoverageGraph's forward CSR into sorted reference edges.
std::vector<RefEdge> GraphEdges(const CoverageGraph& graph) {
  std::vector<RefEdge> edges;
  edges.reserve(graph.num_edges());
  for (int u = 0; u < graph.num_candidates(); ++u) {
    for (const auto& e : graph.EdgesOf(u)) {
      edges.push_back({u, e.endpoint, e.weight});
    }
  }
  return edges;  // CSR order is already (candidate, target)-sorted
}

void ExpectEdgesEqual(const std::vector<RefEdge>& expected,
                      const CoverageGraph& graph, const char* context) {
  std::vector<RefEdge> actual = GraphEdges(graph);
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].candidate, actual[i].candidate) << context;
    EXPECT_EQ(expected[i].target, actual[i].target) << context;
    EXPECT_DOUBLE_EQ(expected[i].weight, actual[i].weight) << context;
  }
  // The backward CSR must mirror the forward one exactly.
  size_t backward_total = 0;
  for (int w = 0; w < graph.num_targets(); ++w) {
    for (const auto& e : graph.CoveringOf(w)) {
      ++backward_total;
      bool found = false;
      for (const auto& f : graph.EdgesOf(e.endpoint)) {
        if (f.endpoint == w && f.weight == e.weight) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << context << " backward edge (" << e.endpoint
                         << ", " << w << ") has no forward twin";
    }
  }
  EXPECT_EQ(backward_total, graph.num_edges()) << context;
}

// ---------------------------------------------------------------------------
// Randomized instance generation.

/// A random rooted DAG: concept i > 0 draws one parent among 0..i-1, plus a
/// second distinct parent with probability `multi_parent_prob` (diamonds,
/// multi-path ancestors of different lengths).
Ontology RandomOntology(Rng& rng, int num_concepts,
                        double multi_parent_prob) {
  Ontology onto;
  for (int i = 0; i < num_concepts; ++i) {
    onto.AddConcept("c" + std::to_string(i));
  }
  for (int i = 1; i < num_concepts; ++i) {
    ConceptId first = static_cast<ConceptId>(rng.NextUint64(
        static_cast<uint64_t>(i)));
    EXPECT_TRUE(onto.AddEdge(first, static_cast<ConceptId>(i)).ok());
    if (i > 1 && rng.NextBernoulli(multi_parent_prob)) {
      ConceptId second = static_cast<ConceptId>(rng.NextUint64(
          static_cast<uint64_t>(i)));
      if (second != first) {
        EXPECT_TRUE(onto.AddEdge(second, static_cast<ConceptId>(i)).ok());
      }
    }
  }
  EXPECT_TRUE(onto.Finalize().ok());
  return onto;
}

/// Sentiments drawn from the exact grid {-1, -0.875, ..., 1} (multiples of
/// 1/8, exactly representable). With eps also a multiple of 1/8, the
/// |Δs| == eps boundary of Definition 1 is hit exactly — the cases where a
/// sloppy window filter would diverge from the linear-scan reference.
std::vector<ConceptSentimentPair> RandomPairs(Rng& rng, const Ontology& onto,
                                              int num_pairs) {
  std::vector<ConceptSentimentPair> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs));
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId concept_id =
        static_cast<ConceptId>(rng.NextUint64(onto.num_concepts()));
    double sentiment =
        -1.0 + 0.125 * static_cast<double>(rng.NextUint64(17));
    pairs.push_back({concept_id, sentiment});
  }
  return pairs;
}

/// Partitions pair indices into random contiguous groups of size 1..4 (the
/// shape BuildItemGraph produces: contiguous runs in reading order).
std::vector<std::vector<int>> RandomGroups(Rng& rng, size_t num_pairs) {
  std::vector<std::vector<int>> groups;
  size_t i = 0;
  while (i < num_pairs) {
    size_t size = 1 + rng.NextUint64(4);
    groups.emplace_back();
    for (size_t j = 0; j < size && i < num_pairs; ++j, ++i) {
      groups.back().push_back(static_cast<int>(i));
    }
  }
  return groups;
}

// ---------------------------------------------------------------------------
// Tests.

TEST(CoverageDiffTest, PairsMatchNaiveReferenceRandomized) {
  Rng rng(20260806);
  const double eps_grid[] = {0.125, 0.25, 0.5};
  for (int round = 0; round < 24; ++round) {
    int num_concepts = 1 + static_cast<int>(rng.NextUint64(40));
    int num_pairs = static_cast<int>(rng.NextUint64(121));
    double multi_parent_prob = 0.25 * rng.NextDouble();
    double eps = eps_grid[rng.NextUint64(3)];
    Ontology onto = RandomOntology(rng, num_concepts, multi_parent_prob);
    std::vector<ConceptSentimentPair> pairs =
        RandomPairs(rng, onto, num_pairs);
    PairDistance dist(&onto, eps);
    std::vector<RefEdge> expected = NaivePairsEdges(onto, pairs, eps);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("round " + std::to_string(round) + " threads " +
                   std::to_string(threads));
      CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs, threads);
      ASSERT_EQ(graph.num_candidates(), num_pairs);
      ASSERT_EQ(graph.num_targets(), num_pairs);
      ExpectEdgesEqual(expected, graph, "pairs");
    }
  }
}

TEST(CoverageDiffTest, GroupsMatchNaiveReferenceRandomized) {
  Rng rng(4242);
  for (int round = 0; round < 16; ++round) {
    int num_concepts = 2 + static_cast<int>(rng.NextUint64(30));
    int num_pairs = static_cast<int>(rng.NextUint64(101));
    Ontology onto = RandomOntology(rng, num_concepts, 0.15);
    std::vector<ConceptSentimentPair> pairs =
        RandomPairs(rng, onto, num_pairs);
    std::vector<std::vector<int>> groups = RandomGroups(rng, pairs.size());
    PairDistance dist(&onto, 0.25);
    std::vector<RefEdge> expected = NaiveGroupEdges(onto, pairs, groups, 0.25);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("round " + std::to_string(round) + " threads " +
                   std::to_string(threads));
      CoverageGraph graph =
          CoverageGraph::BuildForGroups(dist, pairs, groups, threads);
      ASSERT_EQ(graph.num_candidates(), static_cast<int>(groups.size()));
      ASSERT_EQ(graph.num_targets(), num_pairs);
      ExpectEdgesEqual(expected, graph, "groups");
    }
  }
}

TEST(CoverageDiffTest, ExactEpsilonBoundaryIsCovered) {
  // |Δs| == eps exactly (all values binary-representable): Definition 1
  // uses <=, so the boundary pair must be covered — at every thread count,
  // and regardless of the window filter's slack handling.
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  const double eps = 0.25;
  PairDistance dist(&onto, eps);
  std::vector<ConceptSentimentPair> pairs{
      {a, 0.5},     // 0: covers 1 (|Δs| = eps exactly) and 2 (= eps)
      {a, 0.25},    // 1
      {a, 0.75},    // 2
      {a, 0.8125},  // 3: |Δs| = 0.3125 > eps from 0
      {a, -0.25},   // 4: far side
  };
  std::vector<RefEdge> expected = NaivePairsEdges(onto, pairs, eps);
  // Sanity: the boundary edges really are present in the reference.
  auto has_edge = [&](int u, int w) {
    return std::any_of(expected.begin(), expected.end(), [&](const RefEdge& e) {
      return e.candidate == u && e.target == w;
    });
  };
  EXPECT_TRUE(has_edge(0, 1));
  EXPECT_TRUE(has_edge(0, 2));
  EXPECT_FALSE(has_edge(0, 3));
  EXPECT_FALSE(has_edge(0, 4));
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectEdgesEqual(expected,
                     CoverageGraph::BuildForPairs(dist, pairs, threads),
                     "eps boundary");
  }
}

TEST(CoverageDiffTest, MultiParentDiamondUsesShortestPath) {
  // root -> a -> b -> d and root -> d: d has ancestors at distances
  // {d:0, b:1, a:2, root:1} — the closure must keep the min distance.
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId d = onto.AddConcept("d");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.AddEdge(a, b).ok());
  ASSERT_TRUE(onto.AddEdge(b, d).ok());
  ASSERT_TRUE(onto.AddEdge(root, d).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{
      {root, 0.0}, {a, 0.0}, {b, 0.0}, {d, 0.0}};
  std::vector<RefEdge> expected = NaivePairsEdges(onto, pairs, 0.5);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs, threads);
    ExpectEdgesEqual(expected, graph, "diamond");
    // Root reaches d in 1 hop (direct edge), not 3 (via a, b).
    bool found = false;
    for (const auto& e : graph.EdgesOf(0)) {
      if (e.endpoint == 3) {
        EXPECT_DOUBLE_EQ(e.weight, 1.0);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(CoverageDiffTest, DegenerateInstances) {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  PairDistance dist(&onto, 0.5);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    // Empty instance.
    CoverageGraph empty = CoverageGraph::BuildForPairs(dist, {}, threads);
    EXPECT_EQ(empty.num_candidates(), 0);
    EXPECT_EQ(empty.num_targets(), 0);
    EXPECT_EQ(empty.num_edges(), 0u);
    // Single self-covering pair (fewer targets than threads).
    std::vector<ConceptSentimentPair> one{{a, 0.5}};
    CoverageGraph single = CoverageGraph::BuildForPairs(dist, one, threads);
    EXPECT_EQ(single.num_candidates(), 1);
    ASSERT_EQ(single.EdgesOf(0).size(), 1u);
    EXPECT_EQ(single.EdgesOf(0)[0].endpoint, 0);
    EXPECT_DOUBLE_EQ(single.EdgesOf(0)[0].weight, 0.0);
    // Groups over an empty pair set.
    CoverageGraph groups =
        CoverageGraph::BuildForGroups(dist, {}, {}, threads);
    EXPECT_EQ(groups.num_candidates(), 0);
    EXPECT_EQ(groups.num_targets(), 0);
  }
}

TEST(CoverageDiffTest, ThreadCountsProduceIdenticalGraphs) {
  // One larger instance: the serial graph is the baseline and every other
  // thread count must reproduce it edge-for-edge (same order, same
  // weights), including the weighted builder's target weights.
  Rng rng(99);
  Ontology onto = RandomOntology(rng, 120, 0.2);
  std::vector<ConceptSentimentPair> pairs = RandomPairs(rng, onto, 900);
  std::vector<std::vector<int>> groups = RandomGroups(rng, pairs.size());
  std::vector<double> weights(pairs.size());
  for (double& weight : weights) weight = 1.0 + rng.NextDouble();
  PairDistance dist(&onto, 0.375);

  CoverageGraph base = CoverageGraph::BuildForPairs(dist, pairs, 1);
  CoverageGraph base_groups =
      CoverageGraph::BuildForGroups(dist, pairs, groups, 1);
  std::vector<RefEdge> base_edges = GraphEdges(base);
  std::vector<RefEdge> base_group_edges = GraphEdges(base_groups);
  for (int threads : {0, 2, 3, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectEdgesEqual(base_edges,
                     CoverageGraph::BuildForPairs(dist, pairs, threads),
                     "pairs vs serial");
    ExpectEdgesEqual(
        base_group_edges,
        CoverageGraph::BuildForGroups(dist, pairs, groups, threads),
        "groups vs serial");
    CoverageGraph weighted =
        CoverageGraph::BuildForPairsWeighted(dist, pairs, weights, threads);
    ExpectEdgesEqual(base_edges, weighted, "weighted vs serial");
    for (size_t w = 0; w < weights.size(); ++w) {
      ASSERT_DOUBLE_EQ(weighted.target_weight(static_cast<int>(w)),
                       weights[w]);
    }
    // Cost identity on a random selection — the solver-facing contract.
    std::vector<int> selection;
    for (int u = 0; u < base.num_candidates(); u += 7) selection.push_back(u);
    EXPECT_DOUBLE_EQ(
        base.CostOfSelection(selection),
        CoverageGraph::BuildForPairs(dist, pairs, threads)
            .CostOfSelection(selection));
  }
}

}  // namespace
}  // namespace osrs
