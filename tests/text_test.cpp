#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/porter_stemmer.h"
#include "text/sentence_splitter.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace osrs {
namespace {

// --------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, LowercasesAndDropsPunctuation) {
  EXPECT_EQ(Tokenize("The Battery, is GREAT!"),
            (std::vector<std::string>{"the", "battery", "is", "great"}));
}

TEST(TokenizerTest, KeepsInnerApostrophes) {
  EXPECT_EQ(Tokenize("don't stop"),
            (std::vector<std::string>{"don't", "stop"}));
  // Leading apostrophe is not part of a token.
  EXPECT_EQ(Tokenize("'quoted'"), (std::vector<std::string>{"quoted"}));
}

TEST(TokenizerTest, SplitsOnHyphens) {
  EXPECT_EQ(Tokenize("wi-fi"), (std::vector<std::string>{"wi", "fi"}));
}

TEST(TokenizerTest, DigitsAreTokens) {
  EXPECT_EQ(Tokenize("camera 12 mp"),
            (std::vector<std::string>{"camera", "12", "mp"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ... ---").empty());
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string text = "Good phone!";
  auto spans = TokenizeWithOffsets(text);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].offset, 0u);
  EXPECT_EQ(spans[1].offset, 5u);
  EXPECT_EQ(text.substr(spans[1].offset, 5), "phone");
}

// --------------------------------------------------------- SentenceSplitter

TEST(SentenceSplitterTest, SplitsOnTerminators) {
  auto sents = SplitSentences("Great phone. Battery lasts long! Why not?");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0], "Great phone");
  EXPECT_EQ(sents[1], "Battery lasts long");
  EXPECT_EQ(sents[2], "Why not");
}

TEST(SentenceSplitterTest, KeepsAbbreviations) {
  auto sents = SplitSentences("Dr. Smith was great. I will return.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Dr. Smith was great");
}

TEST(SentenceSplitterTest, HandlesEllipsisAndRuns) {
  auto sents = SplitSentences("Really bad... Would not buy!!");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Really bad");
  EXPECT_EQ(sents[1], "Would not buy");
}

TEST(SentenceSplitterTest, NewlinesSplit) {
  auto sents = SplitSentences("line one\nline two");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(SentenceSplitterTest, TrailingTextWithoutTerminator) {
  auto sents = SplitSentences("no punctuation at all");
  ASSERT_EQ(sents.size(), 1u);
  EXPECT_EQ(sents[0], "no punctuation at all");
}

TEST(SentenceSplitterTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   \n ").empty());
}

// ------------------------------------------------------------------ Porter

TEST(PorterStemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("controll"), "control");
}

TEST(PorterStemmerTest, DomainWordsNormalize) {
  // The extractor relies on variants mapping to the same stem.
  EXPECT_EQ(PorterStem("charging"), PorterStem("charge"));
  EXPECT_EQ(PorterStem("batteries"), PorterStem("battery"));
  EXPECT_EQ(PorterStem("screens"), PorterStem("screen"));
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("by"), "by");
}

// --------------------------------------------------------------- Stopwords

TEST(StopwordsTest, CommonFunctionWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("was"));
  EXPECT_FALSE(IsStopword("battery"));
  EXPECT_FALSE(IsStopword("doctor"));
}

// -------------------------------------------------------------- Vocabulary

TEST(VocabularyTest, InterningAndCounts) {
  Vocabulary vocab;
  int a1 = vocab.Add("phone");
  int b = vocab.Add("screen");
  int a2 = vocab.Add("phone");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(vocab.CountOf(a1), 2);
  EXPECT_EQ(vocab.WordOf(b), "screen");
  EXPECT_EQ(vocab.IdOf("phone"), a1);
  EXPECT_EQ(vocab.IdOf("missing"), kUnknownWord);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, DocumentFrequencies) {
  Vocabulary vocab;
  vocab.AddDocument({"good", "phone", "good"});
  vocab.AddDocument({"bad", "phone"});
  EXPECT_EQ(vocab.num_documents(), 2);
  EXPECT_EQ(vocab.DocFrequencyOf(vocab.IdOf("phone")), 2);
  EXPECT_EQ(vocab.DocFrequencyOf(vocab.IdOf("good")), 1);
  // More common words get lower idf.
  EXPECT_LT(vocab.Idf(vocab.IdOf("phone")), vocab.Idf(vocab.IdOf("bad")));
}

TEST(VocabularyTest, MostFrequentOrdering) {
  Vocabulary vocab;
  for (int i = 0; i < 5; ++i) vocab.Add("common");
  for (int i = 0; i < 3; ++i) vocab.Add("medium");
  vocab.Add("rare");
  auto top = vocab.MostFrequent(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(vocab.WordOf(top[0]), "common");
  EXPECT_EQ(vocab.WordOf(top[1]), "medium");
}

}  // namespace
}  // namespace osrs
