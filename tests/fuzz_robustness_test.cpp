// Robustness "fuzz" tests: the deserializers must return a Status (never
// crash, throw, or abort) on arbitrarily mutated inputs, and accepted
// inputs must satisfy the class invariants.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/corpus_io.h"
#include "ontology/ontology.h"
#include "ontology/snomed_like.h"

namespace osrs {
namespace {

/// Applies `count` random byte-level mutations (replace, insert, delete).
std::string Mutate(std::string text, Rng& rng, int count) {
  static constexpr char kBytes[] =
      "CEISORD\t\n0123456789abcxyz|:.-# ";
  for (int i = 0; i < count && !text.empty(); ++i) {
    size_t pos = rng.NextUint64(text.size());
    switch (rng.NextUint64(3)) {
      case 0:
        text[pos] = kBytes[rng.NextUint64(sizeof(kBytes) - 1)];
        break;
      case 1:
        text.insert(text.begin() + static_cast<long>(pos),
                    kBytes[rng.NextUint64(sizeof(kBytes) - 1)]);
        break;
      default:
        text.erase(text.begin() + static_cast<long>(pos));
        break;
    }
  }
  return text;
}

class FuzzRobustness : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzRobustness, OntologyDeserializeNeverCrashes) {
  SnomedLikeOptions options;
  options.num_concepts = 60;
  options.seed = GetParam();
  std::string serialized = BuildSnomedLikeOntology(options).Serialize();
  Rng rng(GetParam() * 99 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(serialized, rng, 1 + trial % 12);
    auto result = Ontology::Deserialize(mutated);
    if (result.ok()) {
      // Whatever was accepted must be a coherent finalized DAG.
      EXPECT_TRUE(result->finalized());
      EXPECT_GE(result->num_concepts(), 1u);
      EXPECT_GE(result->max_depth(), 0);
    }
  }
}

TEST_P(FuzzRobustness, CorpusLoadNeverCrashes) {
  CellPhoneCorpusOptions options;
  options.scale = 0.02;
  options.seed = GetParam();
  Corpus corpus = GenerateCellPhoneCorpus(options);
  // Trim to one item so mutation rounds stay fast.
  corpus.items.resize(1);
  corpus.items[0] = TruncateReviews(corpus.items[0], 10);
  auto serialized = SaveCorpus(corpus);
  ASSERT_TRUE(serialized.ok());
  Rng rng(GetParam() * 77 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(*serialized, rng, 1 + trial % 12);
    auto result = LoadCorpus(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result->ontology.finalized());
    }
  }
}

TEST_P(FuzzRobustness, PureGarbageIsRejectedGracefully) {
  Rng rng(GetParam() * 1234 + 5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    size_t length = rng.NextUint64(120);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.NextUint64(96) + 32));
    }
    (void)Ontology::Deserialize(garbage);
    (void)LoadCorpus(garbage);
    // Reaching here without a crash is the assertion.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness,
                         testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace osrs
