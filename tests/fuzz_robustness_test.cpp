// Robustness "fuzz" tests: the deserializers must return a Status (never
// crash, throw, or abort) on arbitrarily mutated inputs, and accepted
// inputs must satisfy the class invariants.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "api/batch_summarizer.h"
#include "common/rng.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/corpus_io.h"
#include "ontology/ontology.h"
#include "ontology/snomed_like.h"

namespace osrs {
namespace {

/// Applies `count` random byte-level mutations (replace, insert, delete).
std::string Mutate(std::string text, Rng& rng, int count) {
  static constexpr char kBytes[] =
      "CEISORD\t\n0123456789abcxyz|:.-# ";
  for (int i = 0; i < count && !text.empty(); ++i) {
    size_t pos = rng.NextUint64(text.size());
    switch (rng.NextUint64(3)) {
      case 0:
        text[pos] = kBytes[rng.NextUint64(sizeof(kBytes) - 1)];
        break;
      case 1:
        text.insert(text.begin() + static_cast<long>(pos),
                    kBytes[rng.NextUint64(sizeof(kBytes) - 1)]);
        break;
      default:
        text.erase(text.begin() + static_cast<long>(pos));
        break;
    }
  }
  return text;
}

class FuzzRobustness : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzRobustness, OntologyDeserializeNeverCrashes) {
  SnomedLikeOptions options;
  options.num_concepts = 60;
  options.seed = GetParam();
  std::string serialized = BuildSnomedLikeOntology(options).Serialize();
  Rng rng(GetParam() * 99 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(serialized, rng, 1 + trial % 12);
    auto result = Ontology::Deserialize(mutated);
    if (result.ok()) {
      // Whatever was accepted must be a coherent finalized DAG.
      EXPECT_TRUE(result->finalized());
      EXPECT_GE(result->num_concepts(), 1u);
      EXPECT_GE(result->max_depth(), 0);
    }
  }
}

TEST_P(FuzzRobustness, CorpusLoadNeverCrashes) {
  CellPhoneCorpusOptions options;
  options.scale = 0.02;
  options.seed = GetParam();
  Corpus corpus = GenerateCellPhoneCorpus(options);
  // Trim to one item so mutation rounds stay fast.
  corpus.items.resize(1);
  corpus.items[0] = TruncateReviews(corpus.items[0], 10);
  auto serialized = SaveCorpus(corpus);
  ASSERT_TRUE(serialized.ok());
  Rng rng(GetParam() * 77 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(*serialized, rng, 1 + trial % 12);
    auto result = LoadCorpus(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result->ontology.finalized());
    }
  }
}

TEST_P(FuzzRobustness, PureGarbageIsRejectedGracefully) {
  Rng rng(GetParam() * 1234 + 5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    size_t length = rng.NextUint64(120);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.NextUint64(96) + 32));
    }
    (void)Ontology::Deserialize(garbage);
    (void)LoadCorpus(garbage);
    // Reaching here without a crash is the assertion.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness,
                         testing::Values(1u, 2u, 3u, 4u));

// ------------------------------------------ deadline/cancellation fuzzing --

SummaryAlgorithm RandomAlgorithm(Rng& rng) {
  switch (rng.NextUint64(5)) {
    case 0: return SummaryAlgorithm::kGreedy;
    case 1: return SummaryAlgorithm::kGreedyLazy;
    case 2: return SummaryAlgorithm::kIlp;
    case 3: return SummaryAlgorithm::kRandomizedRounding;
    default: return SummaryAlgorithm::kLocalSearch;
  }
}

/// Random tiny deadlines, work budgets, thread counts, and mid-batch
/// cancellation must never crash, deadlock, or produce a malformed batch:
/// exactly one entry per item, each OK (entries within k and flagged
/// consistently), kDeadlineExceeded, or kCancelled.
TEST_P(FuzzRobustness, TinyBudgetsNeverCrashOrMalformBatches) {
  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = 0.02;
  corpus_options.seed = GetParam();
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  corpus.items.resize(std::min<size_t>(corpus.items.size(), 4));
  for (Item& item : corpus.items) item = TruncateReviews(item, 12);

  Rng rng(GetParam() * 313 + 7);
  for (int trial = 0; trial < 12; ++trial) {
    CancellationFlag flag;
    BatchSummarizerOptions options;
    options.summarizer.algorithm = RandomAlgorithm(rng);
    options.summarizer.deadline_ms =
        rng.NextBernoulli(0.7) ? static_cast<double>(rng.NextUint64(8)) : 0.0;
    if (rng.NextBernoulli(0.5)) {
      options.summarizer.max_solver_work =
          static_cast<int64_t>(1 + rng.NextUint64(200));
    }
    options.batch_deadline_ms =
        rng.NextBernoulli(0.3) ? static_cast<double>(rng.NextUint64(15)) : 0.0;
    options.num_threads = static_cast<int>(rng.NextUint64(4));
    options.cancellation = &flag;
    const bool cancel_midway = rng.NextBernoulli(0.3);
    // Draw the delay on this thread: Rng is not thread-safe.
    const uint64_t cancel_after_ms = rng.NextUint64(5);
    std::thread canceller;
    if (cancel_midway) {
      canceller = std::thread([&flag, cancel_after_ms]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
        flag.Cancel();
      });
    }
    int k = static_cast<int>(rng.NextUint64(6));

    BatchSummarizer batch(&corpus.ontology, options);
    auto entries = batch.SummarizeAll(corpus.items, k);
    if (canceller.joinable()) canceller.join();

    ASSERT_EQ(entries.size(), corpus.items.size());
    for (const BatchEntry& entry : entries) {
      if (entry.status.ok()) {
        EXPECT_LE(entry.summary.entries.size(), static_cast<size_t>(k));
        if (entry.summary.degraded) {
          EXPECT_NE(entry.summary.stop_reason, StatusCode::kOk);
        }
        // The JSON rendering of any produced summary stays well-formed
        // (no raw control characters from review text).
        for (char c : entry.summary.ToJson()) {
          EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
        }
      } else {
        EXPECT_TRUE(
            entry.status.code() == StatusCode::kDeadlineExceeded ||
            entry.status.code() == StatusCode::kCancelled)
            << entry.status.ToString();
      }
    }
  }
}

/// The fallback chain is deterministic under identical (work-based)
/// budgets: wall-clock plays no part, so two runs agree entry for entry.
TEST_P(FuzzRobustness, FallbackChainDeterministicUnderWorkBudgets) {
  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = 0.02;
  corpus_options.seed = GetParam();
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  corpus.items.resize(std::min<size_t>(corpus.items.size(), 3));
  for (Item& item : corpus.items) item = TruncateReviews(item, 12);

  Rng rng(GetParam() * 517 + 9);
  for (int trial = 0; trial < 6; ++trial) {
    BatchSummarizerOptions options;
    options.summarizer.algorithm = RandomAlgorithm(rng);
    options.summarizer.max_solver_work =
        static_cast<int64_t>(1 + rng.NextUint64(50));
    options.summarizer.fallback_chain = {SummaryAlgorithm::kGreedy};
    options.num_threads = 2;
    int k = static_cast<int>(1 + rng.NextUint64(5));

    BatchSummarizer batch(&corpus.ontology, options);
    auto a = batch.SummarizeAll(corpus.items, k);
    auto b = batch.SummarizeAll(corpus.items, k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].status.code(), b[i].status.code());
      EXPECT_EQ(a[i].summary.degraded, b[i].summary.degraded);
      EXPECT_EQ(a[i].summary.stop_reason, b[i].summary.stop_reason);
      EXPECT_EQ(a[i].summary.algorithm_used, b[i].summary.algorithm_used);
      ASSERT_EQ(a[i].summary.entries.size(), b[i].summary.entries.size());
      for (size_t j = 0; j < a[i].summary.entries.size(); ++j) {
        EXPECT_EQ(a[i].summary.entries[j].display,
                  b[i].summary.entries[j].display);
      }
    }
  }
}

}  // namespace
}  // namespace osrs
