// Stress tests of IndexedMaxHeap under adversarial update sequences:
// decrease-to-equal keys (tie-break churn), repeated pop + re-update of the
// surviving ids, and all-zero gain vectors. Every sequence is checked
// against a brute-force reference model with the same priority order
// (key descending, id ascending), covering both the owning and the
// arena-backed constructors.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/indexed_heap.h"
#include "common/rng.h"

namespace osrs {
namespace {

/// Brute-force model of the heap's contract: a key array plus an alive set,
/// with max = smallest id among the largest keys.
class ReferenceModel {
 public:
  explicit ReferenceModel(std::vector<double> keys)
      : keys_(std::move(keys)), alive_(keys_.size(), true),
        live_(keys_.size()) {}

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }
  bool Contains(int id) const {
    return id >= 0 && static_cast<size_t>(id) < keys_.size() &&
           alive_[static_cast<size_t>(id)];
  }
  double KeyOf(int id) const { return keys_[static_cast<size_t>(id)]; }

  int PeekMax() const {
    int best = -1;
    for (size_t id = 0; id < keys_.size(); ++id) {
      if (!alive_[id]) continue;
      if (best < 0 || keys_[id] > keys_[static_cast<size_t>(best)]) {
        best = static_cast<int>(id);
      }
    }
    return best;
  }

  int PopMax() {
    int top = PeekMax();
    alive_[static_cast<size_t>(top)] = false;
    --live_;
    return top;
  }

  void UpdateKey(int id, double new_key) {
    keys_[static_cast<size_t>(id)] = new_key;
  }

 private:
  std::vector<double> keys_;
  std::vector<bool> alive_;
  size_t live_;
};

/// Drains both structures completely, asserting identical pop order.
void ExpectSameDrain(IndexedMaxHeap& heap, ReferenceModel& model) {
  while (!model.empty()) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.PeekMax(), model.PeekMax());
    ASSERT_EQ(heap.PopMax(), model.PopMax());
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMaxHeapStress, AllZeroGainsPopInIdOrder) {
  // Degenerate but real: a fully-covered instance where every candidate
  // has zero marginal gain. The tie-break must produce ids ascending.
  IndexedMaxHeap heap(std::vector<double>(37, 0.0));
  for (int expected = 0; expected < 37; ++expected) {
    EXPECT_EQ(heap.PeekMax(), expected);
    EXPECT_DOUBLE_EQ(heap.KeyOf(expected), 0.0);
    EXPECT_EQ(heap.PopMax(), expected);
    EXPECT_FALSE(heap.Contains(expected));
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMaxHeapStress, DecreaseToEqualKeysKeepsTotalOrder) {
  // Adversarial pattern from the greedy solver: after a pick, neighbor
  // gains collapse onto the *same* value as the current maximum. Equal
  // keys must still pop by ascending id, regardless of the order the
  // updates arrived in.
  const size_t n = 64;
  std::vector<double> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<double>(n - i);
  IndexedMaxHeap heap(keys);
  ReferenceModel model(keys);
  // Collapse ids in a scrambled order onto the key of the current max.
  Rng rng(0xDEC2EBULL);
  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(order);
  const double plateau = heap.KeyOf(heap.PeekMax());
  for (int id : order) {
    heap.UpdateKey(id, plateau);
    model.UpdateKey(id, plateau);
  }
  ExpectSameDrain(heap, model);
}

TEST(IndexedMaxHeapStress, RepeatedPopThenReUpdateSurvivors) {
  // Pop the max, then immediately re-update surviving ids to the popped
  // key (the closest legal analogue of pop/push of the same index —
  // popped ids stay out by contract). Contains() must stay false for
  // every popped id throughout.
  const size_t n = 48;
  std::vector<double> keys(n);
  Rng rng(0x9071EULL);
  for (auto& key : keys) key = rng.NextDouble(0.0, 8.0);
  IndexedMaxHeap heap(keys);
  ReferenceModel model(keys);
  std::vector<int> popped;
  while (!model.empty()) {
    int top = model.PopMax();
    ASSERT_EQ(heap.PopMax(), top);
    popped.push_back(top);
    for (int id : popped) EXPECT_FALSE(heap.Contains(id));
    // Nudge up to three survivors onto the key the popped id held.
    double crest = model.empty() ? 0.0 : model.KeyOf(model.PeekMax());
    for (int bump = 0; bump < 3 && !model.empty(); ++bump) {
      int id = static_cast<int>(rng.NextUint64(n));
      if (!model.Contains(id)) continue;
      heap.UpdateKey(id, crest);
      model.UpdateKey(id, crest);
    }
    if (!model.empty()) EXPECT_EQ(heap.PeekMax(), model.PeekMax());
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMaxHeapStress, RandomizedOpSequencesMatchReference) {
  // Mixed adversarial workload over many seeds: random increases,
  // decreases, decrease-to-current-max (equal-key collisions), zeroing,
  // and pops, with PeekMax cross-checked after every operation.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 0x51D5EEDULL);
    const size_t n = 8 + rng.NextUint64(56);
    std::vector<double> keys(n);
    for (auto& key : keys) {
      // Coarse grid so exact collisions are common, not vanishing.
      key = static_cast<double>(rng.NextUint64(6));
    }
    IndexedMaxHeap heap(keys);
    ReferenceModel model(keys);
    for (int step = 0; step < 400 && !model.empty(); ++step) {
      switch (rng.NextUint64(5)) {
        case 0: {  // pop
          ASSERT_EQ(heap.PopMax(), model.PopMax());
          break;
        }
        case 1: {  // decrease-to-equal: collide with the current max key
          int id = static_cast<int>(rng.NextUint64(n));
          if (!model.Contains(id)) break;
          double crest = model.KeyOf(model.PeekMax());
          heap.UpdateKey(id, crest);
          model.UpdateKey(id, crest);
          break;
        }
        case 2: {  // zero out (gain exhausted)
          int id = static_cast<int>(rng.NextUint64(n));
          if (!model.Contains(id)) break;
          heap.UpdateKey(id, 0.0);
          model.UpdateKey(id, 0.0);
          break;
        }
        default: {  // random re-key on the same coarse grid
          int id = static_cast<int>(rng.NextUint64(n));
          if (!model.Contains(id)) break;
          double key = static_cast<double>(rng.NextUint64(6));
          heap.UpdateKey(id, key);
          model.UpdateKey(id, key);
          break;
        }
      }
      ASSERT_EQ(heap.size(), model.size());
      if (!model.empty()) {
        ASSERT_EQ(heap.PeekMax(), model.PeekMax()) << "seed=" << seed;
        EXPECT_DOUBLE_EQ(heap.KeyOf(heap.PeekMax()),
                         model.KeyOf(model.PeekMax()));
      }
    }
    ExpectSameDrain(heap, model);
  }
}

TEST(IndexedMaxHeapStress, ArenaBackedFormMatchesOwningForm) {
  // The greedy solver uses the arena constructor; replay one adversarial
  // sequence through both storage forms and demand identical behavior.
  Rng rng(0xA2E4AULL);
  const size_t n = 40;
  std::vector<double> keys(n);
  for (auto& key : keys) key = static_cast<double>(rng.NextUint64(5));

  Arena arena;
  ArenaFrame frame(arena);
  std::span<double> arena_keys = arena.AllocateArray<double>(n);
  std::copy(keys.begin(), keys.end(), arena_keys.begin());

  IndexedMaxHeap owned(keys);
  IndexedMaxHeap arena_heap(arena_keys, arena);
  for (int step = 0; step < 300 && !owned.empty(); ++step) {
    if (rng.NextUint64(4) == 0) {
      ASSERT_EQ(owned.PopMax(), arena_heap.PopMax());
    } else {
      int id = static_cast<int>(rng.NextUint64(n));
      if (!owned.Contains(id)) continue;
      double key = static_cast<double>(rng.NextUint64(5));
      owned.UpdateKey(id, key);
      arena_heap.UpdateKey(id, key);
    }
    ASSERT_EQ(owned.size(), arena_heap.size());
    if (!owned.empty()) ASSERT_EQ(owned.PeekMax(), arena_heap.PeekMax());
  }
  while (!owned.empty()) ASSERT_EQ(owned.PopMax(), arena_heap.PopMax());
  EXPECT_TRUE(arena_heap.empty());
}

}  // namespace
}  // namespace osrs
