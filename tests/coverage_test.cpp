#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"

namespace osrs {
namespace {

Ontology BuildChain() {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId s = onto.AddConcept("s");
  EXPECT_TRUE(onto.AddEdge(root, a).ok());
  EXPECT_TRUE(onto.AddEdge(a, b).ok());
  EXPECT_TRUE(onto.AddEdge(root, s).ok());
  EXPECT_TRUE(onto.Finalize().ok());
  return onto;
}

TEST(CoverageGraphTest, PairsGraphEdgesMatchDefinition) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{
      {onto.FindByName("a"), 0.0},   // 0: covers itself and pair 1
      {onto.FindByName("b"), 0.2},   // 1: covers itself only
      {onto.FindByName("b"), 0.9},   // 2: outside eps of 0 and 1
      {onto.FindByName("s"), 0.0},   // 3: unrelated branch
  };
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  EXPECT_EQ(graph.num_candidates(), 4);
  EXPECT_EQ(graph.num_targets(), 4);

  // Exhaustively compare edge existence/weight with the direct distance.
  for (int u = 0; u < 4; ++u) {
    std::set<int> targets;
    for (const auto& e : graph.EdgesOf(u)) {
      targets.insert(e.endpoint);
      EXPECT_DOUBLE_EQ(e.weight,
                       dist(pairs[static_cast<size_t>(u)],
                            pairs[static_cast<size_t>(e.endpoint)]));
    }
    for (int w = 0; w < 4; ++w) {
      bool covered = dist.Covers(pairs[static_cast<size_t>(u)],
                                 pairs[static_cast<size_t>(w)]);
      EXPECT_EQ(targets.count(w) > 0, covered) << "u=" << u << " w=" << w;
    }
  }
}

TEST(CoverageGraphTest, RootDistancesMatchDepths) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.0}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  EXPECT_DOUBLE_EQ(graph.root_distance(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.root_distance(1), 2.0);
  EXPECT_DOUBLE_EQ(graph.EmptySummaryCost(), 3.0);
}

TEST(CoverageGraphTest, BackwardEdgesMirrorForward) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.1},
                                          {onto.FindByName("b"), 0.2}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  size_t forward_total = 0, backward_total = 0;
  for (int u = 0; u < graph.num_candidates(); ++u) {
    forward_total += graph.EdgesOf(u).size();
  }
  for (int w = 0; w < graph.num_targets(); ++w) {
    backward_total += graph.CoveringOf(w).size();
    for (const auto& back : graph.CoveringOf(w)) {
      bool found = false;
      for (const auto& fwd : graph.EdgesOf(back.endpoint)) {
        if (fwd.endpoint == w && fwd.weight == back.weight) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(forward_total, backward_total);
  EXPECT_EQ(forward_total, graph.num_edges());
}

TEST(CoverageGraphTest, CostOfSelectionMatchesBruteForce) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.2},
                                          {onto.FindByName("b"), 0.9},
                                          {onto.FindByName("s"), 0.0}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  for (int u = 0; u < 4; ++u) {
    std::vector<ConceptSentimentPair> summary{pairs[static_cast<size_t>(u)]};
    EXPECT_DOUBLE_EQ(graph.CostOfSelection({u}),
                     SummaryCost(dist, summary, pairs));
  }
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0, 2}),
                   SummaryCost(dist, {pairs[0], pairs[2]}, pairs));
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({}), SummaryCost(dist, {}, pairs));
}

TEST(CoverageGraphTest, GroupsAggregateByMinimum) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{
      {onto.FindByName("a"), 0.0},  // 0
      {onto.FindByName("b"), 0.1},  // 1
      {onto.FindByName("s"), 0.0},  // 2
  };
  // Sentence 0 holds pairs {0, 1}; sentence 1 holds {2}.
  std::vector<std::vector<int>> groups{{0, 1}, {2}};
  CoverageGraph graph = CoverageGraph::BuildForGroups(dist, pairs, groups);
  EXPECT_EQ(graph.num_candidates(), 2);
  EXPECT_EQ(graph.num_targets(), 3);

  // Group 0 covers target 1 both via pair 0 (distance 1) and pair 1
  // (distance 0): the edge must carry the minimum, 0.
  bool found = false;
  for (const auto& e : graph.EdgesOf(0)) {
    if (e.endpoint == 1) {
      EXPECT_DOUBLE_EQ(e.weight, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Selecting both sentences covers everything at distance 0.
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0, 1}), 0.0);
}

TEST(CoverageGraphTest, GroupSelectionCostMatchesPairUnion) {
  // The §4.5 semantics: cost of selecting sentences X equals
  // C(P(X), P(R)) on the flat pair set.
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{
      {onto.FindByName("a"), 0.0},  {onto.FindByName("b"), 0.4},
      {onto.FindByName("b"), -0.9}, {onto.FindByName("s"), 0.3},
      {onto.FindByName("a"), -0.2},
  };
  std::vector<std::vector<int>> groups{{0, 1}, {2}, {3, 4}};
  CoverageGraph graph = CoverageGraph::BuildForGroups(dist, pairs, groups);

  auto union_cost = [&](const std::vector<int>& gs) {
    std::vector<ConceptSentimentPair> summary;
    for (int g : gs) {
      for (int p : groups[static_cast<size_t>(g)]) {
        summary.push_back(pairs[static_cast<size_t>(p)]);
      }
    }
    return SummaryCost(dist, summary, pairs);
  };
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0}), union_cost({0}));
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({1}), union_cost({1}));
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0, 2}), union_cost({0, 2}));
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0, 1, 2}), union_cost({0, 1, 2}));
}

TEST(CoverageGraphTest, PairNotInAnyGroupIsTargetOnly) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.1}};
  std::vector<std::vector<int>> groups{{0}};  // pair 1 is target-only
  CoverageGraph graph = CoverageGraph::BuildForGroups(dist, pairs, groups);
  EXPECT_EQ(graph.num_candidates(), 1);
  EXPECT_EQ(graph.num_targets(), 2);
  // Group 0 still covers target 1 through pair 0.
  EXPECT_DOUBLE_EQ(graph.CostOfSelection({0}), 1.0);
}

TEST(CoverageGraphTest, RandomizedAgainstBruteForce) {
  // Property: on random instances over a synthetic ontology, the graph's
  // selection costs equal the brute-force Definition 2 evaluation.
  SnomedLikeOptions options;
  options.num_concepts = 120;
  options.max_depth = 5;
  Ontology onto = BuildSnomedLikeOntology(options);
  Rng rng(2024);
  PairDistance dist(&onto, 0.5);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<ConceptSentimentPair> pairs;
    for (int i = 0; i < 40; ++i) {
      ConceptId c = static_cast<ConceptId>(
          1 + rng.NextUint64(onto.num_concepts() - 1));
      pairs.push_back({c, rng.NextDouble(-1.0, 1.0)});
    }
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
    for (int s = 0; s < 5; ++s) {
      std::vector<size_t> chosen = rng.SampleWithoutReplacement(40, 4);
      std::vector<int> selection(chosen.begin(), chosen.end());
      std::vector<ConceptSentimentPair> summary;
      for (int u : selection) summary.push_back(pairs[static_cast<size_t>(u)]);
      EXPECT_NEAR(graph.CostOfSelection(selection),
                  SummaryCost(dist, summary, pairs), 1e-9);
    }
  }
}

TEST(CoverageGraphTest, AverageDegreeReported) {
  Ontology onto = BuildChain();
  PairDistance dist(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.1}};
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, pairs);
  EXPECT_GT(graph.AverageCandidateDegree(), 0.0);
}

}  // namespace
}  // namespace osrs
