#include <set>
#include <string>

#include <gtest/gtest.h>

#include "ontology/cellphone_hierarchy.h"
#include "ontology/ontology.h"
#include "ontology/snomed_like.h"

namespace osrs {
namespace {

/// Small diamond DAG used across tests: root has children a and b;
/// a has children c and d; b also parents d (the diamond); c parents e.
Ontology BuildDiamond() {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId c = onto.AddConcept("c");
  ConceptId d = onto.AddConcept("d");
  ConceptId e = onto.AddConcept("e");
  EXPECT_TRUE(onto.AddEdge(root, a).ok());
  EXPECT_TRUE(onto.AddEdge(root, b).ok());
  EXPECT_TRUE(onto.AddEdge(a, c).ok());
  EXPECT_TRUE(onto.AddEdge(a, d).ok());
  EXPECT_TRUE(onto.AddEdge(b, d).ok());
  EXPECT_TRUE(onto.AddEdge(c, e).ok());
  EXPECT_TRUE(onto.Finalize().ok());
  return onto;
}

TEST(OntologyTest, BasicAccessors) {
  Ontology onto = BuildDiamond();
  EXPECT_EQ(onto.num_concepts(), 6u);
  EXPECT_EQ(onto.num_edges(), 6u);
  EXPECT_EQ(onto.root(), onto.FindByName("root"));
  EXPECT_EQ(onto.name(onto.root()), "root");
  EXPECT_EQ(onto.max_depth(), 3);
}

TEST(OntologyTest, FindByNameMissing) {
  Ontology onto = BuildDiamond();
  EXPECT_EQ(onto.FindByName("nope"), kInvalidConcept);
}

TEST(OntologyTest, ParentsAndChildren) {
  Ontology onto = BuildDiamond();
  ConceptId d = onto.FindByName("d");
  EXPECT_EQ(onto.parents(d).size(), 2u);
  ConceptId a = onto.FindByName("a");
  EXPECT_EQ(onto.children(a).size(), 2u);
}

TEST(OntologyTest, SelfLoopRejected) {
  Ontology onto;
  ConceptId x = onto.AddConcept("x");
  EXPECT_FALSE(onto.AddEdge(x, x).ok());
}

TEST(OntologyTest, DuplicateEdgeIgnored) {
  Ontology onto;
  ConceptId r = onto.AddConcept("r");
  ConceptId x = onto.AddConcept("x");
  EXPECT_TRUE(onto.AddEdge(r, x).ok());
  EXPECT_TRUE(onto.AddEdge(r, x).ok());
  EXPECT_EQ(onto.num_edges(), 1u);
}

TEST(OntologyTest, CycleDetected) {
  Ontology onto;
  ConceptId r = onto.AddConcept("r");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  EXPECT_TRUE(onto.AddEdge(r, a).ok());
  EXPECT_TRUE(onto.AddEdge(a, b).ok());
  EXPECT_TRUE(onto.AddEdge(b, a).ok());  // creates cycle a->b->a
  EXPECT_FALSE(onto.Finalize().ok());
}

TEST(OntologyTest, MultipleRootsRejected) {
  Ontology onto;
  onto.AddConcept("r1");
  onto.AddConcept("r2");
  EXPECT_FALSE(onto.Finalize().ok());
}

TEST(OntologyTest, EmptyRejected) {
  Ontology onto;
  EXPECT_FALSE(onto.Finalize().ok());
}

TEST(OntologyTest, AncestorDistanceShortestPath) {
  Ontology onto = BuildDiamond();
  ConceptId root = onto.root();
  ConceptId a = onto.FindByName("a");
  ConceptId b = onto.FindByName("b");
  ConceptId d = onto.FindByName("d");
  ConceptId e = onto.FindByName("e");
  EXPECT_EQ(onto.AncestorDistance(root, e), 3);
  EXPECT_EQ(onto.AncestorDistance(root, d), 2);
  EXPECT_EQ(onto.AncestorDistance(a, d), 1);
  EXPECT_EQ(onto.AncestorDistance(b, d), 1);
  EXPECT_EQ(onto.AncestorDistance(a, a), 0);
  // Not an ancestor:
  EXPECT_EQ(onto.AncestorDistance(b, e), -1);
  EXPECT_EQ(onto.AncestorDistance(e, a), -1);  // descendant, not ancestor
}

TEST(OntologyTest, IsAncestorOrSelf) {
  Ontology onto = BuildDiamond();
  ConceptId a = onto.FindByName("a");
  ConceptId e = onto.FindByName("e");
  EXPECT_TRUE(onto.IsAncestorOrSelf(a, e));
  EXPECT_TRUE(onto.IsAncestorOrSelf(e, e));
  EXPECT_FALSE(onto.IsAncestorOrSelf(e, a));
}

TEST(OntologyTest, AncestorsWithDistanceIncludesSelfAndAll) {
  Ontology onto = BuildDiamond();
  ConceptId d = onto.FindByName("d");
  auto ancestors = onto.AncestorsWithDistance(d);
  std::set<ConceptId> ids;
  for (const auto& [id, dist] : ancestors) {
    ids.insert(id);
    EXPECT_EQ(dist, onto.AncestorDistance(id, d));
  }
  EXPECT_EQ(ids.size(), 4u);  // d, a, b, root
  EXPECT_TRUE(ids.count(d));
  EXPECT_TRUE(ids.count(onto.root()));
}

TEST(OntologyTest, AncestorsOfSpanMatchesCopyingVariant) {
  Ontology onto = BuildDiamond();
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    auto span = onto.AncestorsOf(id);
    auto copied = onto.AncestorsWithDistance(id);
    ASSERT_EQ(span.size(), copied.size());
    for (size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i].concept_id, copied[i].first);
      EXPECT_EQ(span[i].distance, copied[i].second);
    }
  }
}

TEST(OntologyTest, AncestorsOfSortedByDistanceThenId) {
  Ontology onto = BuildDiamond();
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    auto span = onto.AncestorsOf(id);
    ASSERT_FALSE(span.empty());
    // Self first at distance 0, then strictly increasing (distance, id).
    EXPECT_EQ(span[0].concept_id, id);
    EXPECT_EQ(span[0].distance, 0);
    for (size_t i = 1; i < span.size(); ++i) {
      bool ordered = span[i - 1].distance < span[i].distance ||
                     (span[i - 1].distance == span[i].distance &&
                      span[i - 1].concept_id < span[i].concept_id);
      EXPECT_TRUE(ordered) << "at " << i << " for concept " << id;
    }
  }
}

TEST(OntologyTest, AncestorsOfDiamondKeepsMinimumDistance) {
  // root -> a -> b -> c and root -> c: the closure of c must record the
  // direct 1-hop path to root, not the 3-hop one through a and b.
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId c = onto.AddConcept("c");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.AddEdge(a, b).ok());
  ASSERT_TRUE(onto.AddEdge(b, c).ok());
  ASSERT_TRUE(onto.AddEdge(root, c).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  bool saw_root = false;
  for (const AncestorEntry& entry : onto.AncestorsOf(c)) {
    if (entry.concept_id == root) {
      EXPECT_EQ(entry.distance, 1);
      saw_root = true;
    }
  }
  EXPECT_TRUE(saw_root);
  EXPECT_EQ(onto.AncestorsOf(c).size(), 4u);
}

TEST(OntologyTest, DepthFromRootMatchesAncestorDistance) {
  Ontology onto = BuildDiamond();
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    EXPECT_EQ(onto.DepthFromRoot(id), onto.AncestorDistance(onto.root(), id));
  }
}

TEST(OntologyTest, TopologicalOrderRespectsEdges) {
  Ontology onto = BuildDiamond();
  const auto& order = onto.topological_order();
  ASSERT_EQ(order.size(), onto.num_concepts());
  std::vector<int> position(onto.num_concepts());
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (ConceptId c = 0; c < static_cast<ConceptId>(onto.num_concepts()); ++c) {
    for (ConceptId child : onto.children(c)) {
      EXPECT_LT(position[static_cast<size_t>(c)],
                position[static_cast<size_t>(child)]);
    }
  }
}

TEST(OntologyTest, SynonymLookupIsCaseInsensitive) {
  Ontology onto;
  ConceptId r = onto.AddConcept("r");
  ConceptId x = onto.AddConcept("battery life");
  EXPECT_TRUE(onto.AddEdge(r, x).ok());
  EXPECT_TRUE(onto.AddSynonym(x, "Battery Life").ok());
  EXPECT_TRUE(onto.Finalize().ok());
  EXPECT_EQ(onto.FindByTerm("battery life"), x);
  EXPECT_EQ(onto.FindByTerm("BATTERY LIFE"), x);
  EXPECT_EQ(onto.FindByTerm("battery"), kInvalidConcept);
}

TEST(OntologyTest, ConflictingSynonymRejected) {
  Ontology onto;
  ConceptId x = onto.AddConcept("x");
  ConceptId y = onto.AddConcept("y");
  EXPECT_TRUE(onto.AddSynonym(x, "term").ok());
  EXPECT_FALSE(onto.AddSynonym(y, "term").ok());
  EXPECT_TRUE(onto.AddSynonym(x, "term").ok());  // idempotent re-registration
}

TEST(OntologyTest, SerializeDeserializeRoundTrip) {
  Ontology onto = BuildDiamond();
  std::string text = onto.Serialize();
  auto restored = Ontology::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_concepts(), onto.num_concepts());
  EXPECT_EQ(restored->num_edges(), onto.num_edges());
  EXPECT_EQ(restored->max_depth(), onto.max_depth());
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    EXPECT_EQ(restored->name(id), onto.name(id));
  }
}

TEST(OntologyTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Ontology::Deserialize("Z\t0\t0\n").ok());
  EXPECT_FALSE(Ontology::Deserialize("C\t5\tname\n").ok());
}

TEST(OntologyTest, ToTreeStringMentionsEveryConcept) {
  Ontology onto = BuildDiamond();
  std::string tree = onto.ToTreeString();
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    EXPECT_NE(tree.find(onto.name(id)), std::string::npos);
  }
}

TEST(OntologyTest, DescendantsOfCoverSubtree) {
  Ontology onto = BuildDiamond();
  ConceptId a = onto.FindByName("a");
  auto descendants = onto.DescendantsOf(a);
  std::set<ConceptId> ids(descendants.begin(), descendants.end());
  // a's subtree: a, c, d, e.
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_TRUE(ids.count(a));
  EXPECT_TRUE(ids.count(onto.FindByName("c")));
  EXPECT_TRUE(ids.count(onto.FindByName("d")));
  EXPECT_TRUE(ids.count(onto.FindByName("e")));
  EXPECT_EQ(onto.SubtreeSize(a), 4u);
  EXPECT_EQ(onto.SubtreeSize(onto.root()), onto.num_concepts());
}

TEST(OntologyTest, LeafDetection) {
  Ontology onto = BuildDiamond();
  EXPECT_TRUE(onto.IsLeaf(onto.FindByName("e")));
  EXPECT_TRUE(onto.IsLeaf(onto.FindByName("d")));
  EXPECT_FALSE(onto.IsLeaf(onto.FindByName("a")));
  EXPECT_FALSE(onto.IsLeaf(onto.root()));
  EXPECT_EQ(onto.SubtreeSize(onto.FindByName("e")), 1u);
}

TEST(OntologyTest, AverageAncestorCountDiamond) {
  Ontology onto = BuildDiamond();
  // root:1 a:2 b:2 c:3 d:4 e:4 -> 16/6
  EXPECT_NEAR(onto.AverageAncestorCount(), 16.0 / 6.0, 1e-12);
}

// ----------------------------------------------------- Cell phone (Fig 3) --

TEST(CellPhoneHierarchyTest, BuildsValidDag) {
  Ontology onto = BuildCellPhoneHierarchy();
  EXPECT_TRUE(onto.finalized());
  EXPECT_GE(onto.num_concepts(), 70u);  // ~100 popular aspects
  EXPECT_EQ(onto.name(onto.root()), "phone");
  EXPECT_GE(onto.max_depth(), 3);
}

TEST(CellPhoneHierarchyTest, KnownAspectsPresent) {
  Ontology onto = BuildCellPhoneHierarchy();
  for (const char* aspect : {"screen", "battery", "camera", "price",
                             "battery life", "screen resolution"}) {
    EXPECT_NE(onto.FindByName(aspect), kInvalidConcept) << aspect;
  }
}

TEST(CellPhoneHierarchyTest, SubAspectUnderParent) {
  Ontology onto = BuildCellPhoneHierarchy();
  ConceptId battery = onto.FindByName("battery");
  ConceptId battery_life = onto.FindByName("battery life");
  EXPECT_TRUE(onto.IsAncestorOrSelf(battery, battery_life));
  EXPECT_EQ(onto.AncestorDistance(battery, battery_life), 1);
}

TEST(CellPhoneHierarchyTest, SynonymsResolve) {
  Ontology onto = BuildCellPhoneHierarchy();
  EXPECT_EQ(onto.FindByTerm("display"), onto.FindByName("screen"));
  EXPECT_EQ(onto.FindByTerm("ram"), onto.FindByName("memory"));
}

// ------------------------------------------------------------ SNOMED-like --

TEST(SnomedLikeTest, GeneratesRequestedSize) {
  SnomedLikeOptions options;
  options.num_concepts = 500;
  Ontology onto = BuildSnomedLikeOntology(options);
  EXPECT_EQ(onto.num_concepts(), 500u);
  EXPECT_TRUE(onto.finalized());
}

TEST(SnomedLikeTest, DeterministicForSeed) {
  SnomedLikeOptions options;
  options.num_concepts = 300;
  Ontology a = BuildSnomedLikeOntology(options);
  Ontology b = BuildSnomedLikeOntology(options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(SnomedLikeTest, DifferentSeedsDiffer) {
  SnomedLikeOptions options;
  options.num_concepts = 300;
  Ontology a = BuildSnomedLikeOntology(options);
  options.seed = 123;
  Ontology b = BuildSnomedLikeOntology(options);
  EXPECT_NE(a.Serialize(), b.Serialize());
}

TEST(SnomedLikeTest, RespectsMaxDepth) {
  SnomedLikeOptions options;
  options.num_concepts = 1000;
  options.max_depth = 5;
  Ontology onto = BuildSnomedLikeOntology(options);
  EXPECT_LE(onto.max_depth(), 5);
  EXPECT_GE(onto.max_depth(), 3);  // should actually use the depth budget
}

TEST(SnomedLikeTest, ShallowAverageAncestors) {
  // §4.1's linearity claim: the average number of ancestors is small.
  SnomedLikeOptions options;
  options.num_concepts = 2000;
  Ontology onto = BuildSnomedLikeOntology(options);
  EXPECT_LT(onto.AverageAncestorCount(), 20.0);
}

TEST(SnomedLikeTest, MultiParentDiamondsExist) {
  SnomedLikeOptions options;
  options.num_concepts = 2000;
  options.multi_parent_prob = 0.3;
  Ontology onto = BuildSnomedLikeOntology(options);
  int multi_parent = 0;
  for (ConceptId id = 0; id < static_cast<ConceptId>(onto.num_concepts());
       ++id) {
    if (onto.parents(id).size() >= 2) ++multi_parent;
  }
  EXPECT_GT(multi_parent, 10);
}

TEST(SnomedLikeTest, TermLexiconPopulated) {
  SnomedLikeOptions options;
  options.num_concepts = 200;
  options.synonyms_per_concept = 2;
  Ontology onto = BuildSnomedLikeOntology(options);
  EXPECT_GE(onto.term_lexicon().size(), 350u);  // ~2 per non-root concept
}

}  // namespace
}  // namespace osrs
