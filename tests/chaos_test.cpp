// Chaos tests of the fault-injection subsystem (src/fault/failpoint.h)
// and the resilience machinery built on it: the BatchSummarizer exception
// boundary, the transient-failure RetryPolicy, and the per-item isolation
// guarantee. The core of the file is a randomized campaign: 200+ failpoint
// schedules — random subsets of the production sites armed with random
// actions and triggers — each driven through a full batch, asserting the
// invariants the subsystem promises:
//
//   * the process never dies (bad_alloc injections are isolated);
//   * SummarizeAll returns exactly one coherent entry per item;
//   * per-entry retry counts never exceed the policy budget;
//   * single-threaded schedules are bit-reproducible under a fixed seed.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/annotator.h"
#include "api/batch_summarizer.h"
#include "api/review_summarizer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/model.h"
#include "datagen/corpus_io.h"
#include "fault/failpoint.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/ontology.h"

namespace osrs {
namespace {

using fault::FailAction;
using fault::Failpoint;
using fault::FailpointRegistry;
using fault::FailpointSpec;
using fault::FailTrigger;
using fault::ParseFailpointSpec;

/// The failpoint sites the batch pipeline evaluates per solve attempt.
constexpr const char* kBatchSites[] = {
    "osrs.coverage.alloc",
    "osrs.solver.step",
    "osrs.lp.pivot",
};

/// RAII: every test starts and ends with a fully disarmed registry, so a
/// failed EXPECT cannot leak an armed failpoint into the next test.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

class FailpointSpecTest : public ChaosTest {};
class FailpointTriggerTest : public ChaosTest {};
class FailpointRegistryTest : public ChaosTest {};
class ExceptionBoundaryTest : public ChaosTest {};
class RetryPolicyTest : public ChaosTest {};
class AnnotationFailpointTest : public ChaosTest {};
class DeadlineRetryTest : public ChaosTest {};
class IoFailpointTest : public ChaosTest {};
class ChaosCampaignTest : public ChaosTest {};

Item SmallItem(const Ontology& onto, const std::string& id) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  Item item;
  item.id = id;
  Review review;
  review.sentences.push_back({"screen is great", {{screen, 0.75}}});
  review.sentences.push_back({"battery is awful", {{battery, -0.9}}});
  item.reviews.push_back(std::move(review));
  return item;
}

/// A small random item over the cell-phone ontology: a handful of
/// sentences, each carrying one or two random concept-sentiment pairs.
Item RandomItem(const Ontology& onto, Rng& rng, const std::string& id) {
  Item item;
  item.id = id;
  Review review;
  int num_sentences = static_cast<int>(rng.NextInt(3, 7));
  for (int s = 0; s < num_sentences; ++s) {
    Sentence sentence;
    sentence.text = id + "-s" + std::to_string(s);
    int num_pairs = static_cast<int>(rng.NextInt(1, 2));
    for (int p = 0; p < num_pairs; ++p) {
      ConceptId c = static_cast<ConceptId>(
          1 + rng.NextUint64(onto.num_concepts() - 1));
      double sentiment =
          std::clamp(rng.NextGaussian(0.0, 0.6), -1.0, 1.0);
      sentence.pairs.push_back({c, sentiment});
    }
    review.sentences.push_back(std::move(sentence));
  }
  item.reviews.push_back(std::move(review));
  return item;
}

/// Semantic fingerprint of one batch entry: status, retry accounting, and
/// every solution field of the summary — but none of the timing fields
/// (budget_spent_ms, solver_seconds, stats), which legitimately vary
/// between runs.
std::string Fingerprint(const BatchEntry& entry) {
  std::string out = StrFormat(
      "status=%s retries=%d exhausted=%d isolated=%d",
      StatusCodeToString(entry.status.code()), entry.retries,
      entry.exhausted_retries ? 1 : 0, entry.isolated_exception ? 1 : 0);
  if (!entry.status.ok()) {
    out += " msg=" + entry.status.message();
    return out;
  }
  const ItemSummary& s = entry.summary;
  out += StrFormat(
      " cost=%.17g eps=%.17g pairs=%zu cands=%zu edges=%zu degraded=%d "
      "algo=%s stop=%s",
      s.cost, s.epsilon, s.num_pairs, s.num_candidates, s.num_edges,
      s.degraded ? 1 : 0, SummaryAlgorithmToString(s.algorithm_used),
      StatusCodeToString(s.stop_reason));
  for (const SummaryEntry& e : s.entries) {
    out += StrFormat(" [%s|%d|%.17g|%d|%d]", e.display.c_str(),
                     e.pair.concept_id, e.pair.sentiment, e.review_index,
                     e.sentence_index);
  }
  return out;
}

// ------------------------------------------------------------ spec grammar --

TEST_F(FailpointSpecTest, ParsesErrorActionWithEveryTrigger) {
  auto parsed =
      ParseFailpointSpec("osrs.io.read=error(unavailable):every(3)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, "osrs.io.read");
  EXPECT_EQ(parsed->second.action, FailAction::kError);
  EXPECT_EQ(parsed->second.code, StatusCode::kUnavailable);
  EXPECT_EQ(parsed->second.trigger, FailTrigger::kEveryNth);
  EXPECT_EQ(parsed->second.n, 3);
}

TEST_F(FailpointSpecTest, DefaultTriggerIsAlways) {
  auto parsed = ParseFailpointSpec("x=bad_alloc");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->second.action, FailAction::kThrowBadAlloc);
  EXPECT_EQ(parsed->second.trigger, FailTrigger::kAlways);
}

TEST_F(FailpointSpecTest, ParsesDelayWithTimes) {
  auto parsed = ParseFailpointSpec(" x = delay(2.5) : times(4) ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->second.action, FailAction::kDelay);
  EXPECT_DOUBLE_EQ(parsed->second.delay_ms, 2.5);
  EXPECT_EQ(parsed->second.trigger, FailTrigger::kTimes);
  EXPECT_EQ(parsed->second.n, 4);
}

TEST_F(FailpointSpecTest, ParsesProbabilityWithSeed) {
  auto parsed = ParseFailpointSpec("x=error(internal):prob(0.25,99)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->second.code, StatusCode::kInternal);
  EXPECT_EQ(parsed->second.trigger, FailTrigger::kProbability);
  EXPECT_DOUBLE_EQ(parsed->second.probability, 0.25);
  EXPECT_EQ(parsed->second.seed, 99u);
}

TEST_F(FailpointSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "no-equals-sign",            // missing '='
      "=error(internal)",          // empty name
      "x=error(bogus_code)",       // unknown status code
      "x=error(ok)",               // cannot inject OK
      "x=frobnicate",              // unknown action
      "x=bad_alloc(3)",            // bad_alloc takes no args
      "x=delay(-1)",               // negative delay
      "x=error(internal):every(0)",   // every() needs >= 1
      "x=error(internal):prob(1.5)",  // p out of range
      "x=error(internal):never",      // unknown trigger
  };
  for (const char* spec : bad) {
    auto parsed = ParseFailpointSpec(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << spec;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

// ------------------------------------------------------- trigger semantics --

TEST_F(FailpointTriggerTest, OnceFiresExactlyOnce) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.once");
  FailpointSpec spec;
  spec.trigger = FailTrigger::kOnce;
  fp->Arm(spec);
  EXPECT_FALSE(fp->Evaluate().ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_EQ(fp->hits(), 11);
  EXPECT_EQ(fp->injections(), 1);
}

TEST_F(FailpointTriggerTest, TimesFiresFirstN) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.times");
  FailpointSpec spec;
  spec.trigger = FailTrigger::kTimes;
  spec.n = 3;
  fp->Arm(spec);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fp->Evaluate().ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_EQ(fp->injections(), 3);
}

TEST_F(FailpointTriggerTest, EveryNthFiresOnMultiples) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.every");
  FailpointSpec spec;
  spec.trigger = FailTrigger::kEveryNth;
  spec.n = 3;
  fp->Arm(spec);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fp->Evaluate().ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      true, false, false, true}));
}

TEST_F(FailpointTriggerTest, ProbabilityIsDeterministicUnderFixedSeed) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.prob");
  FailpointSpec spec;
  spec.trigger = FailTrigger::kProbability;
  spec.probability = 0.5;
  spec.seed = 12345;
  auto run = [&]() {
    fp->Arm(spec);  // Arm() reseeds, restarting the schedule.
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!fp->Evaluate().ok());
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Sanity: p=0.5 over 64 hits fires at least once and skips at least once.
  EXPECT_GT(fp->injections(), 0);
  EXPECT_LT(fp->injections(), 64);
}

TEST_F(FailpointTriggerTest, DisarmedFailpointIsFree) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.disarmed");
  EXPECT_FALSE(fp->armed());
  EXPECT_TRUE(fp->Evaluate().ok());
  FailpointSpec spec;
  fp->Arm(spec);
  EXPECT_FALSE(fp->Evaluate().ok());
  fp->Disarm();
  EXPECT_TRUE(fp->Evaluate().ok());
}

TEST_F(FailpointTriggerTest, InjectedErrorCarriesFailpointName) {
  Failpoint* fp = FailpointRegistry::Global().Get("chaos.test.named");
  FailpointSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  fp->Arm(spec);
  Status status = fp->Evaluate();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("chaos.test.named"), std::string::npos);
}

// --------------------------------------------------------------- registry --

TEST_F(FailpointRegistryTest, HandlesAreStablePerName) {
  Failpoint* a = FailpointRegistry::Global().Get("chaos.test.stable");
  Failpoint* b = FailpointRegistry::Global().Get("chaos.test.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "chaos.test.stable");
}

TEST_F(FailpointRegistryTest, ArmFromSpecArmsMultiple) {
  Status status = FailpointRegistry::Global().ArmFromSpec(
      "chaos.test.multi_a=error(unavailable):once; "
      "chaos.test.multi_b=delay(0.1):every(2);");
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::vector<std::string> armed = FailpointRegistry::Global().ArmedNames();
  EXPECT_EQ(armed, (std::vector<std::string>{"chaos.test.multi_a",
                                             "chaos.test.multi_b"}));
  FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(FailpointRegistry::Global().ArmedNames().empty());
}

TEST_F(FailpointRegistryTest, ArmFromSpecRejectsMalformedTail) {
  Status status = FailpointRegistry::Global().ArmFromSpec(
      "chaos.test.ok_head=error(unavailable);chaos.test.bad=frobnicate");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ exception boundary --

// Satellite 1 + acceptance criterion: a batch with one always-throwing
// item completes; that entry is kInternal with isolated_exception set, and
// every other entry is bit-identical to a fault-free run of the same batch.
TEST_F(ExceptionBoundaryTest, ThrowingItemIsIsolatedAndOthersBitIdentical) {
  Ontology onto = BuildCellPhoneHierarchy();
  Rng rng(404);
  std::vector<Item> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back(RandomItem(onto, rng, "item" + std::to_string(i)));
  }

  BatchSummarizerOptions options;
  options.num_threads = 1;  // deterministic item order => hit order
  options.retry_policy.max_retries = 2;
  options.retry_policy.initial_backoff_ms = 0.01;
  options.retry_policy.max_backoff_ms = 0.05;
  BatchSummarizer batch(&onto, options);

  std::vector<BatchEntry> clean = batch.SummarizeAll(items, 3);
  ASSERT_EQ(clean.size(), items.size());
  for (const BatchEntry& entry : clean) {
    ASSERT_TRUE(entry.status.ok()) << entry.status.ToString();
  }

  // One graph build per attempt, single-threaded: hits 1..3 all belong to
  // item 0 (initial try + 2 retries), so times(3) models an item that
  // throws on every attempt while leaving items 1..5 untouched.
  FailpointSpec spec;
  spec.action = FailAction::kThrowBadAlloc;
  spec.trigger = FailTrigger::kTimes;
  spec.n = 3;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);
  std::vector<BatchEntry> faulted = batch.SummarizeAll(items, 3);
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(faulted.size(), items.size());
  EXPECT_EQ(faulted[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(faulted[0].isolated_exception);
  EXPECT_TRUE(faulted[0].exhausted_retries);
  EXPECT_EQ(faulted[0].retries, 2);
  EXPECT_NE(faulted[0].status.message().find("bad_alloc"),
            std::string::npos);
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_EQ(Fingerprint(faulted[i]), Fingerprint(clean[i]))
        << "entry " << i << " diverged from the fault-free run";
  }

  BatchStats stats = AggregateBatchStats(faulted);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.ok, static_cast<int64_t>(items.size()) - 1);
  EXPECT_EQ(stats.isolated_exceptions, 1);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.exhausted_retries, 1);
  EXPECT_NE(stats.ToJson().find("\"isolated_exceptions\":1"),
            std::string::npos);
}

TEST_F(ExceptionBoundaryTest, BadAllocInSolverIsIsolatedToo) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a"), SmallItem(onto, "b")};

  FailpointSpec spec;
  spec.action = FailAction::kThrowBadAlloc;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.solver.step")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(entries[0].isolated_exception);
  EXPECT_TRUE(entries[1].status.ok()) << entries[1].status.ToString();
}

// ------------------------------------------------------------ retry policy --

TEST_F(RetryPolicyTest, TransientFailureSucceedsAfterRetry) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kTimes;
  spec.n = 2;  // first two attempts fail, third succeeds
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  options.retry_policy.max_retries = 3;
  options.retry_policy.initial_backoff_ms = 0.01;
  options.retry_policy.max_backoff_ms = 0.05;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  ASSERT_TRUE(entries[0].status.ok()) << entries[0].status.ToString();
  EXPECT_EQ(entries[0].retries, 2);
  EXPECT_EQ(entries[0].summary.retries, 2);  // stamped through to ToJson
  EXPECT_FALSE(entries[0].exhausted_retries);
  EXPECT_NE(entries[0].summary.ToJson().find("\"retries\":2"),
            std::string::npos);
}

TEST_F(RetryPolicyTest, PermanentFailureIsNeverRetried) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kInvalidArgument;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  options.retry_policy.max_retries = 5;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  Failpoint* fp = FailpointRegistry::Global().Get("osrs.coverage.alloc");
  int64_t hits = fp->hits();
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(entries[0].retries, 0);
  EXPECT_FALSE(entries[0].exhausted_retries);
  EXPECT_EQ(hits, 1) << "a permanent failure must not be re-attempted";
}

TEST_F(RetryPolicyTest, DataLossIsNeverRetried) {
  // kDataLoss means durable bytes are corrupt (store/snapshot.h): no
  // number of re-attempts can un-corrupt a file, so the retry policy must
  // treat it as permanent even with a generous retry budget.
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kDataLoss;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  options.retry_policy.max_retries = 5;
  options.retry_policy.initial_backoff_ms = 0.01;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  int64_t hits =
      FailpointRegistry::Global().Get("osrs.coverage.alloc")->hits();
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(entries[0].retries, 0);
  EXPECT_EQ(hits, 1) << "data loss must not be re-attempted";
}

TEST_F(RetryPolicyTest, DefaultPolicyNeverRetries) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;  // retry_policy.max_retries == 0
  options.num_threads = 1;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  int64_t hits =
      FailpointRegistry::Global().Get("osrs.coverage.alloc")->hits();
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(entries[0].retries, 0);
  // exhausted_retries is reserved for policies that actually retried.
  EXPECT_FALSE(entries[0].exhausted_retries);
  EXPECT_EQ(hits, 1);
}

// Regression: a retry whose backoff the remaining batch deadline cannot
// fund must be skipped outright, not started with near-zero budget. The
// old behavior clamped the sleep to the remaining deadline and attempted
// anyway, so the doomed attempt failed kDeadlineExceeded at entry —
// masking the real transient failure — after burning the whole remaining
// budget asleep. With a 10-second backoff against a sub-second batch
// deadline, finishing fast with the transient status preserved is the fix.
TEST_F(RetryPolicyTest, BackoffExceedingBatchDeadlineSkipsRetry) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  options.batch_deadline_ms = 500.0;
  options.retry_policy.max_retries = 5;
  options.retry_policy.initial_backoff_ms = 10000.0;
  options.retry_policy.max_backoff_ms = 10000.0;
  options.retry_policy.jitter = 0.0;
  BatchSummarizer batch(&onto, options);

  Stopwatch watch;
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  double elapsed_ms = watch.ElapsedMillis();
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  // The transient status survives: not kDeadlineExceeded from a doomed
  // attempt, and no retry was started (the 10 s backoff was never funded).
  EXPECT_EQ(entries[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(entries[0].retries, 0);
  EXPECT_TRUE(entries[0].exhausted_retries);
  EXPECT_LT(elapsed_ms, 5000.0)
      << "the unfunded 10 s backoff appears to have been slept";
}

TEST_F(RetryPolicyTest, RetryableTaxonomyMatchesDocs) {
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kOk));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kCancelled));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kDataLoss));
}

// ---------------------------------------------------- annotation sites -----

// The serve-time annotation pipeline evaluates two failpoints per
// sentence: osrs.extraction.pairs before concept extraction and
// osrs.sentiment.score before sentiment scoring. An injection surfaces as
// the annotator's Status — a live request crossing annotation fails
// cleanly instead of producing a half-annotated item.

TEST_F(AnnotationFailpointTest, ExtractionFailpointFailsAnnotation) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());
  Item item = SmallItem(onto, "a");

  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.extraction.pairs=error(unavailable):once")
                  .ok());
  Status first = annotator.Annotate(item);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(StatusCodeIsRetryable(first.code()));
  Status second = annotator.Annotate(item);  // 'once' spent
  EXPECT_TRUE(second.ok()) << second.ToString();
}

TEST_F(AnnotationFailpointTest, SentimentFailpointFailsAnnotation) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());

  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.sentiment.score")->Arm(spec);

  // The scoring site only evaluates for sentences that extracted at least
  // one concept (no concepts = nothing to score).
  auto annotated = annotator.AnnotateTexts(
      "a", {"screen is great. battery is awful."}, {});
  EXPECT_EQ(annotated.status().code(), StatusCode::kInternal);
  auto retried = annotator.AnnotateTexts(
      "a", {"screen is great. battery is awful."}, {});
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(AnnotationFailpointTest, DelayInjectionStallsButSucceeds) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());
  Item item = SmallItem(onto, "a");

  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.sentiment.score=delay(1):always")
                  .ok());
  Status status = annotator.Annotate(item);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(FailpointRegistry::Global()
                .Get("osrs.sentiment.score")
                ->injections(),
            0);
}

// ----------------------------------------------- deadline x retry ----------

// Interaction of the batch deadline with the retry policy: backoffs are
// only slept when the remaining deadline can fund them, so the deadline
// cannot expire in the middle of a backoff, and every funded attempt
// starts with real budget. Timings use wide margins (solves are ~10 ms,
// backoffs hundreds of ms) so the assertions hold on slow machines.

TEST_F(DeadlineRetryTest, TransientStatusSurvivesDeadlineLimitedRetries) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a")};

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;  // every attempt fails transient
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;
  options.batch_deadline_ms = 500.0;
  options.retry_policy.max_retries = 10;  // deadline, not count, limits
  options.retry_policy.initial_backoff_ms = 200.0;
  options.retry_policy.max_backoff_ms = 200.0;
  options.retry_policy.backoff_multiplier = 1.0;
  options.retry_policy.jitter = 0.0;
  BatchSummarizer batch(&onto, options);

  Stopwatch watch;
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  double elapsed_ms = watch.ElapsedMillis();
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 1u);
  // ~500 ms funds at most two 200 ms backoffs; the third is skipped. The
  // final status is the transient failure, never kDeadlineExceeded.
  EXPECT_EQ(entries[0].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(entries[0].exhausted_retries);
  EXPECT_GE(entries[0].retries, 1);
  EXPECT_LE(entries[0].retries, 2);
  EXPECT_LT(elapsed_ms, 3000.0);
}

TEST_F(DeadlineRetryTest, ItemsShareOneBatchBudgetAcrossRetries) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto, "a"), SmallItem(onto, "b")};

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  FailpointRegistry::Global().Get("osrs.coverage.alloc")->Arm(spec);

  BatchSummarizerOptions options;
  options.num_threads = 1;  // item b runs after a drained the budget
  options.batch_deadline_ms = 800.0;
  options.retry_policy.max_retries = 10;
  options.retry_policy.initial_backoff_ms = 300.0;
  options.retry_policy.max_backoff_ms = 300.0;
  options.retry_policy.backoff_multiplier = 1.0;
  options.retry_policy.jitter = 0.0;
  BatchSummarizer batch(&onto, options);

  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 2);
  FailpointRegistry::Global().DisarmAll();

  ASSERT_EQ(entries.size(), 2u);
  // Item a funds ~two 300 ms backoffs from the 800 ms budget; item b then
  // starts with only the leftovers, so its backoff is never funded. Both
  // keep the transient status; the budget they shared is what differed.
  EXPECT_EQ(entries[0].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(entries[0].exhausted_retries);
  EXPECT_GE(entries[0].retries, 1);
  EXPECT_EQ(entries[1].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(entries[1].exhausted_retries);
  EXPECT_EQ(entries[1].retries, 0)
      << "item b found budget for a backoff item a should have drained";
  EXPECT_LT(entries[1].retries, entries[0].retries);
}

// ------------------------------------------------------------ I/O sites ----

TEST_F(IoFailpointTest, ReadFailpointInjectsRetryableError) {
  Ontology onto = BuildCellPhoneHierarchy();
  Corpus corpus;
  corpus.domain = "cellphone";
  corpus.ontology = onto;
  corpus.items.push_back(SmallItem(onto, "a"));
  std::string path = ::testing::TempDir() + "/chaos_io_corpus.txt";
  ASSERT_TRUE(SaveCorpusToFile(corpus, path).ok());

  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.io.read=error(unavailable):once")
                  .ok());
  auto first = LoadCorpusFromFile(path);
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(StatusCodeIsRetryable(first.status().code()));
  auto second = LoadCorpusFromFile(path);  // 'once' spent: succeeds now
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  FailpointRegistry::Global().DisarmAll();
  std::remove(path.c_str());
}

TEST_F(IoFailpointTest, WriteFailpointInjectsError) {
  Ontology onto = BuildCellPhoneHierarchy();
  Corpus corpus;
  corpus.domain = "cellphone";
  corpus.ontology = onto;
  std::string path = ::testing::TempDir() + "/chaos_io_write.txt";

  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.io.write")->Arm(spec);
  Status status = SaveCorpusToFile(corpus, path);
  FailpointRegistry::Global().DisarmAll();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  std::remove(path.c_str());
}

TEST_F(IoFailpointTest, OntologyFinalizeFailpointPropagates) {
  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.ontology.finalize")->Arm(spec);

  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId leaf = onto.AddConcept("leaf");
  ASSERT_TRUE(onto.AddEdge(root, leaf).ok());
  Status first = onto.Finalize();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(onto.finalized());
  Status second = onto.Finalize();  // injection spent: real path runs
  FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_TRUE(onto.finalized());
}

// --------------------------------------------------- randomized campaign ---

/// One randomized schedule: which sites are armed and how, plus the batch
/// configuration it runs under. Everything derives from the schedule seed.
struct Schedule {
  std::vector<std::pair<std::string, FailpointSpec>> armed;
  SummaryAlgorithm algorithm = SummaryAlgorithm::kGreedy;
  int max_retries = 0;
  int num_threads = 1;
};

Schedule MakeSchedule(uint64_t seed) {
  Rng rng(seed);
  Schedule schedule;
  const SummaryAlgorithm algorithms[] = {
      SummaryAlgorithm::kGreedy,
      SummaryAlgorithm::kGreedyLazy,
      SummaryAlgorithm::kIlp,
      SummaryAlgorithm::kRandomizedRounding,
  };
  schedule.algorithm = algorithms[rng.NextUint64(4)];
  schedule.max_retries = static_cast<int>(rng.NextInt(0, 2));
  for (const char* site : kBatchSites) {
    if (!rng.NextBernoulli(0.5)) continue;
    FailpointSpec spec;
    double action_draw = rng.NextDouble();
    if (action_draw < 0.4) {
      spec.action = FailAction::kError;
      spec.code = StatusCode::kUnavailable;
    } else if (action_draw < 0.55) {
      spec.action = FailAction::kError;
      spec.code = StatusCode::kResourceExhausted;
    } else if (action_draw < 0.7) {
      spec.action = FailAction::kError;
      spec.code = StatusCode::kInvalidArgument;
    } else if (action_draw < 0.85) {
      spec.action = FailAction::kThrowBadAlloc;
    } else {
      spec.action = FailAction::kDelay;
      spec.delay_ms = 0.01;
    }
    double trigger_draw = rng.NextDouble();
    if (trigger_draw < 0.2) {
      spec.trigger = FailTrigger::kAlways;
    } else if (trigger_draw < 0.4) {
      spec.trigger = FailTrigger::kOnce;
    } else if (trigger_draw < 0.6) {
      spec.trigger = FailTrigger::kTimes;
      spec.n = rng.NextInt(1, 4);
    } else if (trigger_draw < 0.8) {
      spec.trigger = FailTrigger::kEveryNth;
      spec.n = rng.NextInt(1, 4);
    } else {
      spec.trigger = FailTrigger::kProbability;
      spec.probability = rng.NextDouble();
      spec.seed = rng.Next();
    }
    schedule.armed.emplace_back(site, spec);
  }
  // An all-quiet schedule still exercises the disarmed fast path, but at
  // least one armed site keeps the campaign adversarial.
  if (schedule.armed.empty()) {
    FailpointSpec spec;
    spec.code = StatusCode::kUnavailable;
    spec.trigger = FailTrigger::kEveryNth;
    spec.n = 2;
    schedule.armed.emplace_back("osrs.solver.step", spec);
  }
  return schedule;
}

/// Arms the schedule, runs the batch, checks the per-entry invariants, and
/// accumulates per-site injection counts. Returns the entry fingerprints.
std::vector<std::string> RunSchedule(
    const Schedule& schedule, const Ontology& onto,
    const std::vector<Item>& items,
    std::map<std::string, int64_t>* injections) {
  FailpointRegistry::Global().DisarmAll();
  for (const auto& [site, spec] : schedule.armed) {
    FailpointRegistry::Global().Get(site)->Arm(spec);
  }

  BatchSummarizerOptions options;
  options.summarizer.algorithm = schedule.algorithm;
  options.summarizer.seed = 7;
  options.num_threads = schedule.num_threads;
  options.retry_policy.max_retries = schedule.max_retries;
  options.retry_policy.initial_backoff_ms = 0.01;
  options.retry_policy.max_backoff_ms = 0.05;
  BatchSummarizer batch(&onto, options);
  std::vector<BatchEntry> entries = batch.SummarizeAll(items, 3);

  EXPECT_EQ(entries.size(), items.size());
  std::vector<std::string> fingerprints;
  for (const BatchEntry& entry : entries) {
    EXPECT_GE(entry.retries, 0);
    EXPECT_LE(entry.retries, schedule.max_retries)
        << "retries exceed the policy budget";
    if (entry.exhausted_retries) {
      EXPECT_EQ(entry.retries, schedule.max_retries);
      EXPECT_TRUE(StatusCodeIsRetryable(entry.status.code()));
    }
    if (entry.status.ok()) {
      EXPECT_LE(entry.summary.entries.size(), 3u);
      EXPECT_TRUE(std::isfinite(entry.summary.cost));
      EXPECT_GE(entry.summary.cost, 0.0);
      EXPECT_GT(entry.summary.num_pairs, 0u);
      for (const SummaryEntry& e : entry.summary.entries) {
        EXPECT_NE(e.pair.concept_id, kInvalidConcept);
        EXPECT_FALSE(e.display.empty());
      }
    } else {
      EXPECT_FALSE(entry.status.message().empty());
    }
    fingerprints.push_back(Fingerprint(entry));
  }

  for (const auto& [site, spec] : schedule.armed) {
    (*injections)[site] +=
        FailpointRegistry::Global().Get(site)->injections();
  }
  FailpointRegistry::Global().DisarmAll();
  return fingerprints;
}

// The tentpole acceptance test: 210 randomized failpoint schedules (140
// single-threaded, each replayed twice and required to be bit-identical;
// 70 two-threaded, invariants only) over full batches. The process
// surviving to the end is itself the headline assertion — every injected
// bad_alloc crossed the worker boundary without a std::terminate.
TEST_F(ChaosCampaignTest, TwoHundredTenRandomSchedules) {
  Ontology onto = BuildCellPhoneHierarchy();
  Rng item_rng(2026);
  std::vector<Item> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back(RandomItem(onto, item_rng, "item" + std::to_string(i)));
  }

  std::map<std::string, int64_t> injections;
  int64_t total_injections = 0;

  for (uint64_t seed = 0; seed < 140; ++seed) {
    Schedule schedule = MakeSchedule(1000 + seed);
    schedule.num_threads = 1;
    std::vector<std::string> first =
        RunSchedule(schedule, onto, items, &injections);
    std::vector<std::string> second =
        RunSchedule(schedule, onto, items, &injections);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], second[i])
          << "schedule " << seed << " entry " << i
          << " not reproducible under a fixed seed";
    }
  }

  for (uint64_t seed = 0; seed < 70; ++seed) {
    Schedule schedule = MakeSchedule(5000 + seed);
    schedule.num_threads = 2;
    RunSchedule(schedule, onto, items, &injections);
  }

  // Coverage: every batch-pipeline site actually injected at least once
  // over the campaign (osrs.lp.pivot only fires under the LP-based
  // algorithms, which ~half the schedules select).
  for (const char* site : kBatchSites) {
    EXPECT_GT(injections[site], 0)
        << "site " << site << " was armed but never exercised";
    total_injections += injections[site];
  }
  EXPECT_GT(total_injections, 210) << "campaign barely injected anything";
}

// Compile-time switch sanity: this test binary is built with the subsystem
// enabled; the OSRS_FAILPOINTS=OFF configuration is exercised by ci.sh.
TEST_F(ChaosCampaignTest, SubsystemCompiledIn) {
  EXPECT_TRUE(fault::kCompiledIn);
  Status status = OSRS_FAILPOINT("chaos.test.compiled_in");
  EXPECT_TRUE(status.ok());
}

}  // namespace
}  // namespace osrs
