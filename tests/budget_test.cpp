// Tests of the execution-budget layer: deadlines, cooperative
// cancellation, deterministic work budgets, and the facade / batch
// graceful-degradation semantics built on top of them.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch_summarizer.h"
#include "api/review_summarizer.h"
#include "common/execution_budget.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/distance.h"
#include "core/model.h"
#include "coverage/coverage_graph.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/snomed_like.h"
#include "solver/exhaustive.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/local_search.h"
#include "solver/randomized_rounding.h"

namespace osrs {
namespace {

/// Random k-Pairs instance over a small synthetic ontology (mirrors the
/// helper of solver_test.cpp).
struct Instance {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
};

Instance MakeInstance(uint64_t seed, int num_pairs, int num_concepts = 60) {
  SnomedLikeOptions options;
  options.num_concepts = num_concepts;
  options.max_depth = 5;
  options.seed = seed;
  Instance instance;
  instance.ontology = BuildSnomedLikeOntology(options);
  Rng rng(seed * 77 + 1);
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(instance.ontology.num_concepts() - 1));
    double s = std::clamp(rng.NextGaussian(0.1, 0.5), -1.0, 1.0);
    instance.pairs.push_back({c, s});
  }
  return instance;
}

ExecutionBudget CancelledBudget(const CancellationFlag* flag) {
  ExecutionBudget budget;
  budget.AddCancellation(flag);
  return budget;
}

/// An item whose pair-granularity ILP is far too large for a ~50 ms
/// deadline: `num_pairs` distinct candidates give a k-median LP with
/// num_pairs^2 assignment variables.
Item AdversarialItem(const Ontology& onto, int num_pairs) {
  std::vector<ConceptId> concepts;
  for (const char* name : {"screen", "battery", "price", "camera"}) {
    ConceptId id = onto.FindByName(name);
    if (id != kInvalidConcept) concepts.push_back(id);
  }
  Item item;
  item.id = "adversarial";
  Review review;
  for (int i = 0; i < num_pairs; ++i) {
    double sentiment = -1.0 + 2.0 * i / std::max(1, num_pairs - 1);
    review.sentences.push_back(
        {"s" + std::to_string(i),
         {{concepts[static_cast<size_t>(i) % concepts.size()], sentiment}}});
  }
  item.reviews.push_back(std::move(review));
  return item;
}

Item SmallItem(const Ontology& onto) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  Item item;
  item.id = "phone-x";
  Review review;
  review.sentences.push_back({"screen is great", {{screen, 0.75}}});
  review.sentences.push_back({"battery is awful", {{battery, -0.9}}});
  item.reviews.push_back(std::move(review));
  return item;
}

// ----------------------------------------- cancellation, every algorithm --

TEST(BudgetCancellationTest, GreedyEagerStopsCancelled) {
  Instance inst = MakeInstance(11, 60);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  flag.Cancel();
  auto result = GreedySummarizer().Summarize(graph, 10,
                                             CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, GreedyLazyStopsCancelled) {
  Instance inst = MakeInstance(12, 60);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  GreedyOptions options;
  options.heap = GreedyOptions::Heap::kLazy;
  CancellationFlag flag;
  flag.Cancel();
  auto result = GreedySummarizer(options).Summarize(graph, 10,
                                                    CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, IlpStopsCancelled) {
  Instance inst = MakeInstance(13, 40);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  flag.Cancel();
  auto result = IlpSummarizer().Summarize(graph, 5, CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, RandomizedRoundingStopsCancelled) {
  Instance inst = MakeInstance(14, 40);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  flag.Cancel();
  auto result = RandomizedRoundingSummarizer().Summarize(
      graph, 5, CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, LocalSearchStopsCancelled) {
  Instance inst = MakeInstance(15, 60);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  flag.Cancel();
  auto result = LocalSearchSummarizer().Summarize(graph, 10,
                                                  CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, ExhaustiveStopsCancelled) {
  Instance inst = MakeInstance(16, 18);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  flag.Cancel();
  auto result = ExhaustiveSummarizer().Summarize(graph, 6,
                                                 CancelledBudget(&flag));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(BudgetCancellationTest, IlpCancelledMidSolveFromAnotherThread) {
  Instance inst = MakeInstance(17, 160);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  CancellationFlag flag;
  std::thread canceller([&flag]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.Cancel();
  });
  Stopwatch watch;
  auto result = IlpSummarizer().Summarize(graph, 8, CancelledBudget(&flag));
  double elapsed = watch.ElapsedSeconds();
  canceller.join();
  // Either the solve was genuinely interrupted (kCancelled) or it was so
  // fast it beat the canceller; both are fine, hanging is not.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  EXPECT_LT(elapsed, 30.0);
}

// --------------------------------------------------------------- deadline --

TEST(BudgetDeadlineTest, ExpiredDeadlineRejectsAllSolvers) {
  Instance inst = MakeInstance(21, 40);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  ExecutionBudget expired = ExecutionBudget::FromDeadlineMs(-1.0);
  EXPECT_EQ(GreedySummarizer().Summarize(graph, 5, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(IlpSummarizer().Summarize(graph, 5, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(
      RandomizedRoundingSummarizer().Summarize(graph, 5, expired)
          .status().code(),
      StatusCode::kDeadlineExceeded);
  EXPECT_EQ(
      LocalSearchSummarizer().Summarize(graph, 5, expired).status().code(),
      StatusCode::kDeadlineExceeded);
  EXPECT_EQ(
      ExhaustiveSummarizer().Summarize(graph, 5, expired).status().code(),
      StatusCode::kDeadlineExceeded);
}

TEST(BudgetDeadlineTest, TinyDeadlineOnLargeIlpReturnsPromptly) {
  Instance inst = MakeInstance(22, 160);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  Stopwatch watch;
  auto result = IlpSummarizer().Summarize(
      graph, 8, ExecutionBudget::FromDeadlineMs(25.0));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_LT(elapsed, 30.0);
  if (result.ok()) {
    // Budget tripped mid-search with an incumbent: must be flagged.
    if (result->approximate) {
      EXPECT_NE(result->stop_reason, StatusCode::kOk);
    }
  } else {
    EXPECT_TRUE(
        result.status().code() == StatusCode::kDeadlineExceeded ||
        result.status().code() == StatusCode::kResourceExhausted)
        << result.status().ToString();
  }
}

// ------------------------------------------------ deterministic work budget --

TEST(BudgetWorkTest, GreedyReturnsPartialIncumbentFlaggedApproximate) {
  Instance inst = MakeInstance(31, 80);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  ExecutionBudget budget;
  budget.SetMaxWork(1);  // trips after the first round's key updates
  auto result = GreedySummarizer().Summarize(graph, 20, budget);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->approximate);
  EXPECT_EQ(result->stop_reason, StatusCode::kResourceExhausted);
  EXPECT_GE(result->selected.size(), 1u);
  EXPECT_LT(result->selected.size(), 20u);
}

TEST(BudgetWorkTest, WorkBudgetIsDeterministic) {
  Instance inst = MakeInstance(32, 80);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  ExecutionBudget budget;
  budget.SetMaxWork(3);
  auto a = GreedySummarizer().Summarize(graph, 20, budget);
  auto b = GreedySummarizer().Summarize(graph, 20, budget);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
  EXPECT_EQ(a->approximate, b->approximate);
  EXPECT_EQ(a->stop_reason, b->stop_reason);
}

TEST(BudgetWorkTest, ExhaustiveRefusesPartialEnumeration) {
  Instance inst = MakeInstance(33, 20);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  ExecutionBudget budget;
  budget.SetMaxWork(2000);  // C(20, 10) = 184756 combinations, far more
  auto result = ExhaustiveSummarizer().Summarize(graph, 10, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------- facade fallback chain --

TEST(FacadeFallbackTest, FallsBackToGreedyOnWorkBudget) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = AdversarialItem(onto, 60);
  ReviewSummarizerOptions options;
  // The RR work counter includes the LP's simplex iterations, so a budget
  // of 1 trips deterministically before any rounding draw completes.
  options.algorithm = SummaryAlgorithm::kRandomizedRounding;
  options.granularity = SummaryGranularity::kPairs;
  options.max_solver_work = 1;
  options.fallback_chain = {SummaryAlgorithm::kGreedy};
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(item, 5);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->degraded);
  EXPECT_EQ(summary->algorithm_used, SummaryAlgorithm::kGreedy);
  EXPECT_EQ(summary->stop_reason, StatusCode::kResourceExhausted);
  EXPECT_EQ(summary->entries.size(), 5u);
}

TEST(FacadeFallbackTest, IdenticalBudgetsYieldIdenticalResults) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = AdversarialItem(onto, 60);
  ReviewSummarizerOptions options;
  options.algorithm = SummaryAlgorithm::kRandomizedRounding;
  options.granularity = SummaryGranularity::kPairs;
  options.max_solver_work = 1;
  options.fallback_chain = {SummaryAlgorithm::kGreedy};
  ReviewSummarizer summarizer(&onto, options);
  auto a = summarizer.Summarize(item, 5);
  auto b = summarizer.Summarize(item, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_EQ(a->entries[i].display, b->entries[i].display);
  }
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
  EXPECT_EQ(a->degraded, b->degraded);
  EXPECT_EQ(a->stop_reason, b->stop_reason);
  EXPECT_EQ(a->algorithm_used, b->algorithm_used);
}

TEST(FacadeFallbackTest, CancellationIsNeverAbsorbedByFallbacks) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = AdversarialItem(onto, 40);
  CancellationFlag flag;
  flag.Cancel();
  ReviewSummarizerOptions options;
  options.algorithm = SummaryAlgorithm::kIlp;
  options.granularity = SummaryGranularity::kPairs;
  options.cancellation = &flag;
  options.fallback_chain = {SummaryAlgorithm::kGreedy};
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(item, 5);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kCancelled);
}

TEST(FacadeFallbackTest, RetrySameAlgorithmReseedsRandomizedRounding) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = AdversarialItem(onto, 30);
  ReviewSummarizerOptions options;
  options.algorithm = SummaryAlgorithm::kRandomizedRounding;
  options.granularity = SummaryGranularity::kPairs;
  options.fallback_chain = {SummaryAlgorithm::kRandomizedRounding,
                            SummaryAlgorithm::kGreedy};
  ReviewSummarizer summarizer(&onto, options);
  // No budget at all: the primary RR succeeds outright and no fallback
  // runs; this test just pins the chain-with-repeats configuration as
  // valid and deterministic.
  auto summary = summarizer.Summarize(item, 4);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_FALSE(summary->degraded);
  EXPECT_EQ(summary->algorithm_used, SummaryAlgorithm::kRandomizedRounding);
  EXPECT_EQ(summary->stop_reason, StatusCode::kOk);
}

// ---------------------------------------------------- sentiment validation --

TEST(SentimentValidationTest, RejectsNaNSentiment) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = SmallItem(onto);
  item.reviews[0].sentences[0].pairs[0].sentiment =
      std::numeric_limits<double>::quiet_NaN();
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(item, 2);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

TEST(SentimentValidationTest, RejectsInfiniteAndOutOfRangeSentiment) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  for (double bad : {std::numeric_limits<double>::infinity(), 1.5, -1.5}) {
    Item item = SmallItem(onto);
    item.reviews[0].sentences[1].pairs[0].sentiment = bad;
    auto summary = summarizer.Summarize(item, 2);
    ASSERT_FALSE(summary.ok()) << "sentiment " << bad << " accepted";
    EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SentimentValidationTest, BoundarySentimentsAreValid) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = SmallItem(onto);
  item.reviews[0].sentences[0].pairs[0].sentiment = 1.0;
  item.reviews[0].sentences[1].pairs[0].sentiment = -1.0;
  EXPECT_TRUE(ValidateItem(item).ok());
  ReviewSummarizer summarizer(&onto, {});
  EXPECT_TRUE(summarizer.Summarize(item, 2).ok());
}

// ------------------------------------------------------- batch semantics --

TEST(BatchBudgetTest, NegativeNumThreadsFailsEveryEntry) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto), SmallItem(onto)};
  BatchSummarizerOptions options;
  options.num_threads = -2;
  BatchSummarizer batch(&onto, options);
  auto entries = batch.SummarizeAll(items, 2);
  ASSERT_EQ(entries.size(), 2u);
  for (const BatchEntry& entry : entries) {
    EXPECT_EQ(entry.status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(BatchBudgetTest, NegativeKFailsPerItemAndZeroKIsEmpty) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto), SmallItem(onto)};
  BatchSummarizer batch(&onto, {});
  auto negative = batch.SummarizeAll(items, -1);
  ASSERT_EQ(negative.size(), 2u);
  for (const BatchEntry& entry : negative) {
    EXPECT_EQ(entry.status.code(), StatusCode::kInvalidArgument);
  }
  auto zero = batch.SummarizeAll(items, 0);
  ASSERT_EQ(zero.size(), 2u);
  for (const BatchEntry& entry : zero) {
    EXPECT_TRUE(entry.status.ok());
    EXPECT_TRUE(entry.summary.entries.empty());
  }
}

TEST(BatchBudgetTest, AdversarialIlpItemDegradesUnderPerItemDeadline) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto), AdversarialItem(onto, 150),
                             SmallItem(onto)};
  BatchSummarizerOptions options;
  options.summarizer.algorithm = SummaryAlgorithm::kIlp;
  options.summarizer.granularity = SummaryGranularity::kPairs;
  options.summarizer.deadline_ms = 50.0;
  options.summarizer.fallback_chain = {SummaryAlgorithm::kGreedy};
  options.num_threads = 2;
  BatchSummarizer batch(&onto, options);
  Stopwatch watch;
  auto entries = batch.SummarizeAll(items, 5);
  double elapsed = watch.ElapsedSeconds();
  EXPECT_LT(elapsed, 30.0) << "batch did not return promptly";
  ASSERT_EQ(entries.size(), 3u);
  // The fast items solve exactly within their deadline.
  EXPECT_TRUE(entries[0].status.ok()) << entries[0].status.ToString();
  EXPECT_TRUE(entries[2].status.ok()) << entries[2].status.ToString();
  // The adversarial item either degraded along the fallback chain or
  // reported the deadline; silence or a hang would be the bug.
  const BatchEntry& slow = entries[1];
  if (slow.status.ok()) {
    EXPECT_TRUE(slow.summary.degraded);
    EXPECT_EQ(slow.summary.algorithm_used, SummaryAlgorithm::kGreedy);
    EXPECT_EQ(slow.summary.stop_reason, StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_EQ(slow.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(BatchBudgetTest, BatchDeadlineStampsUnstartedItems) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items;
  for (int i = 0; i < 6; ++i) items.push_back(AdversarialItem(onto, 120));
  BatchSummarizerOptions options;
  options.summarizer.algorithm = SummaryAlgorithm::kIlp;
  options.summarizer.granularity = SummaryGranularity::kPairs;
  options.summarizer.fallback_chain = {SummaryAlgorithm::kGreedy};
  options.batch_deadline_ms = 40.0;
  options.num_threads = 2;
  BatchSummarizer batch(&onto, options);
  Stopwatch watch;
  auto entries = batch.SummarizeAll(items, 5);
  double elapsed = watch.ElapsedSeconds();
  EXPECT_LT(elapsed, 30.0) << "batch did not return promptly";
  ASSERT_EQ(entries.size(), items.size());
  for (const BatchEntry& entry : entries) {
    if (entry.status.ok()) {
      // In-flight items degrade through the chain; completed ones carry a
      // well-formed summary either way.
      EXPECT_LE(entry.summary.entries.size(), 5u);
    } else {
      EXPECT_EQ(entry.status.code(), StatusCode::kDeadlineExceeded)
          << entry.status.ToString();
    }
  }
}

TEST(BatchBudgetTest, PreCancelledBatchStampsEveryItemCancelled) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<Item> items = {SmallItem(onto), SmallItem(onto),
                             SmallItem(onto)};
  CancellationFlag flag;
  flag.Cancel();
  BatchSummarizerOptions options;
  options.cancellation = &flag;
  BatchSummarizer batch(&onto, options);
  auto entries = batch.SummarizeAll(items, 2);
  ASSERT_EQ(entries.size(), 3u);
  for (const BatchEntry& entry : entries) {
    EXPECT_EQ(entry.status.code(), StatusCode::kCancelled);
  }
}

// ----------------------------------------------------- ToJson diagnostics --

TEST(ItemSummaryJsonTest, EscapesDisplayAndRendersDiagnostics) {
  ItemSummary summary;
  summary.degraded = true;
  summary.algorithm_used = SummaryAlgorithm::kGreedy;
  summary.stop_reason = StatusCode::kDeadlineExceeded;
  SummaryEntry entry;
  entry.display = "say \"hi\"\nback\\slash";
  summary.entries.push_back(entry);
  std::string json = summary.ToJson();
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\\slash"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"algorithm\":\"Greedy\""), std::string::npos) << json;
  // No raw control characters or unescaped quotes inside string values.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

}  // namespace
}  // namespace osrs
