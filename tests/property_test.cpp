// Parameterized property tests of the coverage framework: invariants of
// Definition 1/2, the coverage graph, and the §4 algorithms, swept across
// ontology shapes and sentiment thresholds.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/strings.h"
#include "common/rng.h"
#include "core/cost.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/exhaustive.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/randomized_rounding.h"

namespace osrs {
namespace {

/// Parameter: (ontology seed, epsilon).
class CoverageProperty
    : public testing::TestWithParam<std::tuple<uint64_t, double>> {
 protected:
  void SetUp() override {
    auto [seed, eps] = GetParam();
    SnomedLikeOptions options;
    options.num_concepts = 70;
    options.max_depth = 5;
    options.multi_parent_prob = 0.15;
    options.seed = seed;
    ontology_ = BuildSnomedLikeOntology(options);
    epsilon_ = eps;
    Rng rng(seed * 997 + 13);
    for (int i = 0; i < 45; ++i) {
      ConceptId c = static_cast<ConceptId>(
          1 + rng.NextUint64(ontology_.num_concepts() - 1));
      pairs_.push_back({c, rng.NextDouble(-1.0, 1.0)});
    }
    rng_ = Rng(seed * 31 + 7);
  }

  std::vector<ConceptSentimentPair> RandomSubset(size_t max_size) {
    size_t count = 1 + rng_.NextUint64(max_size);
    std::vector<ConceptSentimentPair> subset;
    for (size_t index : rng_.SampleWithoutReplacement(
             pairs_.size(), std::min(count, pairs_.size()))) {
      subset.push_back(pairs_[index]);
    }
    return subset;
  }

  Ontology ontology_;
  double epsilon_ = 0.5;
  std::vector<ConceptSentimentPair> pairs_;
  Rng rng_{0};
};

TEST_P(CoverageProperty, RootCoversEverythingAtDepthDistance) {
  PairDistance distance(&ontology_, epsilon_);
  ConceptSentimentPair root_pair{ontology_.root(), -1.0};
  for (const auto& pair : pairs_) {
    double d = distance(root_pair, pair);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_DOUBLE_EQ(d, ontology_.DepthFromRoot(pair.concept_id));
  }
}

TEST_P(CoverageProperty, DistanceIsNonNegativeAndAgreesWithHierarchy) {
  PairDistance distance(&ontology_, epsilon_);
  for (size_t i = 0; i < pairs_.size(); i += 3) {
    for (size_t j = 0; j < pairs_.size(); j += 3) {
      double d = distance(pairs_[i], pairs_[j]);
      if (std::isfinite(d)) {
        EXPECT_GE(d, 0.0);
        EXPECT_TRUE(ontology_.IsAncestorOrSelf(pairs_[i].concept_id,
                                               pairs_[j].concept_id));
        EXPECT_DOUBLE_EQ(d, ontology_.AncestorDistance(
                                pairs_[i].concept_id, pairs_[j].concept_id));
      }
    }
  }
}

TEST_P(CoverageProperty, CoverageIsMonotoneInEpsilon) {
  PairDistance tight(&ontology_, epsilon_);
  PairDistance loose(&ontology_, epsilon_ + 0.4);
  for (size_t i = 0; i < pairs_.size(); i += 2) {
    for (size_t j = 0; j < pairs_.size(); j += 2) {
      if (tight.Covers(pairs_[i], pairs_[j])) {
        EXPECT_TRUE(loose.Covers(pairs_[i], pairs_[j]));
        EXPECT_DOUBLE_EQ(tight(pairs_[i], pairs_[j]),
                         loose(pairs_[i], pairs_[j]));
      }
    }
  }
}

TEST_P(CoverageProperty, CostIsMonotoneInSummary) {
  PairDistance distance(&ontology_, epsilon_);
  for (int trial = 0; trial < 8; ++trial) {
    auto summary = RandomSubset(6);
    double cost = SummaryCost(distance, summary, pairs_);
    summary.push_back(pairs_[rng_.NextUint64(pairs_.size())]);
    double bigger = SummaryCost(distance, summary, pairs_);
    EXPECT_LE(bigger, cost + 1e-12);
  }
}

TEST_P(CoverageProperty, CostIsSubmodular) {
  // For F ⊆ F' and p ∉ F': gain of p at F is >= gain at F'.
  PairDistance distance(&ontology_, epsilon_);
  for (int trial = 0; trial < 8; ++trial) {
    auto small = RandomSubset(4);
    auto large = small;
    for (int extra = 0; extra < 3; ++extra) {
      large.push_back(pairs_[rng_.NextUint64(pairs_.size())]);
    }
    ConceptSentimentPair p = pairs_[rng_.NextUint64(pairs_.size())];
    double small_cost = SummaryCost(distance, small, pairs_);
    double large_cost = SummaryCost(distance, large, pairs_);
    auto small_plus = small;
    small_plus.push_back(p);
    auto large_plus = large;
    large_plus.push_back(p);
    double gain_small = small_cost - SummaryCost(distance, small_plus, pairs_);
    double gain_large = large_cost - SummaryCost(distance, large_plus, pairs_);
    EXPECT_GE(gain_small, gain_large - 1e-9);
  }
}

TEST_P(CoverageProperty, GraphCostsMatchBruteForce) {
  PairDistance distance(&ontology_, epsilon_);
  CoverageGraph graph = CoverageGraph::BuildForPairs(distance, pairs_);
  EXPECT_NEAR(graph.EmptySummaryCost(), SummaryCost(distance, {}, pairs_),
              1e-9);
  for (int trial = 0; trial < 6; ++trial) {
    size_t count = 1 + rng_.NextUint64(5);
    auto indices = rng_.SampleWithoutReplacement(pairs_.size(), count);
    std::vector<int> selection(indices.begin(), indices.end());
    std::vector<ConceptSentimentPair> summary;
    for (int u : selection) summary.push_back(pairs_[static_cast<size_t>(u)]);
    EXPECT_NEAR(graph.CostOfSelection(selection),
                SummaryCost(distance, summary, pairs_), 1e-9);
  }
}

TEST_P(CoverageProperty, GroupGraphEqualsPairUnionSemantics) {
  PairDistance distance(&ontology_, epsilon_);
  // Random grouping into "sentences" of 1-4 pairs.
  std::vector<std::vector<int>> groups;
  size_t i = 0;
  while (i < pairs_.size()) {
    size_t size = 1 + rng_.NextUint64(4);
    std::vector<int> group;
    for (size_t j = i; j < std::min(i + size, pairs_.size()); ++j) {
      group.push_back(static_cast<int>(j));
    }
    groups.push_back(std::move(group));
    i += size;
  }
  CoverageGraph graph =
      CoverageGraph::BuildForGroups(distance, pairs_, groups);
  for (int trial = 0; trial < 6; ++trial) {
    size_t count = 1 + rng_.NextUint64(3);
    auto chosen = rng_.SampleWithoutReplacement(groups.size(),
                                                std::min(count, groups.size()));
    std::vector<int> selection(chosen.begin(), chosen.end());
    std::vector<ConceptSentimentPair> union_pairs;
    for (int g : selection) {
      for (int p : groups[static_cast<size_t>(g)]) {
        union_pairs.push_back(pairs_[static_cast<size_t>(p)]);
      }
    }
    EXPECT_NEAR(graph.CostOfSelection(selection),
                SummaryCost(distance, union_pairs, pairs_), 1e-9);
  }
}

TEST_P(CoverageProperty, GreedySatisfiesWolseyBound) {
  // Theorem 4: greedy's size-k summary costs at most opt_{k'}(P) with
  // k' = floor(k / H(Δ·n)). For these sizes k' is 1, so compare against
  // the exhaustive optimum with a single representative.
  PairDistance distance(&ontology_, epsilon_);
  CoverageGraph graph = CoverageGraph::BuildForPairs(distance, pairs_);
  const int k = 6;
  int delta_n = ontology_.max_depth() * static_cast<int>(pairs_.size());
  int k_prime =
      static_cast<int>(static_cast<double>(k) /
                       HarmonicNumber(static_cast<size_t>(delta_n)));
  k_prime = std::max(1, k_prime);
  auto greedy = GreedySummarizer().Summarize(graph, k);
  auto reference = ExhaustiveSummarizer().Summarize(graph, k_prime);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(greedy->cost, reference->cost + 1e-9);
}

TEST_P(CoverageProperty, IlpMatchesExhaustive) {
  PairDistance distance(&ontology_, epsilon_);
  // Shrink to keep the exhaustive oracle cheap.
  std::vector<ConceptSentimentPair> small(pairs_.begin(), pairs_.begin() + 14);
  CoverageGraph graph = CoverageGraph::BuildForPairs(distance, small);
  for (int k : {1, 2, 3}) {
    auto ilp = IlpSummarizer().Summarize(graph, k);
    auto exact = ExhaustiveSummarizer().Summarize(graph, k);
    ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(ilp->cost, exact->cost, 1e-6) << "k=" << k;
  }
}

TEST_P(CoverageProperty, AlgorithmCostOrdering) {
  // exhaustive <= {greedy, RR} <= empty, on the same instance.
  PairDistance distance(&ontology_, epsilon_);
  std::vector<ConceptSentimentPair> small(pairs_.begin(), pairs_.begin() + 16);
  CoverageGraph graph = CoverageGraph::BuildForPairs(distance, small);
  const int k = 3;
  auto exact = ExhaustiveSummarizer().Summarize(graph, k);
  auto greedy = GreedySummarizer().Summarize(graph, k);
  auto rr = RandomizedRoundingSummarizer().Summarize(graph, k);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_LE(exact->cost, greedy->cost + 1e-9);
  EXPECT_LE(exact->cost, rr->cost + 1e-9);
  EXPECT_LE(greedy->cost, graph.EmptySummaryCost() + 1e-9);
  EXPECT_LE(rr->cost, graph.EmptySummaryCost() + 1e-9);
}

TEST_P(CoverageProperty, DedupePreservesCosts) {
  PairDistance distance(&ontology_, epsilon_);
  // Quantize sentiments to a grid, then dedupe exactly.
  std::vector<ConceptSentimentPair> gridded = pairs_;
  for (auto& pair : gridded) {
    pair.sentiment = std::round(pair.sentiment * 4.0) / 4.0;
  }
  CoverageGraph full = CoverageGraph::BuildForPairs(distance, gridded);
  DedupedPairs deduped = DedupePairs(gridded, 1e-9);
  CoverageGraph compact = CoverageGraph::BuildForPairsWeighted(
      distance, deduped.pairs, deduped.weights);
  for (int k : {1, 2, 4}) {
    auto a = GreedySummarizer().Summarize(full, std::min(k, full.num_candidates()));
    auto b = GreedySummarizer().Summarize(
        compact, std::min(k, compact.num_candidates()));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->cost, b->cost, 1e-9) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverageProperty,
    testing::Combine(testing::Values(11u, 22u, 33u, 44u),
                     testing::Values(0.2, 0.5, 1.0)),
    [](const testing::TestParamInfo<CoverageProperty::ParamType>& param) {
      return StrFormat("seed%llu_eps%d",
                       static_cast<unsigned long long>(
                           std::get<0>(param.param)),
                       static_cast<int>(std::get<1>(param.param) * 10));
    });

}  // namespace
}  // namespace osrs
