#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/exhaustive.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"

namespace osrs {
namespace {

struct Instance {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
};

/// Pairs with sentiments on a coarse grid so deduplication is exact.
Instance MakeGriddedInstance(uint64_t seed, int num_pairs) {
  SnomedLikeOptions options;
  options.num_concepts = 40;
  options.max_depth = 4;
  options.seed = seed;
  Instance instance;
  instance.ontology = BuildSnomedLikeOntology(options);
  Rng rng(seed * 101 + 7);
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(instance.ontology.num_concepts() - 1));
    // Grid {-1.0, -0.75, ..., 1.0}: many exact duplicates.
    double s = -1.0 + 0.25 * static_cast<double>(rng.NextUint64(9));
    instance.pairs.push_back({c, s});
  }
  return instance;
}

TEST(DedupePairsTest, MergesExactDuplicates) {
  Instance inst = MakeGriddedInstance(1, 80);
  DedupedPairs deduped = DedupePairs(inst.pairs, 0.1);
  EXPECT_LT(deduped.pairs.size(), inst.pairs.size());
  // Weights sum to the original pair count.
  double total = 0;
  for (double w : deduped.weights) total += w;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(inst.pairs.size()));
  // Every representative index is valid and of matching concept.
  for (size_t i = 0; i < inst.pairs.size(); ++i) {
    int rep = deduped.representative_of[i];
    ASSERT_GE(rep, 0);
    ASSERT_LT(static_cast<size_t>(rep), deduped.pairs.size());
    EXPECT_EQ(deduped.pairs[static_cast<size_t>(rep)].concept_id,
              inst.pairs[i].concept_id);
    // Grid + small quantum => representative sentiment is exact.
    EXPECT_DOUBLE_EQ(deduped.pairs[static_cast<size_t>(rep)].sentiment,
                     inst.pairs[i].sentiment);
  }
}

TEST(DedupePairsTest, QuantumBucketsCloseSentiments) {
  std::vector<ConceptSentimentPair> pairs{{1, 0.50}, {1, 0.52}, {1, 0.91}};
  DedupedPairs deduped = DedupePairs(pairs, 0.1);
  EXPECT_EQ(deduped.pairs.size(), 2u);
  EXPECT_NEAR(deduped.pairs[0].sentiment, 0.51, 1e-12);  // bucket mean
  EXPECT_DOUBLE_EQ(deduped.weights[0], 2.0);
}

TEST(WeightedGraphTest, WeightedCostEqualsDuplicatedCost) {
  // The whole point of deduplication: greedy/exact costs on the weighted
  // deduped graph equal those on the original duplicated graph.
  for (uint64_t seed : {2u, 3u, 4u}) {
    Instance inst = MakeGriddedInstance(seed, 60);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph full = CoverageGraph::BuildForPairs(dist, inst.pairs);
    DedupedPairs deduped = DedupePairs(inst.pairs, 1e-6);
    CoverageGraph compact = CoverageGraph::BuildForPairsWeighted(
        dist, deduped.pairs, deduped.weights);

    EXPECT_LE(compact.num_edges(), full.num_edges());
    EXPECT_NEAR(compact.EmptySummaryCost(), full.EmptySummaryCost(), 1e-9);

    for (int k : {1, 3, 5}) {
      auto greedy_full = GreedySummarizer().Summarize(full, k);
      auto greedy_compact = GreedySummarizer().Summarize(compact, k);
      ASSERT_TRUE(greedy_full.ok());
      ASSERT_TRUE(greedy_compact.ok());
      EXPECT_NEAR(greedy_full->cost, greedy_compact->cost, 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(WeightedGraphTest, IlpRespectsWeights) {
  Instance inst = MakeGriddedInstance(5, 30);
  PairDistance dist(&inst.ontology, 0.5);
  DedupedPairs deduped = DedupePairs(inst.pairs, 1e-6);
  CoverageGraph compact = CoverageGraph::BuildForPairsWeighted(
      dist, deduped.pairs, deduped.weights);
  for (int k : {1, 2, 3}) {
    auto ilp = IlpSummarizer().Summarize(compact, k);
    auto exact = ExhaustiveSummarizer().Summarize(compact, k);
    ASSERT_TRUE(ilp.ok()) << ilp.status().ToString();
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(ilp->cost, exact->cost, 1e-6) << "k " << k;
  }
}

TEST(WeightedGraphTest, HeavyTargetDominatesSelection) {
  // A chain root -> a -> b; pairs on a (weight 1) and b (weight 100) with
  // far-apart sentiments: k=1 must cover the heavy one.
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ASSERT_TRUE(onto.AddEdge(root, a).ok());
  ASSERT_TRUE(onto.AddEdge(a, b).ok());
  ASSERT_TRUE(onto.Finalize().ok());
  PairDistance dist(&onto, 0.3);
  std::vector<ConceptSentimentPair> pairs{{a, 0.9}, {b, -0.9}};
  std::vector<double> weights{1.0, 100.0};
  CoverageGraph graph =
      CoverageGraph::BuildForPairsWeighted(dist, pairs, weights);
  auto result = GreedySummarizer().Summarize(graph, 1);
  ASSERT_TRUE(result.ok());
  // Covering b zeroes 100 * depth 2 = 200; covering a only zeroes 1.
  EXPECT_EQ(result->selected, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(result->cost, 1.0);  // a falls back to the root (depth 1)
}

TEST(WeightedGraphTest, DefaultWeightIsOne) {
  Instance inst = MakeGriddedInstance(6, 10);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  for (int w = 0; w < graph.num_targets(); ++w) {
    EXPECT_DOUBLE_EQ(graph.target_weight(w), 1.0);
  }
}

TEST(WeightedGraphTest, RejectsMismatchedWeightVector) {
  Instance inst = MakeGriddedInstance(7, 5);
  PairDistance dist(&inst.ontology, 0.5);
  std::vector<double> weights(3, 1.0);  // wrong size
  EXPECT_DEATH(
      CoverageGraph::BuildForPairsWeighted(dist, inst.pairs, weights),
      "OSRS_CHECK");
}

}  // namespace
}  // namespace osrs
