// Parameterized sweeps of the corpus generator: the Table 1 contracts
// (exact counts, bounded extremes, target averages) must hold across
// scales and seeds, and generation must stay deterministic.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "datagen/cellphone_corpus.h"
#include "datagen/corpus_io.h"
#include "datagen/doctor_corpus.h"
#include "datagen/review_generator.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {
namespace {

/// Parameter: (scale percent, seed).
class DoctorCorpusSweep
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DoctorCorpusSweep, Table1ContractsHold) {
  auto [scale_percent, seed] = GetParam();
  DoctorCorpusOptions options;
  options.scale = scale_percent / 1000.0;
  options.ontology_concepts = 500;
  options.seed = seed;
  Corpus corpus = GenerateDoctorCorpus(options);
  CorpusStats stats = ComputeStats(corpus);

  size_t expected_items = static_cast<size_t>(
      std::max(1L, std::lround(1000 * options.scale)));
  int64_t expected_reviews = std::llround(68686 * options.scale);
  // The generator clamps the total into [min*n, max*n].
  int64_t low = 43 * static_cast<int64_t>(expected_items);
  int64_t high = 354 * static_cast<int64_t>(expected_items);
  expected_reviews = std::clamp(expected_reviews, low, high);

  EXPECT_EQ(stats.num_items, expected_items);
  EXPECT_EQ(static_cast<int64_t>(stats.num_reviews), expected_reviews);
  EXPECT_GE(stats.min_reviews_per_item, 43);
  EXPECT_LE(stats.max_reviews_per_item, 354);
  EXPECT_NEAR(stats.avg_sentences_per_review, 4.87, 0.45);
  EXPECT_GT(stats.num_pairs, stats.num_reviews);  // >1 pair per review
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DoctorCorpusSweep,
    testing::Combine(testing::Values(5, 10, 20),  // 0.5%, 1%, 2%
                     testing::Values(42u, 99u)));

class GeneratorSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSweep, DeterministicAndSerializable) {
  ReviewGeneratorSpec spec;
  spec.domain = "phone";
  spec.num_items = 4;
  spec.min_reviews_per_item = 3;
  spec.max_reviews_per_item = 30;
  spec.total_reviews = 60;
  spec.avg_sentences_per_review = 3.5;
  spec.seed = GetParam();
  Ontology onto = BuildCellPhoneHierarchy();
  Corpus a = GenerateReviewCorpus(onto, spec);
  Corpus b = GenerateReviewCorpus(onto, spec);
  auto sa = SaveCorpus(a);
  auto sb = SaveCorpus(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(*sa, *sb);  // bitwise-deterministic, incl. all text and pairs

  // And the serialization round-trips.
  auto restored = LoadCorpus(*sa);
  ASSERT_TRUE(restored.ok());
  auto sr = SaveCorpus(*restored);
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(*sr, *sa);
}

TEST_P(GeneratorSweep, SentenceCountExpectationTracksTarget) {
  ReviewGeneratorSpec spec;
  spec.domain = "doctor";
  spec.num_items = 6;
  spec.min_reviews_per_item = 20;
  spec.max_reviews_per_item = 200;
  spec.total_reviews = 600;
  spec.avg_sentences_per_review = 5.25;  // fractional base
  spec.seed = GetParam() * 3 + 1;
  Ontology onto = BuildCellPhoneHierarchy();
  Corpus corpus = GenerateReviewCorpus(onto, spec);
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_NEAR(stats.avg_sentences_per_review, 5.25, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace osrs
