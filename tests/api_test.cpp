#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "api/annotator.h"
#include "api/review_summarizer.h"
#include "datagen/cellphone_corpus.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {
namespace {

Item SmallItem(const Ontology& onto) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  ConceptId price = onto.FindByName("price");
  Item item;
  item.id = "phone-x";
  Review r1;
  r1.sentences.push_back({"screen is great", {{screen, 0.75}}});
  r1.sentences.push_back({"battery is awful", {{battery, -0.9}}});
  Review r2;
  r2.sentences.push_back({"price is decent", {{price, 0.35}}});
  r2.sentences.push_back({"screen is nice", {{screen, 0.5}}});
  item.reviews = {r1, r2};
  return item;
}

// --------------------------------------------------------- ReviewSummarizer

TEST(ReviewSummarizerTest, PairGranularityRendersConceptSentiment) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.granularity = SummaryGranularity::kPairs;
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->entries.size(), 2u);
  EXPECT_NE(summary->entries[0].display.find("="), std::string::npos);
  EXPECT_GE(summary->entries[0].review_index, 0);
  EXPECT_EQ(summary->num_pairs, 4u);
}

TEST(ReviewSummarizerTest, SentenceGranularityReturnsSentenceText) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(SmallItem(onto), 3);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->entries.size(), 3u);
  std::set<std::string> texts;
  for (const auto& entry : summary->entries) {
    texts.insert(entry.display);
    EXPECT_GE(entry.sentence_index, 0);
  }
  // Greedy should cover all three aspects rather than repeat "screen".
  EXPECT_TRUE(texts.count("screen is great") || texts.count("screen is nice"));
  EXPECT_TRUE(texts.count("battery is awful"));
  EXPECT_TRUE(texts.count("price is decent"));
}

TEST(ReviewSummarizerTest, ReviewGranularitySelectsReviews) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.granularity = SummaryGranularity::kReviews;
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->entries.size(), 2u);
  std::set<int> reviews;
  for (const auto& entry : summary->entries) {
    reviews.insert(entry.review_index);
    EXPECT_EQ(entry.sentence_index, -1);
  }
  EXPECT_EQ(reviews.size(), 2u);
}

TEST(ReviewSummarizerTest, AllAlgorithmsAgreeOnCostOrdering) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = SmallItem(onto);
  double ilp_cost = 0.0;
  for (SummaryAlgorithm algorithm :
       {SummaryAlgorithm::kIlp, SummaryAlgorithm::kGreedy,
        SummaryAlgorithm::kGreedyLazy, SummaryAlgorithm::kRandomizedRounding}) {
    ReviewSummarizerOptions options;
    options.algorithm = algorithm;
    options.granularity = SummaryGranularity::kPairs;
    ReviewSummarizer summarizer(&onto, options);
    auto summary = summarizer.Summarize(item, 2);
    ASSERT_TRUE(summary.ok()) << SummaryAlgorithmToString(algorithm);
    if (algorithm == SummaryAlgorithm::kIlp) {
      ilp_cost = summary->cost;
    } else {
      EXPECT_GE(summary->cost, ilp_cost - 1e-9)
          << SummaryAlgorithmToString(algorithm);
    }
  }
}

TEST(ReviewSummarizerTest, KExceedingCandidatesTruncates) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(SmallItem(onto), 100);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->entries.size(), 4u);  // 4 sentences with pairs
  EXPECT_FALSE(summarizer.Summarize(SmallItem(onto), -1).ok());
}

TEST(ReviewSummarizerTest, EmptyItem) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  Item item;
  item.id = "empty";
  auto summary = summarizer.Summarize(item, 3);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->entries.empty());
  EXPECT_DOUBLE_EQ(summary->cost, 0.0);
}

TEST(ReviewSummarizerTest, AutoEpsilonPicksFromGrid) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.auto_epsilon = true;
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  // The chosen epsilon is one of the default grid values.
  bool on_grid = false;
  for (double eps : {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.2, 1.6, 2.0}) {
    if (std::abs(summary->epsilon - eps) < 1e-12) on_grid = true;
  }
  EXPECT_TRUE(on_grid) << summary->epsilon;
  // Without auto selection the configured epsilon is reported back.
  ReviewSummarizer fixed(&onto, {});
  auto fixed_summary = fixed.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(fixed_summary.ok());
  EXPECT_DOUBLE_EQ(fixed_summary->epsilon, 0.5);
}

TEST(ReviewSummarizerTest, ToJsonIsWellFormed) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(SmallItem(onto), 2);
  ASSERT_TRUE(summary.ok());
  std::string json = summary->ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"cost\":"), std::string::npos);
  EXPECT_NE(json.find("\"entries\":["), std::string::npos);
  // Balanced braces/brackets and no raw control characters.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReviewSummarizerTest, ToJsonEscapesSpecialCharacters) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item;
  item.id = "x";
  Review review;
  review.sentences.push_back(
      {"he said \"great\" \\ phone", {{onto.FindByName("screen"), 0.5}}});
  item.reviews.push_back(review);
  ReviewSummarizer summarizer(&onto, {});
  auto summary = summarizer.Summarize(item, 1);
  ASSERT_TRUE(summary.ok());
  std::string json = summary->ToJson();
  EXPECT_NE(json.find("\\\"great\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
}

// -------------------------------------------------------------- Annotator

TEST(AnnotatorTest, AnnotatesFromText) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());
  auto item = annotator.AnnotateTexts(
      "phone-y",
      {"The battery life is excellent. The speaker is terrible!",
       "Shipping was fast."},
      {0.5, 0.8});
  ASSERT_TRUE(item.ok());
  ASSERT_EQ(item->reviews.size(), 2u);
  ASSERT_EQ(item->reviews[0].sentences.size(), 2u);
  const auto& s0 = item->reviews[0].sentences[0];
  ASSERT_EQ(s0.pairs.size(), 1u);
  EXPECT_EQ(s0.pairs[0].concept_id, onto.FindByName("battery life"));
  EXPECT_GT(s0.pairs[0].sentiment, 0.5);
  const auto& s1 = item->reviews[0].sentences[1];
  ASSERT_EQ(s1.pairs.size(), 1u);
  EXPECT_EQ(s1.pairs[0].concept_id, onto.FindByName("speaker"));
  EXPECT_LT(s1.pairs[0].sentiment, -0.5);
  EXPECT_DOUBLE_EQ(item->reviews[1].rating, 0.8);
}

TEST(AnnotatorTest, RejectsMismatchedRatings) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());
  EXPECT_FALSE(annotator.AnnotateTexts("x", {"a. b."}, {0.1, 0.2}).ok());
}

TEST(AnnotatorTest, ReannotationOverwritesPairs) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item item = SmallItem(onto);
  // Poison the pairs; annotation must rebuild them from text.
  item.reviews[0].sentences[0].pairs = {{onto.FindByName("gps"), -1.0}};
  ReviewAnnotator annotator(&onto, SentimentEstimator::LexiconOnly());
  ASSERT_TRUE(annotator.Annotate(item).ok());
  const auto& pairs = item.reviews[0].sentences[0].pairs;
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].concept_id, onto.FindByName("screen"));
  EXPECT_GT(pairs[0].sentiment, 0.0);
}

// -------------------------------------- End-to-end pipeline vs ground truth

TEST(PipelineTest, AnnotationRecoversGeneratorPairs) {
  // Generate text with known pairs, strip them, re-annotate through the
  // extraction + sentiment pipeline, and check agreement.
  CellPhoneCorpusOptions options;
  options.scale = 0.04;
  Corpus corpus = GenerateCellPhoneCorpus(options);
  ReviewAnnotator annotator(&corpus.ontology,
                            SentimentEstimator::LexiconOnly());

  int truth_pairs = 0, recovered = 0;
  int polar_pairs = 0, sentiment_sign_match = 0;
  for (Item item : corpus.items) {  // copy: we mutate
    Item annotated = item;
    ASSERT_TRUE(annotator.Annotate(annotated).ok());
    for (size_t r = 0; r < item.reviews.size(); ++r) {
      for (size_t s = 0; s < item.reviews[r].sentences.size(); ++s) {
        const auto& truth = item.reviews[r].sentences[s].pairs;
        const auto& found = annotated.reviews[r].sentences[s].pairs;
        for (const auto& pair : truth) {
          ++truth_pairs;
          for (const auto& f : found) {
            if (f.concept_id == pair.concept_id) {
              ++recovered;
              if (std::abs(pair.sentiment) > 0.25) {
                ++polar_pairs;
                if ((f.sentiment >= 0) == (pair.sentiment >= 0)) {
                  ++sentiment_sign_match;
                }
              }
              break;
            }
          }
        }
      }
    }
  }
  ASSERT_GT(truth_pairs, 500);
  // The dictionary extractor should recover the large majority of planted
  // concepts, and the lexicon should get the polarity right when the
  // planted sentiment is not near-neutral.
  EXPECT_GT(static_cast<double>(recovered) / truth_pairs, 0.8);
  ASSERT_GT(polar_pairs, 200);
  EXPECT_GT(static_cast<double>(sentiment_sign_match) / polar_pairs, 0.6);
}

}  // namespace
}  // namespace osrs
