#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/coverage_selector.h"
#include "baselines/lexrank.h"
#include "baselines/lsa.h"
#include "baselines/most_popular.h"
#include "baselines/pagerank.h"
#include "baselines/proportional.h"
#include "baselines/sentence_selector.h"
#include "baselines/textrank.h"
#include "datagen/cellphone_corpus.h"
#include "eval/sent_err.h"
#include "ontology/cellphone_hierarchy.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

CandidateSentence MakeSentence(const std::string& text,
                               std::vector<ConceptSentimentPair> pairs,
                               int review = 0, int index = 0) {
  CandidateSentence s;
  s.review_index = review;
  s.sentence_index = index;
  s.text = text;
  s.tokens = Tokenize(text);
  s.pairs = std::move(pairs);
  return s;
}

// ---------------------------------------------------------------- PageRank

TEST(PageRankTest, SymmetricTriangleIsUniform) {
  std::vector<std::vector<std::pair<int, double>>> graph{
      {{1, 1.0}, {2, 1.0}}, {{0, 1.0}, {2, 1.0}}, {{0, 1.0}, {1, 1.0}}};
  auto rank = PageRank(graph);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_NEAR(rank[0], 1.0 / 3, 1e-6);
  EXPECT_NEAR(rank[1], 1.0 / 3, 1e-6);
  EXPECT_NEAR(rank[2], 1.0 / 3, 1e-6);
}

TEST(PageRankTest, HubGetsHigherScore) {
  // Star: node 0 connected to 1..4.
  std::vector<std::vector<std::pair<int, double>>> graph(5);
  for (int leaf = 1; leaf < 5; ++leaf) {
    graph[0].emplace_back(leaf, 1.0);
    graph[static_cast<size_t>(leaf)].emplace_back(0, 1.0);
  }
  auto rank = PageRank(graph);
  for (int leaf = 1; leaf < 5; ++leaf) {
    EXPECT_GT(rank[0], rank[static_cast<size_t>(leaf)]);
  }
}

TEST(PageRankTest, ScoresSumToOneWithDanglingNodes) {
  std::vector<std::vector<std::pair<int, double>>> graph(4);
  graph[0].emplace_back(1, 2.0);  // 1,2,3 dangling
  auto rank = PageRank(graph);
  double sum = 0;
  for (double r : rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, EmptyGraph) { EXPECT_TRUE(PageRank({}).empty()); }

// --------------------------------------------------------- Rank selectors

std::vector<CandidateSentence> RepetitionCorpus() {
  std::vector<CandidateSentence> sentences;
  // A dominant theme (screen) and an outlier.
  for (int i = 0; i < 6; ++i) {
    sentences.push_back(MakeSentence("the screen display is bright and sharp",
                                     {}, 0, i));
  }
  sentences.push_back(MakeSentence("shipping box arrived dented", {}, 1, 0));
  return sentences;
}

TEST(TextRankTest, PrefersCentralSentences) {
  TextRankSelector selector;
  auto selected = selector.Select(RepetitionCorpus(), 1);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  // The central (repeated-theme) sentence outranks the outlier.
  EXPECT_LT((*selected)[0], 6);
}

TEST(TextRankTest, ReturnsKDistinct) {
  TextRankSelector selector;
  auto selected = selector.Select(RepetitionCorpus(), 3);
  ASSERT_TRUE(selected.ok());
  std::set<int> unique(selected->begin(), selected->end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_FALSE(selector.Select(RepetitionCorpus(), -1).ok());
}

TEST(TextRankTest, KLargerThanCorpus) {
  TextRankSelector selector;
  auto selected = selector.Select(RepetitionCorpus(), 100);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), RepetitionCorpus().size());
}

TEST(LexRankTest, PrefersCentralSentences) {
  LexRankSelector selector;
  auto selected = selector.Select(RepetitionCorpus(), 1);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_LT((*selected)[0], 6);
}

TEST(LexRankTest, ThresholdOneIsolatesEverything) {
  LexRankSelector selector(/*cosine_threshold=*/1.01);
  auto selected = selector.Select(RepetitionCorpus(), 2);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);  // still returns top-k (uniform ranks)
}

TEST(LsaTest, SelectsFromDominantTopic) {
  // With a single latent topic only the dominant theme survives; with more
  // topics LSA deliberately also represents minority themes.
  LsaSelector selector(1);
  auto selected = selector.Select(RepetitionCorpus(), 1);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_LT((*selected)[0], 6);
}

TEST(LsaTest, HandlesEmptyAndValidatesArgs) {
  LsaSelector selector;
  auto selected = selector.Select({}, 3);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
  EXPECT_FALSE(selector.Select(RepetitionCorpus(), -1).ok());
}

// ------------------------------------------------- Opinion-based baselines

std::vector<CandidateSentence> OpinionCorpus(const Ontology& onto) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  ConceptId price = onto.FindByName("price");
  std::vector<CandidateSentence> sentences;
  // screen+ is the most popular pair (4 sentences), then battery- (3),
  // then price+ (1).
  sentences.push_back(MakeSentence("screen is good", {{screen, 0.5}}, 0, 0));
  sentences.push_back(MakeSentence("screen is great", {{screen, 0.75}}, 1, 0));
  sentences.push_back(MakeSentence("screen is nice", {{screen, 0.5}}, 2, 0));
  sentences.push_back(
      MakeSentence("screen is excellent", {{screen, 0.95}}, 3, 0));
  sentences.push_back(MakeSentence("battery is bad", {{battery, -0.5}}, 4, 0));
  sentences.push_back(
      MakeSentence("battery is awful", {{battery, -0.9}}, 5, 0));
  sentences.push_back(MakeSentence("battery is poor", {{battery, -0.55}}, 6, 0));
  sentences.push_back(MakeSentence("price is decent", {{price, 0.35}}, 7, 0));
  return sentences;
}

TEST(MostPopularTest, PicksMostPopularAspectFirst) {
  Ontology onto = BuildCellPhoneHierarchy();
  auto sentences = OpinionCorpus(onto);
  MostPopularSelector selector;
  auto selected = selector.Select(sentences, 2);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  // First pick: the most polarized screen+ sentence (index 3, 0.95).
  EXPECT_EQ((*selected)[0], 3);
  // Second pick: most polarized battery- sentence (index 5, -0.9).
  EXPECT_EQ((*selected)[1], 5);
}

TEST(MostPopularTest, NeverRepeatsSentences) {
  Ontology onto = BuildCellPhoneHierarchy();
  MostPopularSelector selector;
  auto selected = selector.Select(OpinionCorpus(onto), 6);
  ASSERT_TRUE(selected.ok());
  std::set<int> unique(selected->begin(), selected->end());
  EXPECT_EQ(unique.size(), selected->size());
}

TEST(ProportionalTest, AllocatesSlotsByFrequency) {
  Ontology onto = BuildCellPhoneHierarchy();
  auto sentences = OpinionCorpus(onto);
  ProportionalSelector selector;
  auto selected = selector.Select(sentences, 4);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 4u);
  // 8 pairs total: screen+ 4/8 -> 2 slots, battery- 3/8 -> 1-2, price 0-1.
  int screen_count = 0;
  for (int s : *selected) {
    if (sentences[static_cast<size_t>(s)].pairs[0].concept_id ==
        onto.FindByName("screen")) {
      ++screen_count;
    }
  }
  EXPECT_EQ(screen_count, 2);
}

TEST(ProportionalTest, EmptyPairsGiveEmptySummary) {
  ProportionalSelector selector;
  auto selected = selector.Select(RepetitionCorpus(), 3);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
}

// ------------------------------------------------------- Coverage (ours)

TEST(CoverageSelectorTest, SkipsPairlessSentences) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<CandidateSentence> sentences;
  sentences.push_back(MakeSentence("no aspects here at all", {}, 0, 0));
  sentences.push_back(MakeSentence(
      "screen is great", {{onto.FindByName("screen"), 0.75}}, 1, 0));
  CoverageGreedySelector selector(&onto);
  auto selected = selector.Select(sentences, 2);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0], 1);
}

TEST(CoverageSelectorTest, CoversDiverseAspects) {
  Ontology onto = BuildCellPhoneHierarchy();
  auto sentences = OpinionCorpus(onto);
  CoverageGreedySelector selector(&onto);
  auto selected = selector.Select(sentences, 3);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 3u);
  std::set<ConceptId> concepts;
  for (int s : *selected) {
    concepts.insert(sentences[static_cast<size_t>(s)].pairs[0].concept_id);
  }
  // One sentence per aspect beats three sentences about the screen.
  EXPECT_EQ(concepts.size(), 3u);
}

// ---------------------------------------- Head-to-head on a real corpus

TEST(BaselineComparisonTest, OursBeatsSentimentAgnosticBaselines) {
  // Small synthetic phone corpus; ours should dominate the text-only
  // baselines on sent-err (the Fig. 6 claim, in miniature).
  CellPhoneCorpusOptions options;
  options.scale = 0.04;
  Corpus corpus = GenerateCellPhoneCorpus(options);
  const int k = 5;

  double ours_total = 0, textrank_total = 0, lexrank_total = 0;
  for (const Item& item : corpus.items) {
    // Cap candidate sentences to keep the quadratic baselines fast.
    auto candidates = BuildCandidates(item);
    if (candidates.size() > 150) candidates.resize(150);
    std::vector<ConceptSentimentPair> all_pairs;
    for (const auto& c : candidates) {
      all_pairs.insert(all_pairs.end(), c.pairs.begin(), c.pairs.end());
    }

    CoverageGreedySelector ours(&corpus.ontology);
    TextRankSelector textrank;
    LexRankSelector lexrank;
    for (auto* selector : std::initializer_list<SentenceSelector*>{
             &ours, &textrank, &lexrank}) {
      auto selected = selector->Select(candidates, k);
      ASSERT_TRUE(selected.ok()) << selector->name();
      double err = SentErr(corpus.ontology, all_pairs,
                           PairsOfSelection(candidates, *selected), false);
      if (selector == static_cast<SentenceSelector*>(&ours)) {
        ours_total += err;
      } else if (selector == static_cast<SentenceSelector*>(&textrank)) {
        textrank_total += err;
      } else {
        lexrank_total += err;
      }
    }
  }
  EXPECT_LT(ours_total, textrank_total);
  EXPECT_LT(ours_total, lexrank_total);
}

}  // namespace
}  // namespace osrs
