#include <gtest/gtest.h>

#include "eval/coverage_report.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {
namespace {

TEST(CoverageReportTest, EmptySummary) {
  Ontology onto = BuildCellPhoneHierarchy();
  PairDistance distance(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("screen"), 0.5},
                                          {onto.FindByName("battery"), -0.3}};
  CoverageReport report = AnalyzeCoverage(distance, {}, pairs);
  EXPECT_DOUBLE_EQ(report.cost, report.empty_cost);
  EXPECT_DOUBLE_EQ(report.cost_reduction, 0.0);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 0.0);
  EXPECT_EQ(report.distinct_concepts, 2u);
  EXPECT_EQ(report.covered_concepts, 0u);
  EXPECT_EQ(report.num_pairs, 2u);
}

TEST(CoverageReportTest, PerfectSummary) {
  Ontology onto = BuildCellPhoneHierarchy();
  PairDistance distance(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("screen"), 0.5},
                                          {onto.FindByName("battery"), -0.3}};
  CoverageReport report = AnalyzeCoverage(distance, pairs, pairs);
  EXPECT_DOUBLE_EQ(report.cost, 0.0);
  EXPECT_DOUBLE_EQ(report.cost_reduction, 1.0);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_covered_distance, 0.0);
  EXPECT_EQ(report.covered_concepts, 2u);
}

TEST(CoverageReportTest, PartialCoverageCountsDistances) {
  Ontology onto = BuildCellPhoneHierarchy();
  PairDistance distance(&onto, 0.5);
  ConceptId battery = onto.FindByName("battery");
  ConceptId battery_life = onto.FindByName("battery life");
  ConceptId price = onto.FindByName("price");
  // Summary pair on "battery" covers "battery life" at distance 1; "price"
  // stays uncovered.
  std::vector<ConceptSentimentPair> pairs{{battery_life, 0.4},
                                          {price, 0.9}};
  std::vector<ConceptSentimentPair> summary{{battery, 0.4}};
  CoverageReport report = AnalyzeCoverage(distance, summary, pairs);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.mean_covered_distance, 1.0);
  // Cost: battery life at 1, price on the root at depth 1 -> 2.
  EXPECT_DOUBLE_EQ(report.cost, 2.0);
  EXPECT_EQ(report.covered_concepts, 1u);
}

TEST(CoverageReportTest, ToStringContainsKeyNumbers) {
  Ontology onto = BuildCellPhoneHierarchy();
  PairDistance distance(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("screen"), 0.5}};
  CoverageReport report = AnalyzeCoverage(distance, pairs, pairs);
  std::string text = report.ToString();
  EXPECT_NE(text.find("100.0%"), std::string::npos);
  EXPECT_NE(text.find("1 / 1"), std::string::npos);
}

TEST(RenderPairsTest, OrdersByFrequencyAndLimits) {
  Ontology onto = BuildCellPhoneHierarchy();
  std::vector<ConceptSentimentPair> pairs;
  for (int i = 0; i < 5; ++i) pairs.push_back({onto.FindByName("screen"), 0.5});
  pairs.push_back({onto.FindByName("price"), -0.2});
  std::string rendered = RenderPairsOnHierarchy(onto, pairs, 1);
  EXPECT_NE(rendered.find("screen"), std::string::npos);
  EXPECT_EQ(rendered.find("price"), std::string::npos);  // cut by the limit
  std::string full = RenderPairsOnHierarchy(onto, pairs, 0);
  EXPECT_NE(full.find("price"), std::string::npos);
}

TEST(RenderPairsTest, EmptyPairs) {
  Ontology onto = BuildCellPhoneHierarchy();
  EXPECT_TRUE(RenderPairsOnHierarchy(onto, {}, 5).empty());
}

}  // namespace
}  // namespace osrs
