// Tests of the post-paper extensions: distributional hierarchy induction,
// the parallel batch summarizer, and the sentiment evaluation utilities.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch_summarizer.h"
#include "datagen/cellphone_corpus.h"
#include "eval/sentiment_eval.h"
#include "extraction/hierarchy_induction.h"
#include "ontology/cellphone_hierarchy.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

// ----------------------------------------------------- Hierarchy induction

std::vector<std::vector<std::string>> SubsumptionCorpus() {
  std::vector<std::vector<std::string>> sentences;
  auto add = [&sentences](const char* text, int copies) {
    for (int i = 0; i < copies; ++i) sentences.push_back(Tokenize(text));
  };
  // "battery" is broad; "battery life" and "charging" almost always appear
  // with it; "screen" is an independent sibling.
  add("the battery is big", 20);
  add("battery life and battery", 10);
  add("charging the battery takes long", 8);
  add("the screen looks fine", 15);
  add("screen and battery are unrelated here", 2);
  return sentences;
}

std::vector<ExtractedAspect> SubsumptionAspects() {
  return {{"battery", 40}, {"screen", 17}, {"battery life", 10},
          {"charging", 8}};
}

TEST(HierarchyInductionTest, SubsumedAspectsNestUnderBroadOnes) {
  Ontology onto = InduceAspectHierarchy(SubsumptionCorpus(),
                                        SubsumptionAspects(), "product");
  ConceptId battery = onto.FindByName("battery");
  ConceptId battery_life = onto.FindByName("battery life");
  ConceptId charging = onto.FindByName("charging");
  ConceptId screen = onto.FindByName("screen");
  ASSERT_NE(battery, kInvalidConcept);
  // "battery life": every sentence mentioning it also mentions "battery"
  // (substring) -> child of battery. Same for "charging" (co-occurrence).
  EXPECT_EQ(onto.AncestorDistance(battery, battery_life), 1);
  EXPECT_EQ(onto.AncestorDistance(battery, charging), 1);
  // "screen" and "battery" are both broad and independent -> root children.
  EXPECT_EQ(onto.DepthFromRoot(screen), 1);
  EXPECT_EQ(onto.DepthFromRoot(battery), 1);
}

TEST(HierarchyInductionTest, NoEvidenceMeansFlatHierarchy) {
  // Aspects that never co-occur all hang off the root.
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 10; ++i) {
    sentences.push_back(Tokenize("alpha only here"));
    sentences.push_back(Tokenize("beta on its own"));
    sentences.push_back(Tokenize("gamma alone too"));
  }
  std::vector<ExtractedAspect> aspects{{"alpha", 10}, {"beta", 10},
                                       {"gamma", 10}};
  Ontology onto = InduceAspectHierarchy(sentences, aspects, "root");
  for (const char* term : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(onto.DepthFromRoot(onto.FindByName(term)), 1) << term;
  }
}

TEST(HierarchyInductionTest, ResultIsAlwaysValidDagWithSynonyms) {
  Ontology onto = InduceAspectHierarchy(SubsumptionCorpus(),
                                        SubsumptionAspects(), "product");
  EXPECT_TRUE(onto.finalized());
  EXPECT_EQ(onto.num_concepts(), 5u);
  EXPECT_EQ(onto.FindByTerm("battery life"), onto.FindByName("battery life"));
}

TEST(HierarchyInductionTest, EmptyAspectsGiveRootOnly) {
  Ontology onto = InduceAspectHierarchy({}, {}, "root");
  EXPECT_EQ(onto.num_concepts(), 1u);
  EXPECT_EQ(onto.name(onto.root()), "root");
}

// -------------------------------------------------------- Batch summarizer

TEST(BatchSummarizerTest, ParallelMatchesSerial) {
  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = 0.05;  // 3 phones
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  // Truncate items so the test stays fast.
  std::vector<Item> items;
  for (const Item& item : corpus.items) {
    items.push_back(TruncateToPairBudget(item, 120));
  }

  BatchSummarizerOptions serial_options;
  serial_options.num_threads = 1;
  BatchSummarizerOptions parallel_options;
  parallel_options.num_threads = 4;
  BatchSummarizer serial(&corpus.ontology, serial_options);
  BatchSummarizer parallel(&corpus.ontology, parallel_options);

  auto a = serial.SummarizeAll(items, 4);
  auto b = parallel.SummarizeAll(items, 4);
  ASSERT_EQ(a.size(), items.size());
  ASSERT_EQ(b.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok());
    ASSERT_TRUE(b[i].status.ok());
    EXPECT_DOUBLE_EQ(a[i].summary.cost, b[i].summary.cost);
    ASSERT_EQ(a[i].summary.entries.size(), b[i].summary.entries.size());
    for (size_t e = 0; e < a[i].summary.entries.size(); ++e) {
      EXPECT_EQ(a[i].summary.entries[e].display,
                b[i].summary.entries[e].display);
    }
  }
}

TEST(BatchSummarizerTest, EmptyBatch) {
  Ontology onto = BuildCellPhoneHierarchy();
  BatchSummarizer batch(&onto, {});
  EXPECT_TRUE(batch.SummarizeAll({}, 3).empty());
}

TEST(BatchSummarizerTest, PerItemErrorsAreIsolated) {
  Ontology onto = BuildCellPhoneHierarchy();
  Item good;
  good.id = "good";
  Review review;
  review.sentences.push_back(
      {"screen is great", {{onto.FindByName("screen"), 0.75}}});
  good.reviews.push_back(review);
  Item empty;  // no pairs: still fine, just an empty summary
  empty.id = "empty";
  BatchSummarizer batch(&onto, {});
  auto entries = batch.SummarizeAll({good, empty}, 2);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].status.ok());
  EXPECT_EQ(entries[0].summary.entries.size(), 1u);
  EXPECT_TRUE(entries[1].status.ok());
  EXPECT_TRUE(entries[1].summary.entries.empty());
}

// --------------------------------------------------------- Sentiment eval

TEST(SentimentEvalTest, PerfectEstimatorScoresPerfectly) {
  // References produced by the lexicon itself -> zero error, rho = 1.
  auto estimator = SentimentEstimator::LexiconOnly();
  std::vector<std::vector<std::string>> sentences{
      Tokenize("this is excellent"), Tokenize("this is terrible"),
      Tokenize("this is good"), Tokenize("this is bad")};
  std::vector<double> references;
  for (const auto& sentence : sentences) {
    references.push_back(estimator.ScoreSentence(sentence));
  }
  auto result = EvaluateSentiment(estimator, sentences, references);
  EXPECT_EQ(result.num_sentences, 4u);
  EXPECT_NEAR(result.mean_absolute_error, 0.0, 1e-12);
  EXPECT_NEAR(result.pearson, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.polarity_accuracy, 1.0);
}

TEST(SentimentEvalTest, LexiconBeatsNeutralOnGeneratedCorpus) {
  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = 0.02;
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  std::vector<std::vector<std::string>> sentences;
  std::vector<double> references;
  for (const Item& item : corpus.items) {
    for (const Review& review : item.reviews) {
      for (const Sentence& sentence : review.sentences) {
        if (sentence.pairs.empty()) continue;
        sentences.push_back(Tokenize(sentence.text));
        references.push_back(sentence.pairs[0].sentiment);
      }
    }
  }
  ASSERT_GT(sentences.size(), 200u);
  auto lexicon_result = EvaluateSentiment(SentimentEstimator::LexiconOnly(),
                                          sentences, references);
  // A neutral predictor has MAE = mean |reference| and zero correlation.
  double neutral_mae = 0.0;
  for (double r : references) neutral_mae += std::abs(r);
  neutral_mae /= static_cast<double>(references.size());
  EXPECT_LT(lexicon_result.mean_absolute_error, neutral_mae);
  EXPECT_GT(lexicon_result.pearson, 0.4);
  EXPECT_GT(lexicon_result.polarity_accuracy, 0.6);
}

TEST(SentimentEvalTest, EmptyInput) {
  auto result =
      EvaluateSentiment(SentimentEstimator::LexiconOnly(), {}, {});
  EXPECT_EQ(result.num_sentences, 0u);
  EXPECT_DOUBLE_EQ(result.mean_absolute_error, 0.0);
}

}  // namespace
}  // namespace osrs
