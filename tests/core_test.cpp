#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/distance.h"
#include "core/model.h"
#include "core/reduction.h"
#include "ontology/ontology.h"

namespace osrs {
namespace {

/// Chain hierarchy root -> a -> b plus sibling s of a.
Ontology BuildChain() {
  Ontology onto;
  ConceptId root = onto.AddConcept("root");
  ConceptId a = onto.AddConcept("a");
  ConceptId b = onto.AddConcept("b");
  ConceptId s = onto.AddConcept("s");
  EXPECT_TRUE(onto.AddEdge(root, a).ok());
  EXPECT_TRUE(onto.AddEdge(a, b).ok());
  EXPECT_TRUE(onto.AddEdge(root, s).ok());
  EXPECT_TRUE(onto.Finalize().ok());
  return onto;
}

// ------------------------------------------------------------- Definition 1

TEST(PairDistanceTest, RootCoversEverythingIgnoringSentiment) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  ConceptSentimentPair root_pair{onto.root(), -1.0};
  ConceptSentimentPair b_pair{onto.FindByName("b"), 1.0};
  // Sentiments differ by 2.0 > eps, but the root branch ignores sentiment.
  EXPECT_DOUBLE_EQ(d(root_pair, b_pair), 2.0);
}

TEST(PairDistanceTest, AncestorWithinEpsilonCovers) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  ConceptSentimentPair a_pair{onto.FindByName("a"), 0.3};
  ConceptSentimentPair b_pair{onto.FindByName("b"), 0.1};
  EXPECT_DOUBLE_EQ(d(a_pair, b_pair), 1.0);
  EXPECT_TRUE(d.Covers(a_pair, b_pair));
}

TEST(PairDistanceTest, AncestorBeyondEpsilonDoesNotCover) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  ConceptSentimentPair a_pair{onto.FindByName("a"), 0.9};
  ConceptSentimentPair b_pair{onto.FindByName("b"), 0.1};
  EXPECT_EQ(d(a_pair, b_pair), kInfiniteDistance);
  EXPECT_FALSE(d.Covers(a_pair, b_pair));
}

TEST(PairDistanceTest, DescendantNeverCoversAncestor) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 10.0);
  ConceptSentimentPair a_pair{onto.FindByName("a"), 0.0};
  ConceptSentimentPair b_pair{onto.FindByName("b"), 0.0};
  EXPECT_EQ(d(b_pair, a_pair), kInfiniteDistance);
}

TEST(PairDistanceTest, SiblingsDoNotCover) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 10.0);
  ConceptSentimentPair a_pair{onto.FindByName("a"), 0.0};
  ConceptSentimentPair s_pair{onto.FindByName("s"), 0.0};
  EXPECT_EQ(d(a_pair, s_pair), kInfiniteDistance);
  EXPECT_EQ(d(s_pair, a_pair), kInfiniteDistance);
}

TEST(PairDistanceTest, SelfCoverageAtZeroWithinEpsilon) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  ConceptSentimentPair p{onto.FindByName("a"), 0.2};
  ConceptSentimentPair q{onto.FindByName("a"), 0.6};
  EXPECT_DOUBLE_EQ(d(p, q), 0.0);  // |0.2-0.6| <= 0.5
  ConceptSentimentPair far{onto.FindByName("a"), 0.9};
  EXPECT_EQ(d(p, far), kInfiniteDistance);
}

TEST(PairDistanceTest, EpsilonBoundaryIsInclusive) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  ConceptSentimentPair a_pair{onto.FindByName("a"), 0.5};
  ConceptSentimentPair b_pair{onto.FindByName("b"), 0.0};
  EXPECT_DOUBLE_EQ(d(a_pair, b_pair), 1.0);  // exactly eps apart
}

TEST(PairDistanceTest, FromRootEqualsDepth) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  EXPECT_DOUBLE_EQ(d.FromRoot({onto.FindByName("b"), 0.7}), 2.0);
  EXPECT_DOUBLE_EQ(d.FromRoot({onto.root(), 0.0}), 0.0);
}

// ------------------------------------------------------------- Definition 2

TEST(SummaryCostTest, EmptySummaryFallsBackToRoot) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.0}};
  EXPECT_DOUBLE_EQ(SummaryCost(d, {}, pairs), 1.0 + 2.0);
}

TEST(SummaryCostTest, ClosestSummaryMemberWins) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("b"), 0.0}};
  std::vector<ConceptSentimentPair> summary{{onto.FindByName("a"), 0.0},
                                            {onto.FindByName("b"), 0.0}};
  EXPECT_DOUBLE_EQ(SummaryCost(d, summary, pairs), 0.0);
}

TEST(SummaryCostTest, RootBeatsUselessSummary) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  // Summary pair is a sibling: infinite distance; root covers at depth.
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("b"), 0.0}};
  std::vector<ConceptSentimentPair> summary{{onto.FindByName("s"), 0.0}};
  EXPECT_DOUBLE_EQ(SummaryCost(d, summary, pairs), 2.0);
}

TEST(SummaryCostTest, MonotoneInSummary) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.2},
                                          {onto.FindByName("b"), 0.3},
                                          {onto.FindByName("s"), -0.4}};
  std::vector<ConceptSentimentPair> small{{onto.FindByName("a"), 0.2}};
  std::vector<ConceptSentimentPair> large = small;
  large.push_back({onto.FindByName("s"), -0.4});
  EXPECT_LE(SummaryCost(d, large, pairs), SummaryCost(d, small, pairs));
}

TEST(SummaryCostTest, CoveredFraction) {
  Ontology onto = BuildChain();
  PairDistance d(&onto, 0.5);
  std::vector<ConceptSentimentPair> pairs{{onto.FindByName("a"), 0.0},
                                          {onto.FindByName("b"), 0.0},
                                          {onto.FindByName("s"), 0.9}};
  std::vector<ConceptSentimentPair> summary{{onto.FindByName("a"), 0.1}};
  EXPECT_NEAR(CoveredFraction(d, summary, pairs), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CoveredFraction(d, {}, pairs), 0.0);
}

// ------------------------------------------------------------------ Model --

TEST(ModelTest, CollectPairsKeepsProvenance) {
  Ontology onto = BuildChain();
  Item item;
  item.id = "doc1";
  Review r1;
  r1.sentences.push_back({"first", {{onto.FindByName("a"), 0.5}}});
  r1.sentences.push_back({"second",
                          {{onto.FindByName("b"), -0.5},
                           {onto.FindByName("s"), 0.1}}});
  Review r2;
  r2.sentences.push_back({"third", {{onto.FindByName("a"), 1.0}}});
  item.reviews = {r1, r2};

  auto occurrences = CollectPairs(item);
  ASSERT_EQ(occurrences.size(), 4u);
  EXPECT_EQ(occurrences[0].review_index, 0);
  EXPECT_EQ(occurrences[0].sentence_index, 0);
  EXPECT_EQ(occurrences[1].review_index, 0);
  EXPECT_EQ(occurrences[1].sentence_index, 1);
  EXPECT_EQ(occurrences[3].review_index, 1);
  EXPECT_EQ(occurrences[3].sentence_index, 0);

  auto pairs = PairsOf(occurrences);
  EXPECT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[3].sentiment, 1.0);
}

TEST(ModelTest, GranularityNames) {
  EXPECT_STREQ(SummaryGranularityToString(SummaryGranularity::kPairs),
               "pairs");
  EXPECT_STREQ(SummaryGranularityToString(SummaryGranularity::kSentences),
               "sentences");
  EXPECT_STREQ(SummaryGranularityToString(SummaryGranularity::kReviews),
               "reviews");
}

// -------------------------------------------------------------- Reduction --

SetCoverInstance SmallInstance() {
  // Universe {0,1,2,3}, sets {0,1}, {1,2}, {2,3}, {0,3}; k=2 is coverable
  // (e.g. {0,1} ∪ {2,3}).
  SetCoverInstance instance;
  instance.universe_size = 4;
  instance.sets = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  instance.k = 2;
  return instance;
}

TEST(ReductionTest, StructureMatchesTheorem1) {
  SetCoverInstance instance = SmallInstance();
  KPairsReduction red = BuildKPairsReduction(instance);
  const int m = 4, n = 4;
  EXPECT_EQ(red.ontology.num_concepts(), static_cast<size_t>(1 + 2 * m + n));
  EXPECT_EQ(red.pairs.size(), static_cast<size_t>(2 * m + n));
  EXPECT_DOUBLE_EQ(red.target, 3.0 * m + n - 2.0 * instance.k);
  // c_i children of root, e_i children of c_i.
  for (int i = 0; i < m; ++i) {
    EXPECT_EQ(red.ontology.AncestorDistance(red.ontology.root(),
                                            red.c_nodes[static_cast<size_t>(i)]),
              1);
    EXPECT_EQ(red.ontology.AncestorDistance(red.c_nodes[static_cast<size_t>(i)],
                                            red.e_nodes[static_cast<size_t>(i)]),
              1);
  }
  // d_j is a child of c_i exactly for sets containing j.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      bool in_set = false;
      for (int el : instance.sets[static_cast<size_t>(i)]) {
        in_set |= (el == j);
      }
      int dist = red.ontology.AncestorDistance(
          red.c_nodes[static_cast<size_t>(i)],
          red.d_nodes[static_cast<size_t>(j)]);
      EXPECT_EQ(dist == 1, in_set);
    }
  }
}

TEST(ReductionTest, CoverSelectionAchievesTarget) {
  SetCoverInstance instance = SmallInstance();
  KPairsReduction red = BuildKPairsReduction(instance);
  PairDistance d(&red.ontology, 0.1);
  // {0, 2} is a cover: sets {0,1} and {2,3}.
  std::vector<ConceptSentimentPair> summary{
      red.pairs[static_cast<size_t>(red.set_pair_index[0])],
      red.pairs[static_cast<size_t>(red.set_pair_index[2])]};
  EXPECT_DOUBLE_EQ(SummaryCost(d, summary, red.pairs), red.target);
  EXPECT_TRUE(IsSetCover(instance, {0, 2}));
}

TEST(ReductionTest, NonCoverSelectionMissesTarget) {
  SetCoverInstance instance = SmallInstance();
  KPairsReduction red = BuildKPairsReduction(instance);
  PairDistance d(&red.ontology, 0.1);
  // {0, 1} covers only elements {0,1,2}: not a set cover.
  std::vector<ConceptSentimentPair> summary{
      red.pairs[static_cast<size_t>(red.set_pair_index[0])],
      red.pairs[static_cast<size_t>(red.set_pair_index[1])]};
  EXPECT_FALSE(IsSetCover(instance, {0, 1}));
  EXPECT_GT(SummaryCost(d, summary, red.pairs), red.target);
}

TEST(ReductionTest, IsSetCoverRejectsBadIndices) {
  SetCoverInstance instance = SmallInstance();
  EXPECT_FALSE(IsSetCover(instance, {9}));
  EXPECT_FALSE(IsSetCover(instance, {}));
  EXPECT_TRUE(IsSetCover(instance, {0, 1, 2, 3}));
}

}  // namespace
}  // namespace osrs
