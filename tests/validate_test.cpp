#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/review_summarizer.h"
#include "ontology/cellphone_hierarchy.h"
#include "validate/model_validator.h"
#include "validate/validation_report.h"

namespace osrs {
namespace {

bool HasCode(const ValidationReport& report, const std::string& code) {
  for (const ValidationFinding& finding : report.findings()) {
    if (finding.code == code) return true;
  }
  return false;
}

size_t CountCode(const ValidationReport& report, const std::string& code) {
  size_t n = 0;
  for (const ValidationFinding& finding : report.findings()) {
    if (finding.code == code) ++n;
  }
  return n;
}

/// root -> {battery, screen}, battery -> life: a clean 4-concept DAG.
OntologySpec CleanSpec() {
  OntologySpec spec;
  spec.names = {"phone", "battery", "screen", "life"};
  spec.edges = {{0, 1}, {0, 2}, {1, 3}};
  return spec;
}

Item CleanItem() {
  Item item;
  item.id = "phone-1";
  Review review;
  review.rating = 0.5;
  review.sentences.push_back({"battery lasts", {{1, 0.8}}});
  review.sentences.push_back({"screen is dim", {{2, -0.4}}});
  item.reviews.push_back(review);
  return item;
}

// ------------------------------------------------------------- ontology

TEST(ModelValidatorTest, CleanSpecProducesEmptyReport) {
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(CleanSpec(), &report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.ToString(), "clean");
}

TEST(ModelValidatorTest, DetectsCycle) {
  OntologySpec spec = CleanSpec();
  spec.edges.push_back({3, 1});  // life -> battery closes battery->life->battery
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(spec, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-001"));
}

TEST(ModelValidatorTest, DetectsRootUnreachableConcept) {
  // 'island-a' and 'island-b' feed each other, so neither is parentless
  // and the root cannot reach them: both unreachable, plus a cycle.
  OntologySpec spec;
  spec.names = {"root", "island-a", "island-b"};
  spec.edges = {{1, 2}, {2, 1}};
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(spec, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-001"));
  EXPECT_EQ(CountCode(report, "OSRS-ONT-002"), 2u);
}

TEST(ModelValidatorTest, DetectsDuplicateAndSelfEdges) {
  OntologySpec spec = CleanSpec();
  spec.edges.push_back({0, 1});  // duplicate of phone -> battery
  spec.edges.push_back({2, 2});  // self edge on screen
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(spec, &report);
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-003"));
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-004"));
  EXPECT_EQ(report.warning_count(), 1u);  // the duplicate
  EXPECT_EQ(report.error_count(), 1u);    // the self edge
}

TEST(ModelValidatorTest, DetectsMultipleRootsAndOutOfRangeEdges) {
  OntologySpec spec;
  spec.names = {"root-a", "root-b", "child"};
  spec.edges = {{0, 2}, {0, 9}};  // 9 does not exist; root-b is a second root
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(spec, &report);
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-005"));
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-008"));
}

TEST(ModelValidatorTest, WarnsOnExcessiveDepth) {
  OntologySpec spec;
  for (int i = 0; i < 6; ++i) spec.names.push_back("c" + std::to_string(i));
  for (int i = 0; i + 1 < 6; ++i) spec.edges.push_back({i, i + 1});
  ModelValidatorOptions options;
  options.max_depth = 3;
  ModelValidator validator(options);
  ValidationReport report = validator.MakeReport();
  validator.CheckOntologySpec(spec, &report);
  EXPECT_TRUE(report.ok());  // depth is a warning, not an error
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-006"));
}

TEST(ModelValidatorTest, FinalizedOntologyChecksClean) {
  Ontology onto = BuildCellPhoneHierarchy();
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckOntology(onto, &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// --------------------------------------------------------------- corpus

TEST(ModelValidatorTest, CleanItemProducesEmptyReport) {
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckItem(CleanItem(), /*num_concepts=*/4, &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(ModelValidatorTest, DetectsDanglingConceptReference) {
  Item item = CleanItem();
  item.reviews[0].sentences[0].pairs.push_back({42, 0.1});
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckItem(item, /*num_concepts=*/4, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-001"));
}

TEST(ModelValidatorTest, DetectsNaNAndOutOfRangeSentiment) {
  Item item = CleanItem();
  item.reviews[0].sentences[0].pairs[0].sentiment =
      std::numeric_limits<double>::quiet_NaN();
  item.reviews[0].sentences[1].pairs[0].sentiment = 1.5;
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckItem(item, /*num_concepts=*/4, &report);
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-002"));
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-003"));
  EXPECT_EQ(report.error_count(), 2u);
}

TEST(ModelValidatorTest, WarnsOnEmptyReviewsAndItems) {
  Item empty_item;
  empty_item.id = "ghost";
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckItem(empty_item, /*num_concepts=*/4, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-006"));

  Item item = CleanItem();
  item.reviews.emplace_back();  // review with no sentences
  ValidationReport report2 = validator.MakeReport();
  validator.CheckItem(item, /*num_concepts=*/4, &report2);
  EXPECT_TRUE(HasCode(report2, "OSRS-CRP-005"));
}

TEST(ModelValidatorTest, DetectsDuplicateItemIds) {
  std::vector<Item> items = {CleanItem(), CleanItem()};
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckItems(items, /*num_concepts=*/4, &report);
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-007"));
}

TEST(ModelValidatorTest, DetectsDanglingGroupIndexAndDoubleMembership) {
  // Group 0 references pair 7 of 3, and pair 1 belongs to two groups.
  std::vector<std::vector<int>> groups = {{0, 7}, {1}, {1, 2}};
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckGroups(groups, /*num_pairs=*/3, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-009"));
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-010"));
}

// --------------------------------------------------------------- solver

TEST(ModelValidatorTest, SolverPreconditions) {
  ModelValidator validator;
  ValidationReport report = validator.MakeReport();
  validator.CheckSolverConfig(/*k=*/-1, /*epsilon=*/0.5,
                              /*num_candidates=*/10, &report);
  EXPECT_TRUE(HasCode(report, "OSRS-SLV-001"));

  ValidationReport report2 = validator.MakeReport();
  validator.CheckSolverConfig(/*k=*/20, /*epsilon=*/0.0,
                              /*num_candidates=*/10, &report2);
  EXPECT_TRUE(HasCode(report2, "OSRS-SLV-002"));
  EXPECT_TRUE(HasCode(report2, "OSRS-SLV-003"));

  ValidationReport report3 = validator.MakeReport();
  validator.CheckSolverConfig(/*k=*/2, /*epsilon=*/5.0,
                              /*num_candidates=*/10, &report3);
  EXPECT_TRUE(report3.ok());
  EXPECT_TRUE(HasCode(report3, "OSRS-SLV-004"));
}

// ---------------------------------------------------- whole-file lenient

TEST(ModelValidatorTest, ValidateCorpusTextFlagsCycleAndDanglingPair) {
  const char* corpus =
      "# osrs-corpus v1\n"
      "D\tcellphone\n"
      "O\t# osrs-ontology v1|C\t0\tphone|C\t1\tbattery|C\t2\tlife"
      "|E\t0\t1|E\t1\t2|E\t2\t1\n"
      "I\titem-a\n"
      "R\t0.5\n"
      "S\tBattery life is great.\t1:0.8\t9:0.5\n";
  ModelValidator validator;
  ValidationReport report = validator.ValidateCorpusText(corpus);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, "OSRS-ONT-001"));
  EXPECT_TRUE(HasCode(report, "OSRS-CRP-001"));
}

TEST(ModelValidatorTest, ValidateCorpusTextAcceptsCleanCorpus) {
  const char* corpus =
      "# osrs-corpus v1\n"
      "D\tcellphone\n"
      "O\t# osrs-ontology v1|C\t0\tphone|C\t1\tbattery|E\t0\t1\n"
      "I\titem-a\n"
      "R\t0.5\n"
      "S\tBattery is great.\t1:0.8\n";
  ModelValidator validator;
  ValidationReport report = validator.ValidateCorpusText(corpus);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(ModelValidatorTest, ValidateCorpusTextFlagsFormatProblems) {
  const char* corpus =
      "# osrs-corpus v1\n"
      "O\t# osrs-ontology v1|C\t0\tphone\n"
      "R\t0.5\n"         // before any item
      "X\tmystery\n"     // unknown kind
      "no-payload\n";    // record without a tab
  ModelValidator validator;
  ValidationReport report = validator.ValidateCorpusText(corpus);
  EXPECT_TRUE(HasCode(report, "OSRS-FMT-001"));
  EXPECT_TRUE(HasCode(report, "OSRS-FMT-002"));
  EXPECT_TRUE(HasCode(report, "OSRS-FMT-003"));
}

TEST(ModelValidatorTest, ValidateOntologyTextRoundTripsSerializedOntology) {
  Ontology onto = BuildCellPhoneHierarchy();
  ModelValidator validator;
  ValidationReport report = validator.ValidateOntologyText(onto.Serialize());
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// ----------------------------------------------------- ValidationReport

TEST(ValidationReportTest, RendersFindingsAndJson) {
  ValidationReport report;
  report.AddError("OSRS-ONT-001", "edge 1->2", "cycle detected");
  report.AddWarning("OSRS-CRP-006", "item 'x'", "item has no reviews");
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_FALSE(report.ok());
  std::string text = report.ToString();
  EXPECT_NE(text.find("error OSRS-ONT-001 [edge 1->2]: cycle detected"),
            std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"OSRS-CRP-006\""), std::string::npos);
}

TEST(ValidationReportTest, CapsStoredFindingsButKeepsCounting) {
  ValidationReport report(/*max_findings=*/2);
  for (int i = 0; i < 5; ++i) {
    report.AddError("OSRS-CRP-001", "", "dangling");
  }
  EXPECT_EQ(report.findings().size(), 2u);
  EXPECT_EQ(report.error_count(), 5u);
  EXPECT_EQ(report.dropped(), 3u);
  EXPECT_FALSE(report.ok());
}

TEST(ValidationReportTest, MergePreservesTallies) {
  ValidationReport a(/*max_findings=*/1);
  a.AddError("OSRS-CRP-001", "", "one");
  a.AddWarning("OSRS-CRP-006", "", "two");  // dropped by a's cap
  ValidationReport b;
  b.AddWarning("OSRS-SLV-002", "", "three");
  b.Merge(a);
  EXPECT_EQ(b.error_count(), 1u);
  EXPECT_EQ(b.warning_count(), 2u);
  EXPECT_GE(b.dropped(), 1u);
}

// ------------------------------------------------------- strict facade

TEST(StrictValidationTest, DanglingConceptFailsWithReport) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.strict_validation = true;
  ReviewSummarizer summarizer(&onto, options);
  Item item = CleanItem();
  item.reviews[0].sentences[0].pairs.push_back({9999, 0.2});
  auto summary = summarizer.Summarize(item, 2);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(summary.status().message().find("OSRS-CRP-001"),
            std::string::npos);
}

TEST(StrictValidationTest, WarningsLandOnItemSummary) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.strict_validation = true;
  ReviewSummarizer summarizer(&onto, options);
  // k far beyond the candidate count: valid, but strict mode reports the
  // OSRS-SLV-002 truncation warning on the summary.
  auto summary = summarizer.Summarize(CleanItem(), 50);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_FALSE(summary->validation_warnings.empty());
  EXPECT_NE(summary->validation_warnings[0].find("OSRS-SLV-002"),
            std::string::npos);
  // The warnings travel into the JSON rendering as well.
  EXPECT_NE(summary->ToJson().find("OSRS-SLV-002"), std::string::npos);
}

TEST(StrictValidationTest, CleanItemPassesWithNoWarnings) {
  Ontology onto = BuildCellPhoneHierarchy();
  ReviewSummarizerOptions options;
  options.strict_validation = true;
  ReviewSummarizer summarizer(&onto, options);
  auto summary = summarizer.Summarize(CleanItem(), 2);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->validation_warnings.empty());
}

}  // namespace
}  // namespace osrs
