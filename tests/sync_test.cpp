#include "common/sync.h"

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

namespace osrs {
namespace {

// The lock types are scope-bound by design: copying or moving one would
// detach the release from the acquiring scope, so all four operations are
// deleted. Compile-time facts, checked here so a refactor cannot quietly
// reintroduce them.
static_assert(!std::is_copy_constructible_v<MutexLock>);
static_assert(!std::is_copy_assignable_v<MutexLock>);
static_assert(!std::is_move_constructible_v<MutexLock>);
static_assert(!std::is_move_assignable_v<MutexLock>);
static_assert(!std::is_copy_constructible_v<ReleasableMutexLock>);
static_assert(!std::is_copy_assignable_v<ReleasableMutexLock>);
static_assert(!std::is_move_constructible_v<ReleasableMutexLock>);
static_assert(!std::is_move_assignable_v<ReleasableMutexLock>);
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_assignable_v<Mutex>);
static_assert(!std::is_copy_constructible_v<CondVar>);
static_assert(!std::is_copy_assignable_v<CondVar>);

TEST(MutexTest, MutexLockMakesConcurrentIncrementsExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;

  Mutex mu;
  int counter OSRS_GUARDED_BY(mu) = 0;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhereAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();

  // TryLock from another thread must fail while this thread holds the
  // mutex (std::mutex::try_lock on the owning thread is UB, hence the
  // second thread).
  bool acquired_while_held = true;
  std::thread contender([&]() { acquired_while_held = mu.TryLock(); });
  contender.join();
  EXPECT_FALSE(acquired_while_held);

  mu.Unlock();
  std::thread retry([&]() {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  retry.join();
}

TEST(MutexTest, ReleasableMutexLockReleaseUnlocksEarly) {
  Mutex mu;
  {
    ReleasableMutexLock lock(mu);
    lock.Release();
    // Released above: another thread can take the mutex while `lock` is
    // still in scope, and the destructor must not unlock a second time.
    std::thread prober([&]() {
      ASSERT_TRUE(mu.TryLock());
      mu.Unlock();
    });
    prober.join();
  }
  // After the (no-op) destructor the mutex is still free.
  std::thread prober([&]() {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  prober.join();
}

TEST(MutexTest, ReleasableMutexLockDestructorReleasesWhenNotReleased) {
  Mutex mu;
  { ReleasableMutexLock lock(mu); }
  std::thread prober([&]() {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  prober.join();
}

TEST(CondVarTest, WaitLoopSeesProducedValues) {
  constexpr int kItems = 1000;

  Mutex mu;
  CondVar cv;
  int produced OSRS_GUARDED_BY(mu) = 0;
  bool done OSRS_GUARDED_BY(mu) = false;
  int consumed = 0;  // consumer-thread local tally, read after join

  std::thread consumer([&]() {
    int seen = 0;
    while (true) {
      MutexLock lock(mu);
      // The annotated-caller idiom: explicit wait loop, no lambda
      // predicate, so guarded reads stay inside the caller's capability
      // scope under the analysis.
      while (produced == seen && !done) cv.Wait(mu);
      if (produced > seen) {
        consumed += produced - seen;
        seen = produced;
      }
      if (done && seen == produced) return;
    }
  });

  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(mu);
    ++produced;
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
    cv.NotifyAll();
  }
  consumer.join();
  EXPECT_EQ(consumed, kItems);
}

TEST(CondVarTest, PredicateWaitOverloadWakesOnSignal) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> ready{false};  // atomic: lambda predicates run outside
                                   // the analysis' capability scope

  std::thread waiter([&]() {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() { return ready.load(); });
  });
  {
    // Taking the mutex serializes with the waiter's predicate check, so
    // the notify cannot be lost: either the waiter is already blocked
    // (and wakes), or it has yet to check the now-true predicate.
    MutexLock lock(mu);
    ready.store(true);
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_TRUE(ready.load());
}

TEST(CondVarTest, WaitForMsTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody will notify: the predicate overload must report timeout
  // (false) rather than hanging.
  EXPECT_FALSE(cv.WaitForMs(mu, 5.0, []() { return false; }));
}

TEST(CondVarTest, WaitForMsPredicateReturnsTrueWhenSignaled) {
  Mutex mu;
  CondVar cv;
  bool flag OSRS_GUARDED_BY(mu) = false;

  std::thread signaler([&]() {
    MutexLock lock(mu);
    flag = true;
    cv.NotifyAll();
  });

  bool satisfied = false;
  {
    MutexLock lock(mu);
    // Explicit loop form of a deadline wait: generous deadline, exits as
    // soon as the signaler runs. WaitForMs re-acquires before returning,
    // so reading `flag` afterwards is within the capability.
    while (!flag) {
      if (!cv.WaitForMs(mu, 1000.0)) break;
    }
    satisfied = flag;
  }
  signaler.join();
  EXPECT_TRUE(satisfied);
}

}  // namespace
}  // namespace osrs
