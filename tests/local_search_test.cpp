#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/exhaustive.h"
#include "solver/greedy.h"
#include "solver/local_search.h"

namespace osrs {
namespace {

struct Instance {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
};

Instance MakeInstance(uint64_t seed, int num_pairs) {
  SnomedLikeOptions options;
  options.num_concepts = 60;
  options.max_depth = 5;
  options.seed = seed;
  Instance instance;
  instance.ontology = BuildSnomedLikeOntology(options);
  Rng rng(seed * 31 + 5);
  for (int i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(instance.ontology.num_concepts() - 1));
    instance.pairs.push_back({c, rng.NextDouble(-1.0, 1.0)});
  }
  return instance;
}

TEST(LocalSearchTest, NeverWorseThanGreedy) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Instance inst = MakeInstance(seed, 40);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    auto greedy = GreedySummarizer().Summarize(graph, 5);
    auto polished = LocalSearchSummarizer().Summarize(graph, 5);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(polished.ok());
    EXPECT_LE(polished->cost, greedy->cost + 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearchTest, NeverBetterThanExhaustive) {
  for (uint64_t seed : {6u, 7u, 8u}) {
    Instance inst = MakeInstance(seed, 18);
    PairDistance dist(&inst.ontology, 0.5);
    CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
    auto exact = ExhaustiveSummarizer().Summarize(graph, 3);
    auto polished = LocalSearchSummarizer().Summarize(graph, 3);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(polished.ok());
    EXPECT_GE(polished->cost, exact->cost - 1e-9);
    // On these small instances the swap polish usually closes the gap.
    EXPECT_LE(polished->cost, exact->cost * 1.10 + 1e-9);
  }
}

TEST(LocalSearchTest, ReportedCostMatchesSelection) {
  Instance inst = MakeInstance(9, 35);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  auto result = LocalSearchSummarizer().Summarize(graph, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, graph.CostOfSelection(result->selected), 1e-9);
  std::set<int> unique(result->selected.begin(), result->selected.end());
  EXPECT_EQ(unique.size(), result->selected.size());
  EXPECT_EQ(result->selected.size(), 4u);
}

TEST(LocalSearchTest, LocalOptimumHasNoImprovingSwap) {
  Instance inst = MakeInstance(10, 24);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  auto result = LocalSearchSummarizer().Summarize(graph, 3);
  ASSERT_TRUE(result.ok());
  // Brute-force verify: no single swap improves the final selection.
  std::set<int> chosen(result->selected.begin(), result->selected.end());
  for (size_t out = 0; out < result->selected.size(); ++out) {
    for (int in = 0; in < graph.num_candidates(); ++in) {
      if (chosen.count(in)) continue;
      std::vector<int> swapped = result->selected;
      swapped[out] = in;
      EXPECT_GE(graph.CostOfSelection(swapped), result->cost - 1e-9)
          << "improving swap " << result->selected[out] << "->" << in;
    }
  }
}

TEST(LocalSearchTest, PassBudgetRespected) {
  Instance inst = MakeInstance(11, 40);
  PairDistance dist(&inst.ontology, 0.5);
  CoverageGraph graph = CoverageGraph::BuildForPairs(dist, inst.pairs);
  LocalSearchOptions options;
  options.max_passes = 0;  // no polish: must equal greedy exactly
  auto greedy = GreedySummarizer().Summarize(graph, 5);
  auto frozen = LocalSearchSummarizer(options).Summarize(graph, 5);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->selected, greedy->selected);
  EXPECT_DOUBLE_EQ(frozen->cost, greedy->cost);
  EXPECT_EQ(frozen->work, 0);
}

TEST(LocalSearchTest, WorksOnWeightedGraphs) {
  Instance inst = MakeInstance(12, 30);
  PairDistance dist(&inst.ontology, 0.5);
  std::vector<double> weights(inst.pairs.size(), 1.0);
  weights[0] = 25.0;  // pair 0 is suddenly very important
  CoverageGraph graph =
      CoverageGraph::BuildForPairsWeighted(dist, inst.pairs, weights);
  auto result = LocalSearchSummarizer().Summarize(graph, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, graph.CostOfSelection(result->selected), 1e-9);
  // Something covering pair 0 at distance 0 must be selected (pair 0
  // itself covers itself); leaving it to the root would cost 25x depth.
  bool pair0_covered_exactly = false;
  for (int u : result->selected) {
    for (const auto& e : graph.EdgesOf(u)) {
      if (e.endpoint == 0 && e.weight == 0.0) pair0_covered_exactly = true;
    }
  }
  EXPECT_TRUE(pair0_covered_exactly);
}

}  // namespace
}  // namespace osrs
