#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/cellphone_corpus.h"
#include "datagen/corpus.h"
#include "datagen/doctor_corpus.h"
#include "datagen/review_generator.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {
namespace {

ReviewGeneratorSpec SmallSpec() {
  ReviewGeneratorSpec spec;
  spec.domain = "phone";
  spec.num_items = 8;
  spec.min_reviews_per_item = 5;
  spec.max_reviews_per_item = 40;
  spec.total_reviews = 150;
  spec.avg_sentences_per_review = 4.0;
  spec.seed = 11;
  return spec;
}

TEST(ReviewGeneratorTest, HitsExactReviewCounts) {
  Corpus corpus =
      GenerateReviewCorpus(BuildCellPhoneHierarchy(), SmallSpec());
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(stats.num_items, 8u);
  EXPECT_EQ(stats.num_reviews, 150u);
  EXPECT_EQ(stats.min_reviews_per_item, 5);
  EXPECT_EQ(stats.max_reviews_per_item, 40);
}

TEST(ReviewGeneratorTest, SentencesPerReviewNearTarget) {
  ReviewGeneratorSpec spec = SmallSpec();
  spec.total_reviews = 400;
  spec.max_reviews_per_item = 100;
  Corpus corpus = GenerateReviewCorpus(BuildCellPhoneHierarchy(), spec);
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_NEAR(stats.avg_sentences_per_review, 4.0, 0.25);
}

TEST(ReviewGeneratorTest, DeterministicForSeed) {
  Ontology onto = BuildCellPhoneHierarchy();
  Corpus a = GenerateReviewCorpus(onto, SmallSpec());
  Corpus b = GenerateReviewCorpus(onto, SmallSpec());
  ASSERT_EQ(a.items.size(), b.items.size());
  ASSERT_EQ(a.items[0].reviews.size(), b.items[0].reviews.size());
  EXPECT_EQ(a.items[0].reviews[0].sentences[0].text,
            b.items[0].reviews[0].sentences[0].text);
  ReviewGeneratorSpec other = SmallSpec();
  other.seed = 99;
  Corpus c = GenerateReviewCorpus(onto, other);
  // Different seed ⇒ (almost surely) different first sentence somewhere.
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.items.size(), c.items.size()); ++i) {
    if (a.items[i].reviews.size() != c.items[i].reviews.size()) {
      any_diff = true;
      break;
    }
    if (!a.items[i].reviews.empty() && !c.items[i].reviews.empty() &&
        a.items[i].reviews[0].sentences[0].text !=
            c.items[i].reviews[0].sentences[0].text) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ReviewGeneratorTest, PairsReferenceValidNonRootConcepts) {
  Corpus corpus =
      GenerateReviewCorpus(BuildCellPhoneHierarchy(), SmallSpec());
  for (const Item& item : corpus.items) {
    for (const Review& review : item.reviews) {
      for (const Sentence& sentence : review.sentences) {
        for (const auto& pair : sentence.pairs) {
          EXPECT_GE(pair.concept_id, 0);
          EXPECT_LT(static_cast<size_t>(pair.concept_id),
                    corpus.ontology.num_concepts());
          EXPECT_NE(pair.concept_id, corpus.ontology.root());
          EXPECT_GE(pair.sentiment, -1.0);
          EXPECT_LE(pair.sentiment, 1.0);
        }
      }
    }
  }
}

TEST(ReviewGeneratorTest, SentimentsClusterPerAspect) {
  // Within one item, mentions of the same concept must be closer in
  // sentiment than mentions of different concepts on average (the paper's
  // premise that aspect opinions are graded but consistent).
  ReviewGeneratorSpec spec = SmallSpec();
  spec.total_reviews = 320;
  spec.max_reviews_per_item = 100;
  Corpus corpus = GenerateReviewCorpus(BuildCellPhoneHierarchy(), spec);
  double same_gap = 0, cross_gap = 0;
  int same_n = 0, cross_n = 0;
  for (const Item& item : corpus.items) {
    std::vector<ConceptSentimentPair> pairs;
    for (const auto& occ : CollectPairs(item)) pairs.push_back(occ.pair);
    for (size_t i = 0; i < pairs.size(); i += 7) {
      for (size_t j = i + 1; j < std::min(pairs.size(), i + 60); ++j) {
        double gap = std::abs(pairs[i].sentiment - pairs[j].sentiment);
        if (pairs[i].concept_id == pairs[j].concept_id) {
          same_gap += gap;
          ++same_n;
        } else {
          cross_gap += gap;
          ++cross_n;
        }
      }
    }
  }
  ASSERT_GT(same_n, 20);
  ASSERT_GT(cross_n, 20);
  EXPECT_LT(same_gap / same_n, cross_gap / cross_n);
}

TEST(ReviewGeneratorTest, RatingsTrackSentenceSentiments) {
  Corpus corpus =
      GenerateReviewCorpus(BuildCellPhoneHierarchy(), SmallSpec());
  double covariance_hits = 0;
  int total = 0;
  for (const Item& item : corpus.items) {
    for (const Review& review : item.reviews) {
      double sum = 0;
      int n = 0;
      for (const Sentence& sentence : review.sentences) {
        for (const auto& pair : sentence.pairs) {
          sum += pair.sentiment;
          ++n;
        }
      }
      if (n == 0) continue;
      ++total;
      if ((sum / n >= 0) == (review.rating >= 0)) ++covariance_hits;
    }
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(covariance_hits / total, 0.8);
}

TEST(ReviewGeneratorTest, TemplatesEmbedConceptSurfaceForms) {
  // The realized text must actually contain a registered surface form so
  // the extraction pipeline can find the concept again.
  Corpus corpus =
      GenerateReviewCorpus(BuildCellPhoneHierarchy(), SmallSpec());
  int checked = 0, found = 0;
  for (const Item& item : corpus.items) {
    for (const Review& review : item.reviews) {
      for (const Sentence& sentence : review.sentences) {
        if (sentence.pairs.empty()) continue;
        ++checked;
        // At least one concept's name or synonym appears in the text.
        for (const auto& [term, id] : corpus.ontology.term_lexicon()) {
          if (id == sentence.pairs[0].concept_id &&
              sentence.text.find(term) != std::string::npos) {
            ++found;
            break;
          }
        }
        if (checked > 200) break;
      }
      if (checked > 200) break;
    }
    if (checked > 200) break;
  }
  ASSERT_GT(checked, 50);
  EXPECT_GT(static_cast<double>(found) / checked, 0.95);
}

TEST(DoctorCorpusTest, ScaledDownStatsAreConsistent) {
  DoctorCorpusOptions options;
  options.scale = 0.02;  // 20 doctors, ~1374 reviews
  options.ontology_concepts = 400;
  Corpus corpus = GenerateDoctorCorpus(options);
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(corpus.domain, "doctor");
  EXPECT_EQ(stats.num_items, 20u);
  EXPECT_EQ(stats.num_reviews, 1374u);
  EXPECT_GE(stats.min_reviews_per_item, 43);
  EXPECT_LE(stats.max_reviews_per_item, 354);
  EXPECT_NEAR(stats.avg_sentences_per_review, 4.87, 0.3);
}

TEST(CellPhoneCorpusTest, ScaledDownStatsAreConsistent) {
  CellPhoneCorpusOptions options;
  options.scale = 0.05;  // 3 phones, ~1679 reviews
  Corpus corpus = GenerateCellPhoneCorpus(options);
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(corpus.domain, "phone");
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.num_reviews, 1679u);
  EXPECT_GE(stats.min_reviews_per_item, 102);
  EXPECT_LE(stats.max_reviews_per_item, 3200);
  EXPECT_NEAR(stats.avg_sentences_per_review, 3.81, 0.3);
}

TEST(CorpusStatsTest, EmptyCorpus) {
  Corpus corpus;
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(stats.num_items, 0u);
  EXPECT_EQ(stats.num_reviews, 0u);
  EXPECT_EQ(stats.min_reviews_per_item, 0);
  EXPECT_DOUBLE_EQ(stats.avg_sentences_per_review, 0.0);
}

}  // namespace
}  // namespace osrs
