// Kill-point chaos suite for the durability layer (src/store): randomized,
// seed-reproducible failure schedules over every osrs.store.* failpoint
// site, plus byte-level torn-tail and corruption attacks, asserting the
// recovery contract from DESIGN.md ("Failure semantics v4"):
//
//   * recovery after ANY injected kill point reproduces exactly the
//     committed prefix — the operations whose Append/Compact returned OK
//     (bit-identical: both states serialize to the same snapshot bytes);
//   * a torn journal tail (crash mid-append) is silently truncated, never
//     an error, and never resurrects the uncommitted record;
//   * corruption of committed bytes (snapshot or journal interior) is
//     kDataLoss — surfaced, never masked, never a crash;
//   * kDataLoss never escapes on valid files.
//
// Each schedule is driven by one seed: the op sequence, item contents,
// armed site, and trigger offset all derive from mt19937_64(seed), so a
// failing seed replays exactly.

#include <sys/stat.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/status.h"
#include "core/model.h"
#include "fault/failpoint.h"
#include "store/atomic_file.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "store/wire.h"

namespace osrs::store {
namespace {

using fault::FailpointRegistry;
using fault::FailpointSpec;
using fault::FailTrigger;

/// Fresh empty directory under the test tempdir (recreated per call so a
/// re-run of the binary never sees stale generations).
std::string FreshStateDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/store_recovery_" + tag;
  (void)::mkdir(dir.c_str(), 0755);
  // A schedule can compact once per op, so clear well past the maximum
  // generation a previous run of the binary could have reached.
  for (uint64_t gen = 0; gen < 128; ++gen) {
    StateStoreOptions options;
    options.dir = dir;
    StateStore naming(options);  // path helpers only; never recovered
    (void)RemoveFile(naming.SnapshotPath(gen));
    (void)RemoveFile(naming.JournalPath(gen));
    (void)RemoveFile(naming.SnapshotPath(gen) + ".tmp");
  }
  return dir;
}

Item RandomItem(std::mt19937_64& rng) {
  Item item;
  item.id = "item-" + std::to_string(rng() % 8);
  int reviews = 1 + static_cast<int>(rng() % 3);
  for (int r = 0; r < reviews; ++r) {
    Review review;
    review.rating = static_cast<double>(rng() % 50) / 10.0;
    int sentences = 1 + static_cast<int>(rng() % 2);
    for (int s = 0; s < sentences; ++s) {
      Sentence sentence;
      sentence.text = "text " + std::to_string(rng());
      int pairs = static_cast<int>(rng() % 3);
      for (int p = 0; p < pairs; ++p) {
        ConceptSentimentPair pair;
        pair.concept_id = static_cast<int32_t>(rng() % 100);
        pair.sentiment = static_cast<double>(rng() % 200) / 100.0 - 1.0;
        sentence.pairs.push_back(pair);
      }
      review.sentences.push_back(std::move(sentence));
    }
    item.reviews.push_back(std::move(review));
  }
  return item;
}

/// The reference state a recovery must reproduce: items by id + epoch.
struct Model {
  std::map<std::string, Item> items;
  uint64_t epoch = 0;

  SnapshotData ToSnapshot() const {
    SnapshotData data;
    data.epoch = epoch;
    for (const auto& [id, item] : items) data.items.push_back(item);
    return data;
  }

  /// Canonical bytes — equality here is the bit-identity contract.
  std::string Canonical() const {
    return SnapshotWriter::Serialize(ToSnapshot());
  }
};

std::string CanonicalOf(const SnapshotData& data) {
  return SnapshotWriter::Serialize(data);
}

void ArmSite(const std::string& site, int64_t nth) {
  FailpointSpec spec;
  spec.action = fault::FailAction::kError;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kEveryNth;
  spec.n = nth;
  FailpointRegistry::Global().Get(site)->Arm(spec);
}

/// One randomized kill-point schedule: build committed state, arm one
/// store site at a random hit offset, mutate until the injection "kills"
/// the process, then recover and compare against the committed prefix.
void RunKillPointSchedule(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::string dir = FreshStateDir(std::to_string(seed));

  StateStoreOptions options;
  options.dir = dir;
  options.fsync_policy =
      rng() % 2 == 0 ? FsyncPolicy::kEveryRecord : FsyncPolicy::kInterval;
  options.fsync_interval_ms = 10;
  options.compact_threshold_bytes = 0;  // compaction is an explicit op here
  Model committed;   // what recovery must reproduce
  Model in_memory;   // what a server would hold (failed appends included)

  {
    StateStore store(options);
    SnapshotData ignored;
    Result<RecoveryInfo> info = store.Recover(&ignored);
    ASSERT_TRUE(info.ok()) << info.status().ToString();

    // A committed base before any fault: a few mutations, sometimes a
    // compaction, all with failpoints disarmed.
    int base_ops = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < base_ops; ++i) {
      Item item = RandomItem(rng);
      uint64_t next_epoch = in_memory.epoch + 1;
      ASSERT_TRUE(store.AppendUpdateItem(item, next_epoch).ok());
      in_memory.items[item.id] = item;
      in_memory.epoch = next_epoch;
      committed = in_memory;
    }
    if (rng() % 3 == 0) {
      ASSERT_TRUE(store.Compact(in_memory.ToSnapshot()).ok());
    }

    // Arm exactly one write-path site at a random upcoming hit.
    static const char* kSites[] = {"osrs.store.write", "osrs.store.fsync",
                                   "osrs.store.rename"};
    std::string site = kSites[rng() % 3];
    ArmSite(site, 1 + static_cast<int64_t>(rng() % 6));

    // Mutate until the injection fires — the simulated kill point. Every
    // op applies to in_memory first (as SummaryServer does) and joins the
    // committed prefix only when the store call reports OK.
    bool crashed = false;
    for (int op = 0; op < 64 && !crashed; ++op) {
      int kind = static_cast<int>(rng() % 8);
      if (kind == 0) {
        // Compaction from the in-memory state (the server's CaptureState).
        Status status = store.Compact(in_memory.ToSnapshot());
        if (status.ok()) {
          committed = in_memory;
        } else {
          // Deterministic in-process crash ambiguity resolution: a
          // post-rename failure left the NEW snapshot visible (recovery
          // will use it); a pre-rename failure left the old generation
          // untouched.
          if (store.persistence_failed()) committed = in_memory;
          crashed = true;
        }
      } else if (kind == 1) {
        uint64_t next_epoch = in_memory.epoch + 1;
        Status status = store.AppendBumpEpoch(next_epoch);
        in_memory.epoch = next_epoch;
        if (status.ok()) {
          committed = in_memory;
        } else {
          crashed = true;
        }
      } else {
        Item item = RandomItem(rng);
        uint64_t next_epoch = in_memory.epoch + 1;
        Status status = store.AppendUpdateItem(item, next_epoch);
        in_memory.items[item.id] = item;
        in_memory.epoch = next_epoch;
        if (status.ok()) {
          committed = in_memory;
        } else {
          crashed = true;
        }
      }
    }
    // The StateStore is destroyed here with whatever torn bytes the
    // injection left — the moral equivalent of the process dying.
  }

  FailpointRegistry::Global().DisarmAll();

  StateStore recovered_store(options);
  SnapshotData recovered;
  Result<RecoveryInfo> info = recovered_store.Recover(&recovered);
  // Zero kDataLoss escapes: every file the schedule left behind is either
  // valid or a legitimate torn tail, so recovery must succeed.
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(CanonicalOf(recovered), committed.Canonical())
      << "recovered state diverges from the committed prefix "
      << "(replayed " << info->journal_records_replayed << " records, "
      << "truncated " << info->truncated_tail_bytes << " tail bytes)";
  EXPECT_EQ(recovered.epoch, committed.epoch);
}

TEST(StoreRecoveryTest, RandomizedKillPointSchedules) {
  // >= 150 distinct seed-reproducible schedules (acceptance floor); each
  // covers one injected kill across the write/fsync/rename sites with
  // random op mixes and fsync policies.
  for (uint64_t seed = 1; seed <= 160; ++seed) {
    RunKillPointSchedule(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Torn tails from lost buffered bytes: truncate a valid journal at every
/// byte offset and require recovery to yield exactly the records that
/// still fit — never an error, never a partial record.
TEST(StoreRecoveryTest, TornTailTruncationAtEveryOffset) {
  std::mt19937_64 rng(4242);
  std::vector<Item> items;
  std::vector<std::string> frames;
  std::string journal_bytes;
  for (int i = 0; i < 4; ++i) {
    Item item = RandomItem(rng);
    item.id = "torn-" + std::to_string(i);  // distinct ids: count==prefix
    items.push_back(item);
    std::string payload =
        EncodeUpdateItemPayload(item, static_cast<uint64_t>(i + 1));
    ByteWriter frame;
    frame.PutU32(static_cast<uint32_t>(payload.size()));
    frame.PutU32(Crc32c(payload.data(), payload.size()));
    std::string bytes = frame.Take() + payload;
    frames.push_back(bytes);
    journal_bytes += bytes;
  }

  std::vector<size_t> boundaries;  // cumulative frame ends
  size_t end = 0;
  for (const std::string& frame : frames) {
    end += frame.size();
    boundaries.push_back(end);
  }

  for (size_t cut = 0; cut <= journal_bytes.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::string truncated = journal_bytes.substr(0, cut);
    Result<ReplayResult> replay = ReplayJournalBytes(truncated, "torn-test");
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    size_t expect_records = 0;
    size_t expect_valid = 0;
    for (size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        expect_records = b + 1;
        expect_valid = boundaries[b];
      }
    }
    EXPECT_EQ(replay->records.size(), expect_records);
    EXPECT_EQ(replay->valid_bytes, expect_valid);
    EXPECT_EQ(replay->truncated_tail_bytes, cut - expect_valid);
    for (size_t r = 0; r < replay->records.size(); ++r) {
      EXPECT_EQ(EncodeItemToString(replay->records[r].item),
                EncodeItemToString(items[r]));
    }
  }
}

/// Interior corruption — committed bytes that re-read differently — must
/// be kDataLoss (non-retryable), not a truncation and not a crash.
TEST(StoreRecoveryTest, InteriorJournalCorruptionIsDataLoss) {
  std::mt19937_64 rng(9);
  std::string journal_bytes;
  for (int i = 0; i < 3; ++i) {
    std::string payload =
        EncodeUpdateItemPayload(RandomItem(rng), static_cast<uint64_t>(i + 1));
    ByteWriter frame;
    frame.PutU32(static_cast<uint32_t>(payload.size()));
    frame.PutU32(Crc32c(payload.data(), payload.size()));
    journal_bytes += frame.Take() + payload;
  }
  // Flip one byte inside the FIRST record's payload: later records are
  // intact, so this cannot be a torn tail.
  std::string corrupt = journal_bytes;
  corrupt[10] = static_cast<char>(corrupt[10] ^ 0x40);
  Result<ReplayResult> replay = ReplayJournalBytes(corrupt, "corrupt-test");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(StatusCodeIsRetryable(replay.status().code()));
}

TEST(StoreRecoveryTest, SnapshotCorruptionIsDataLoss) {
  std::mt19937_64 rng(11);
  SnapshotData data;
  data.epoch = 7;
  for (int i = 0; i < 3; ++i) data.items.push_back(RandomItem(rng));
  std::string bytes = SnapshotWriter::Serialize(data);

  // Every single-byte flip anywhere in the file must be caught by one of
  // the checksums/structure checks. (Exhaustive: the file is small.)
  int failures = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    Result<SnapshotData> parsed = SnapshotReader::Parse(corrupt, "flip");
    if (parsed.ok()) continue;  // impossible for CRC-covered bytes
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
    ++failures;
  }
  // All bytes are CRC-covered (header crc covers the header, section crc
  // the payload, and lengths/counts are structure-checked), so every flip
  // must have been rejected.
  EXPECT_EQ(failures, static_cast<int>(bytes.size()));

  // Truncations at every offset are kDataLoss too — a snapshot is atomic,
  // so a short file is corruption, never a crash artifact.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<SnapshotData> parsed =
        SnapshotReader::Parse(bytes.substr(0, cut), "trunc");
    ASSERT_FALSE(parsed.ok()) << "cut=" << cut;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
}

TEST(StoreRecoveryTest, SnapshotRoundTripIsBitIdentical) {
  std::mt19937_64 rng(21);
  SnapshotData data;
  data.epoch = 123456789;
  for (int i = 0; i < 5; ++i) data.items.push_back(RandomItem(rng));
  std::string bytes = SnapshotWriter::Serialize(data);
  Result<SnapshotData> parsed = SnapshotReader::Parse(bytes, "roundtrip");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->epoch, data.epoch);
  EXPECT_EQ(SnapshotWriter::Serialize(*parsed), bytes);
}

/// Transient read failures during recovery are kUnavailable (retryable) —
/// distinct from corruption — and a retry after the fault clears succeeds.
TEST(StoreRecoveryTest, TransientReadFaultIsRetryable) {
  std::string dir = FreshStateDir("readfault");
  StateStoreOptions options;
  options.dir = dir;
  {
    StateStore store(options);
    SnapshotData ignored;
    ASSERT_TRUE(store.Recover(&ignored).ok());
    Item item;
    item.id = "x";
    ASSERT_TRUE(store.AppendUpdateItem(item, 1).ok());
  }

  FailpointSpec spec;
  spec.action = fault::FailAction::kError;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.store.read")->Arm(spec);

  StateStore store(options);
  SnapshotData recovered;
  Result<RecoveryInfo> info = store.Recover(&recovered);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(StatusCodeIsRetryable(info.status().code()));
  FailpointRegistry::Global().DisarmAll();

  StateStore retry(options);
  info = retry.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_EQ(recovered.items.size(), 1u);
  EXPECT_EQ(recovered.items[0].id, "x");
  EXPECT_EQ(recovered.epoch, 1u);
}

/// The replay failpoint models a fault while applying recovered records;
/// it surfaces (recovery fails) rather than silently dropping records.
TEST(StoreRecoveryTest, ReplayFaultSurfacesAndRetrySucceeds) {
  std::string dir = FreshStateDir("replayfault");
  StateStoreOptions options;
  options.dir = dir;
  {
    StateStore store(options);
    SnapshotData ignored;
    ASSERT_TRUE(store.Recover(&ignored).ok());
    for (int i = 0; i < 3; ++i) {
      Item item;
      item.id = "r" + std::to_string(i);
      ASSERT_TRUE(
          store.AppendUpdateItem(item, static_cast<uint64_t>(i + 1)).ok());
    }
  }

  FailpointSpec spec;
  spec.action = fault::FailAction::kError;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.store.replay")->Arm(spec);

  StateStore store(options);
  SnapshotData recovered;
  Result<RecoveryInfo> info = store.Recover(&recovered);
  ASSERT_FALSE(info.ok());
  FailpointRegistry::Global().DisarmAll();

  StateStore retry(options);
  info = retry.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->journal_records_replayed, 3u);
  EXPECT_EQ(recovered.items.size(), 3u);
}

/// A poisoned journal (torn write) refuses further appends with kDataLoss
/// and heals through compaction.
TEST(StoreRecoveryTest, PoisonedJournalHealsThroughCompaction) {
  std::string dir = FreshStateDir("poison");
  StateStoreOptions options;
  options.dir = dir;
  StateStore store(options);
  SnapshotData ignored;
  ASSERT_TRUE(store.Recover(&ignored).ok());

  FailpointSpec spec;
  spec.action = fault::FailAction::kError;
  spec.code = StatusCode::kUnavailable;
  spec.trigger = FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.store.write")->Arm(spec);

  Item item;
  item.id = "poisoned";
  EXPECT_FALSE(store.AppendUpdateItem(item, 1).ok());  // torn write
  FailpointRegistry::Global().DisarmAll();

  // The journal is now poisoned: appends refuse with kDataLoss, and
  // ShouldCompact demands a fresh generation.
  Status refused = store.AppendUpdateItem(item, 2);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(store.ShouldCompact());

  SnapshotData state;
  state.epoch = 2;
  state.items.push_back(item);
  ASSERT_TRUE(store.Compact(state).ok());
  EXPECT_FALSE(store.ShouldCompact());
  EXPECT_TRUE(store.AppendUpdateItem(item, 3).ok());
}

/// Leftover generations from a crash between compaction's rename and its
/// deletes are cleaned up on recovery, newest snapshot winning.
TEST(StoreRecoveryTest, RecoveryCleansSupersededGenerations) {
  std::string dir = FreshStateDir("supersede");
  StateStoreOptions options;
  options.dir = dir;
  uint64_t final_gen = 0;
  {
    StateStore store(options);
    SnapshotData ignored;
    ASSERT_TRUE(store.Recover(&ignored).ok());
    SnapshotData state;
    for (int c = 0; c < 3; ++c) {
      Item item;
      item.id = "gen-item";
      item.reviews.emplace_back();
      item.reviews.back().rating = c;
      state.items = {item};
      state.epoch = static_cast<uint64_t>(c + 1);
      ASSERT_TRUE(store.Compact(state).ok());
    }
    final_gen = store.generation();
    // Fabricate an undeleted older generation (crash between rename and
    // delete): recovery must ignore and remove it.
    ASSERT_TRUE(AtomicWriteFile(store.SnapshotPath(final_gen - 1),
                                SnapshotWriter::Serialize(SnapshotData{}))
                    .ok());
  }
  StateStore store(options);
  SnapshotData recovered;
  Result<RecoveryInfo> info = store.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->generation, final_gen);
  ASSERT_EQ(recovered.items.size(), 1u);
  EXPECT_EQ(recovered.epoch, 3u);
  EXPECT_DOUBLE_EQ(recovered.items[0].reviews[0].rating, 2.0);
  // The fabricated stale generation is gone.
  Result<std::string> stale = ReadFileBytes(store.SnapshotPath(final_gen - 1));
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace osrs::store
