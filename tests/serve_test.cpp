// Tests of the overload-resilient serving layer (src/serve): the bounded
// epoch-keyed summary cache, single-flight coalescing, admission control,
// deadline-aware load shedding, degraded stale serving, failpoint-driven
// chaos behavior, and the request-accounting identities
// (submitted == admitted + rejected; admitted == completed + shed + failed
// once drained).

#include <sys/stat.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/review_summarizer.h"
#include "common/slog.h"
#include "common/strings.h"
#include "core/model.h"
#include "fault/failpoint.h"
#include "obs/request_trace.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/ontology.h"
#include "serve/server.h"
#include "serve/summary_cache.h"
#include "store/atomic_file.h"
#include "store/state_store.h"

namespace osrs::serve {
namespace {

using fault::FailpointRegistry;

/// Solution-field fingerprint of a summary — everything except timings.
std::string Fingerprint(const ItemSummary& s) {
  std::string out = StrFormat(
      "cost=%.17g eps=%.17g pairs=%zu cands=%zu edges=%zu degraded=%d",
      s.cost, s.epsilon, s.num_pairs, s.num_candidates, s.num_edges,
      s.degraded ? 1 : 0);
  for (const SummaryEntry& e : s.entries) {
    out += StrFormat(" [%s|%d|%.17g|%d|%d]", e.display.c_str(),
                     e.pair.concept_id, e.pair.sentiment, e.review_index,
                     e.sentence_index);
  }
  return out;
}

Item MakeItem(const Ontology& onto, const std::string& id,
              double shift = 0.0) {
  ConceptId screen = onto.FindByName("screen");
  ConceptId battery = onto.FindByName("battery");
  ConceptId camera = onto.FindByName("camera");
  Item item;
  item.id = id;
  Review review;
  review.sentences.push_back(
      {id + ": screen is great", {{screen, 0.75 - shift}}});
  review.sentences.push_back(
      {id + ": battery is awful", {{battery, -0.9 + shift}}});
  review.sentences.push_back(
      {id + ": camera is fine", {{camera, 0.4 - shift}}});
  item.reviews.push_back(std::move(review));
  return item;
}

/// Every test starts and ends with a disarmed failpoint registry.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisarmAll();
    onto_ = BuildCellPhoneHierarchy();
  }
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }

  std::vector<Item> Items(int n) {
    std::vector<Item> items;
    for (int i = 0; i < n; ++i) {
      items.push_back(
          MakeItem(onto_, "item" + std::to_string(i), 0.05 * i));
    }
    return items;
  }

  Ontology onto_;
};

class SummaryCacheTest : public ::testing::Test {};

// -------------------------------------------------------- summary cache ----

ItemSummary FakeSummary(double cost) {
  ItemSummary summary;
  summary.cost = cost;
  summary.entries.push_back({"entry", {1, 0.5}, 0, 0});
  return summary;
}

TEST_F(SummaryCacheTest, LookupHitRefreshesAndMissCounts) {
  SummaryCache cache(2);
  CacheKey a{"a", 0, 1, 5};
  ItemSummary out;
  EXPECT_FALSE(cache.Lookup(a, &out));
  cache.Insert(a, FakeSummary(1.0));
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_DOUBLE_EQ(out.cost, 1.0);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
}

TEST_F(SummaryCacheTest, EvictsLeastRecentlyUsed) {
  SummaryCache cache(2);
  CacheKey a{"a", 0, 1, 5}, b{"b", 0, 1, 5}, c{"c", 0, 1, 5};
  cache.Insert(a, FakeSummary(1));
  cache.Insert(b, FakeSummary(2));
  ItemSummary out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // a is now MRU; b is LRU
  cache.Insert(c, FakeSummary(3));     // evicts b
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST_F(SummaryCacheTest, CapacityZeroDisablesEverything) {
  SummaryCache cache(0);
  CacheKey a{"a", 0, 1, 5};
  cache.Insert(a, FakeSummary(1));
  ItemSummary out;
  EXPECT_FALSE(cache.Lookup(a, &out));
  uint64_t epoch = 0;
  EXPECT_FALSE(cache.LookupLatest("a", 1, 5, &out, &epoch));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().inserts, 0);
}

TEST_F(SummaryCacheTest, LookupLatestFindsNewestEpochAcrossBumps) {
  SummaryCache cache(4);
  cache.Insert(CacheKey{"a", 0, 1, 5}, FakeSummary(1));
  cache.Insert(CacheKey{"a", 3, 1, 5}, FakeSummary(2));
  ItemSummary out;
  uint64_t epoch = 0;
  ASSERT_TRUE(cache.LookupLatest("a", 1, 5, &out, &epoch));
  EXPECT_EQ(epoch, 3u);  // the most recently inserted generation
  EXPECT_DOUBLE_EQ(out.cost, 2.0);
  // A different fingerprint or k is a different summary family entirely.
  EXPECT_FALSE(cache.LookupLatest("a", 2, 5, &out, &epoch));
  EXPECT_FALSE(cache.LookupLatest("a", 1, 4, &out, &epoch));
  EXPECT_EQ(cache.stats().stale_hits, 1);
}

TEST_F(SummaryCacheTest, EvictionDropsLatestIndexOnlyForItsOwnEntry) {
  SummaryCache cache(2);
  cache.Insert(CacheKey{"a", 0, 1, 5}, FakeSummary(1));
  cache.Insert(CacheKey{"a", 1, 1, 5}, FakeSummary(2));  // latest -> epoch 1
  cache.Insert(CacheKey{"b", 0, 1, 5}, FakeSummary(3));  // evicts a@0
  ItemSummary out;
  uint64_t epoch = 0;
  // a@0 (the LRU entry) was evicted, but latest_ pointed at a@1 — the
  // stale-serving index must survive the eviction of an older sibling.
  ASSERT_TRUE(cache.LookupLatest("a", 1, 5, &out, &epoch));
  EXPECT_EQ(epoch, 1u);
  cache.Insert(CacheKey{"c", 0, 1, 5}, FakeSummary(4));  // evicts a@1
  cache.Insert(CacheKey{"d", 0, 1, 5}, FakeSummary(5));  // evicts b@0
  EXPECT_FALSE(cache.LookupLatest("a", 1, 5, &out, &epoch));
}

TEST_F(SummaryCacheTest, ClearDropsEntriesKeepsStats) {
  SummaryCache cache(2);
  cache.Insert(CacheKey{"a", 0, 1, 5}, FakeSummary(1));
  cache.Clear();
  ItemSummary out;
  EXPECT_FALSE(cache.Lookup(CacheKey{"a", 0, 1, 5}, &out));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().inserts, 1);
}

// -------------------------------------------------- options fingerprint ----

TEST(OptionsFingerprintTest, SolutionFieldsChangeItRuntimeKnobsDoNot) {
  ReviewSummarizerOptions base;
  uint64_t h = OptionsFingerprint(base);
  EXPECT_EQ(h, OptionsFingerprint(base));

  ReviewSummarizerOptions epsilon = base;
  epsilon.epsilon = 0.6;
  EXPECT_NE(OptionsFingerprint(epsilon), h);
  ReviewSummarizerOptions algorithm = base;
  algorithm.algorithm = SummaryAlgorithm::kIlp;
  EXPECT_NE(OptionsFingerprint(algorithm), h);
  ReviewSummarizerOptions chain = base;
  chain.fallback_chain.push_back(SummaryAlgorithm::kGreedyLazy);
  EXPECT_NE(OptionsFingerprint(chain), h);

  // Deployment-tuning knobs proven not to affect the solution.
  ReviewSummarizerOptions runtime = base;
  runtime.deadline_ms = 123.0;
  runtime.collect_stats = !base.collect_stats;
  runtime.graph_build_threads = 4;
  EXPECT_EQ(OptionsFingerprint(runtime), h);
}

// ----------------------------------------------------- cache + epochs ------

TEST_F(ServeTest, CacheHitIsBitIdenticalToFreshSolve) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  request.k = 2;
  ServeResponse first = server.Serve(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.outcome, ServeOutcome::kSolved);
  EXPECT_FALSE(first.degraded);

  ServeResponse second = server.Serve(request);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(second.outcome, ServeOutcome::kCacheHit);
  EXPECT_EQ(Fingerprint(second.summary), Fingerprint(first.summary));

  // And both match a direct full-budget ReviewSummarizer solve.
  ReviewSummarizer summarizer(&onto_, options.summarizer);
  auto direct = summarizer.Summarize(Items(1)[0], 2);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(Fingerprint(first.summary), Fingerprint(*direct));

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.solves, 1);
  EXPECT_EQ(counters.cache_hits, 1);
  EXPECT_EQ(counters.completed, 2);
}

TEST_F(ServeTest, EpochBumpInvalidatesCache) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ASSERT_TRUE(server.Serve(request).status.ok());
  EXPECT_EQ(server.Serve(request).outcome, ServeOutcome::kCacheHit);

  EXPECT_EQ(server.BumpEpoch(), 1u);
  ServeResponse after = server.Serve(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.outcome, ServeOutcome::kSolved)
      << "epoch bump must invalidate the exact-hit path";
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(server.counters().solves, 2);
  EXPECT_EQ(server.counters().epoch_bumps, 1);
}

TEST_F(ServeTest, UpdateItemBumpsEpochAndServesNewContent) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse before = server.Serve(request);
  ASSERT_TRUE(before.status.ok());

  server.UpdateItem(MakeItem(onto_, "item0", 0.3));
  EXPECT_EQ(server.epoch(), 1u);
  ServeResponse after = server.Serve(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.outcome, ServeOutcome::kSolved);
  EXPECT_NE(Fingerprint(after.summary), Fingerprint(before.summary))
      << "the refreshed item's reviews must reach the solver";
}

TEST_F(ServeTest, UnknownItemAndNegativeKAreRejected) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest missing;
  missing.item_id = "nope";
  ServeResponse response = server.Serve(missing);
  EXPECT_EQ(response.outcome, ServeOutcome::kRejected);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);

  ServeRequest bad;
  bad.item_id = "item0";
  bad.k = -1;
  response = server.Serve(bad);
  EXPECT_EQ(response.outcome, ServeOutcome::kRejected);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, 2);
  EXPECT_EQ(counters.rejected, 2);
  EXPECT_EQ(counters.admitted, 0);
}

// --------------------------------------------------------- coalescing ------

TEST_F(ServeTest, ConcurrentRequestsForOneItemCoalesceIntoOneSolve) {
  // Stretch the solve with an injected 250 ms stall so every thread
  // submits while the flight is still in the air.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=delay(250):always")
                  .ok());

  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  constexpr int kClients = 8;
  std::vector<ServeResponse> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &responses, c] {
      ServeRequest request;
      request.item_id = "item0";
      responses[static_cast<size_t>(c)] = server.Serve(request);
    });
  }
  for (std::thread& thread : threads) thread.join();
  FailpointRegistry::Global().DisarmAll();

  int solved = 0, coalesced = 0;
  for (const ServeResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(Fingerprint(response.summary),
              Fingerprint(responses[0].summary))
        << "every coalesced waiter must receive the identical summary";
    if (response.outcome == ServeOutcome::kSolved) ++solved;
    if (response.outcome == ServeOutcome::kCoalesced) ++coalesced;
  }
  EXPECT_EQ(solved, 1);
  EXPECT_EQ(coalesced, kClients - 1);

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.solves, 1) << "a hot item must cost exactly one solve";
  EXPECT_EQ(counters.coalesced, kClients - 1);
  EXPECT_EQ(counters.completed, kClients);
  EXPECT_EQ(counters.submitted, counters.admitted + counters.rejected);
}

// ------------------------------------------------- admission + shedding ----

TEST_F(ServeTest, FullQueueRejectsWithResourceExhausted) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=delay(250):always")
                  .ok());
  ServeOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  SummaryServer server(&onto_, Items(3), options);

  // item0 occupies the single worker; item1 fills the queue; item2 must
  // be turned away at the door. Distinct items so nothing coalesces.
  std::thread first([&server] {
    ServeRequest request;
    request.item_id = "item0";
    EXPECT_TRUE(server.Serve(request).status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread second([&server] {
    ServeRequest request;
    request.item_id = "item1";
    EXPECT_TRUE(server.Serve(request).status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ServeRequest request;
  request.item_id = "item2";
  ServeResponse rejected = server.Serve(request);
  EXPECT_EQ(rejected.outcome, ServeOutcome::kRejected);
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);

  first.join();
  second.join();
  FailpointRegistry::Global().DisarmAll();

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.rejected, 1);
  EXPECT_EQ(counters.completed, 2);
  EXPECT_EQ(counters.submitted, counters.admitted + counters.rejected);
  EXPECT_EQ(counters.admitted,
            counters.completed + counters.shed + counters.failed);
}

TEST_F(ServeTest, ExpiredDeadlinesAreShedWithoutStarvingAdmittedWork) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;  // no stale fallback: shedding is visible
  SummaryServer server(&onto_, Items(1), options);

  // A 1 µs deadline is always expired by dequeue time, so the worker
  // sheds instead of starting a doomed solve.
  for (int i = 0; i < 5; ++i) {
    ServeRequest request;
    request.item_id = "item0";
    request.deadline_ms = 0.001;
    ServeResponse response = server.Serve(request);
    EXPECT_EQ(response.outcome, ServeOutcome::kShed);
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  }

  // Shedding must not have wedged the worker: an unconstrained request
  // still completes.
  ServeRequest request;
  request.item_id = "item0";
  ServeResponse ok = server.Serve(request);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.outcome, ServeOutcome::kSolved);

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.shed, 5);
  EXPECT_EQ(counters.completed, 1);
  EXPECT_EQ(counters.solves, 1) << "shed requests must not reach the solver";
  EXPECT_EQ(counters.admitted,
            counters.completed + counters.shed + counters.failed);
}

TEST_F(ServeTest, OverBudgetRequestServesStaleDegradedSummary) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse fresh = server.Serve(request);
  ASSERT_TRUE(fresh.status.ok());
  server.BumpEpoch();  // the cached summary is now one generation old

  ServeRequest hurried = request;
  hurried.deadline_ms = 0.001;  // expired by dequeue
  ServeResponse degraded = server.Serve(hurried);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.outcome, ServeOutcome::kDegraded);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.summary.degraded);
  EXPECT_EQ(degraded.epoch, 0u) << "the answer came from the old epoch";
  EXPECT_EQ(server.counters().shed, 0)
      << "a degraded answer is a completion, not a shed";
  EXPECT_EQ(server.counters().degraded, 1);
  EXPECT_EQ(server.cache_stats().stale_hits, 1);
}

// ----------------------------------------------------------- chaos ---------

TEST_F(ServeTest, SolveFailureFallsBackToStaleThenErrors) {
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ASSERT_TRUE(server.Serve(request).status.ok());
  server.BumpEpoch();

  // First post-bump solve fails transiently: the stale summary answers,
  // flagged degraded.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=error(unavailable):once")
                  .ok());
  ServeResponse degraded = server.Serve(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.outcome, ServeOutcome::kDegraded);
  EXPECT_EQ(degraded.epoch, 0u);

  // Same failure with stale serving disabled: a clean error, process alive.
  ServeOptions strict = options;
  strict.serve_stale_when_over_budget = false;
  SummaryServer strict_server(&onto_, Items(1), strict);
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=error(unavailable):once")
                  .ok());
  ServeResponse failed = strict_server.Serve(request);
  EXPECT_EQ(failed.outcome, ServeOutcome::kFailed);
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(strict_server.counters().failed, 1);
}

TEST_F(ServeTest, InjectedBadAllocIsIsolatedToItsRequest) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.coverage.alloc=bad_alloc:once")
                  .ok());
  ServeOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse failed = server.Serve(request);
  EXPECT_EQ(failed.outcome, ServeOutcome::kFailed);
  EXPECT_EQ(failed.status.code(), StatusCode::kResourceExhausted);

  // The worker survived the exception; the next request solves normally.
  ServeResponse ok = server.Serve(request);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.outcome, ServeOutcome::kSolved);
}

TEST_F(ServeTest, CacheFailpointDegradesToMissNeverFailsRequests) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.cache=error(unavailable):always")
                  .ok());
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  for (int i = 0; i < 2; ++i) {
    ServeResponse response = server.Serve(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.outcome, ServeOutcome::kSolved);
  }
  // An unavailable cache means no hits and no inserts — just solves.
  EXPECT_EQ(server.counters().solves, 2);
  EXPECT_EQ(server.counters().cache_hits, 0);
  EXPECT_EQ(server.cache_stats().inserts, 0);
}

TEST_F(ServeTest, AdmitFailpointRejectsAtTheFrontDoor) {
  ASSERT_TRUE(
      FailpointRegistry::Global()
          .ArmFromSpec("osrs.serve.admit=error(resource_exhausted):once")
          .ok());
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse rejected = server.Serve(request);
  EXPECT_EQ(rejected.outcome, ServeOutcome::kRejected);
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  ServeResponse ok = server.Serve(request);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
}

// ------------------------------------------------------------ shutdown -----

TEST_F(ServeTest, StopDrainsQueuedRequestsAndRejectsNewOnes) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=delay(250):always")
                  .ok());
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(3), options);

  std::vector<ServeResponse> responses(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&server, &responses, i] {
      ServeRequest request;
      request.item_id = "item" + std::to_string(i);
      responses[static_cast<size_t>(i)] = server.Serve(request);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  // item0 is mid-solve; item1 and item2 are queued. Stop fails the queued
  // ones with kUnavailable and lets the in-flight solve finish.
  server.Stop();
  for (std::thread& thread : threads) thread.join();
  FailpointRegistry::Global().DisarmAll();

  int ok = 0, unavailable = 0;
  for (const ServeResponse& response : responses) {
    if (response.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(unavailable, 2);

  ServeRequest late;
  late.item_id = "item0";
  ServeResponse rejected = server.Serve(late);
  EXPECT_EQ(rejected.outcome, ServeOutcome::kRejected);
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, counters.admitted + counters.rejected);
  EXPECT_EQ(counters.admitted,
            counters.completed + counters.shed + counters.failed);
}

// ------------------------------------------------- request tracing ---------

using obs::RequestSpanKind;

TEST_F(ServeTest, CoalescedFollowersShareSolveSpanWithDistinctRequestIds) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("osrs.serve.solve=delay(250):always")
                  .ok());
  ServeOptions options;
  options.num_threads = 1;
  SummaryServer server(&onto_, Items(1), options);

  constexpr int kClients = 6;
  std::vector<ServeResponse> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &responses, c] {
      ServeRequest request;
      request.item_id = "item0";
      responses[static_cast<size_t>(c)] = server.Serve(request);
    });
  }
  for (std::thread& thread : threads) thread.join();
  FailpointRegistry::Global().DisarmAll();

  std::set<uint64_t> request_ids;
  const ServeResponse* leader = nullptr;
  for (const ServeResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.trace.balanced());
    EXPECT_TRUE(response.trace.HasSpan(RequestSpanKind::kSolve))
        << "followers must carry the leader's solve span";
    EXPECT_GT(response.request_id, 0u);
    EXPECT_EQ(response.request_id, response.trace.context.request_id);
    EXPECT_EQ(response.trace_id, obs::DeriveTraceId(response.request_id));
    EXPECT_EQ(response.summary.request_id, response.request_id);
    EXPECT_EQ(response.summary.trace_id, response.trace_id);
    request_ids.insert(response.request_id);
    if (response.outcome == ServeOutcome::kSolved) leader = &response;
  }
  EXPECT_EQ(request_ids.size(), static_cast<size_t>(kClients))
      << "coalescing must not collapse request identities";
  ASSERT_NE(leader, nullptr);
  EXPECT_FALSE(leader->trace.HasSpan(RequestSpanKind::kCoalescedWait));
  int64_t leader_solve_ns =
      leader->trace.SpanDurationNs(RequestSpanKind::kSolve);
  for (const ServeResponse& response : responses) {
    if (response.outcome != ServeOutcome::kCoalesced) continue;
    EXPECT_EQ(response.trace.SpanDurationNs(RequestSpanKind::kSolve),
              leader_solve_ns)
        << "the solve span is shared, byte for byte, with the leader";
    EXPECT_TRUE(response.trace.HasSpan(RequestSpanKind::kCoalescedWait));
  }
}

TEST_F(ServeTest, ShedDegradedAndCompletedOutcomesCarryBalancedSpanTrees) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;  // no stale fallback: shedding is visible
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest hurried;
  hurried.item_id = "item0";
  hurried.deadline_ms = 0.001;  // expired by dequeue
  ServeResponse shed = server.Serve(hurried);
  ASSERT_EQ(shed.outcome, ServeOutcome::kShed);
  EXPECT_TRUE(shed.trace.balanced());
  EXPECT_TRUE(shed.trace.HasSpan(RequestSpanKind::kQueueWait));
  EXPECT_TRUE(shed.trace.HasSpan(RequestSpanKind::kShedDecision));
  EXPECT_FALSE(shed.trace.HasSpan(RequestSpanKind::kSolve))
      << "a shed request must not carry a solve span";

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse completed = server.Serve(request);
  ASSERT_TRUE(completed.status.ok());
  EXPECT_TRUE(completed.trace.balanced());
  EXPECT_TRUE(completed.trace.HasSpan(RequestSpanKind::kQueueWait));
  EXPECT_TRUE(completed.trace.HasSpan(RequestSpanKind::kSolve));

  // Degraded stale serve: cache on, epoch bumped, expired deadline.
  ServeOptions stale_options;
  stale_options.num_threads = 1;
  SummaryServer stale_server(&onto_, Items(1), stale_options);
  ASSERT_TRUE(stale_server.Serve(request).status.ok());
  stale_server.BumpEpoch();
  ServeResponse degraded = stale_server.Serve(hurried);
  ASSERT_EQ(degraded.outcome, ServeOutcome::kDegraded);
  EXPECT_TRUE(degraded.trace.balanced());
  EXPECT_TRUE(degraded.trace.HasSpan(RequestSpanKind::kQueueWait));
  EXPECT_TRUE(degraded.trace.HasSpan(RequestSpanKind::kStaleFallback));

  // Front-door rejection: still one balanced trace.
  ServeRequest unknown;
  unknown.item_id = "no-such-item";
  ServeResponse rejected = server.Serve(unknown);
  ASSERT_EQ(rejected.outcome, ServeOutcome::kRejected);
  EXPECT_TRUE(rejected.trace.balanced());
}

TEST(TraceRingTest, EvictsOldestFirstAtCapacity) {
  obs::TraceRing ring(3);
  for (uint64_t id = 1; id <= 5; ++id) {
    obs::RequestTrace trace;
    trace.context.request_id = id;
    ring.Push(trace);
  }
  std::vector<obs::RequestTrace> traces = ring.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].context.request_id, 3u) << "oldest evicted first";
  EXPECT_EQ(traces[1].context.request_id, 4u);
  EXPECT_EQ(traces[2].context.request_id, 5u);
}

TEST_F(ServeTest, ServerTraceRingKeepsTheMostRecentRequests) {
  ServeOptions options;
  options.num_threads = 1;
  options.trace_ring_capacity = 2;
  SummaryServer server(&onto_, Items(1), options);
  for (int i = 0; i < 5; ++i) {
    ServeRequest request;
    request.item_id = "item0";
    ASSERT_TRUE(server.Serve(request).status.ok());
  }
  std::vector<obs::RequestTrace> traces = server.recent_traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].context.request_id, 4u);
  EXPECT_EQ(traces[1].context.request_id, 5u);
  for (const obs::RequestTrace& trace : traces) {
    EXPECT_TRUE(trace.balanced());
  }
}

TEST_F(ServeTest, StructuredLogsEmitSlowAndShedEvents) {
  if (!slog::kCompiledIn) {
    GTEST_SKIP() << "logging compiled out (-DOSRS_LOGGING=OFF)";
  }
  // The sink runs under the logger's emit lock, so appends from the
  // worker thread and the caller thread cannot interleave.
  std::string captured;
  slog::SetSink(
      [](std::string_view line, void* user_data) {
        static_cast<std::string*>(user_data)->append(line);
      },
      &captured);

  ServeOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  options.slow_request_threshold_ms = 1e-6;  // everything is "slow"
  SummaryServer server(&onto_, Items(1), options);

  ServeRequest hurried;
  hurried.item_id = "item0";
  hurried.deadline_ms = 0.001;
  ASSERT_EQ(server.Serve(hurried).outcome, ServeOutcome::kShed);
  ServeRequest request;
  request.item_id = "item0";
  ASSERT_TRUE(server.Serve(request).status.ok());
  slog::SetSink(nullptr, nullptr);

  EXPECT_NE(captured.find("\"message\":\"request shed\""), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("\"message\":\"slow request\""), std::string::npos);
  EXPECT_NE(captured.find("\"trace_id\":\""), std::string::npos)
      << "events must carry the log-correlation id";
  // The span tree rides inside the "spans" field as an escaped JSON
  // string, so look for the bare kind token.
  EXPECT_NE(captured.find("queue_wait"), std::string::npos)
      << "the slow-request event must embed the span tree";
}

// ------------------------------------------------- durability & drain ------

/// Fresh empty state directory for restart tests (clears generations a
/// previous run of the binary may have left).
std::string FreshServeStateDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/osrs_serve_state_" + tag;
  (void)::mkdir(dir.c_str(), 0755);
  store::StateStoreOptions naming_options;
  naming_options.dir = dir;
  store::StateStore naming(naming_options);
  for (uint64_t gen = 0; gen < 64; ++gen) {
    (void)store::RemoveFile(naming.SnapshotPath(gen));
    (void)store::RemoveFile(naming.JournalPath(gen));
  }
  return dir;
}

TEST_F(ServeTest, RestartRecoversMutationsAndEpochWithColdCache) {
  std::string dir = FreshServeStateDir("restart");
  ServeOptions options;
  options.num_threads = 1;
  options.state_dir = dir;

  std::string updated_fingerprint;
  uint64_t epoch_before = 0;
  {
    SummaryServer server(&onto_, Items(1), options);
    ASSERT_TRUE(server.recovery_status().ok())
        << server.recovery_status().ToString();
    server.UpdateItem(MakeItem(onto_, "item0", 0.3));
    ServeRequest request;
    request.item_id = "item0";
    ServeResponse response = server.Serve(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    updated_fingerprint = Fingerprint(response.summary);
    epoch_before = server.epoch();
    ASSERT_TRUE(server.Drain(2000.0));
  }

  // Restart against the same state dir, constructor-seeded with the
  // ORIGINAL (pre-update) corpus: recovery must overlay the journaled
  // update and restore the epoch, so the server picks up exactly where
  // the drained instance left off.
  SummaryServer restarted(&onto_, Items(1), options);
  ASSERT_TRUE(restarted.recovery_status().ok())
      << restarted.recovery_status().ToString();
  EXPECT_TRUE(restarted.persistence_enabled());
  EXPECT_TRUE(restarted.recovery_info().found_snapshot);
  EXPECT_EQ(restarted.epoch(), epoch_before) << "epoch continuity";

  // The cache is COLD after restart: the first request must be a fresh
  // solve at the recovered epoch — never a stale/degraded answer from a
  // previous life — and must see the recovered (updated) reviews.
  ServeRequest request;
  request.item_id = "item0";
  ServeResponse response = restarted.Serve(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.outcome, ServeOutcome::kSolved);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.epoch, epoch_before);
  EXPECT_EQ(restarted.cache_stats().stale_hits, 0u);
  EXPECT_EQ(Fingerprint(response.summary), updated_fingerprint)
      << "recovered reviews must produce the same summary the pre-restart "
         "server served";
}

TEST_F(ServeTest, DrainCompletesWorkRejectsNewAndCollapsesJournal) {
  std::string dir = FreshServeStateDir("drain");
  ServeOptions options;
  options.num_threads = 2;
  options.state_dir = dir;
  SummaryServer server(&onto_, Items(3), options);
  ASSERT_TRUE(server.recovery_status().ok());

  for (int i = 0; i < 3; ++i) {
    server.UpdateItem(MakeItem(onto_, "item" + std::to_string(i), 0.2));
    ServeRequest request;
    request.item_id = "item" + std::to_string(i);
    ASSERT_TRUE(server.Serve(request).status.ok());
  }

  EXPECT_TRUE(server.Drain(2000.0)) << "drain must finish within deadline";

  // Post-drain admission is closed.
  ServeRequest late;
  late.item_id = "item0";
  ServeResponse rejected = server.Serve(late);
  EXPECT_NE(rejected.outcome, ServeOutcome::kSolved);
  EXPECT_FALSE(rejected.status.ok());

  // The accounting identities hold once drained: nothing in flight is
  // unaccounted for.
  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, counters.admitted + counters.rejected);
  EXPECT_EQ(counters.admitted,
            counters.completed + counters.shed + counters.failed);

  // Drain's final compaction collapsed the journal into a snapshot: a
  // recovery replays zero records and sees every mutation in the snapshot.
  store::StateStoreOptions store_options;
  store_options.dir = dir;
  store::StateStore store(store_options);
  store::SnapshotData state;
  Result<store::RecoveryInfo> info = store.Recover(&state);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->found_snapshot);
  EXPECT_EQ(info->journal_records_replayed, 0u);
  EXPECT_EQ(info->epoch, server.epoch());
  EXPECT_EQ(state.items.size(), 3u);
}

TEST_F(ServeTest, WatchdogCancelsStalledSolveAndServerSurvives) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;  // no stale fallback: the stall is visible
  options.watchdog_stall_threshold_ms = 5.0;
  options.watchdog_poll_ms = 1.0;
  SummaryServer server(&onto_, Items(1), options);

  // Stall the solve (inside the watchdog's measured window) far past the
  // threshold: the watchdog must fire and cancel it via the budget's
  // cancellation flag.
  fault::FailpointSpec spec;
  spec.action = fault::FailAction::kDelay;
  spec.delay_ms = 100.0;
  spec.trigger = fault::FailTrigger::kOnce;
  FailpointRegistry::Global().Get("osrs.serve.solve")->Arm(spec);

  ServeRequest request;
  request.item_id = "item0";
  ServeResponse stalled = server.Serve(request);
  FailpointRegistry::Global().DisarmAll();
  EXPECT_GE(server.counters().watchdog_stalls, 1)
      << "a 100ms solve against a 5ms threshold must trip the watchdog";

  // The cancellation is scoped to the stalled flight: the next request
  // solves normally on the same worker.
  ServeResponse healthy = server.Serve(request);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();
  EXPECT_EQ(healthy.outcome, ServeOutcome::kSolved);
  (void)stalled;

  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.admitted,
            counters.completed + counters.shed + counters.failed);
}

}  // namespace
}  // namespace osrs::serve
