// Reproduces Fig. 6 (both subfigures): sentiment error of the greedy
// coverage summarizer vs the five baselines of Table 2, on the cell phone
// corpus, selecting k sentences per phone (lower is better).
//
// Paper shape to reproduce: ours has the lowest sent-err at every k
// (beating "Most popular" by ~4% and the rest by ~15% on average); on
// sent-err-penalized the margins widen (~15% / ~20%) because baselines
// leave more concepts entirely uncovered; errors of all methods shrink as
// k grows; the sentiment-agnostic multi-document summarizers (TextRank,
// LexRank, LSA) trail the opinion-aware ones.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "baselines/coverage_selector.h"
#include "baselines/lexrank.h"
#include "baselines/lsa.h"
#include "baselines/most_popular.h"
#include "baselines/proportional.h"
#include "baselines/sentence_selector.h"
#include "baselines/textrank.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/doctor_corpus.h"
#include "eval/sent_err.h"

namespace {

/// Runs the six summarizers over `corpus` and prints the 6(a)/6(b) tables.
void RunComparison(const osrs::Corpus& corpus, const std::string& label,
                   const std::vector<int>& k_values, size_t sentence_cap) {
  std::vector<std::unique_ptr<osrs::SentenceSelector>> selectors;
  selectors.push_back(
      std::make_unique<osrs::CoverageGreedySelector>(&corpus.ontology, 0.5));
  selectors.push_back(std::make_unique<osrs::MostPopularSelector>());
  selectors.push_back(std::make_unique<osrs::ProportionalSelector>());
  selectors.push_back(std::make_unique<osrs::TextRankSelector>());
  selectors.push_back(std::make_unique<osrs::LexRankSelector>());
  selectors.push_back(std::make_unique<osrs::LsaSelector>());

  std::printf("\n%s: %zu items, <=%zu candidate sentences each\n",
              label.c_str(), corpus.items.size(), sentence_cap);

  std::vector<std::vector<std::vector<double>>> errors(
      2, std::vector<std::vector<double>>(
             selectors.size(), std::vector<double>(k_values.size(), 0.0)));

  for (const osrs::Item& item : corpus.items) {
    auto candidates = osrs::BuildCandidates(item);
    if (candidates.size() > sentence_cap) candidates.resize(sentence_cap);
    std::vector<osrs::ConceptSentimentPair> all_pairs;
    for (const auto& candidate : candidates) {
      all_pairs.insert(all_pairs.end(), candidate.pairs.begin(),
                       candidate.pairs.end());
    }
    for (size_t s = 0; s < selectors.size(); ++s) {
      for (size_t ki = 0; ki < k_values.size(); ++ki) {
        auto selected = selectors[s]->Select(candidates, k_values[ki]);
        OSRS_CHECK_MSG(selected.ok(), selectors[s]->name()
                                          << ": "
                                          << selected.status().ToString());
        auto summary_pairs = osrs::PairsOfSelection(candidates, *selected);
        for (int penalized = 0; penalized < 2; ++penalized) {
          errors[static_cast<size_t>(penalized)][s][ki] +=
              osrs::SentErr(corpus.ontology, all_pairs, summary_pairs,
                            penalized != 0) /
              static_cast<double>(corpus.items.size());
        }
      }
    }
  }

  for (int penalized = 0; penalized < 2; ++penalized) {
    osrs::TableWriter table(osrs::StrFormat(
        "%s — %s vs k (lower is better)", label.c_str(),
        penalized == 0 ? "sent-err" : "sent-err-penalized"));
    std::vector<std::string> header{"method"};
    for (int k : k_values) header.push_back(osrs::StrFormat("k=%d", k));
    table.SetHeader(header);
    for (size_t s = 0; s < selectors.size(); ++s) {
      table.AddRow(selectors[s]->name(),
                   errors[static_cast<size_t>(penalized)][s], 4);
    }
    table.Print();
    double ours = 0, best_other = 0;
    for (size_t ki = 0; ki < k_values.size(); ++ki) {
      ours += errors[static_cast<size_t>(penalized)][0][ki];
      double min_other = 1e9;
      for (size_t s = 1; s < selectors.size(); ++s) {
        min_other = std::min(min_other,
                             errors[static_cast<size_t>(penalized)][s][ki]);
      }
      best_other += min_other;
    }
    std::printf("  avg improvement over the best baseline: %.1f%%\n",
                100.0 * (best_other - ours) / best_other);
  }
}

void PrintTable2() {
  osrs::TableWriter table("Table 2: baseline unsupervised summarizers");
  table.SetHeader({"baseline", "description"});
  table.AddRow({"Most popular [9]",
                "representative sentences of popular aspect-polarity pairs"});
  table.AddRow({"Proportional [3]",
                "extreme-sentiment sentences, aspects picked proportionally"});
  table.AddRow({"TextRank [18]",
                "no sentiment; sentence graph with word-overlap similarity"});
  table.AddRow({"LexRank [6]",
                "no sentiment; sentence graph with cosine similarity"});
  table.AddRow({"LSA-based [24]",
                "no sentiment; SVD on the term-sentence matrix"});
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  PrintTable2();
  const std::vector<int> k_values{2, 4, 6, 8, 10};

  // Main panel: the cell phone dataset, as in the paper's Fig. 6.
  osrs::CellPhoneCorpusOptions phone_options;
  phone_options.scale = 0.12;  // 7 phones, ~4000 reviews
  osrs::Corpus phones = osrs::GenerateCellPhoneCorpus(phone_options);
  RunComparison(phones, "Fig 6 (cell phone reviews)", k_values,
                /*sentence_cap=*/350);

  // §5.3 also reports "similar results on doctor reviews dataset".
  osrs::DoctorCorpusOptions doctor_options;
  doctor_options.scale = 0.008;  // 8 doctors
  doctor_options.ontology_concepts = 2000;
  osrs::Corpus doctors = osrs::GenerateDoctorCorpus(doctor_options);
  RunComparison(doctors, "Fig 6 companion (doctor reviews)", k_values,
                /*sentence_cap=*/300);
  return 0;
}
