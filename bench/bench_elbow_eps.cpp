// Reproduces the §5.3 sentiment-threshold selection experiment: sweep eps
// and report the fraction of pairs the greedy summary covers, then pick
// the knee of the curve with the elbow method. The paper reports the
// elbow lands at eps = 0.5 "most of the time"; the same should hold here
// (the generator's sentiment clusters have ~0.35-0.5 spread).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "core/model.h"
#include "datagen/doctor_corpus.h"
#include "eval/elbow.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::DoctorCorpusOptions corpus_options;
  corpus_options.scale = 0.012;
  corpus_options.ontology_concepts = 2000;
  osrs::Corpus corpus = osrs::GenerateDoctorCorpus(corpus_options);
  const std::vector<double> epsilons{0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.7, 0.9, 1.2,  1.6, 2.0};
  const int k = 8;

  osrs::TableWriter table(
      "Elbow-method eps selection: covered fraction of greedy k=8 summary");
  std::vector<std::string> header{"item"};
  for (double eps : epsilons) header.push_back(osrs::StrFormat("%.1f", eps));
  header.push_back("chosen");
  table.SetHeader(header);

  std::map<double, int> votes;
  for (const osrs::Item& item : corpus.items) {
    osrs::Item capped = osrs::TruncateToPairBudget(item, 400);
    auto pairs = osrs::PairsOf(osrs::CollectPairs(capped));
    osrs::ElbowResult result =
        osrs::SelectEpsilonByElbow(corpus.ontology, pairs, k, epsilons);
    std::vector<std::string> row{capped.id};
    for (double fraction : result.covered_fraction) {
      row.push_back(osrs::StrFormat("%.3f", fraction));
    }
    row.push_back(osrs::StrFormat("%.1f", result.chosen_epsilon));
    table.AddRow(row);
    ++votes[result.chosen_epsilon];
  }
  table.Print();

  double mode = 0;
  int best = -1;
  for (const auto& [eps, count] : votes) {
    if (count > best) {
      best = count;
      mode = eps;
    }
  }
  std::printf("\nMost frequent elbow: eps = %.1f (%d of %zu items; the "
              "paper selects 0.5)\n",
              mode, best, corpus.items.size());
  return 0;
}
