// Exercises the Theorem 1 / Fig. 2 NP-hardness reduction end to end: for
// a family of Set Cover instances, the optimal k-Pairs Coverage cost on
// the reduction DAG equals the target t = 3m + n - 2k exactly when a
// size-k set cover exists. Uses the exact ILP solver as the oracle.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "core/distance.h"
#include "core/reduction.h"
#include "coverage/coverage_graph.h"
#include "solver/ilp_summarizer.h"

namespace {

/// Exhaustive set-cover decision for the ground truth (instances are tiny).
bool HasCoverOfSizeK(const osrs::SetCoverInstance& instance) {
  int m = static_cast<int>(instance.sets.size());
  std::vector<int> chosen;
  // Enumerate all k-subsets of sets.
  std::vector<int> combo(static_cast<size_t>(instance.k));
  for (int i = 0; i < instance.k; ++i) combo[static_cast<size_t>(i)] = i;
  while (true) {
    if (osrs::IsSetCover(instance, combo)) return true;
    int i = instance.k - 1;
    while (i >= 0 && combo[static_cast<size_t>(i)] == m - instance.k + i) --i;
    if (i < 0) return false;
    ++combo[static_cast<size_t>(i)];
    for (int j = i + 1; j < instance.k; ++j) {
      combo[static_cast<size_t>(j)] = combo[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

osrs::SetCoverInstance RandomInstance(osrs::Rng& rng, int n, int m, int k) {
  osrs::SetCoverInstance instance;
  instance.universe_size = n;
  instance.k = k;
  instance.sets.resize(static_cast<size_t>(m));
  // Every element in at least one set (required by the reduction DAG).
  for (int e = 0; e < n; ++e) {
    instance.sets[rng.NextUint64(static_cast<uint64_t>(m))].push_back(e);
  }
  for (auto& set : instance.sets) {
    for (int e = 0; e < n; ++e) {
      if (rng.NextBernoulli(0.25)) set.push_back(e);
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::Rng rng(2025);
  osrs::TableWriter table(
      "Theorem 1 reduction: ILP cost == 3m+n-2k  <=>  size-k set cover "
      "exists");
  table.SetHeader({"instance", "n", "m", "k", "target", "ilp_cost",
                   "cover_exists", "agrees"});
  int agreements = 0, total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    int n = 4 + static_cast<int>(rng.NextUint64(5));
    int m = 4 + static_cast<int>(rng.NextUint64(4));
    int k = 2 + static_cast<int>(rng.NextUint64(2));
    osrs::SetCoverInstance instance = RandomInstance(rng, n, m, k);
    osrs::KPairsReduction reduction = osrs::BuildKPairsReduction(instance);
    osrs::PairDistance distance(&reduction.ontology, 0.1);
    osrs::CoverageGraph graph =
        osrs::CoverageGraph::BuildForPairs(distance, reduction.pairs);
    auto result = osrs::IlpSummarizer().Summarize(graph, reduction.k);
    OSRS_CHECK_MSG(result.ok(), result.status().ToString());
    bool cover = HasCoverOfSizeK(instance);
    bool hit_target = result->cost <= reduction.target + 1e-6;
    bool agrees = (cover == hit_target);
    agreements += agrees ? 1 : 0;
    ++total;
    table.AddRow({osrs::StrFormat("#%d", trial), osrs::StrFormat("%d", n),
                  osrs::StrFormat("%d", m), osrs::StrFormat("%d", k),
                  osrs::StrFormat("%.0f", reduction.target),
                  osrs::StrFormat("%.0f", result->cost),
                  cover ? "yes" : "no", agrees ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\n%d/%d instances agree with the Theorem 1 equivalence\n",
              agreements, total);
  return agreements == total ? 0 : 1;
}
