// Fault-injection overhead benchmark: what the failpoint sites and the
// batch retry machinery cost when nothing is injected — the production
// steady state. Three measurements:
//
//   1. ns per OSRS_FAILPOINT evaluation, disarmed (the one-relaxed-load
//      fast path) and armed-but-quiet (prob(0): mutex + trigger, never
//      fires) — the worst case a site can pay without injecting.
//   2. Site evaluations per no-fault batch (counted by arming every
//      production site with prob(0), which counts hits without firing),
//      combined with (1) into an estimated steady-state overhead percent.
//   3. Batch wall clock with RetryPolicy disabled vs. max_retries=3 on a
//      fault-free run — the retry loop never triggers, so the ratio
//      isolates its bookkeeping cost.
//
// The acceptance bar is overhead < 1%. The same binary built with
// -DOSRS_FAILPOINTS=OFF reports compiled_in=false and zero site cost (the
// macro is a constant), which is how ci.sh proves the compiled-out path.
//
// Usage: bench_retry_overhead [--smoke] [--out=BENCH_retry.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "api/batch_summarizer.h"
#include "api/review_summarizer.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model.h"
#include "fault/failpoint.h"
#include "ontology/cellphone_hierarchy.h"
#include "ontology/ontology.h"

namespace osrs::bench {
namespace {

constexpr const char* kBatchSites[] = {
    "osrs.coverage.alloc",
    "osrs.solver.step",
    "osrs.lp.pivot",
};

Item RandomItem(const Ontology& onto, Rng& rng, int index,
                int num_sentences) {
  Item item;
  item.id = "bench" + std::to_string(index);
  Review review;
  for (int s = 0; s < num_sentences; ++s) {
    Sentence sentence;
    sentence.text = item.id + "-s" + std::to_string(s);
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextUint64(onto.num_concepts() - 1));
    sentence.pairs.push_back(
        {c, std::clamp(rng.NextGaussian(0.0, 0.6), -1.0, 1.0)});
    review.sentences.push_back(std::move(sentence));
  }
  item.reviews.push_back(std::move(review));
  return item;
}

/// ns per OSRS_FAILPOINT evaluation over `iters` calls of one site.
double MeasureSiteNs(int64_t iters) {
  Stopwatch watch;
  for (int64_t i = 0; i < iters; ++i) {
    Status status = OSRS_FAILPOINT("osrs.bench.site");
    if (!status.ok()) std::abort();  // never: disarmed or prob(0)
  }
  return static_cast<double>(watch.ElapsedNanos()) /
         static_cast<double>(iters);
}

/// Median batch wall-clock ms over `reps` runs.
double MeasureBatchMs(const BatchSummarizer& batch,
                      const std::vector<Item>& items, int k, int reps) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    std::vector<BatchEntry> entries = batch.SummarizeAll(items, k);
    times.push_back(static_cast<double>(watch.ElapsedNanos()) * 1e-6);
    for (const BatchEntry& entry : entries) {
      if (!entry.status.ok()) {
        std::fprintf(stderr, "bench_retry_overhead: unexpected failure: %s\n",
                     entry.status.ToString().c_str());
        std::exit(2);
      }
    }
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) {
  using namespace osrs;
  using namespace osrs::bench;

  bool smoke = false;
  std::string out_path = "BENCH_retry.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr,
                   "usage: bench_retry_overhead [--smoke] [--out=path]\n");
      return 2;
    }
  }

  const int num_items = smoke ? 8 : 64;
  const int sentences_per_item = smoke ? 20 : 60;
  const int batch_reps = smoke ? 5 : 15;
  const int64_t site_iters = smoke ? 2'000'000 : 20'000'000;

  Ontology onto = BuildCellPhoneHierarchy();
  Rng rng(99);
  std::vector<Item> items;
  for (int i = 0; i < num_items; ++i) {
    items.push_back(RandomItem(onto, rng, i, sentences_per_item));
  }

  fault::FailpointRegistry& registry = fault::FailpointRegistry::Global();
  registry.DisarmAll();

  // 1. Site micro-cost, disarmed then armed-but-quiet.
  double disarmed_ns = MeasureSiteNs(site_iters);
  fault::FailpointSpec quiet;
  quiet.trigger = fault::FailTrigger::kProbability;
  quiet.probability = 0.0;
  registry.Get("osrs.bench.site")->Arm(quiet);
  double armed_quiet_ns = MeasureSiteNs(site_iters);
  registry.DisarmAll();

  // 2. Site evaluations per no-fault batch: prob(0) counts hits without
  //    ever firing. Under -DOSRS_FAILPOINTS=OFF the sites are compiled
  //    out, so this measures exactly 0 — the compiled-out proof.
  BatchSummarizerOptions options;
  options.num_threads = 1;
  BatchSummarizer batch(&onto, options);
  for (const char* site : kBatchSites) registry.Get(site)->Arm(quiet);
  (void)batch.SummarizeAll(items, 5);
  int64_t hits_per_batch = 0;
  for (const char* site : kBatchSites) {
    hits_per_batch += registry.Get(site)->hits();
  }
  registry.DisarmAll();

  // 3. Batch wall clock: retries disabled vs. an armed-but-never-needed
  //    RetryPolicy on the same fault-free workload.
  double batch_ms = MeasureBatchMs(batch, items, 5, batch_reps);
  BatchSummarizerOptions retry_options = options;
  retry_options.retry_policy.max_retries = 3;
  BatchSummarizer retry_batch(&onto, retry_options);
  double batch_retry_ms = MeasureBatchMs(retry_batch, items, 5, batch_reps);

  // Worst-case steady-state estimate: every evaluation at the armed-quiet
  // (mutex) price, against the measured batch wall clock.
  double site_overhead_percent =
      batch_ms > 0.0 ? 100.0 * (static_cast<double>(hits_per_batch) *
                                armed_quiet_ns * 1e-6) /
                           batch_ms
                     : 0.0;
  double retry_overhead_percent =
      batch_ms > 0.0 ? 100.0 * (batch_retry_ms - batch_ms) / batch_ms : 0.0;
  // The <1% bar is a steady-state contract at full batch scale: the smoke
  // batch is too small to amortize the fixed per-item site evaluations, so
  // there the percentage is printed as informational only.
  bool under_bar = site_overhead_percent < 1.0;
  bool gate = !smoke;

  std::printf("bench_retry_overhead (%s, failpoints %s)\n",
              smoke ? "smoke" : "full",
              fault::kCompiledIn ? "compiled in" : "compiled out");
  std::printf("  disarmed site:     %7.3f ns/eval\n", disarmed_ns);
  std::printf("  armed quiet site:  %7.3f ns/eval\n", armed_quiet_ns);
  std::printf("  site evals/batch:  %lld (%d items)\n",
              static_cast<long long>(hits_per_batch), num_items);
  std::printf("  batch:             %8.3f ms median\n", batch_ms);
  std::printf("  batch + retry=3:   %8.3f ms median (%+.2f%%)\n",
              batch_retry_ms, retry_overhead_percent);
  std::printf("  est. site overhead: %.4f%% of batch (< 1%%: %s%s)\n",
              site_overhead_percent, under_bar ? "yes" : "NO",
              gate ? "" : ", informational at smoke scale");

  BenchJsonWriter writer("retry_overhead");
  writer.Bool("smoke", smoke);
  writer.Bool("compiled_in", fault::kCompiledIn);
  writer.Int("num_items", num_items);
  writer.Raw("disarmed_ns_per_eval", StrFormat("%.4f", disarmed_ns));
  writer.Raw("armed_quiet_ns_per_eval", StrFormat("%.4f", armed_quiet_ns));
  writer.Int("site_evals_per_batch", hits_per_batch);
  writer.Raw("batch_ms", StrFormat("%.4f", batch_ms));
  writer.Raw("batch_retry3_ms", StrFormat("%.4f", batch_retry_ms));
  writer.Raw("retry_overhead_percent",
             StrFormat("%.4f", retry_overhead_percent));
  writer.Raw("site_overhead_percent",
             StrFormat("%.4f", site_overhead_percent));
  writer.Bool("under_one_percent", under_bar);
  if (!writer.WriteFile(out_path, "bench_retry_overhead")) return 2;
  return (under_bar || !gate) ? 0 : 1;
}
