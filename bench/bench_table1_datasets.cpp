// Reproduces Table 1 (dataset characteristics) and prints the Fig. 3
// cell-phone aspect hierarchy. Both corpora are generated at full paper
// scale with the default seeds; the row values should match the paper's
// exactly for counts (the generator enforces them) and closely for the
// average sentences per review (a distributional target).

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/doctor_corpus.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  std::printf("Generating both corpora at full Table 1 scale...\n");
  osrs::Stopwatch watch;
  osrs::Corpus doctors = osrs::GenerateDoctorCorpus({});
  std::printf("  doctor corpus in %.1fs\n", watch.ElapsedSeconds());
  watch.Reset();
  osrs::Corpus phones = osrs::GenerateCellPhoneCorpus({});
  std::printf("  cell phone corpus in %.1fs\n", watch.ElapsedSeconds());

  osrs::CorpusStats doctor_stats = osrs::ComputeStats(doctors);
  osrs::CorpusStats phone_stats = osrs::ComputeStats(phones);

  osrs::TableWriter table(
      "Table 1: dataset characteristics (paper values: 1000/68686/43/354/"
      "4.87 and 60/33578/102/3200/3.81)");
  table.SetHeader({"", "Doctor reviews", "Cell phone reviews"});
  table.AddRow({"#Items (doctor/product)",
                osrs::StrFormat("%zu", doctor_stats.num_items),
                osrs::StrFormat("%zu", phone_stats.num_items)});
  table.AddRow({"#Reviews", osrs::StrFormat("%zu", doctor_stats.num_reviews),
                osrs::StrFormat("%zu", phone_stats.num_reviews)});
  table.AddRow({"Min #reviews per item",
                osrs::StrFormat("%d", doctor_stats.min_reviews_per_item),
                osrs::StrFormat("%d", phone_stats.min_reviews_per_item)});
  table.AddRow({"Max #reviews per item",
                osrs::StrFormat("%d", doctor_stats.max_reviews_per_item),
                osrs::StrFormat("%d", phone_stats.max_reviews_per_item)});
  table.AddRow(
      {"Average #sentences per review",
       osrs::StrFormat("%.2f", doctor_stats.avg_sentences_per_review),
       osrs::StrFormat("%.2f", phone_stats.avg_sentences_per_review)});
  table.Print();

  std::printf(
      "\nOntology shapes: doctor DAG %zu concepts depth %d avg-ancestors "
      "%.1f | phone tree %zu concepts depth %d\n",
      doctors.ontology.num_concepts(), doctors.ontology.max_depth(),
      doctors.ontology.AverageAncestorCount(), phones.ontology.num_concepts(),
      phones.ontology.max_depth());

  std::printf("\nFigure 3: cell phone aspect hierarchy\n%s",
              phones.ontology.ToTreeString(2).c_str());
  return 0;
}
