// Extensions bench (beyond the paper's three algorithms): how do the
// greedy+swap local search and the deterministic LP-top-k rounding compare
// against ILP / RR / Greedy on cost and time? Also quantifies the
// duplicate-pair deduplication optimization (weighted targets): identical
// costs on a smaller graph.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "core/cost.h"
#include "datagen/doctor_corpus.h"
#include "solver/local_search.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::DoctorCorpusOptions corpus_options;
  corpus_options.scale = 0.008;  // 8 doctors
  corpus_options.ontology_concepts = 2000;
  osrs::Corpus corpus = osrs::GenerateDoctorCorpus(corpus_options);
  osrs::PairDistance distance(&corpus.ontology, 0.5);
  const int k = 6;

  osrs::IlpSummarizer ilp;
  osrs::RandomizedRoundingSummarizer rr;
  osrs::RandomizedRoundingOptions topk_options;
  topk_options.strategy = osrs::RoundingStrategy::kTopK;
  osrs::RandomizedRoundingSummarizer lp_topk(topk_options);
  osrs::GreedySummarizer greedy;
  osrs::LocalSearchSummarizer polished;
  std::vector<osrs::Summarizer*> algorithms{&ilp, &rr, &lp_topk, &greedy,
                                            &polished};

  osrs::TableWriter table(
      "Extensions: avg cost and time across doctors (k=6, eps=0.5, pairs)");
  table.SetHeader({"algorithm", "avg_cost", "gap_vs_ILP_%", "avg_time_ms"});
  std::vector<double> costs(algorithms.size(), 0.0);
  std::vector<double> times(algorithms.size(), 0.0);

  for (const osrs::Item& item : corpus.items) {
    osrs::Item capped = osrs::TruncateToPairBudget(item, 220);
    auto pairs = osrs::PairsOf(osrs::CollectPairs(capped));
    osrs::CoverageGraph graph =
        osrs::CoverageGraph::BuildForPairs(distance, pairs);
    for (size_t a = 0; a < algorithms.size(); ++a) {
      auto result = algorithms[a]->Summarize(graph, k);
      OSRS_CHECK_MSG(result.ok(), algorithms[a]->name()
                                      << ": " << result.status().ToString());
      costs[a] += result->cost / static_cast<double>(corpus.items.size());
      times[a] +=
          result->seconds * 1e3 / static_cast<double>(corpus.items.size());
    }
  }
  for (size_t a = 0; a < algorithms.size(); ++a) {
    table.AddRow({algorithms[a]->name(),
                  osrs::StrFormat("%.1f", costs[a]),
                  osrs::StrFormat("%.2f", 100.0 * (costs[a] / costs[0] - 1.0)),
                  osrs::StrFormat("%.3f", times[a])});
  }
  table.Print();

  // Deduplication ablation: graph size and greedy cost with and without
  // collapsing duplicate (concept, sentiment-bucket) pairs.
  osrs::TableWriter dedup_table(
      "Dedup ablation: weighted targets vs raw duplicates (greedy, k=6)");
  dedup_table.SetHeader({"item", "pairs", "unique", "edges_raw",
                         "edges_dedup", "cost_raw", "cost_dedup"});
  for (size_t i = 0; i < std::min<size_t>(corpus.items.size(), 5); ++i) {
    osrs::Item capped = osrs::TruncateToPairBudget(corpus.items[i], 220);
    auto pairs = osrs::PairsOf(osrs::CollectPairs(capped));
    // Quantize to a 0.05 grid first so duplicates actually exist.
    for (auto& pair : pairs) {
      pair.sentiment = std::round(pair.sentiment * 20.0) / 20.0;
    }
    osrs::CoverageGraph raw = osrs::CoverageGraph::BuildForPairs(distance, pairs);
    osrs::DedupedPairs deduped = osrs::DedupePairs(pairs, 1e-9);
    osrs::CoverageGraph compact = osrs::CoverageGraph::BuildForPairsWeighted(
        distance, deduped.pairs, deduped.weights);
    auto cost_raw = greedy.Summarize(raw, k);
    auto cost_dedup = greedy.Summarize(compact, k);
    OSRS_CHECK(cost_raw.ok());
    OSRS_CHECK(cost_dedup.ok());
    dedup_table.AddRow(
        {capped.id, osrs::StrFormat("%zu", pairs.size()),
         osrs::StrFormat("%zu", deduped.pairs.size()),
         osrs::StrFormat("%zu", raw.num_edges()),
         osrs::StrFormat("%zu", compact.num_edges()),
         osrs::StrFormat("%.1f", cost_raw->cost),
         osrs::StrFormat("%.1f", cost_dedup->cost)});
  }
  dedup_table.Print();
  return 0;
}
