// Ablation A1 (§4.4's heap discussion): eager neighbor-of-neighbor key
// updates (the paper's Algorithm 2) vs the classical lazy-greedy heap, as
// the pair count grows. Both return equally good summaries; the question
// is which bookkeeping is cheaper on these graphs.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"
#include "solver/greedy.h"

namespace {

const osrs::Ontology& SharedOntology() {
  static const osrs::Ontology* onto = [] {
    osrs::SnomedLikeOptions options;
    options.num_concepts = 2000;
    return new osrs::Ontology(osrs::BuildSnomedLikeOntology(options));
  }();
  return *onto;
}

osrs::CoverageGraph BuildGraph(int num_pairs) {
  const osrs::Ontology& onto = SharedOntology();
  osrs::Rng rng(static_cast<uint64_t>(num_pairs));
  std::vector<osrs::ConceptSentimentPair> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs));
  for (int i = 0; i < num_pairs; ++i) {
    auto c = static_cast<osrs::ConceptId>(
        1 + rng.NextZipf(onto.num_concepts() - 1, 1.05));
    pairs.push_back({c, rng.NextDouble(-1, 1)});
  }
  osrs::PairDistance distance(&onto, 0.5);
  return osrs::CoverageGraph::BuildForPairs(distance, pairs);
}

void BM_GreedyEager(benchmark::State& state) {
  osrs::CoverageGraph graph = BuildGraph(static_cast<int>(state.range(0)));
  osrs::GreedySummarizer greedy;
  for (auto _ : state) {
    auto result = greedy.Summarize(graph, 10);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}

void BM_GreedyLazy(benchmark::State& state) {
  osrs::CoverageGraph graph = BuildGraph(static_cast<int>(state.range(0)));
  osrs::GreedyOptions options;
  options.heap = osrs::GreedyOptions::Heap::kLazy;
  osrs::GreedySummarizer greedy(options);
  for (auto _ : state) {
    auto result = greedy.Summarize(graph, 10);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}

}  // namespace

BENCHMARK(BM_GreedyEager)->Arg(200)->Arg(400)->Arg(800)->Arg(1600);
BENCHMARK(BM_GreedyLazy)->Arg(200)->Arg(400)->Arg(800)->Arg(1600);

BENCHMARK_MAIN();
