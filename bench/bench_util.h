#ifndef OSRS_BENCH_BENCH_UTIL_H_
#define OSRS_BENCH_BENCH_UTIL_H_

// Shared driver of the quantitative experiment binaries (Figs. 4 and 5):
// run ILP / RR / Greedy over a sample of doctor items at every granularity
// and k, and aggregate average cost and time. Instance sizes are capped so
// the bundled simplex (the Gurobi stand-in, see DESIGN.md) stays fast; the
// caps are printed so runs are self-describing.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/distance.h"
#include "core/model.h"
#include "coverage/item_graph.h"
#include "datagen/corpus.h"
#include "obs/metrics.h"
#include "obs/solver_stats.h"
#include "obs/trace.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/randomized_rounding.h"
#include "solver/summarizer.h"

namespace osrs::bench {

/// Opt-in telemetry for the table/figure bench binaries: construct one from
/// main's (argc, argv). When --stats is on the command line the session
/// enables the metrics registry and installs a trace on the main thread;
/// its destructor prints the per-phase breakdown and the registry to
/// stderr (the paper-style tables on stdout stay clean). Without --stats
/// — or with -DOSRS_OBS=OFF, which it reports — it does nothing.
class StatsSession {
 public:
  StatsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--stats") enabled_ = true;
    }
    if (!enabled_) return;
    obs::MetricsRegistry::Global().SetEnabled(true);
    scope_ = std::make_unique<obs::Tracer::Scope>(&trace_);
  }
  ~StatsSession() {
    if (!enabled_) return;
    scope_.reset();
    if (!obs::kCompiledIn) {
      std::fprintf(stderr,
                   "--stats: telemetry compiled out (-DOSRS_OBS=OFF)\n");
      return;
    }
    obs::SolverStats stats = obs::SolverStats::FromTrace(trace_);
    std::fprintf(stderr, "--- solver phase breakdown (--stats) ---\n%s",
                 stats.ToText("  ").c_str());
    std::fprintf(stderr, "--- metrics registry ---\n%s",
                 obs::MetricsRegistry::Global().ToText().c_str());
  }
  StatsSession(const StatsSession&) = delete;
  StatsSession& operator=(const StatsSession&) = delete;

 private:
  bool enabled_ = false;
  obs::SolveTrace trace_;
  std::unique_ptr<obs::Tracer::Scope> scope_;
};

/// Uniform JSON report emitter for the bench binaries. Every report opens
/// with "bench":<name> and "hardware_threads":<n> — the two fields a
/// reader (or CI) needs to identify the experiment and gate scaling
/// expectations on the host — then appends fields in call order. String
/// keys and values go through JsonEscape; Raw splices pre-rendered JSON
/// (arrays, nested objects, values needing a specific precision) verbatim.
/// Output stays compact ("key":value, no spaces) so the ci.sh greps over
/// report files keep matching.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string_view bench_name)
      : json_(StrFormat("{\"bench\":\"%s\",\"hardware_threads\":%u",
                        JsonEscape(bench_name).c_str(),
                        std::max(1u, std::thread::hardware_concurrency()))) {}

  void Bool(std::string_view key, bool value) {
    Raw(key, value ? "true" : "false");
  }
  void Int(std::string_view key, int64_t value) {
    Raw(key, StrFormat("%lld", static_cast<long long>(value)));
  }
  void Double(std::string_view key, double value) {
    Raw(key, StrFormat("%.6g", value));
  }
  void Str(std::string_view key, std::string_view value) {
    Raw(key, StrFormat("\"%s\"", JsonEscape(value).c_str()));
  }
  void Raw(std::string_view key, std::string_view raw_json) {
    json_ += ",\"";
    json_ += JsonEscape(key);
    json_ += "\":";
    json_ += raw_json;
  }

  /// The closed object, newline-terminated.
  std::string Finish() const { return json_ + "}\n"; }

  /// Writes the finished report to `path` and prints the standard
  /// "<tool>: wrote <path>" line (or a stderr diagnostic). Returns false
  /// on any I/O failure so mains can exit 2 uniformly.
  bool WriteFile(const std::string& path, const char* tool) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", tool, path.c_str());
      return false;
    }
    std::string report = Finish();
    size_t written = std::fwrite(report.data(), 1, report.size(), out);
    std::fclose(out);
    if (written != report.size()) {
      std::fprintf(stderr, "%s: short write to %s\n", tool, path.c_str());
      return false;
    }
    std::printf("%s: wrote %s\n", tool, path.c_str());
    return true;
  }

 private:
  std::string json_;
};

struct QuantitativeConfig {
  double epsilon = 0.5;  // the paper's elbow-selected threshold (§5.3)
  std::vector<int> k_values = {2, 4, 6, 8, 10};
  /// Whole reviews are kept per item until this many pairs are reached.
  size_t pair_budget = 250;
};

/// Average metric value per (granularity, algorithm, k).
struct QuantitativeResults {
  std::vector<int> k_values;
  /// [granularity][algorithm name] -> one value per k.
  std::map<SummaryGranularity,
           std::map<std::string, std::vector<double>>> avg_cost;
  std::map<SummaryGranularity,
           std::map<std::string, std::vector<double>>> avg_time_ms;
  /// End-to-end wall clock of the sweep (one Stopwatch::ElapsedNanos read).
  double total_wall_ms = 0.0;
};

inline QuantitativeResults RunQuantitative(
    const Corpus& corpus, const std::vector<const Item*>& items,
    const QuantitativeConfig& config) {
  Stopwatch total_watch;
  QuantitativeResults results;
  results.k_values = config.k_values;
  PairDistance distance(&corpus.ontology, config.epsilon);

  IlpSummarizer ilp;
  RandomizedRoundingSummarizer rr;
  GreedySummarizer greedy;
  std::vector<Summarizer*> algorithms{&ilp, &rr, &greedy};

  for (SummaryGranularity granularity :
       {SummaryGranularity::kPairs, SummaryGranularity::kSentences,
        SummaryGranularity::kReviews}) {
    auto& cost_table = results.avg_cost[granularity];
    auto& time_table = results.avg_time_ms[granularity];
    for (Summarizer* algorithm : algorithms) {
      cost_table[algorithm->name()].assign(config.k_values.size(), 0.0);
      time_table[algorithm->name()].assign(config.k_values.size(), 0.0);
    }
    for (const Item* item : items) {
      Item capped = TruncateToPairBudget(*item, config.pair_budget);
      ItemGraph item_graph = BuildItemGraph(distance, capped, granularity);
      for (size_t ki = 0; ki < config.k_values.size(); ++ki) {
        int k = std::min(config.k_values[ki],
                         item_graph.graph.num_candidates());
        for (Summarizer* algorithm : algorithms) {
          auto result = algorithm->Summarize(item_graph.graph, k);
          OSRS_CHECK_MSG(result.ok(), algorithm->name()
                                          << ": "
                                          << result.status().ToString());
          cost_table[algorithm->name()][ki] +=
              result->cost / static_cast<double>(items.size());
          time_table[algorithm->name()][ki] +=
              result->seconds * 1e3 / static_cast<double>(items.size());
        }
      }
    }
  }
  results.total_wall_ms = total_watch.ElapsedMillis();
  return results;
}

/// Pointers to the first `limit` items of a corpus.
inline std::vector<const Item*> SampleItems(const Corpus& corpus,
                                            size_t limit) {
  std::vector<const Item*> items;
  for (const Item& item : corpus.items) {
    if (items.size() >= limit) break;
    items.push_back(&item);
  }
  return items;
}

}  // namespace osrs::bench

#endif  // OSRS_BENCH_BENCH_UTIL_H_
