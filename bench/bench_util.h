#ifndef OSRS_BENCH_BENCH_UTIL_H_
#define OSRS_BENCH_BENCH_UTIL_H_

// Shared driver of the quantitative experiment binaries (Figs. 4 and 5):
// run ILP / RR / Greedy over a sample of doctor items at every granularity
// and k, and aggregate average cost and time. Instance sizes are capped so
// the bundled simplex (the Gurobi stand-in, see DESIGN.md) stays fast; the
// caps are printed so runs are self-describing.

#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/distance.h"
#include "core/model.h"
#include "coverage/item_graph.h"
#include "datagen/corpus.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/randomized_rounding.h"
#include "solver/summarizer.h"

namespace osrs::bench {

struct QuantitativeConfig {
  double epsilon = 0.5;  // the paper's elbow-selected threshold (§5.3)
  std::vector<int> k_values = {2, 4, 6, 8, 10};
  /// Whole reviews are kept per item until this many pairs are reached.
  size_t pair_budget = 250;
};

/// Average metric value per (granularity, algorithm, k).
struct QuantitativeResults {
  std::vector<int> k_values;
  /// [granularity][algorithm name] -> one value per k.
  std::map<SummaryGranularity,
           std::map<std::string, std::vector<double>>> avg_cost;
  std::map<SummaryGranularity,
           std::map<std::string, std::vector<double>>> avg_time_ms;
};

inline QuantitativeResults RunQuantitative(
    const Corpus& corpus, const std::vector<const Item*>& items,
    const QuantitativeConfig& config) {
  QuantitativeResults results;
  results.k_values = config.k_values;
  PairDistance distance(&corpus.ontology, config.epsilon);

  IlpSummarizer ilp;
  RandomizedRoundingSummarizer rr;
  GreedySummarizer greedy;
  std::vector<Summarizer*> algorithms{&ilp, &rr, &greedy};

  for (SummaryGranularity granularity :
       {SummaryGranularity::kPairs, SummaryGranularity::kSentences,
        SummaryGranularity::kReviews}) {
    auto& cost_table = results.avg_cost[granularity];
    auto& time_table = results.avg_time_ms[granularity];
    for (Summarizer* algorithm : algorithms) {
      cost_table[algorithm->name()].assign(config.k_values.size(), 0.0);
      time_table[algorithm->name()].assign(config.k_values.size(), 0.0);
    }
    for (const Item* item : items) {
      Item capped = TruncateToPairBudget(*item, config.pair_budget);
      ItemGraph item_graph = BuildItemGraph(distance, capped, granularity);
      for (size_t ki = 0; ki < config.k_values.size(); ++ki) {
        int k = std::min(config.k_values[ki],
                         item_graph.graph.num_candidates());
        for (Summarizer* algorithm : algorithms) {
          auto result = algorithm->Summarize(item_graph.graph, k);
          OSRS_CHECK_MSG(result.ok(), algorithm->name()
                                          << ": "
                                          << result.status().ToString());
          cost_table[algorithm->name()][ki] +=
              result->cost / static_cast<double>(items.size());
          time_table[algorithm->name()][ki] +=
              result->seconds * 1e3 / static_cast<double>(items.size());
        }
      }
    }
  }
  return results;
}

/// Pointers to the first `limit` items of a corpus.
inline std::vector<const Item*> SampleItems(const Corpus& corpus,
                                            size_t limit) {
  std::vector<const Item*> items;
  for (const Item& item : corpus.items) {
    if (items.size() >= limit) break;
    items.push_back(&item);
  }
  return items;
}

}  // namespace osrs::bench

#endif  // OSRS_BENCH_BENCH_UTIL_H_
