// Serving-layer overload benchmark: how SummaryServer behaves when offered
// load crosses solve capacity. The harness first measures serial solve cost
// to estimate capacity (requests/s the worker pool can actually clear),
// then drives open-loop client threads at 1x, 2x, and 4x that rate and
// reports, per level: offered vs completed throughput, p50/p90/p99 total
// latency, and the shed / rejected / degraded shares. The acceptance story
// is that p99 stays bounded at 4x — admission control and deadline-aware
// shedding turn overload into fast kResourceExhausted answers instead of an
// unbounded queue.
//
// Every request carries a deadline of kDeadlineFactor x the measured mean
// solve cost and bypasses the exact-hit cache (a cache-hot benchmark would
// measure the cache, not the server), so at 4x the queue cannot hide
// behind memoization.
//
// --smoke shrinks the corpus and the measurement windows and is the chaos
// soak ci.sh runs under an OSRS_FAILPOINTS schedule (the registry parses
// the environment variable on first use): whatever is injected, the
// process must stay alive and the accounting identities must hold —
//   submitted == admitted + rejected
//   admitted  == completed + shed + failed       (after drain)
// A violation exits 1.
//
// Usage: bench_serve [--smoke] [--out=BENCH_serve.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "datagen/cellphone_corpus.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "ontology/ontology.h"
#include "serve/server.h"

namespace osrs::bench {
namespace {

using serve::ServeOutcome;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServerCounters;
using serve::SummaryServer;

/// Request deadline as a multiple of the measured mean solve cost: wide
/// enough that a healthy server never trips it, tight enough that a 4x
/// backlog does.
constexpr double kDeadlineFactor = 3.0;

/// What one load level did, merged across clients.
struct LevelResult {
  double multiplier = 0.0;
  double offered_rps = 0.0;
  double duration_s = 0.0;
  int64_t issued = 0;
  int64_t ok = 0;        // OK status (solved / coalesced / degraded / hit)
  int64_t degraded = 0;
  int64_t turned_away = 0;  // kRejected + kShed
  int64_t failed = 0;       // injected faults surfacing as errors
  obs::HistogramSnapshot latency_ms{
      {0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}};

  std::string ToJson() const {
    double completed_rps = duration_s > 0
                               ? static_cast<double>(ok) / duration_s
                               : 0.0;
    return StrFormat(
        "{\"multiplier\":%.3g,\"offered_rps\":%.4g,\"completed_rps\":%.4g,"
        "\"issued\":%lld,\"ok\":%lld,\"degraded\":%lld,"
        "\"turned_away\":%lld,\"failed\":%lld,"
        "\"latency_ms\":{\"p50\":%.4g,\"p90\":%.4g,\"p99\":%.4g}}",
        multiplier, offered_rps, completed_rps, static_cast<long long>(issued),
        static_cast<long long>(ok), static_cast<long long>(degraded),
        static_cast<long long>(turned_away), static_cast<long long>(failed),
        latency_ms.Quantile(0.5), latency_ms.Quantile(0.9),
        latency_ms.Quantile(0.99));
  }
};

/// Drives `offered_rps` at the server from `num_clients` open-loop threads
/// for `duration_s` seconds. Each client keeps its own arrival schedule;
/// when Serve() blocks past the next slot the client fires immediately —
/// lateness becomes queue pressure, which is the point of the benchmark.
LevelResult RunLevel(SummaryServer& server, const std::vector<Item>& items,
                     double multiplier, double offered_rps, double duration_s,
                     int num_clients, double deadline_ms) {
  LevelResult level;
  level.multiplier = multiplier;
  level.offered_rps = offered_rps;
  level.duration_s = duration_s;

  std::mutex merge_mutex;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  const double interval_s =
      static_cast<double>(num_clients) / std::max(offered_rps, 1e-9);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x5e12feULL + static_cast<uint64_t>(c) * 977);
      LevelResult local;
      Stopwatch clock;
      double next_arrival_s = interval_s * static_cast<double>(c) /
                              static_cast<double>(num_clients);
      while (true) {
        double now_s = clock.ElapsedSeconds();
        if (now_s >= duration_s) break;
        if (now_s < next_arrival_s) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(next_arrival_s - now_s, duration_s - now_s)));
          continue;
        }
        next_arrival_s += interval_s;

        ServeRequest request;
        request.item_id =
            items[rng.NextUint64(items.size())].id;
        // Spread k so not every collision coalesces: the benchmark should
        // measure the queue under distinct work, not only the single-flight
        // fan-out (which counters still report).
        request.k = 3 + static_cast<int>(rng.NextUint64(6));
        request.deadline_ms = deadline_ms;
        request.bypass_cache = true;
        ServeResponse response = server.Serve(request);

        ++local.issued;
        local.latency_ms.Observe(response.total_ms);
        if (response.status.ok()) {
          ++local.ok;
          if (response.degraded) ++local.degraded;
        } else if (response.outcome == ServeOutcome::kRejected ||
                   response.outcome == ServeOutcome::kShed) {
          ++local.turned_away;
        } else {
          ++local.failed;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      level.issued += local.issued;
      level.ok += local.ok;
      level.degraded += local.degraded;
      level.turned_away += local.turned_away;
      level.failed += local.failed;
      for (size_t i = 0; i < local.latency_ms.counts.size(); ++i) {
        level.latency_ms.counts[i] += local.latency_ms.counts[i];
      }
      level.latency_ms.total_count += local.latency_ms.total_count;
      level.latency_ms.sum += local.latency_ms.sum;
    });
  }
  for (std::thread& client : clients) client.join();
  return level;
}

bool CheckAccounting(const ServerCounters& c, std::string* error) {
  if (c.submitted != c.admitted + c.rejected) {
    *error = StrFormat("submitted %lld != admitted %lld + rejected %lld",
                       static_cast<long long>(c.submitted),
                       static_cast<long long>(c.admitted),
                       static_cast<long long>(c.rejected));
    return false;
  }
  if (c.admitted != c.completed + c.shed + c.failed) {
    *error = StrFormat(
        "admitted %lld != completed %lld + shed %lld + failed %lld",
        static_cast<long long>(c.admitted),
        static_cast<long long>(c.completed), static_cast<long long>(c.shed),
        static_cast<long long>(c.failed));
    return false;
  }
  return true;
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) {
  using namespace osrs;
  using namespace osrs::bench;

  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--out=path]\n");
      return 2;
    }
  }

  obs::MetricsRegistry::Global().SetEnabled(true);
  // Touch the registry so an OSRS_FAILPOINTS schedule (the ci.sh chaos
  // soak) is armed before the warmup measures anything.
  fault::FailpointRegistry::Global();

  const double corpus_scale = smoke ? 0.05 : 0.2;
  const double level_duration_s = smoke ? 1.0 : 4.0;
  const int num_clients = smoke ? 8 : 16;

  // The Table 1 synthetic corpus at reduced scale: items heavy enough
  // (hundreds of pairs) that a solve costs real milliseconds, so the load
  // levels mean something.
  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = corpus_scale;
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  Ontology onto = std::move(corpus.ontology);
  std::vector<Item> items = std::move(corpus.items);
  const int num_items = static_cast<int>(items.size());

  serve::ServeOptions options;
  options.summarizer.collect_stats = false;
  options.max_queue_depth = 64;
  options.min_cost_samples = 8;
  SummaryServer server(&onto, items, options);

  // Capacity estimate: serial, cache-bypassing solves of every item.
  Stopwatch warmup;
  int warmup_requests = 0;
  for (int round = 0; round < (smoke ? 3 : 4); ++round) {
    for (const Item& item : items) {
      ServeRequest request;
      request.item_id = item.id;
      request.bypass_cache = true;
      ServeResponse response = server.Serve(request);
      ++warmup_requests;
      if (!response.status.ok() && response.outcome != ServeOutcome::kFailed) {
        std::fprintf(stderr, "bench_serve: warmup rejected: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
    }
  }
  const double mean_solve_ms =
      warmup.ElapsedMillis() / static_cast<double>(warmup_requests);
  const double capacity_rps =
      static_cast<double>(server.num_workers()) * 1000.0 /
      std::max(mean_solve_ms, 1e-3);
  const double deadline_ms = std::max(kDeadlineFactor * mean_solve_ms, 5.0);
  std::printf(
      "bench_serve: %d items, %d workers, mean solve %.3f ms, "
      "capacity ~%.0f req/s, per-request deadline %.1f ms\n",
      num_items, server.num_workers(), mean_solve_ms, capacity_rps,
      deadline_ms);

  std::vector<LevelResult> levels;
  for (double multiplier : {1.0, 2.0, 4.0}) {
    LevelResult level =
        RunLevel(server, items, multiplier, capacity_rps * multiplier,
                 level_duration_s, num_clients, deadline_ms);
    std::printf(
        "  %.0fx: offered %.0f req/s -> issued %lld, ok %lld "
        "(%lld degraded), turned away %lld, failed %lld, "
        "p50 %.2f ms, p99 %.2f ms\n",
        multiplier, level.offered_rps, static_cast<long long>(level.issued),
        static_cast<long long>(level.ok),
        static_cast<long long>(level.degraded),
        static_cast<long long>(level.turned_away),
        static_cast<long long>(level.failed),
        level.latency_ms.Quantile(0.5), level.latency_ms.Quantile(0.99));
    levels.push_back(std::move(level));
  }

  server.Stop();  // drain so the second identity is checkable
  ServerCounters counters = server.counters();
  std::string violation;
  bool accounting_ok = CheckAccounting(counters, &violation);

  BenchJsonWriter writer("serve");
  writer.Bool("failpoints_compiled_in", fault::kCompiledIn);
  writer.Bool("smoke", smoke);
  writer.Int("workers", server.num_workers());
  writer.Int("items", num_items);
  writer.Raw("mean_solve_ms", StrFormat("%.4g", mean_solve_ms));
  writer.Raw("capacity_rps", StrFormat("%.4g", capacity_rps));
  writer.Raw("deadline_ms", StrFormat("%.4g", deadline_ms));
  std::string level_array = "[";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) level_array += ',';
    level_array += levels[i].ToJson();
  }
  level_array += ']';
  writer.Raw("levels", level_array);
  writer.Raw("counters", counters.ToJson());
  writer.Bool("accounting_ok", accounting_ok);
  if (!writer.WriteFile(out_path, "bench_serve")) return 2;

  if (!accounting_ok) {
    std::fprintf(stderr, "bench_serve: ACCOUNTING VIOLATION: %s\n",
                 violation.c_str());
    return 1;
  }
  std::printf("bench_serve: accounting identities hold (%lld requests)\n",
              static_cast<long long>(counters.submitted));
  return 0;
}
