// Micro-benchmarks of the LP substrate (the Gurobi stand-in): revised
// simplex on §4.2 k-median relaxations of growing size, and the full
// branch-and-bound ILP. Iteration counts ride along in the JSON so solver
// regressions are visible beyond wall-clock noise.
//
// Usage:
//   bench_lp_micro [--smoke] [--stats] [--out=BENCH_lp_micro.json]

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "lp/mip.h"
#include "lp/simplex.h"
#include "ontology/snomed_like.h"
#include "solver/kmedian_model.h"

namespace osrs::bench {
namespace {

const Ontology& SharedOntology() {
  static const Ontology* onto = [] {
    SnomedLikeOptions options;
    options.num_concepts = 1500;
    return new Ontology(BuildSnomedLikeOntology(options));
  }();
  return *onto;
}

CoverageGraph BuildGraph(int num_pairs) {
  Rng rng(static_cast<uint64_t>(num_pairs) * 7 + 3);
  std::vector<ConceptSentimentPair> pairs;
  for (int i = 0; i < num_pairs; ++i) {
    auto c = static_cast<ConceptId>(
        1 + rng.NextZipf(SharedOntology().num_concepts() - 1, 1.05));
    pairs.push_back({c, rng.NextDouble(-1, 1)});
  }
  PairDistance distance(&SharedOntology(), 0.5);
  return CoverageGraph::BuildForPairs(distance, pairs);
}

/// Best-of-N wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

struct LpPoint {
  int num_pairs = 0;
  int rows = 0;
  int cols = 0;
  int64_t simplex_iters = 0;
  double ms = 0.0;
};

struct IlpPoint {
  int num_pairs = 0;
  int64_t bnb_nodes = 0;
  double ms = 0.0;
};

int Run(int argc, char** argv) {
  StatsSession stats(argc, argv);
  bool smoke = false;
  std::string out_path = "BENCH_lp_micro.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--stats") {
      // handled by StatsSession
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr,
                   "usage: bench_lp_micro [--smoke] [--stats] [--out=PATH]\n");
      return 2;
    }
  }

  const int reps = smoke ? 1 : 3;
  std::vector<int> lp_sizes =
      smoke ? std::vector<int>{50} : std::vector<int>{50, 100, 200, 300};
  std::vector<int> ilp_sizes =
      smoke ? std::vector<int>{50} : std::vector<int>{50, 100, 200};

  std::printf("%-24s %6s %6s %8s %12s %10s\n", "case", "pairs", "rows", "cols",
              "iters/nodes", "time");
  std::vector<LpPoint> lp_points;
  for (int size : lp_sizes) {
    CoverageGraph graph = BuildGraph(size);
    KMedianModel model = BuildKMedianModel(graph, /*k=*/5,
                                           /*integral_x=*/false);
    LpPoint point;
    point.num_pairs = size;
    point.rows = model.problem.num_constraints();
    point.cols = model.problem.num_variables();
    point.ms = TimeMs(reps, [&]() {
      RevisedSimplex simplex;
      LpSolution solution = simplex.Solve(model.problem);
      point.simplex_iters = solution.iterations;
    });
    std::printf("%-24s %6d %6d %8d %12lld %8.2fms\n", "kmedian_lp_relaxation",
                point.num_pairs, point.rows, point.cols,
                static_cast<long long>(point.simplex_iters), point.ms);
    lp_points.push_back(point);
  }

  std::vector<IlpPoint> ilp_points;
  for (int size : ilp_sizes) {
    CoverageGraph graph = BuildGraph(size);
    IlpPoint point;
    point.num_pairs = size;
    point.ms = TimeMs(reps, [&]() {
      KMedianModel model = BuildKMedianModel(graph, /*k=*/5,
                                             /*integral_x=*/true);
      MipOptions options;
      options.objective_is_integral = model.integral_costs;
      MipSolver solver(options);
      MipSolution solution = solver.Solve(std::move(model.problem));
      point.bnb_nodes = solution.nodes;
    });
    std::printf("%-24s %6d %6s %8s %12lld %8.2fms\n", "kmedian_ilp",
                point.num_pairs, "-", "-",
                static_cast<long long>(point.bnb_nodes), point.ms);
    ilp_points.push_back(point);
  }

  BenchJsonWriter writer("lp_micro");
  writer.Bool("smoke", smoke);
  {
    std::string lp_json = "[";
    for (size_t i = 0; i < lp_points.size(); ++i) {
      const LpPoint& p = lp_points[i];
      if (i > 0) lp_json += ',';
      lp_json += StrFormat(
          "{\"num_pairs\":%d,\"rows\":%d,\"cols\":%d,"
          "\"simplex_iters\":%lld,\"ms\":%.3f}",
          p.num_pairs, p.rows, p.cols,
          static_cast<long long>(p.simplex_iters), p.ms);
    }
    writer.Raw("lp_relaxation", lp_json + "]");
  }
  {
    std::string ilp_json = "[";
    for (size_t i = 0; i < ilp_points.size(); ++i) {
      const IlpPoint& p = ilp_points[i];
      if (i > 0) ilp_json += ',';
      ilp_json += StrFormat("{\"num_pairs\":%d,\"bnb_nodes\":%lld,\"ms\":%.3f}",
                            p.num_pairs,
                            static_cast<long long>(p.bnb_nodes), p.ms);
    }
    writer.Raw("ilp", ilp_json + "]");
  }
  if (!writer.WriteFile(out_path, "bench_lp_micro")) return 2;
  return 0;
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) { return osrs::bench::Run(argc, argv); }
