// Micro-benchmarks of the LP substrate (the Gurobi stand-in): revised
// simplex on §4.2 k-median relaxations of growing size, and the full
// branch-and-bound ILP. Iteration counts surface as counters so solver
// regressions are visible beyond wall-clock noise.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "lp/mip.h"
#include "lp/simplex.h"
#include "ontology/snomed_like.h"
#include "solver/kmedian_model.h"

namespace {

const osrs::Ontology& SharedOntology() {
  static const osrs::Ontology* onto = [] {
    osrs::SnomedLikeOptions options;
    options.num_concepts = 1500;
    return new osrs::Ontology(osrs::BuildSnomedLikeOntology(options));
  }();
  return *onto;
}

osrs::CoverageGraph BuildGraph(int num_pairs) {
  osrs::Rng rng(static_cast<uint64_t>(num_pairs) * 7 + 3);
  std::vector<osrs::ConceptSentimentPair> pairs;
  for (int i = 0; i < num_pairs; ++i) {
    auto c = static_cast<osrs::ConceptId>(
        1 + rng.NextZipf(SharedOntology().num_concepts() - 1, 1.05));
    pairs.push_back({c, rng.NextDouble(-1, 1)});
  }
  osrs::PairDistance distance(&SharedOntology(), 0.5);
  return osrs::CoverageGraph::BuildForPairs(distance, pairs);
}

void BM_KMedianLpRelaxation(benchmark::State& state) {
  osrs::CoverageGraph graph = BuildGraph(static_cast<int>(state.range(0)));
  osrs::KMedianModel model =
      osrs::BuildKMedianModel(graph, /*k=*/5, /*integral_x=*/false);
  int64_t iterations = 0;
  for (auto _ : state) {
    osrs::RevisedSimplex simplex;
    osrs::LpSolution solution = simplex.Solve(model.problem);
    iterations = solution.iterations;
    benchmark::DoNotOptimize(solution);
  }
  state.counters["rows"] = static_cast<double>(model.problem.num_constraints());
  state.counters["cols"] = static_cast<double>(model.problem.num_variables());
  state.counters["simplex_iters"] = static_cast<double>(iterations);
}

void BM_KMedianIlp(benchmark::State& state) {
  osrs::CoverageGraph graph = BuildGraph(static_cast<int>(state.range(0)));
  int64_t nodes = 0;
  for (auto _ : state) {
    osrs::KMedianModel model =
        osrs::BuildKMedianModel(graph, /*k=*/5, /*integral_x=*/true);
    osrs::MipOptions options;
    options.objective_is_integral = model.integral_costs;
    osrs::MipSolver solver(options);
    osrs::MipSolution solution = solver.Solve(std::move(model.problem));
    nodes = solution.nodes;
    benchmark::DoNotOptimize(solution);
  }
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
}

}  // namespace

BENCHMARK(BM_KMedianLpRelaxation)->Arg(50)->Arg(100)->Arg(200)->Arg(300);
BENCHMARK(BM_KMedianIlp)->Arg(50)->Arg(100)->Arg(200);

BENCHMARK_MAIN();
