// Reproduces Fig. 4: elapsed time of ILP vs RR vs Greedy with threshold
// eps = 0.5, for the top-pairs, top-sentences and top-reviews problems on
// the doctor corpus, as k grows.
//
// Paper shape to reproduce: Greedy is always the fastest by a wide margin
// (19-63x vs ILP in the paper, larger here because the bundled
// branch-and-bound replaces Gurobi and the greedy heap is cheap); RR is
// never slower than ILP (it solves only the LP relaxation); time grows
// from top pairs to top sentences/reviews as the graphs get denser.
//
// On top of the figure, the binary micro-benchmarks this PR's two
// vectorized kernels at 20k+ pairs against faithful re-implementations of
// the pre-SoA scalar path (AoS {int,double} edges, sequential double
// accumulation; linear |ds| <= eps bucket scans), plus the end-to-end
// greedy solver under the scalar and SIMD backends.
//
// Usage:
//   bench_fig4_time [--smoke] [--stats] [--out=BENCH_solver.json]
//
// The stdout tables keep the paper shape; the --out JSON carries the
// machine-readable timings (per-granularity averages and the kernel
// speedups) for the trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "coverage/coverage_graph.h"
#include "datagen/doctor_corpus.h"
#include "ontology/snomed_like.h"

namespace osrs::bench {
namespace {

/// Best-of-N wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

// ---------------------------------------------------------------------------
// Pre-PR gain kernel, reproduced faithfully: AoS edges ({int, double},
// 16 bytes vs the SoA lanes' 8), a double best[] image, and the sequential
// double accumulation the old GainOf loop performed.

struct BaselineEdge {
  int endpoint;
  double weight;
};

struct BaselineGraph {
  std::vector<size_t> offsets;
  std::vector<BaselineEdge> edges;
  std::vector<double> best;     // root-distance image
  std::vector<double> weights;  // target multiplicities (all 1 here)
};

BaselineGraph MakeBaseline(const CoverageGraph& graph) {
  BaselineGraph base;
  base.offsets.reserve(static_cast<size_t>(graph.num_candidates()) + 1);
  base.offsets.push_back(0);
  base.edges.reserve(graph.num_edges());
  for (int u = 0; u < graph.num_candidates(); ++u) {
    CoverageGraph::EdgeLanes lanes = graph.ForwardLanesOf(u);
    for (size_t i = 0; i < lanes.size; ++i) {
      base.edges.push_back({lanes.endpoint[i],
                            static_cast<double>(lanes.distance[i])});
    }
    base.offsets.push_back(base.edges.size());
  }
  base.best.resize(static_cast<size_t>(graph.num_targets()));
  base.weights.resize(static_cast<size_t>(graph.num_targets()));
  for (int w = 0; w < graph.num_targets(); ++w) {
    base.best[static_cast<size_t>(w)] = graph.root_distance(w);
    base.weights[static_cast<size_t>(w)] = graph.target_weight(w);
  }
  return base;
}

double BaselineGainOf(const BaselineGraph& base, int u) {
  double total = 0.0;
  for (size_t i = base.offsets[static_cast<size_t>(u)];
       i < base.offsets[static_cast<size_t>(u) + 1]; ++i) {
    const BaselineEdge& e = base.edges[i];
    double improvement = base.best[static_cast<size_t>(e.endpoint)] - e.weight;
    if (improvement > 0.0) {
      total += improvement * base.weights[static_cast<size_t>(e.endpoint)];
    }
  }
  return total;
}

/// The 20k+-pair kernel dataset: Zipf concept draws over a SNOMED-like
/// ontology with grid sentiments, same recipe as bench_coverage_build.
CoverageGraph MakeKernelGraph(size_t num_pairs, int num_concepts) {
  SnomedLikeOptions options;
  options.num_concepts = num_concepts;
  // The graph is a self-contained CSR once built; the ontology is only
  // borrowed during construction, so it can live on this frame.
  Ontology onto = BuildSnomedLikeOntology(options);
  Rng rng(20260808);
  std::vector<ConceptSentimentPair> pairs;
  pairs.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    ConceptId c = static_cast<ConceptId>(
        1 + rng.NextZipf(static_cast<uint64_t>(onto.num_concepts()) - 1,
                         0.8));
    double s = -1.0 + 0.0625 * static_cast<double>(rng.NextUint64(33));
    pairs.push_back({c, s});
  }
  PairDistance distance(&onto, 0.5);
  return CoverageGraph::BuildForPairs(distance, pairs);
}

struct KernelResults {
  size_t num_pairs = 0;
  size_t num_edges = 0;
  double gain_baseline_ms = 0.0;
  double gain_simd_ms = 0.0;
  double eps_baseline_ms = 0.0;
  double eps_simd_ms = 0.0;
  double greedy_scalar_ms = 0.0;
  double greedy_simd_ms = 0.0;
};

KernelResults RunKernelBench(size_t num_pairs, int reps) {
  KernelResults out;
  out.num_pairs = num_pairs;
  CoverageGraph graph = MakeKernelGraph(num_pairs, 2000);
  out.num_edges = graph.num_edges();

  // --- Greedy gain kernel: one full scoring pass over every candidate
  // (exactly the heap-initialization workload of Algorithm 2).
  BaselineGraph base = MakeBaseline(graph);
  double baseline_sum = 0.0;
  out.gain_baseline_ms = TimeMs(reps, [&]() {
    double total = 0.0;
    for (int u = 0; u < graph.num_candidates(); ++u) {
      total += BaselineGainOf(base, u);
    }
    baseline_sum = total;
  });
  std::vector<float> best_f32(graph.root_distances_f32(),
                              graph.root_distances_f32() +
                                  graph.num_targets());
  double simd_sum = 0.0;
  out.gain_simd_ms = TimeMs(reps, [&]() {
    double total = 0.0;
    for (int u = 0; u < graph.num_candidates(); ++u) {
      CoverageGraph::EdgeLanes lanes = graph.ForwardLanesOf(u);
      total += simd::GainReduce(lanes.endpoint, lanes.distance, lanes.size,
                                best_f32.data(),
                                graph.target_weights_or_null());
    }
    simd_sum = total;
  });
  // Integral hop distances: both paths must agree exactly.
  OSRS_CHECK_MSG(baseline_sum == simd_sum,
                 "gain kernel disagreement: baseline " << baseline_sum
                                                       << " vs " << simd_sum);

  // --- Sentiment eps-window scan: the builder's per-(target, bucket)
  // predicate, pre-PR form (linear double scan) vs the masked kernel, over
  // windows the size of a popular concept bucket.
  std::vector<double> sentiments(num_pairs);
  Rng srng(7);
  for (auto& s : sentiments) {
    s = -1.0 + 0.0625 * static_cast<double>(srng.NextUint64(33));
  }
  std::sort(sentiments.begin(), sentiments.end());
  const double eps = 0.5;
  std::vector<double> centers(256);
  for (auto& c : centers) c = srng.NextDouble(-1.0, 1.0);
  size_t baseline_hits = 0;
  out.eps_baseline_ms = TimeMs(reps, [&]() {
    size_t hits = 0;
    for (double center : centers) {
      for (double s : sentiments) {
        if (std::abs(s - center) <= eps) ++hits;
      }
    }
    baseline_hits = hits;
  });
  std::vector<uint64_t> mask((num_pairs + 63) / 64);
  size_t simd_hits = 0;
  out.eps_simd_ms = TimeMs(reps, [&]() {
    size_t hits = 0;
    for (double center : centers) {
      hits += simd::EpsWindowMask(sentiments.data(), sentiments.size(),
                                  center, eps, mask.data());
    }
    simd_hits = hits;
  });
  OSRS_CHECK_MSG(baseline_hits == simd_hits,
                 "eps-window disagreement: baseline " << baseline_hits
                                                      << " vs " << simd_hits);

  // --- End-to-end greedy under each backend (same bit-identical result;
  // the delta is pure kernel throughput).
  const int k = 10;
  GreedySummarizer greedy;
  double scalar_cost = 0.0;
  double simd_cost = 0.0;
  {
    simd::ForceBackend(simd::Backend::kScalar);
    out.greedy_scalar_ms = TimeMs(reps, [&]() {
      auto result = greedy.Summarize(graph, k);
      OSRS_CHECK(result.ok());
      scalar_cost = result->cost;
    });
    simd::ResetBackendOverride();
  }
  {
    simd::ForceBackend(simd::Backend::kAvx2);
    out.greedy_simd_ms = TimeMs(reps, [&]() {
      auto result = greedy.Summarize(graph, k);
      OSRS_CHECK(result.ok());
      simd_cost = result->cost;
    });
    simd::ResetBackendOverride();
  }
  OSRS_CHECK_MSG(scalar_cost == simd_cost,
                 "greedy backend disagreement: " << scalar_cost << " vs "
                                                 << simd_cost);
  return out;
}

/// "fig4" object of the JSON report: granularity -> algorithm -> [ms per k].
std::string Fig4Json(const QuantitativeResults& results) {
  std::string out = "{";
  bool first_granularity = true;
  for (const auto& [granularity, table] : results.avg_time_ms) {
    if (!first_granularity) out += ',';
    first_granularity = false;
    out += StrFormat("\"%s\":{", SummaryGranularityToString(granularity));
    bool first_algorithm = true;
    for (const auto& [name, times] : table) {
      if (!first_algorithm) out += ',';
      first_algorithm = false;
      out += StrFormat("\"%s\":[", name.c_str());
      for (size_t i = 0; i < times.size(); ++i) {
        if (i > 0) out += ',';
        out += StrFormat("%.3f", times[i]);
      }
      out += ']';
    }
    out += '}';
  }
  out += '}';
  return out;
}

int Run(int argc, char** argv) {
  StatsSession stats_session(argc, argv);
  bool smoke = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--stats") {
      // handled by StatsSession
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig4_time [--smoke] [--stats] [--out=PATH]\n");
      return 2;
    }
  }

  DoctorCorpusOptions corpus_options;
  corpus_options.scale = smoke ? 0.004 : 0.012;  // 4 / 12 doctors
  corpus_options.ontology_concepts = smoke ? 400 : 2000;
  Corpus corpus = GenerateDoctorCorpus(corpus_options);
  QuantitativeConfig config;
  if (smoke) {
    config.k_values = {2, 4};
    config.pair_budget = 80;
  }
  auto items = SampleItems(corpus, smoke ? 2 : 8);
  std::printf(
      "Figure 4 reproduction: %zu doctors, pair budget %zu/item, eps %.1f\n",
      items.size(), config.pair_budget, config.epsilon);

  QuantitativeResults results = RunQuantitative(corpus, items, config);

  for (auto granularity :
       {SummaryGranularity::kPairs, SummaryGranularity::kSentences,
        SummaryGranularity::kReviews}) {
    TableWriter table(StrFormat(
        "Fig 4 (top %s): avg time per doctor [ms] vs k",
        SummaryGranularityToString(granularity)));
    std::vector<std::string> header{"algorithm"};
    for (int k : results.k_values) header.push_back(StrFormat("k=%d", k));
    table.SetHeader(header);
    for (const auto& [name, times] : results.avg_time_ms[granularity]) {
      table.AddRow(name, times, 3);
    }
    table.Print();
    // Headline speedup at the largest k.
    const auto& t = results.avg_time_ms[granularity];
    double ilp = t.at("ILP").back();
    double rr = t.at("RR").back();
    double greedy = t.at("Greedy").back();
    std::printf("  speedup at k=%d: Greedy %.0fx vs ILP, %.0fx vs RR; "
                "RR %.1fx vs ILP\n",
                results.k_values.back(), ilp / greedy, rr / greedy,
                ilp / rr);
  }

  // Kernel microbenches: 20k pairs full-size (above the SIMD crossovers by
  // two orders of magnitude), 2k for --smoke sanity.
  const size_t kernel_pairs = smoke ? 2000 : 20000;
  const int reps = smoke ? 2 : 5;
  std::printf("\nkernel microbenches (%zu pairs, backend %s):\n", kernel_pairs,
              simd::BackendName(simd::ActiveBackend()));
  KernelResults kernels = RunKernelBench(kernel_pairs, reps);
  std::printf("  greedy gain:    baseline %8.3fms  simd %8.3fms  %5.2fx\n",
              kernels.gain_baseline_ms, kernels.gain_simd_ms,
              kernels.gain_baseline_ms / kernels.gain_simd_ms);
  std::printf("  eps window:     baseline %8.3fms  simd %8.3fms  %5.2fx\n",
              kernels.eps_baseline_ms, kernels.eps_simd_ms,
              kernels.eps_baseline_ms / kernels.eps_simd_ms);
  std::printf("  greedy end2end: scalar   %8.3fms  simd %8.3fms  %5.2fx\n",
              kernels.greedy_scalar_ms, kernels.greedy_simd_ms,
              kernels.greedy_scalar_ms / kernels.greedy_simd_ms);

  BenchJsonWriter writer("solver");
  writer.Bool("smoke", smoke);
  writer.Str("backend", simd::BackendName(simd::ActiveBackend()));
  writer.Bool("avx2_compiled_in", simd::Avx2CompiledIn());
  {
    std::string ks = "[";
    for (size_t i = 0; i < results.k_values.size(); ++i) {
      if (i > 0) ks += ',';
      ks += StrFormat("%d", results.k_values[i]);
    }
    writer.Raw("k_values", ks + "]");
  }
  writer.Raw("fig4_avg_time_ms", Fig4Json(results));
  writer.Double("fig4_total_wall_ms", results.total_wall_ms);
  writer.Raw(
      "kernels",
      StrFormat(
          "{\"num_pairs\":%zu,\"num_edges\":%zu,"
          "\"gain_baseline_ms\":%.3f,\"gain_simd_ms\":%.3f,"
          "\"gain_speedup\":%.2f,"
          "\"eps_window_baseline_ms\":%.3f,\"eps_window_simd_ms\":%.3f,"
          "\"eps_window_speedup\":%.2f,"
          "\"greedy_scalar_ms\":%.3f,\"greedy_simd_ms\":%.3f,"
          "\"greedy_speedup\":%.2f}",
          kernels.num_pairs, kernels.num_edges, kernels.gain_baseline_ms,
          kernels.gain_simd_ms, kernels.gain_baseline_ms / kernels.gain_simd_ms,
          kernels.eps_baseline_ms, kernels.eps_simd_ms,
          kernels.eps_baseline_ms / kernels.eps_simd_ms,
          kernels.greedy_scalar_ms, kernels.greedy_simd_ms,
          kernels.greedy_scalar_ms / kernels.greedy_simd_ms));
  if (!writer.WriteFile(out_path, "bench_fig4_time")) return 2;
  return 0;
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) { return osrs::bench::Run(argc, argv); }
