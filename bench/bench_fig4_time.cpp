// Reproduces Fig. 4: elapsed time of ILP vs RR vs Greedy with threshold
// eps = 0.5, for the top-pairs, top-sentences and top-reviews problems on
// the doctor corpus, as k grows.
//
// Paper shape to reproduce: Greedy is always the fastest by a wide margin
// (19-63x vs ILP in the paper, larger here because the bundled
// branch-and-bound replaces Gurobi and the greedy heap is cheap); RR is
// never slower than ILP (it solves only the LP relaxation); time grows
// from top pairs to top sentences/reviews as the graphs get denser.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "datagen/doctor_corpus.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::DoctorCorpusOptions corpus_options;
  corpus_options.scale = 0.012;  // 12 doctors
  corpus_options.ontology_concepts = 2000;
  osrs::Corpus corpus = osrs::GenerateDoctorCorpus(corpus_options);
  osrs::bench::QuantitativeConfig config;
  auto items = osrs::bench::SampleItems(corpus, 8);
  std::printf(
      "Figure 4 reproduction: %zu doctors, pair budget %zu/item, eps %.1f\n",
      items.size(), config.pair_budget, config.epsilon);

  osrs::bench::QuantitativeResults results =
      osrs::bench::RunQuantitative(corpus, items, config);

  for (auto granularity :
       {osrs::SummaryGranularity::kPairs, osrs::SummaryGranularity::kSentences,
        osrs::SummaryGranularity::kReviews}) {
    osrs::TableWriter table(osrs::StrFormat(
        "Fig 4 (top %s): avg time per doctor [ms] vs k",
        osrs::SummaryGranularityToString(granularity)));
    std::vector<std::string> header{"algorithm"};
    for (int k : results.k_values) header.push_back(osrs::StrFormat("k=%d", k));
    table.SetHeader(header);
    for (const auto& [name, times] : results.avg_time_ms[granularity]) {
      table.AddRow(name, times, 3);
    }
    table.Print();
    // Headline speedup at the largest k.
    const auto& t = results.avg_time_ms[granularity];
    double ilp = t.at("ILP").back();
    double rr = t.at("RR").back();
    double greedy = t.at("Greedy").back();
    std::printf("  speedup at k=%d: Greedy %.0fx vs ILP, %.0fx vs RR; "
                "RR %.1fx vs ILP\n",
                results.k_values.back(), ilp / greedy, rr / greedy,
                ilp / rr);
  }
  return 0;
}
