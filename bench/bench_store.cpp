// Durability-layer benchmark (src/store): the cost of crash safety.
//
// Three measurements, one JSON report (BENCH_store.json):
//
//   1. Snapshot scaling — write + recover time for 1x / 4x / 16x corpus
//      sizes, so recovery time's growth with state size is on record.
//   2. Journal append latency — mean/p50/p99 per-mutation cost under each
//      fsync policy (always / interval / never). "always" pays an fsync
//      per record; "interval" is the production recommendation.
//   3. Serving overhead — p99 of a mutation-heavy serve workload (every
//      request preceded by an UpdateItem, so each solve is fresh and each
//      mutation is journaled) with persistence off vs on (interval
//      fsync). The acceptance target is overhead_pct < 2 at p99: the
//      journal must be invisible next to a solve.
//
// --smoke shrinks the workload for CI. Usage:
//   bench_store [--smoke] [--out=BENCH_store.json]

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model.h"
#include "datagen/cellphone_corpus.h"
#include "serve/server.h"
#include "store/atomic_file.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"

namespace osrs::bench {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(index, values.size() - 1)];
}

/// Mean of the samples between the `lo` and `hi` quantiles — a trimmed
/// estimator of the quantile in the middle of the band. A single order
/// statistic at p99 swings several percent run-to-run, and a plain
/// above-p99 tail mean is dominated by multi-millisecond scheduler
/// spikes; averaging a band AROUND p99 keeps the statistic a tail measure
/// with variance low enough to support a <2% acceptance gate.
double BandMean(std::vector<double> values, double lo, double hi) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t start = static_cast<size_t>(lo * static_cast<double>(values.size()));
  size_t end = static_cast<size_t>(hi * static_cast<double>(values.size()));
  start = std::min(start, values.size() - 1);
  end = std::max(std::min(end, values.size()), start + 1);
  double sum = 0.0;
  for (size_t i = start; i < end; ++i) sum += values[i];
  return sum / static_cast<double>(end - start);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::string FreshDir(const std::string& tag) {
  std::string dir = "/tmp/osrs_bench_store_" + tag;
  (void)::mkdir(dir.c_str(), 0755);
  store::StateStoreOptions naming_options;
  naming_options.dir = dir;
  store::StateStore naming(naming_options);
  for (uint64_t gen = 0; gen < 256; ++gen) {
    (void)store::RemoveFile(naming.SnapshotPath(gen));
    (void)store::RemoveFile(naming.JournalPath(gen));
  }
  return dir;
}

/// `multiplier` copies of the corpus items under distinct ids — controlled
/// state-size scaling without changing item shape.
store::SnapshotData ReplicatedState(const Corpus& corpus, int multiplier) {
  store::SnapshotData state;
  state.epoch = 1;
  for (int m = 0; m < multiplier; ++m) {
    for (const Item& item : corpus.items) {
      Item copy = item;
      copy.id = item.id + "#" + std::to_string(m);
      state.items.push_back(std::move(copy));
    }
  }
  return state;
}

struct SnapshotScalePoint {
  int multiplier = 1;
  size_t items = 0;
  size_t bytes = 0;
  double write_ms = 0.0;
  double recover_ms = 0.0;
};

SnapshotScalePoint MeasureSnapshotScale(const Corpus& corpus,
                                        int multiplier) {
  SnapshotScalePoint point;
  point.multiplier = multiplier;
  store::SnapshotData state = ReplicatedState(corpus, multiplier);
  point.items = state.items.size();
  point.bytes = store::SnapshotWriter::Serialize(state).size();

  std::string dir = FreshDir("scale" + std::to_string(multiplier));
  store::StateStoreOptions options;
  options.dir = dir;
  {
    store::StateStore store(options);
    store::SnapshotData ignored;
    OSRS_CHECK_MSG(store.Recover(&ignored).ok(), "seed recover failed");
    Stopwatch watch;
    OSRS_CHECK_MSG(store.Compact(state).ok(), "snapshot write failed");
    point.write_ms = watch.ElapsedMillis();
  }
  {
    store::StateStore store(options);
    store::SnapshotData recovered;
    Stopwatch watch;
    auto info = store.Recover(&recovered);
    point.recover_ms = watch.ElapsedMillis();
    OSRS_CHECK_MSG(info.ok(), "recover failed");
    OSRS_CHECK_MSG(recovered.items.size() == point.items,
                   "recovered item count mismatch");
  }
  return point;
}

/// A mutation-sized item: the first `reviews` reviews of a corpus item.
/// Full corpus items are ~100KB encoded, which would make every append an
/// encode benchmark; real serving mutations are single-item updates of
/// modest size.
Item TruncatedItem(const Item& base, size_t reviews) {
  Item item;
  item.id = base.id;
  for (size_t r = 0; r < base.reviews.size() && r < reviews; ++r) {
    item.reviews.push_back(base.reviews[r]);
  }
  return item;
}

struct AppendStats {
  std::string policy;
  int records = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

AppendStats MeasureAppendLatency(const Corpus& corpus,
                                 store::FsyncPolicy policy,
                                 const std::string& policy_name,
                                 int records) {
  AppendStats stats;
  stats.policy = policy_name;
  stats.records = records;
  std::string dir = FreshDir("journal_" + policy_name);
  store::StateStoreOptions options;
  options.dir = dir;
  options.fsync_policy = policy;
  options.compact_threshold_bytes = 0;  // measure appends, not compactions
  store::StateStore store(options);
  store::SnapshotData ignored;
  OSRS_CHECK_MSG(store.Recover(&ignored).ok(), "recover failed");

  Item item = TruncatedItem(corpus.items.front(), 8);
  std::vector<double> latencies_us;
  latencies_us.reserve(records);
  for (int i = 0; i < records; ++i) {
    Stopwatch watch;
    OSRS_CHECK_MSG(
        store.AppendUpdateItem(item, static_cast<uint64_t>(i + 1)).ok(),
        "append failed");
    latencies_us.push_back(watch.ElapsedNanos() / 1e3);
  }
  stats.mean_us = Mean(latencies_us);
  stats.p50_us = Percentile(latencies_us, 0.50);
  stats.p99_us = Percentile(latencies_us, 0.99);
  return stats;
}

struct ServeOverhead {
  double baseline_p99_ms = 0.0;
  double journaled_p99_ms = 0.0;
};

/// p99 of Serve() under a steady-state mutation load: every 4th iteration
/// applies an UpdateItem (journaled when persistence is on, epoch bump
/// either way), and every iteration measures one Serve — a mix of fresh
/// solves (post-bump) and cache hits, identical for both configurations.
/// Journal appends ride the MUTATION path by design (mutation_mutex_ vs
/// the worker pool), so the claim under test is that the serving path
/// does not pay for durability. Two servers — one without persistence,
/// one with interval-fsync journaling — are driven in LOCKSTEP so machine
/// drift cancels and the p99 delta isolates the journal's coupling.
ServeOverhead MeasureServeOverhead(const Corpus& corpus,
                                   const std::string& state_dir,
                                   int requests) {
  serve::ServeOptions baseline_options;
  baseline_options.num_threads = 1;
  serve::ServeOptions journaled_options = baseline_options;
  journaled_options.state_dir = state_dir;
  journaled_options.fsync_policy = store::FsyncPolicy::kInterval;
  journaled_options.fsync_interval_ms = 50;

  // Mid-size items: solves in the low milliseconds — the regime where a
  // few-microsecond journal append SHOULD be invisible, which is exactly
  // the claim under test.
  std::vector<Item> items;
  for (size_t i = 0; i < corpus.items.size() && i < 4; ++i) {
    items.push_back(TruncatedItem(corpus.items[i], 40));
  }
  serve::SummaryServer baseline(&corpus.ontology, items, baseline_options);
  serve::SummaryServer journaled(&corpus.ontology, items, journaled_options);
  OSRS_CHECK_MSG(journaled.recovery_status().ok(), "recovery failed");

  std::vector<double> baseline_ms, journaled_ms;
  baseline_ms.reserve(requests);
  journaled_ms.reserve(requests);
  int warmup = 8;
  for (int i = 0; i < warmup + requests; ++i) {
    const Item& base = items[static_cast<size_t>(i) % items.size()];
    if (i % 4 == 0) {
      Item mutated = base;
      if (!mutated.reviews.empty() &&
          !mutated.reviews.front().sentences.empty()) {
        mutated.reviews.front().sentences.front().text +=
            " rev" + std::to_string(i);
      }
      baseline.UpdateItem(mutated);
      journaled.UpdateItem(mutated);
    }
    serve::ServeRequest request;
    request.item_id = base.id;
    // Alternate which server goes first PER MUTATION WINDOW (i/4, not i:
    // mutations land on i%4==0, so an i-parity alternation would put the
    // same server first on every post-bump solve). Whoever solves an item
    // first after an epoch bump warms caches for the other; alternating
    // the window turns that into noise instead of a systematic bias.
    std::vector<serve::SummaryServer*> order =
        (i / 4) % 2 == 0
            ? std::vector<serve::SummaryServer*>{&baseline, &journaled}
            : std::vector<serve::SummaryServer*>{&journaled, &baseline};
    for (serve::SummaryServer* server : order) {
      Stopwatch watch;
      serve::ServeResponse response = server->Serve(request);
      double elapsed = watch.ElapsedMillis();
      OSRS_CHECK_MSG(response.status.ok(), response.status.ToString());
      // Warmup iterations pay first-touch costs for both servers and are
      // discarded.
      if (i < warmup) continue;
      (server == &baseline ? baseline_ms : journaled_ms).push_back(elapsed);
    }
  }
  journaled.Drain(5000.0);
  ServeOverhead overhead;
  overhead.baseline_p99_ms = BandMean(baseline_ms, 0.985, 0.995);
  overhead.journaled_p99_ms = BandMean(journaled_ms, 0.985, 0.995);
  return overhead;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr, "usage: bench_store [--smoke] [--out=PATH]\n");
      return 2;
    }
  }

  CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = smoke ? 0.02 : 0.05;
  Corpus corpus = GenerateCellPhoneCorpus(corpus_options);
  std::printf("bench_store: corpus items=%zu smoke=%d\n",
              corpus.items.size(), smoke ? 1 : 0);

  BenchJsonWriter json("store");
  json.Bool("smoke", smoke);
  json.Int("corpus_items", static_cast<int64_t>(corpus.items.size()));

  // 1. Snapshot write/recover scaling.
  std::string scaling = "[";
  for (int multiplier : {1, 4, 16}) {
    SnapshotScalePoint point = MeasureSnapshotScale(corpus, multiplier);
    std::printf(
        "  snapshot %2dx: items=%zu bytes=%zu write=%.2fms recover=%.2fms\n",
        point.multiplier, point.items, point.bytes, point.write_ms,
        point.recover_ms);
    if (scaling.size() > 1) scaling += ",";
    scaling += StrFormat(
        "{\"multiplier\":%d,\"items\":%zu,\"bytes\":%zu,"
        "\"write_ms\":%.3f,\"recover_ms\":%.3f}",
        point.multiplier, point.items, point.bytes, point.write_ms,
        point.recover_ms);
  }
  scaling += "]";
  json.Raw("snapshot_scaling", scaling);

  // 2. Journal append latency per fsync policy.
  int records = smoke ? 200 : 2000;
  std::string appends = "[";
  for (const auto& [policy, name] :
       std::vector<std::pair<store::FsyncPolicy, std::string>>{
           {store::FsyncPolicy::kEveryRecord, "always"},
           {store::FsyncPolicy::kInterval, "interval"},
           {store::FsyncPolicy::kNever, "never"}}) {
    AppendStats stats = MeasureAppendLatency(corpus, policy, name, records);
    std::printf("  journal %-8s: mean=%.1fus p50=%.1fus p99=%.1fus\n",
                stats.policy.c_str(), stats.mean_us, stats.p50_us,
                stats.p99_us);
    if (appends.size() > 1) appends += ",";
    appends += StrFormat(
        "{\"policy\":\"%s\",\"records\":%d,\"mean_us\":%.2f,"
        "\"p50_us\":%.2f,\"p99_us\":%.2f}",
        stats.policy.c_str(), stats.records, stats.mean_us, stats.p50_us,
        stats.p99_us);
  }
  appends += "]";
  json.Raw("journal_append_us", appends);

  // 3. Journal overhead on serve p99 (interval fsync).
  int requests = smoke ? 200 : 20000;
  ServeOverhead serve_overhead =
      MeasureServeOverhead(corpus, FreshDir("serve"), requests);
  double baseline_p99 = serve_overhead.baseline_p99_ms;
  double journaled_p99 = serve_overhead.journaled_p99_ms;
  double overhead_pct =
      baseline_p99 > 0.0
          ? (journaled_p99 - baseline_p99) / baseline_p99 * 100.0
          : 0.0;
  std::printf(
      "  serve p99: baseline=%.2fms journaled=%.2fms overhead=%.2f%%\n",
      baseline_p99, journaled_p99, overhead_pct);
  json.Raw("serve_p99",
           StrFormat("{\"requests\":%d,\"fsync_policy\":\"interval\","
                     "\"baseline_ms\":%.3f,\"journaled_ms\":%.3f,"
                     "\"overhead_pct\":%.2f}",
                     requests, baseline_p99, journaled_p99, overhead_pct));
  json.Bool("overhead_under_2pct", overhead_pct < 2.0);

  return json.WriteFile(out_path, "bench_store") ? 0 : 2;
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) { return osrs::bench::Main(argc, argv); }
