// Coverage-graph construction benchmark (§4.1 initialization): the
// fast-path builder (precomputed ancestor closure + binary-searched
// sentiment windows + sharded parallel build) against a faithful
// re-implementation of the pre-closure builder (per-target BFS over the
// ontology, linear eps scan of each concept bucket, per-candidate edge
// sort before CSR assembly).
//
// Usage:
//   bench_coverage_build [--smoke] [--stats] [--mode=pairs|groups|both]
//                        [--threads=1,2,4,8] [--out=BENCH_coverage.json]
//
// Prints a table to stdout and writes machine-readable results (per
// dataset: baseline ms, fast ms per thread count, single-thread speedup,
// 4-thread scaling) to the --out JSON. --smoke shrinks the datasets to a
// CI-sized sanity run. Both builders must agree on the edge count; the
// binary aborts otherwise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/distance.h"
#include "core/model.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"

namespace osrs::bench {
namespace {

// ---------------------------------------------------------------------------
// Pre-PR baseline, reproduced verbatim in spirit: BFS ancestors per target
// (hash map + deque, allocating), unordered_map concept buckets, linear
// sentiment scan, per-candidate sort + bidirectional CSR assembly.

/// The pre-PR edge layout: {int, double}, 16 bytes. CoverageGraph::Edge
/// has since shrunk to 8 bytes; the baseline keeps the original layout so
/// its memory traffic stays faithful to the builder being compared against.
struct BaselineEdge {
  int endpoint;
  double weight;
};

std::vector<std::pair<ConceptId, int>> BaselineAncestors(const Ontology& onto,
                                                         ConceptId id) {
  std::vector<std::pair<ConceptId, int>> result;
  std::unordered_map<ConceptId, int> dist;
  dist.emplace(id, 0);
  result.emplace_back(id, 0);
  std::deque<ConceptId> frontier{id};
  while (!frontier.empty()) {
    ConceptId c = frontier.front();
    frontier.pop_front();
    int d = dist[c];
    for (ConceptId parent : onto.parents(c)) {
      auto [it, inserted] = dist.emplace(parent, d + 1);
      if (inserted) {
        result.emplace_back(parent, d + 1);
        frontier.push_back(parent);
      }
    }
  }
  return result;
}

/// The sort + CSR cost of the old Assemble, reproduced so the comparison
/// covers the whole construction, not just edge discovery.
size_t BaselineAssemble(int num_candidates, int num_targets,
                        std::vector<std::vector<BaselineEdge>>
                            per_candidate) {
  std::vector<size_t> forward_offsets(static_cast<size_t>(num_candidates) + 1,
                                      0);
  std::vector<BaselineEdge> forward_edges;
  size_t total_edges = 0;
  for (const auto& edges : per_candidate) total_edges += edges.size();
  forward_edges.reserve(total_edges);
  std::vector<size_t> backward_degree(static_cast<size_t>(num_targets), 0);
  for (int u = 0; u < num_candidates; ++u) {
    auto& edges = per_candidate[static_cast<size_t>(u)];
    std::sort(edges.begin(), edges.end(),
              [](const BaselineEdge& a, const BaselineEdge& b) {
                return a.endpoint < b.endpoint;
              });
    for (const auto& e : edges) {
      forward_edges.push_back(e);
      ++backward_degree[static_cast<size_t>(e.endpoint)];
    }
    forward_offsets[static_cast<size_t>(u) + 1] = forward_edges.size();
  }
  std::vector<size_t> backward_offsets(static_cast<size_t>(num_targets) + 1,
                                       0);
  for (int w = 0; w < num_targets; ++w) {
    backward_offsets[static_cast<size_t>(w) + 1] =
        backward_offsets[static_cast<size_t>(w)] +
        backward_degree[static_cast<size_t>(w)];
  }
  std::vector<BaselineEdge> backward_edges(total_edges);
  std::vector<size_t> cursor(backward_offsets.begin(),
                             backward_offsets.end() - 1);
  for (int u = 0; u < num_candidates; ++u) {
    for (size_t i = forward_offsets[static_cast<size_t>(u)];
         i < forward_offsets[static_cast<size_t>(u) + 1]; ++i) {
      const auto& e = forward_edges[i];
      backward_edges[cursor[static_cast<size_t>(e.endpoint)]++] = {u,
                                                                   e.weight};
    }
  }
  return forward_edges.size();
}

template <typename EmitFn>
void BaselineForEachCoveringPair(const PairDistance& distance,
                                 const std::vector<ConceptSentimentPair>& pairs,
                                 const EmitFn& emit) {
  const Ontology& onto = distance.ontology();
  const ConceptId root = onto.root();
  const double eps = distance.epsilon();
  std::unordered_map<ConceptId, std::vector<int>> buckets;
  for (size_t i = 0; i < pairs.size(); ++i) {
    buckets[pairs[i].concept_id].push_back(static_cast<int>(i));
  }
  for (int w = 0; w < static_cast<int>(pairs.size()); ++w) {
    const ConceptSentimentPair& target = pairs[static_cast<size_t>(w)];
    for (const auto& [ancestor, hop_distance] :
         BaselineAncestors(onto, target.concept_id)) {
      auto it = buckets.find(ancestor);
      if (it == buckets.end()) continue;
      const bool ancestor_is_root = (ancestor == root);
      for (int u : it->second) {
        const ConceptSentimentPair& source = pairs[static_cast<size_t>(u)];
        if (!ancestor_is_root &&
            std::abs(source.sentiment - target.sentiment) > eps) {
          continue;
        }
        emit(u, w, static_cast<double>(hop_distance));
      }
    }
  }
}

size_t BaselineBuildForPairs(const PairDistance& distance,
                             const std::vector<ConceptSentimentPair>& pairs) {
  std::vector<std::vector<BaselineEdge>> per_candidate(pairs.size());
  BaselineForEachCoveringPair(distance, pairs,
                              [&](int u, int w, double weight) {
                                per_candidate[static_cast<size_t>(u)]
                                    .push_back({w, weight});
                              });
  return BaselineAssemble(static_cast<int>(pairs.size()),
                          static_cast<int>(pairs.size()),
                          std::move(per_candidate));
}

size_t BaselineBuildForGroups(const PairDistance& distance,
                              const std::vector<ConceptSentimentPair>& pairs,
                              const std::vector<std::vector<int>>& groups) {
  std::vector<int> group_of(pairs.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int member : groups[g]) {
      group_of[static_cast<size_t>(member)] = static_cast<int>(g);
    }
  }
  std::vector<std::vector<BaselineEdge>> per_candidate(groups.size());
  std::vector<int> last_target(groups.size(), -1);
  BaselineForEachCoveringPair(
      distance, pairs, [&](int u, int w, double weight) {
        int g = group_of[static_cast<size_t>(u)];
        if (g < 0) return;
        auto& edges = per_candidate[static_cast<size_t>(g)];
        if (last_target[static_cast<size_t>(g)] == w && !edges.empty() &&
            edges.back().endpoint == w) {
          edges.back().weight = std::min(edges.back().weight, weight);
        } else {
          edges.push_back({w, weight});
          last_target[static_cast<size_t>(g)] = w;
        }
      });
  return BaselineAssemble(static_cast<int>(groups.size()),
                          static_cast<int>(pairs.size()),
                          std::move(per_candidate));
}

// ---------------------------------------------------------------------------
// Datasets: the SNOMED-like ontology with Zipf-distributed concept draws
// (popular aspects dominate, like real review corpora) and grid sentiments.

std::vector<ConceptSentimentPair> MakePairs(Rng& rng, const Ontology& onto,
                                            size_t count) {
  std::vector<ConceptSentimentPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Skip concept 0: review aspects map to specific concepts, never the
    // ontology root itself — and root-concept pairs would cover every
    // target with no sentiment test, swamping both builders with identical
    // unfiltered edges and hiding the construction costs under comparison.
    ConceptId concept_id = static_cast<ConceptId>(
        1 + rng.NextZipf(onto.num_concepts() - 1, 0.8));
    double sentiment = -1.0 + 0.0625 * static_cast<double>(rng.NextUint64(33));
    pairs.push_back({concept_id, sentiment});
  }
  return pairs;
}

std::vector<std::vector<int>> MakeGroups(Rng& rng, size_t num_pairs) {
  std::vector<std::vector<int>> groups;
  size_t i = 0;
  while (i < num_pairs) {
    size_t size = 1 + rng.NextUint64(4);
    groups.emplace_back();
    for (size_t j = 0; j < size && i < num_pairs; ++j, ++i) {
      groups.back().push_back(static_cast<int>(i));
    }
  }
  return groups;
}

/// Best-of-N wall time of `fn` in milliseconds (min filters scheduler
/// noise; the builders are deterministic so every rep does the same work).
template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

struct DatasetResult {
  std::string mode;
  double eps = 0.0;
  size_t num_pairs = 0;
  size_t num_edges = 0;
  double baseline_ms = 0.0;
  std::vector<std::pair<int, double>> fast_ms;  // (threads, ms)

  double FastMsAt(int threads) const {
    for (const auto& [t, ms] : fast_ms) {
      if (t == threads) return ms;
    }
    return 0.0;
  }
};

/// The "datasets" array of the report; the envelope (bench name,
/// hardware_threads — which qualifies the scaling numbers, since fast_ms
/// at t threads can only improve over t = 1 when the host actually has t
/// cores) comes from BenchJsonWriter.
std::string DatasetsJson(const std::vector<DatasetResult>& results) {
  std::string out = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    const DatasetResult& r = results[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"mode\":\"%s\",\"epsilon\":%.4f,\"num_pairs\":%zu,"
        "\"num_edges\":%zu,\"baseline_ms\":%.3f,\"fast_ms\":{",
        r.mode.c_str(), r.eps, r.num_pairs, r.num_edges, r.baseline_ms);
    for (size_t j = 0; j < r.fast_ms.size(); ++j) {
      if (j > 0) out += ',';
      out += StrFormat("\"%d\":%.3f", r.fast_ms[j].first,
                       r.fast_ms[j].second);
    }
    double fast1 = r.FastMsAt(1);
    double fast4 = r.FastMsAt(4);
    out += StrFormat(
        "},\"speedup_1t\":%.2f,\"scaling_4t\":%.2f}",
        fast1 > 0.0 ? r.baseline_ms / fast1 : 0.0,
        fast4 > 0.0 && fast1 > 0.0 ? fast1 / fast4 : 0.0);
  }
  out += ']';
  return out;
}

int Run(int argc, char** argv) {
  StatsSession stats(argc, argv);
  bool smoke = false;
  std::string mode = "both";
  std::string out_path = "BENCH_coverage.json";
  std::vector<int> thread_counts = {1, 2, 4};
  // Wide- and narrow-window operating points; see the dataset loop below.
  std::vector<double> eps_values = {0.5, 0.0625};
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--stats") {
      // handled by StatsSession
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = std::string(arg.substr(7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts.clear();
      std::string list(arg.substr(10));
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        thread_counts.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--eps=", 0) == 0) {
      eps_values.assign(1, std::stod(std::string(arg.substr(6))));
    } else {
      std::fprintf(stderr,
                   "usage: bench_coverage_build [--smoke] [--stats] "
                   "[--mode=pairs|groups|both] [--threads=1,2,4] "
                   "[--eps=0.5] [--out=PATH]\n");
      return 2;
    }
  }

  // Closer to real SNOMED shape than the 5k default: more concepts and a
  // deeper DAG, so per-target ancestor work is a realistic share of the
  // build (SNOMED CT itself is 300k+ concepts).
  SnomedLikeOptions onto_options;
  onto_options.num_concepts = smoke ? 400 : 20000;
  onto_options.max_depth = smoke ? 8 : 16;
  Ontology onto = BuildSnomedLikeOntology(onto_options);
  const int reps = smoke ? 1 : 3;
  std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{500} : std::vector<size_t>{2000, 8000, 20000};

  std::printf(
      "coverage-graph construction: %d-concept ontology, "
      "%u hardware thread(s)\n",
      onto_options.num_concepts,
      std::max(1u, std::thread::hardware_concurrency()));
  std::printf("%-8s %6s %9s %12s %12s", "mode", "eps", "pairs", "edges",
              "baseline");
  for (int t : thread_counts) std::printf(" %9s", StrFormat("fast x%d", t).c_str());
  std::printf(" %9s\n", "speedup");

  std::vector<DatasetResult> results;
  Rng rng(20260806);
  for (size_t size : sizes) {
    std::vector<ConceptSentimentPair> pairs = MakePairs(rng, onto, size);
    std::vector<std::vector<int>> groups = MakeGroups(rng, pairs.size());
    // eps spans the two construction regimes: wide windows admit most of
    // every bucket (cost dominated by materializing the edges — both
    // builders write the same CSR bytes), narrow windows reject most of it
    // (cost dominated by discovery, where binary-searched windows beat the
    // baseline's full bucket scans by an order of magnitude).
    for (double eps : eps_values) {
      PairDistance distance(&onto, eps);
      for (std::string_view m : {"pairs", "groups"}) {
        if (mode != "both" && mode != m) continue;
        DatasetResult result;
        result.mode = std::string(m);
        result.eps = eps;
        result.num_pairs = size;

        size_t baseline_edges = 0;
        result.baseline_ms = TimeMs(reps, [&]() {
          baseline_edges =
              m == "pairs"
                  ? BaselineBuildForPairs(distance, pairs)
                  : BaselineBuildForGroups(distance, pairs, groups);
        });
        for (int threads : thread_counts) {
          CoverageGraph graph;
          double ms = TimeMs(reps, [&]() {
            graph = m == "pairs"
                        ? CoverageGraph::BuildForPairs(distance, pairs, threads)
                        : CoverageGraph::BuildForGroups(distance, pairs,
                                                        groups, threads);
          });
          result.fast_ms.emplace_back(threads, ms);
          result.num_edges = graph.num_edges();
          OSRS_CHECK_MSG(graph.num_edges() == baseline_edges,
                         "edge count mismatch: fast x" << threads << " built "
                         << graph.num_edges() << ", baseline built "
                         << baseline_edges);
        }

        std::printf("%-8s %6.3f %9zu %12zu %10.2fms", result.mode.c_str(),
                    result.eps, result.num_pairs, result.num_edges,
                    result.baseline_ms);
        for (const auto& [t, ms] : result.fast_ms) std::printf(" %7.2fms", ms);
        double fast1 = result.FastMsAt(1);
        std::printf(" %8.2fx\n",
                    fast1 > 0.0 ? result.baseline_ms / fast1 : 0.0);
        results.push_back(std::move(result));
      }
    }
  }

  BenchJsonWriter writer("coverage_build");
  writer.Int("ontology_concepts", onto_options.num_concepts);
  writer.Raw("datasets", DatasetsJson(results));
  if (!writer.WriteFile(out_path, "bench_coverage_build")) return 2;
  return 0;
}

}  // namespace
}  // namespace osrs::bench

int main(int argc, char** argv) { return osrs::bench::Run(argc, argv); }
