// Reproduces Fig. 5: average coverage cost (Definition 2) of ILP vs RR vs
// Greedy with threshold eps = 0.5 on the doctor corpus, as k grows.
//
// Paper shape to reproduce: ILP is optimal (lowest cost); Greedy is never
// more than ~8% above optimal (usually <= 5%); RR lands within 1-2% of
// optimal; at fixed k the cost decreases from top pairs to top sentences
// to top reviews, because a sentence/review carries several pairs and thus
// covers more.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "datagen/doctor_corpus.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::DoctorCorpusOptions corpus_options;
  corpus_options.scale = 0.012;  // 12 doctors
  corpus_options.ontology_concepts = 2000;
  osrs::Corpus corpus = osrs::GenerateDoctorCorpus(corpus_options);
  osrs::bench::QuantitativeConfig config;
  auto items = osrs::bench::SampleItems(corpus, 8);
  std::printf(
      "Figure 5 reproduction: %zu doctors, pair budget %zu/item, eps %.1f\n",
      items.size(), config.pair_budget, config.epsilon);

  osrs::bench::QuantitativeResults results =
      osrs::bench::RunQuantitative(corpus, items, config);

  for (auto granularity :
       {osrs::SummaryGranularity::kPairs, osrs::SummaryGranularity::kSentences,
        osrs::SummaryGranularity::kReviews}) {
    osrs::TableWriter table(osrs::StrFormat(
        "Fig 5 (top %s): avg coverage cost per doctor vs k",
        osrs::SummaryGranularityToString(granularity)));
    std::vector<std::string> header{"algorithm"};
    for (int k : results.k_values) header.push_back(osrs::StrFormat("k=%d", k));
    table.SetHeader(header);
    for (const auto& [name, costs] : results.avg_cost[granularity]) {
      table.AddRow(name, costs, 1);
    }
    table.Print();
    const auto& c = results.avg_cost[granularity];
    double worst_gap = 0.0, rr_gap = 0.0;
    for (size_t ki = 0; ki < results.k_values.size(); ++ki) {
      double optimal = c.at("ILP")[ki];
      if (optimal > 0) {
        worst_gap = std::max(worst_gap,
                             (c.at("Greedy")[ki] - optimal) / optimal);
        rr_gap = std::max(rr_gap, (c.at("RR")[ki] - optimal) / optimal);
      }
    }
    std::printf("  max gap vs optimal: Greedy %.2f%%, RR %.2f%% "
                "(paper: <=8%% and 1-2%%)\n",
                100.0 * worst_gap, 100.0 * rr_gap);
  }
  return 0;
}
