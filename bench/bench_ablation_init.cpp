// Ablation A2 (§4.1's claim): the initialization phase — building the
// bipartite coverage graph — takes time roughly linear in |P| because the
// average ancestor count of the DAG is small. The ns-per-pair figure
// should stay nearly flat as |P| doubles (edge counts grow faster since
// concept buckets collide, which the edges counter makes visible).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "ontology/snomed_like.h"

namespace {

const osrs::Ontology& SharedOntology() {
  static const osrs::Ontology* onto = [] {
    osrs::SnomedLikeOptions options;
    options.num_concepts = 5000;
    return new osrs::Ontology(osrs::BuildSnomedLikeOntology(options));
  }();
  return *onto;
}

std::vector<osrs::ConceptSentimentPair> MakePairs(int num_pairs) {
  const osrs::Ontology& onto = SharedOntology();
  osrs::Rng rng(static_cast<uint64_t>(num_pairs) * 13 + 1);
  std::vector<osrs::ConceptSentimentPair> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs));
  for (int i = 0; i < num_pairs; ++i) {
    auto c = static_cast<osrs::ConceptId>(
        1 + rng.NextZipf(onto.num_concepts() - 1, 1.05));
    pairs.push_back({c, rng.NextDouble(-1, 1)});
  }
  return pairs;
}

void BM_BuildCoverageGraph(benchmark::State& state) {
  auto pairs = MakePairs(static_cast<int>(state.range(0)));
  osrs::PairDistance distance(&SharedOntology(), 0.5);
  size_t edges = 0;
  for (auto _ : state) {
    osrs::CoverageGraph graph =
        osrs::CoverageGraph::BuildForPairs(distance, pairs);
    edges = graph.num_edges();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["ns_per_pair"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_AncestorWalk(benchmark::State& state) {
  // The inner loop of the initialization: ancestor BFS per concept.
  const osrs::Ontology& onto = SharedOntology();
  osrs::Rng rng(7);
  std::vector<osrs::ConceptId> concepts;
  for (int i = 0; i < 1024; ++i) {
    concepts.push_back(static_cast<osrs::ConceptId>(
        1 + rng.NextUint64(onto.num_concepts() - 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto ancestors = onto.AncestorsWithDistance(concepts[i++ & 1023]);
    benchmark::DoNotOptimize(ancestors);
  }
}

}  // namespace

BENCHMARK(BM_BuildCoverageGraph)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);
BENCHMARK(BM_AncestorWalk);

BENCHMARK_MAIN();
