// Deadline-degradation bench: run BatchSummarizer over a synthetic corpus
// with progressively tighter per-item deadlines (ILP primary, greedy
// fallback) and report how many items completed clean, degraded along the
// fallback chain, or failed, plus batch wall-clock — the service-level
// view of the execution-budget layer.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "api/batch_summarizer.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "datagen/cellphone_corpus.h"

int main(int argc, char** argv) {
  osrs::bench::StatsSession stats_session(argc, argv);
  osrs::CellPhoneCorpusOptions corpus_options;
  corpus_options.scale = 0.1;
  osrs::Corpus corpus = osrs::GenerateCellPhoneCorpus(corpus_options);
  for (osrs::Item& item : corpus.items) {
    item = osrs::TruncateReviews(item, 80);
  }
  const int k = 6;
  std::printf("items=%zu, ILP primary, greedy fallback, k=%d\n",
              corpus.items.size(), k);

  osrs::TableWriter table(
      "Graceful degradation under per-item deadlines (pairs granularity)");
  table.SetHeader({"deadline_ms", "clean", "degraded", "deadline_err",
                   "other_err", "batch_ms"});

  for (double deadline_ms : {0.0, 2000.0, 200.0, 50.0, 10.0}) {
    osrs::BatchSummarizerOptions options;
    options.summarizer.algorithm = osrs::SummaryAlgorithm::kIlp;
    options.summarizer.granularity = osrs::SummaryGranularity::kPairs;
    options.summarizer.deadline_ms = deadline_ms;
    options.summarizer.fallback_chain = {osrs::SummaryAlgorithm::kGreedy};

    osrs::BatchSummarizer batch(&corpus.ontology, options);
    osrs::Stopwatch watch;
    auto entries = batch.SummarizeAll(corpus.items, k);
    double batch_ms = watch.ElapsedSeconds() * 1000.0;

    int clean = 0;
    int degraded = 0;
    int deadline_err = 0;
    int other_err = 0;
    for (const osrs::BatchEntry& entry : entries) {
      if (!entry.status.ok()) {
        if (entry.status.code() == osrs::StatusCode::kDeadlineExceeded) {
          ++deadline_err;
        } else {
          ++other_err;
        }
      } else if (entry.summary.degraded) {
        ++degraded;
      } else {
        ++clean;
      }
    }
    table.AddRow({deadline_ms <= 0.0 ? std::string("off")
                                     : osrs::StrFormat("%.0f", deadline_ms),
                  osrs::StrFormat("%d", clean),
                  osrs::StrFormat("%d", degraded),
                  osrs::StrFormat("%d", deadline_err),
                  osrs::StrFormat("%d", other_err),
                  osrs::StrFormat("%.1f", batch_ms)});
  }
  table.Print();
  return 0;
}
