#!/usr/bin/env bash
# CI driver: the tier-1 suite in the default configuration, a lint stage
# (tools/lint.sh conventions + osrs_lint over the shipped example data +
# clang-tidy when installed), an OSRS_OBS=OFF build proving the telemetry
# layer compiles out, the full suite under ASan+UBSan, and a TSan pass
# over the multi-threaded BatchSummarizer tests.
# Usage: ./ci.sh [--skip-sanitizers] [--skip-lint]
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

SKIP_SANITIZERS=0
SKIP_LINT=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --skip-lint) SKIP_LINT=1 ;;
    *)
      echo "usage: ./ci.sh [--skip-sanitizers] [--skip-lint]" >&2
      exit 2
      ;;
  esac
done

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$JOBS"
}

echo "== default build + full test suite =="
run_suite build
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== coverage-build bench smoke =="
# CI-sized sanity run of the §4.1 fast-path builder bench: checks that the
# fast and baseline builders agree on every dataset and that the JSON
# report is written (full-size numbers live in BENCH_coverage.json).
./build/bench/bench_coverage_build --smoke --out=build/BENCH_coverage_smoke.json

if [[ "$SKIP_LINT" == "1" ]]; then
  echo "== lint stage skipped =="
else
  echo "== lint stage =="
  # Repo conventions plus, when clang-tidy is on PATH, the .clang-tidy
  # pass over src/ against the compile_commands.json of the build above.
  ./tools/lint.sh
  ./build/tools/osrs_lint examples/data/sample_reviews.tsv \
                          examples/data/sample_corpus.txt
fi

echo "== OSRS_OBS=OFF build + telemetry-adjacent tests =="
# The telemetry layer must compile out cleanly: spans shrink to empty
# objects and every instrumented call site still builds and passes.
run_suite build-noobs -DOSRS_OBS=OFF
(cd build-noobs && \
 ctest --output-on-failure -j "$JOBS" -R 'obs_test|solver_test|api_test')

if [[ "$SKIP_SANITIZERS" == "1" ]]; then
  echo "== sanitizer passes skipped =="
  exit 0
fi

echo "== ASan+UBSan build + full test suite =="
run_suite build-asan -DOSRS_SANITIZE=address,undefined
(cd build-asan && \
 ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS")

echo "== TSan build + batch/budget/graph-build tests =="
run_suite build-tsan -DOSRS_SANITIZE=thread
(cd build-tsan && \
 TSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS" \
       -R 'budget_test|api_test|fuzz_robustness_test|integration_test|coverage_diff_test')

echo "== ci.sh: all passes green =="
