#!/usr/bin/env bash
# CI driver: the tier-1 suite in the default configuration, a chaos stage
# (randomized failpoint schedules, env-spec arming end to end, retry
# overhead bench), a lint stage (tools/lint.sh conventions + osrs_lint
# over the shipped example data + clang-tidy when installed), a clang
# thread-safety stage (OSRS_THREAD_SAFETY=ON build of the concurrent core
# plus the negative-compile harness, skipped when clang++ is not
# installed), an observability stage (live `osrs_serve --drive` metrics
# export validated by tools/check_openmetrics.sh), a crash-recovery stage
# (store-site fault schedule, a kill -9 mid-journal, then a clean restart
# that must recover the committed prefix), an OSRS_SIMD=OFF build
# running the solver bit-identity diff plus the tier-1 solver tests on the
# scalar fallback, OSRS_OBS=OFF, OSRS_LOGGING=OFF, and OSRS_FAILPOINTS=OFF
# builds proving the telemetry, logging, and fault layers compile out, the
# full suite (chaos included)
# under ASan+UBSan, and a TSan pass over the multi-threaded
# BatchSummarizer, serving-layer, sync-primitive, and chaos tests.
# Usage: ./ci.sh [--skip-sanitizers] [--skip-lint] [--skip-clang]
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

SKIP_SANITIZERS=0
SKIP_LINT=0
SKIP_CLANG=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --skip-lint) SKIP_LINT=1 ;;
    --skip-clang) SKIP_CLANG=1 ;;
    *)
      echo "usage: ./ci.sh [--skip-sanitizers] [--skip-lint] [--skip-clang]" >&2
      exit 2
      ;;
  esac
done

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$JOBS"
}

echo "== default build + full test suite =="
run_suite build
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== coverage-build bench smoke =="
# CI-sized sanity run of the §4.1 fast-path builder bench: checks that the
# fast and baseline builders agree on every dataset and that the JSON
# report is written (full-size numbers live in BENCH_coverage.json).
./build/bench/bench_coverage_build --smoke --out=build/BENCH_coverage_smoke.json

echo "== chaos stage: failpoint schedules + env arming + retry overhead =="
# chaos_test (also part of the suite above) is the randomized campaign;
# here the two pieces the suite cannot cover run on top: the
# OSRS_FAILPOINTS environment grammar driving an unmodified binary into a
# failure, and the retry-overhead bench holding the <1% steady-state bar.
# The bar is gated at full batch scale (~0.6s): the smoke batch is too
# small to amortize the fixed per-item site evaluations, so its percentage
# is informational only (the bench exits 0 under --smoke regardless).
if OSRS_FAILPOINTS='osrs.io.read=error(unavailable)' \
   ./build/tools/osrs_stats --items 1 examples/data/sample_corpus.txt \
   > /dev/null 2>&1; then
  echo "ci.sh: OSRS_FAILPOINTS env spec did not inject" >&2
  exit 1
fi
./build/bench/bench_retry_overhead --out=build/BENCH_retry_ci.json

echo "== chaos soak: serving layer under an injected failure schedule =="
# bench_serve --smoke drives the SummaryServer at 1x/2x/4x estimated
# capacity while the environment schedule injects allocation failures into
# coverage-graph construction, LP pivot errors, and serve-layer faults at
# all three sites. The binary exits non-zero if the process crashes or the
# accounting identities (submitted == admitted + rejected; admitted ==
# completed + shed + failed) are violated — overload plus injected faults
# must never lose or double-count a request.
OSRS_FAILPOINTS='osrs.coverage.alloc=bad_alloc:prob(0.02,7);osrs.lp.pivot=error(internal):prob(0.05,11);osrs.serve.admit=error(resource_exhausted):prob(0.01,13);osrs.serve.solve=error(unavailable):prob(0.03,17);osrs.serve.cache=error(unavailable):prob(0.05,19)' \
    ./build/bench/bench_serve --smoke --out=build/BENCH_serve_soak.json
if ! grep -q '"accounting_ok":true' build/BENCH_serve_soak.json; then
  echo "ci.sh: chaos soak accounting violation" >&2
  exit 1
fi

if [[ "$SKIP_LINT" == "1" ]]; then
  echo "== lint stage skipped =="
else
  echo "== lint stage =="
  # Repo conventions plus, when clang-tidy is on PATH, the .clang-tidy
  # pass over src/ against the compile_commands.json of the build above.
  ./tools/lint.sh
  ./build/tools/osrs_lint examples/data/sample_reviews.tsv \
                          examples/data/sample_corpus.txt
fi

if [[ "$SKIP_CLANG" == "1" ]]; then
  echo "== clang thread-safety stage skipped =="
elif ! command -v clang++ > /dev/null; then
  echo "== clang thread-safety stage skipped: clang++ not on PATH =="
  echo "   (install clang to run the -Wthread-safety capability analysis"
  echo "    and tests/thread_safety_compile_test; annotations still compile"
  echo "    away to nothing under the default compiler)"
else
  echo "== clang -Werror=thread-safety build + negative-compile harness =="
  # Capability analysis over the annotated concurrent core (src/common/
  # sync.h users): the whole src/ tree must compile with zero
  # -Wthread-safety diagnostics, and every seeded violation in the
  # negative harness must be rejected with the expected diagnostic.
  cmake -B build-clang-ts -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DOSRS_THREAD_SAFETY=ON > /dev/null
  cmake --build build-clang-ts -j "$JOBS" --target \
        osrs_common osrs_obs osrs_fault osrs_api osrs_serving \
        osrs_coverage osrs_solver osrs_lp
  ./tests/thread_safety_compile_test/run.sh
fi

echo "== observability stage: live metrics export + format validation =="
# A real --drive run must leave behind a structurally valid OpenMetrics
# snapshot: HELP/TYPE lines per family, counter _total suffixes, strictly
# ascending histogram buckets with monotone cumulative counts, +Inf ==
# _count, a _sum per histogram, and the # EOF terminator.
./build/tools/osrs_serve --drive 200 --clients 4 --scale 0.02 \
    --slow-ms 50 --metrics-file build/metrics_export.prom > /dev/null 2>&1
./tools/check_openmetrics.sh build/metrics_export.prom

echo "== crash-recovery stage: store faults, kill -9, clean restart =="
# Three acceptance checks for the durability layer on the real binary:
#  (a) a mutating --drive run under a probabilistic fault schedule over
#      every store site (write/fsync/rename/read/replay) must never die
#      on a signal — journal failures poison-and-compact, snapshot
#      failures roll back, recovery failures are surfaced as status.
#      A non-zero *exit code* is tolerated here (the in-process restart
#      self-test legitimately fails when a fault lands inside it);
#  (b) a journal-heavy interval-fsync run is SIGKILLed mid-write,
#      leaving whatever torn tail the timing produced on disk;
#  (c) a clean run over the same state dir must then recover the
#      committed prefix and pass its own drain + restart self-test —
#      no crash our own writers produced may ever surface as kDataLoss.
CRASH_STATE=build/crash_state
rm -rf "$CRASH_STATE" && mkdir -p "$CRASH_STATE"
set +e
OSRS_FAILPOINTS='osrs.store.write=error(unavailable):prob(0.05,23);osrs.store.fsync=error(unavailable):prob(0.05,29);osrs.store.rename=error(unavailable):prob(0.02,31);osrs.store.read=error(unavailable):prob(0.02,37);osrs.store.replay=error(unavailable):prob(0.02,41)' \
    ./build/tools/osrs_serve --drive 200 --clients 4 --scale 0.02 \
    --mutate-every 4 --state-dir "$CRASH_STATE" \
    > /dev/null 2> build/crash_faulted.log
FAULTED_EXIT=$?
set -e
if [[ "$FAULTED_EXIT" -ge 126 ]]; then
  echo "ci.sh: faulted durability run died on a signal" \
       "(exit $FAULTED_EXIT, log build/crash_faulted.log)" >&2
  exit 1
fi
./build/tools/osrs_serve --drive 1000000 --clients 4 --scale 0.02 \
    --mutate-every 2 --fsync-policy interval --fsync-interval-ms 50 \
    --state-dir "$CRASH_STATE" > /dev/null 2>&1 &
CRASH_PID=$!
sleep 1
kill -9 "$CRASH_PID" 2> /dev/null || true
wait "$CRASH_PID" 2> /dev/null || true
./build/tools/osrs_serve --drive 100 --clients 4 --scale 0.02 \
    --mutate-every 10 --state-dir "$CRASH_STATE" \
    > /dev/null 2> build/crash_recover.log
if ! grep -q 'osrs_serve: recovered {' build/crash_recover.log; then
  echo "ci.sh: post-crash run did not report recovery" \
       "(log build/crash_recover.log)" >&2
  exit 1
fi
if ! grep -q 'restart check passed' build/crash_recover.log; then
  echo "ci.sh: post-crash restart self-test failed" \
       "(log build/crash_recover.log)" >&2
  exit 1
fi

echo "== store bench smoke =="
# CI-sized sanity run of the durability bench: snapshot write/recover
# scaling, per-policy journal append latency, and the serve-overhead
# comparison all run end to end and the JSON report is written. The <2%
# overhead bar is gated on the full-size run only (BENCH_store.json);
# the smoke request count is too small for a stable p99.
./build/bench/bench_store --smoke --out=build/BENCH_store_smoke.json

echo "== OSRS_SIMD=OFF build + solver diff + tier-1 solver tests =="
# The scalar fallback must be a first-class configuration, not a degraded
# one: with the AVX2 backend compiled out entirely, every solver has to
# produce bit-identical summaries and costs (the diff test compares
# against the in-build backend, which degrades to scalar-vs-scalar here —
# proving the dispatch layer, while the default build above proves
# scalar-vs-AVX2) and the solver-facing suites must stay green.
run_suite build-nosimd -DOSRS_SIMD=OFF
(cd build-nosimd && \
 ctest --output-on-failure -j "$JOBS" \
       -R 'solver_simd_diff_test|solver_test|local_search_test|weighted_coverage_test|indexed_heap_test|property_test')

echo "== OSRS_LOGGING=OFF build + logging-adjacent tests =="
# The structured-logging sites must compile out cleanly: OSRS_LOG shrinks
# to a dead branch (arguments stay type-checked) and every adopting layer
# still builds and passes.
run_suite build-nolog -DOSRS_LOGGING=OFF
(cd build-nolog && \
 ctest --output-on-failure -j "$JOBS" -R 'common_test|serve_test|api_test')

echo "== OSRS_OBS=OFF build + telemetry-adjacent tests =="
# The telemetry layer must compile out cleanly: spans shrink to empty
# objects and every instrumented call site still builds and passes.
run_suite build-noobs -DOSRS_OBS=OFF
(cd build-noobs && \
 ctest --output-on-failure -j "$JOBS" -R 'obs_test|solver_test|api_test')

echo "== OSRS_FAILPOINTS=OFF build + fault-adjacent tests =="
# The fault layer must compile out: every OSRS_FAILPOINT site becomes a
# constant Status::OK() and the retry/isolation machinery still builds and
# passes. chaos_test itself needs live injection, so the batch-facing
# suites stand in; the bench proves zero site evaluations end to end.
run_suite build-nofp -DOSRS_FAILPOINTS=OFF
(cd build-nofp && \
 ctest --output-on-failure -j "$JOBS" \
       -R 'api_test|budget_test|corpus_io_test|solver_test')
./build-nofp/bench/bench_retry_overhead --smoke \
    --out=build-nofp/BENCH_retry_off.json
if ! grep -q '"compiled_in":false' build-nofp/BENCH_retry_off.json; then
  echo "ci.sh: OSRS_FAILPOINTS=OFF build still reports compiled_in" >&2
  exit 1
fi

if [[ "$SKIP_SANITIZERS" == "1" ]]; then
  echo "== sanitizer passes skipped =="
  exit 0
fi

echo "== ASan+UBSan build + full test suite (incl. SIMD diff test) =="
# The full suite includes solver_simd_diff_test, so the masked-lane and
# tail-padding logic of the AVX2 kernels runs under ASan+UBSan here.
run_suite build-asan -DOSRS_SANITIZE=address,undefined
(cd build-asan && \
 ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS")

echo "== TSan build + batch/budget/sync/graph-build tests =="
run_suite build-tsan -DOSRS_SANITIZE=thread
(cd build-tsan && \
 TSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS" \
       -R 'budget_test|api_test|fuzz_robustness_test|integration_test|coverage_diff_test|chaos_test|sync_test|serve_test')

echo "== ci.sh: all passes green =="
