#!/usr/bin/env bash
# CI driver: the tier-1 suite in the default configuration, the full suite
# under ASan+UBSan, and a TSan pass over the multi-threaded BatchSummarizer
# tests. Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$JOBS"
}

echo "== default build + full test suite =="
run_suite build
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "== sanitizer passes skipped =="
  exit 0
fi

echo "== ASan+UBSan build + full test suite =="
run_suite build-asan -DOSRS_SANITIZE=address,undefined
(cd build-asan && \
 ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS")

echo "== TSan build + batch/budget tests =="
run_suite build-tsan -DOSRS_SANITIZE=thread
(cd build-tsan && \
 TSAN_OPTIONS=halt_on_error=1 \
 ctest --output-on-failure -j "$JOBS" \
       -R 'budget_test|api_test|fuzz_robustness_test|integration_test')

echo "== ci.sh: all passes green =="
