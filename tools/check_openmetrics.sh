#!/usr/bin/env bash
# Validates an OpenMetrics/Prometheus text-format export (as written by
# `osrs_serve --metrics-file`, the `metrics` REPL verb, or
# `osrs_stats --prometheus`). Structural checks:
#
#   * every sample is preceded by a `# HELP` and `# TYPE` line for its
#     metric family, and the declared type is counter/gauge/histogram;
#   * counter samples use the `<family>_total` suffix;
#   * histogram bucket `le` bounds are strictly ascending, cumulative
#     counts are monotone non-decreasing, the `+Inf` bucket equals
#     `<family>_count`, and `<family>_sum` is present;
#   * the file ends with the `# EOF` terminator.
#
# Usage: tools/check_openmetrics.sh <file>
# Exit: 0 valid, 1 violations found, 2 usage.
set -uo pipefail

if [[ $# -ne 1 || ! -r "$1" ]]; then
  echo "usage: tools/check_openmetrics.sh <readable-file>" >&2
  exit 2
fi

awk '
function fail(msg) { printf "check_openmetrics: line %d: %s\n", NR, msg; bad = 1 }

/^# HELP / { help[$3] = 1; next }
/^# TYPE / {
  type[$3] = $4
  if ($4 != "counter" && $4 != "gauge" && $4 != "histogram")
    fail("unknown type \"" $4 "\" for family " $3)
  next
}
/^# EOF$/ { eof_line = NR; next }
/^#/ { next }
/^$/ { next }
{
  if (eof_line) fail("sample after # EOF terminator")
  name = $1
  value = $2
  sub(/\{.*/, "", name)                # strip the label set
  family = name
  sub(/_(total|bucket|sum|count)$/, "", family)
  if (!(family in type)) {
    fail("sample " name " has no # TYPE line")
  } else {
    if (!(family in help)) fail("sample " name " has no # HELP line")
    t = type[family]
    if (t == "counter" && name !~ /_total$/)
      fail("counter sample " name " must use the _total suffix")
    if (t == "histogram" && name ~ /_bucket$/) {
      if (match($0, /le="[^"]*"/) == 0) {
        fail("histogram bucket without le label: " $0)
      } else {
        le = substr($0, RSTART + 4, RLENGTH - 5)
        count = value + 0
        if (family in last_count && count < last_count[family])
          fail(family ": cumulative bucket count decreased (" \
               last_count[family] " -> " count ")")
        if (le == "+Inf") {
          inf_count[family] = count
        } else {
          bound = le + 0
          if ((family in last_bound) && bound <= last_bound[family])
            fail(family ": bucket bounds not strictly ascending at le=" le)
          if (family in inf_count)
            fail(family ": finite bucket after the +Inf bucket")
          last_bound[family] = bound
        }
        last_count[family] = count
      }
    }
    if (t == "histogram" && name ~ /_sum$/) has_sum[family] = 1
    if (t == "histogram" && name ~ /_count$/) total_count[family] = value + 0
  }
}
END {
  for (family in type) {
    if (type[family] != "histogram") continue
    if (!(family in inf_count)) {
      printf "check_openmetrics: %s: histogram has no +Inf bucket\n", family
      bad = 1
    } else if (!(family in total_count)) {
      printf "check_openmetrics: %s: histogram has no _count sample\n", family
      bad = 1
    } else if (inf_count[family] != total_count[family]) {
      printf "check_openmetrics: %s: +Inf bucket (%d) != _count (%d)\n",
             family, inf_count[family], total_count[family]
      bad = 1
    }
    if (!(family in has_sum)) {
      printf "check_openmetrics: %s: histogram has no _sum sample\n", family
      bad = 1
    }
  }
  if (!eof_line) { print "check_openmetrics: missing # EOF terminator"; bad = 1 }
  exit bad ? 1 : 0
}
' "$1"
status=$?
if [[ $status -eq 0 ]]; then
  echo "check_openmetrics: $1 is structurally valid"
fi
exit $status
