#!/usr/bin/env bash
# Annotation-coverage check for the thread-safety layer (see DESIGN.md,
# "Static analysis v2"): every osrs::Mutex member declared in src/ must
# have at least one user of its capability in the same file — an
# OSRS_GUARDED_BY / OSRS_PT_GUARDED_BY field or an OSRS_REQUIRES /
# OSRS_ACQUIRE / OSRS_RELEASE method naming it. A mutex with zero
# annotated users is invisible to Clang's capability analysis, which is
# exactly the state this PR-gate exists to prevent: new concurrent code
# must declare what its lock protects.
#
# Also prints the coverage tally (mutexes, guarded fields, annotated
# methods) so reviews can watch the numbers move.
#
# Usage: tools/check_sync_annotations.sh   (run from anywhere)
# Exit: 0 when every mutex has at least one annotated user, 1 otherwise.
set -uo pipefail

cd "$(dirname "$0")/.."

failures=0
mutexes=0
guarded_fields=0
annotated_methods=0

# Declaration shape: optional `mutable`, optional namespace qualifier,
# `Mutex name_;` possibly followed by a trailing comment. sync.h itself
# (the definition site) and build trees are excluded.
decl_re='^[[:space:]]*(mutable[[:space:]]+)?([A-Za-z_]+::)?Mutex[[:space:]]+([A-Za-z0-9_]+)[[:space:]]*;'

while IFS= read -r file; do
  # Collect this file's mutex member names.
  while IFS= read -r name; do
    [[ -z "$name" ]] && continue
    mutexes=$((mutexes + 1))
    users=$(grep -cE \
      "OSRS_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES|ASSERT_HELD)\((([A-Za-z_]+::)?[A-Za-z0-9_]+(, *)?)*${name}" \
      "$file")
    if [[ "$users" -eq 0 ]]; then
      echo "sync-annotations: $file: Mutex '${name}' has no" \
           "OSRS_GUARDED_BY/OSRS_REQUIRES user — annotate what it guards" >&2
      failures=$((failures + 1))
    fi
  done < <(sed -E -n "s/${decl_re}.*/\3/p" "$file" | sort -u)
done < <(find src -name '*.h' -o -name '*.cpp' | grep -v '^src/common/sync\.h$' \
         | grep -vE '/build[^/]*/' | sort)

guarded_fields=$(grep -rE --include='*.h' --include='*.cpp' \
  -c 'OSRS_(GUARDED_BY|PT_GUARDED_BY)\(' src 2>/dev/null \
  | awk -F: '$1 != "src/common/sync.h" {sum += $2} END {print sum + 0}')
annotated_methods=$(grep -rE --include='*.h' --include='*.cpp' \
  -c 'OSRS_(REQUIRES|EXCLUDES|ACQUIRE|RELEASE|TRY_ACQUIRE)\(' src 2>/dev/null \
  | awk -F: '$1 != "src/common/sync.h" {sum += $2} END {print sum + 0}')

echo "sync-annotations: ${mutexes} mutexes, ${guarded_fields} guarded" \
     "fields, ${annotated_methods} annotated methods"

if [[ $failures -gt 0 ]]; then
  echo "sync-annotations: ${failures} unannotated mutex(es)" >&2
  exit 1
fi
echo "sync-annotations: every mutex has at least one annotated user"
