#!/usr/bin/env bash
# Repo-convention linter. Checks, over src/ (and headers in tools/):
#
#   1. include guards: every header under src/ opens with a guard named
#      OSRS_<PATH>_H_ derived from its repo-relative path;
#   2. no `using namespace` at any scope inside headers;
#   3. no stray stdout writes (std::cout / printf / puts) inside src/ —
#      library code reports through Status and the logging macros, stdout
#      belongs to tools/, examples/, and bench/;
#   4. no raw std::chrono::steady_clock::now() in src/solver — solver code
#      times itself through Stopwatch (one ElapsedNanos read) and the
#      obs/trace.h spans, so timing stays consistent and mockable;
#   5. no naked `throw` in src/ outside src/fault — the library's main
#      paths report failures through Status/Result (see README.md,
#      "Failure semantics"); the one sanctioned thrower is the fault
#      subsystem's bad_alloc injection, and the BatchSummarizer boundary
#      only catches, never throws;
#   6. no raw std:: synchronization types (std::mutex, std::lock_guard,
#      std::condition_variable, ...) in src/ outside src/common/sync.h —
#      concurrent code goes through the annotated osrs::Mutex / MutexLock /
#      CondVar wrappers so Clang's -Wthread-safety capability analysis
#      sees every lock (see DESIGN.md, "Static analysis v2");
#   7. annotation coverage (tools/check_sync_annotations.sh): every
#      osrs::Mutex member must have at least one OSRS_GUARDED_BY /
#      OSRS_REQUIRES user naming it, so no lock is invisible to the
#      analysis;
#   8. optionally, when clang-tidy and build/compile_commands.json exist,
#      the curated .clang-tidy pass over every src/ translation unit
#      (skipped with --no-tidy or when either prerequisite is missing);
#   9. no raw stderr logging (std::cerr / fprintf(stderr, ...)) in src/ —
#      diagnostics go through the structured OSRS_LOG macros
#      (src/common/slog.h) so every event is one parseable JSON line; the
#      sanctioned exceptions are the logger's own stderr sink and the
#      OSRS_CHECK abort path in common/logging.h;
#  10. no raw allocation in solver hot paths: `new T[...]` / malloc-family
#      calls, and arithmetic-element std::vector scratch
#      (std::vector<double|float|intN_t|uint8_t|size_t>) are banned in
#      src/solver/ — per-solve scratch comes from the per-thread Arena
#      (src/common/arena.h), so steady-state solves allocate nothing (see
#      DESIGN.md, "Performance architecture"). std::vector<int> stays
#      allowed: selections escape into SummaryResult as owned vectors.
#
# Build trees (build*/ at any depth) and anything they generate are
# excluded from every check.
#
# Usage: tools/lint.sh [--no-tidy]
# Exit: 0 clean, 1 violations found.
set -uo pipefail

cd "$(dirname "$0")/.."

run_tidy=1
if [[ "${1:-}" == "--no-tidy" ]]; then
  run_tidy=0
fi

failures=0

fail() {
  echo "lint: $1" >&2
  failures=$((failures + 1))
}

# Drops matches/paths under any build tree (build/, build-tsan/, nested
# cmake trees) so checked-out sources are the only lint subjects.
not_build() {
  grep -vE '(^|/)build[^/]*/' || true
}

# -- 1. include guards -------------------------------------------------------
while IFS= read -r header; do
  # src/core/model.h -> OSRS_CORE_MODEL_H_
  expected=$(echo "${header#src/}" | tr 'a-z/.' 'A-Z__' )
  expected="OSRS_${expected%_H}_H_"
  if ! grep -q "^#ifndef ${expected}\$" "$header"; then
    fail "$header: missing or misnamed include guard (expected ${expected})"
  elif ! grep -q "^#define ${expected}\$" "$header"; then
    fail "$header: guard ${expected} is never #defined"
  fi
done < <(find src -name '*.h' | not_build | sort)

# -- 2. using namespace in headers -------------------------------------------
while IFS= read -r match; do
  fail "using-namespace in a header: $match"
done < <(grep -rn --include='*.h' -E '^\s*using\s+namespace\b' src \
  | not_build)

# -- 3. stdout writes in library code ----------------------------------------
# std::fprintf(stderr, ...) is the sanctioned diagnostic channel; flag
# std::cout, bare printf/puts, and std::printf.
while IFS= read -r match; do
  fail "stdout write in src/: $match"
done < <(grep -rn --include='*.h' --include='*.cpp' -E \
  'std::cout|[^f.a-zA-Z_]printf\(|^\s*printf\(|std::puts|[^a-zA-Z_.]puts\(' \
  src | not_build | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 4. raw clock reads in solver code ----------------------------------------
# Solvers must go through common/stopwatch.h (or obs/trace.h spans) so all
# timing derives from one ElapsedNanos read.
while IFS= read -r match; do
  fail "raw steady_clock::now() in src/solver (use Stopwatch): $match"
done < <(grep -rn --include='*.h' --include='*.cpp' \
  'steady_clock::now()' src/solver | not_build \
  | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 5. naked throw in library code ------------------------------------------
# Status/Result is the failure channel everywhere except src/fault, whose
# entire purpose is to inject exceptions (bad_alloc) on demand.
while IFS= read -r match; do
  fail "naked throw in src/ (use Status; only src/fault may throw): $match"
done < <(grep -rn --include='*.h' --include='*.cpp' -E '\bthrow\b' src \
  | not_build | grep -v '^src/fault/' \
  | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 6. raw std:: sync types outside src/common/sync.h -----------------------
# The annotated wrappers (osrs::Mutex / MutexLock / ReleasableMutexLock /
# CondVar, src/common/sync.h) are the only sanctioned lock types in src/:
# a raw std::mutex carries no capability, so Clang's -Wthread-safety pass
# cannot check anything it guards. sync.h itself wraps the std types and
# is excluded; std::atomic is allowed (lock-free protocols are TSan's
# territory, see DESIGN.md "Static analysis v2").
while IFS= read -r match; do
  fail "raw std:: sync type in src/ (use common/sync.h wrappers): $match"
done < <(grep -rn --include='*.h' --include='*.cpp' -E \
  'std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable|condition_variable_any)\b' \
  src | not_build | grep -v '^src/common/sync\.h:' \
  | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 7. sync annotation coverage ---------------------------------------------
# Every osrs::Mutex member must be named by at least one annotation, so no
# lock silently escapes the capability analysis.
if ! ./tools/check_sync_annotations.sh; then
  fail "sync annotation coverage check failed (see above)"
fi

# -- 9. raw stderr logging in library code -----------------------------------
# Structured logging (common/slog.h OSRS_LOG macros) is the only sanctioned
# diagnostic channel in src/: ad-hoc std::cerr / fprintf(stderr, ...) lines
# are invisible to log pipelines. The logger's own default sink
# (common/slog.cpp) and the OSRS_CHECK abort path (common/logging.h) are
# the two exceptions.
while IFS= read -r match; do
  fail "raw stderr logging in src/ (use OSRS_LOG, common/slog.h): $match"
done < <(grep -rn --include='*.h' --include='*.cpp' -E \
  'std::cerr|fprintf\s*\(\s*stderr' \
  src | not_build \
  | grep -vE '^src/common/(slog\.(h|cpp)|logging\.h):' \
  | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 10. raw allocation in solver hot paths ----------------------------------
# Solver scratch is arena-backed (common/arena.h, one bump allocator per
# worker thread): raw new[]/malloc and arithmetic-element std::vector
# locals in src/solver reintroduce the per-solve churn this layout removed.
# Owned result vectors (std::vector<int> selections) are the sanctioned
# escape type.
while IFS= read -r match; do
  fail "raw allocation in src/solver (use the per-solve Arena): $match"
done < <(grep -rn --include='*.h' --include='*.cpp' -E \
  '\bnew\s+[A-Za-z_][A-Za-z0-9_:<>, ]*\[|\b(malloc|calloc|realloc)\s*\(|std::vector<\s*(double|float|u?int(8|16|32|64)_t|size_t)\s*>' \
  src/solver | not_build \
  | grep -vE '^[^:]+:[0-9]+: *(//|/\*|\*)' || true)

# -- 8. clang-tidy (optional) ------------------------------------------------
if [[ $run_tidy -eq 1 ]]; then
  if command -v clang-tidy > /dev/null && [[ -f build/compile_commands.json ]]; then
    echo "lint: running clang-tidy over src/ (this takes a while)"
    mapfile -t sources < <(find src -name '*.cpp' | not_build | sort)
    if ! clang-tidy -p build --quiet "${sources[@]}"; then
      fail "clang-tidy reported findings"
    fi
  else
    echo "lint: clang-tidy or build/compile_commands.json missing — skipped"
  fi
fi

if [[ $failures -gt 0 ]]; then
  echo "lint: ${failures} violation(s)" >&2
  exit 1
fi
echo "lint: clean"
