// osrs_stats — solver telemetry probe over a corpus file.
//
// Loads an `# osrs-corpus v1` file, summarizes every item with each
// requested §4 algorithm (stats collection on), and prints the per-phase
// timing breakdown plus the solver progress counters the traces recorded:
// coverage-graph build, heap init, greedy iterations, LP relaxation,
// rounding trials, branch-and-bound, and the matching counters (heap pops,
// simplex pivots, rounding trials, distance evaluations, ...).
//
// Usage: osrs_stats [options] <corpus-file>
//   --json             one JSON object on stdout instead of text
//   --registry         also dump the process-wide metrics registry
//   --registry=<file>  dump a previously exported registry snapshot
//                      (e.g. from `osrs_serve --metrics-file`) instead of
//                      the live one; the corpus file becomes optional
//   --prometheus       render the registry in OpenMetrics text format
//   -k <n>             summary size per item (default 5)
//   --epsilon <e>      sentiment threshold ε (default 0.5)
//   --items <n>        only the first n items (default: all)
//   --granularity <g>  pairs | sentences | reviews (default sentences)
//   --algorithms <csv> subset of greedy,greedy_lazy,ilp,rr,local_search
//                      (default greedy,rr,ilp)
//
// Exit codes: 0 success, 2 usage/IO error.

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/batch_summarizer.h"
#include "api/review_summarizer.h"
#include "common/strings.h"
#include "datagen/corpus_io.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace {

using osrs::BatchEntry;
using osrs::ItemSummary;
using osrs::ReviewSummarizer;
using osrs::ReviewSummarizerOptions;
using osrs::SummaryAlgorithm;

struct StatsOptions {
  bool json = false;
  bool registry = false;
  bool prometheus = false;
  /// Non-empty: dump this exported snapshot file instead of the live
  /// registry (read through the failpoint-aware corpus_io helpers so an
  /// unreadable target is a coded Status, not a silent exit).
  std::string registry_file;
  int k = 5;
  double epsilon = 0.5;
  int64_t max_items = -1;  // -1 = all
  osrs::SummaryGranularity granularity =
      osrs::SummaryGranularity::kSentences;
  std::vector<std::pair<std::string, SummaryAlgorithm>> algorithms = {
      {"greedy", SummaryAlgorithm::kGreedy},
      {"rr", SummaryAlgorithm::kRandomizedRounding},
      {"ilp", SummaryAlgorithm::kIlp},
  };
};

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: osrs_stats [options] <corpus-file>\n"
      "\n"
      "Summarizes every item of the corpus with each requested algorithm\n"
      "and prints per-phase solver timings and progress counters.\n"
      "\n"
      "options:\n"
      "  --json             JSON on stdout instead of text\n"
      "  --registry         also dump the process-wide metrics registry\n"
      "  --registry=<file>  dump an exported registry snapshot instead of\n"
      "                     the live one (corpus file becomes optional)\n"
      "  --prometheus       registry in OpenMetrics text format on stdout\n"
      "  -k <n>             summary size per item (default 5)\n"
      "  --epsilon <e>      sentiment threshold (default 0.5)\n"
      "  --items <n>        only the first n items\n"
      "  --granularity <g>  pairs | sentences | reviews (default sentences)\n"
      "  --algorithms <csv> subset of greedy,greedy_lazy,ilp,rr,\n"
      "                     local_search (default greedy,rr,ilp)\n"
      "  -h, --help         this message\n"
      "\n"
      "exit codes: 0 success, 2 usage or I/O error\n",
      out);
}

bool ParseAlgorithm(std::string_view name, SummaryAlgorithm* out) {
  if (name == "greedy") {
    *out = SummaryAlgorithm::kGreedy;
  } else if (name == "greedy_lazy") {
    *out = SummaryAlgorithm::kGreedyLazy;
  } else if (name == "ilp") {
    *out = SummaryAlgorithm::kIlp;
  } else if (name == "rr") {
    *out = SummaryAlgorithm::kRandomizedRounding;
  } else if (name == "local_search") {
    *out = SummaryAlgorithm::kLocalSearch;
  } else {
    return false;
  }
  return true;
}

bool ParseGranularity(std::string_view name, osrs::SummaryGranularity* out) {
  if (name == "pairs") {
    *out = osrs::SummaryGranularity::kPairs;
  } else if (name == "sentences") {
    *out = osrs::SummaryGranularity::kSentences;
  } else if (name == "reviews") {
    *out = osrs::SummaryGranularity::kReviews;
  } else {
    return false;
  }
  return true;
}

/// Runs one algorithm over (a prefix of) the corpus items and returns one
/// BatchEntry per item, exactly like BatchSummarizer would.
std::vector<BatchEntry> RunAlgorithm(const osrs::Corpus& corpus,
                                     SummaryAlgorithm algorithm,
                                     const StatsOptions& options) {
  ReviewSummarizerOptions summarizer_options;
  summarizer_options.algorithm = algorithm;
  summarizer_options.epsilon = options.epsilon;
  summarizer_options.granularity = options.granularity;
  summarizer_options.collect_stats = true;
  ReviewSummarizer summarizer(&corpus.ontology, summarizer_options);

  size_t limit = corpus.items.size();
  if (options.max_items >= 0 &&
      static_cast<size_t>(options.max_items) < limit) {
    limit = static_cast<size_t>(options.max_items);
  }
  std::vector<BatchEntry> entries(limit);
  for (size_t i = 0; i < limit; ++i) {
    auto result = summarizer.Summarize(corpus.items[i], options.k);
    if (result.ok()) {
      entries[i].summary = std::move(result).value();
    } else {
      entries[i].status = result.status();
    }
  }
  return entries;
}

void PrintText(const std::string& name, const osrs::BatchStats& stats) {
  std::printf("%s: %lld item(s), %lld ok, %lld failed, %lld degraded\n",
              name.c_str(), static_cast<long long>(stats.total),
              static_cast<long long>(stats.ok),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.degraded));
  if (stats.retries > 0 || stats.exhausted_retries > 0 ||
      stats.isolated_exceptions > 0) {
    std::printf(
        "  resilience: %lld retrie(s), %lld exhausted, "
        "%lld isolated exception(s)\n",
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.exhausted_retries),
        static_cast<long long>(stats.isolated_exceptions));
  }
  if (stats.total_ms.total_count > 0) {
    std::printf("  end-to-end: %.3f ms total over %lld solve(s)\n",
                stats.total_ms.sum,
                static_cast<long long>(stats.total_ms.total_count));
  }
  if (!stats.stats.empty()) {
    std::fputs(stats.stats.ToText("  ").c_str(), stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  StatsOptions options;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--registry") {
      options.registry = true;
    } else if (arg.rfind("--registry=", 0) == 0) {
      options.registry = true;
      options.registry_file =
          std::string(arg.substr(std::string_view("--registry=").size()));
      if (options.registry_file.empty()) {
        std::fprintf(stderr, "osrs_stats: --registry= needs a file path\n");
        return 2;
      }
    } else if (arg == "--prometheus") {
      options.prometheus = true;
    } else if (arg == "-k") {
      int64_t k = 0;
      if (i + 1 >= argc || !osrs::ParseInt64(argv[i + 1], &k) || k < 0) {
        std::fprintf(stderr, "osrs_stats: -k needs a non-negative int\n");
        return 2;
      }
      options.k = static_cast<int>(k);
      ++i;
    } else if (arg == "--epsilon") {
      double epsilon = 0.0;
      if (i + 1 >= argc || !osrs::ParseDouble(argv[i + 1], &epsilon) ||
          epsilon <= 0.0) {
        std::fprintf(stderr, "osrs_stats: --epsilon needs a positive value\n");
        return 2;
      }
      options.epsilon = epsilon;
      ++i;
    } else if (arg == "--items") {
      int64_t items = 0;
      if (i + 1 >= argc || !osrs::ParseInt64(argv[i + 1], &items) ||
          items < 0) {
        std::fprintf(stderr, "osrs_stats: --items needs a non-negative int\n");
        return 2;
      }
      options.max_items = items;
      ++i;
    } else if (arg == "--granularity") {
      if (i + 1 >= argc ||
          !ParseGranularity(argv[i + 1], &options.granularity)) {
        std::fprintf(stderr,
                     "osrs_stats: --granularity needs pairs, sentences, "
                     "or reviews\n");
        return 2;
      }
      ++i;
    } else if (arg == "--algorithms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "osrs_stats: --algorithms needs a csv list\n");
        return 2;
      }
      options.algorithms.clear();
      for (const std::string& name : osrs::Split(argv[i + 1], ',')) {
        SummaryAlgorithm algorithm;
        if (!ParseAlgorithm(name, &algorithm)) {
          std::fprintf(stderr, "osrs_stats: unknown algorithm '%s'\n",
                       name.c_str());
          return 2;
        }
        options.algorithms.emplace_back(name, algorithm);
      }
      ++i;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "osrs_stats: unknown option '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (path.empty()) {
      path = std::string(arg);
    } else {
      std::fprintf(stderr, "osrs_stats: more than one corpus file given\n");
      return 2;
    }
  }
  if (options.json && options.prometheus) {
    std::fprintf(stderr,
                 "osrs_stats: --json and --prometheus are exclusive\n");
    return 2;
  }

  // An exported-snapshot dump is read up front through the failpoint-aware
  // corpus_io helpers, so an unreadable target reports a coded Status
  // (kNotFound / kUnavailable) instead of exiting silently.
  std::string registry_snapshot;
  if (!options.registry_file.empty()) {
    auto snapshot = osrs::ReadTextFile(options.registry_file);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "osrs_stats: %s\n",
                   snapshot.status().ToString().c_str());
      return 2;
    }
    registry_snapshot = std::move(snapshot).value();
    // Inspecting a snapshot needs no corpus run.
    if (path.empty()) {
      std::fputs(registry_snapshot.c_str(), stdout);
      return 0;
    }
  }
  if (path.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  auto corpus = osrs::LoadCorpusFromFile(path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "osrs_stats: %s\n",
                 corpus.status().ToString().c_str());
    return 2;
  }

  // The registry accrues the process-wide osrs.* counters while the
  // per-solve traces feed ItemSummary::stats.
  osrs::obs::MetricsRegistry::Global().SetEnabled(true);

  std::vector<std::pair<std::string, osrs::BatchStats>> results;
  results.reserve(options.algorithms.size());
  for (const auto& [name, algorithm] : options.algorithms) {
    std::vector<BatchEntry> entries =
        RunAlgorithm(*corpus, algorithm, options);
    results.emplace_back(name, osrs::AggregateBatchStats(entries));
  }

  if (options.prometheus) {
    std::fputs(osrs::obs::RenderGlobalOpenMetrics().c_str(), stdout);
    return 0;
  }

  if (options.json) {
    std::string out = osrs::StrFormat(
        "{\"file\":\"%s\",\"k\":%d,\"epsilon\":%g,\"compiled_in\":%s,"
        "\"algorithms\":{",
        osrs::JsonEscape(path).c_str(), options.k, options.epsilon,
        osrs::obs::kCompiledIn ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out += ',';
      out += osrs::StrFormat("\"%s\":%s",
                             osrs::JsonEscape(results[i].first).c_str(),
                             results[i].second.ToJson().c_str());
    }
    out += '}';
    if (!options.registry_file.empty()) {
      out += osrs::StrFormat(
          ",\"registry_file\":\"%s\",\"registry_snapshot\":\"%s\"",
          osrs::JsonEscape(options.registry_file).c_str(),
          osrs::JsonEscape(registry_snapshot).c_str());
    } else if (options.registry) {
      out += ",\"registry\":";
      out += osrs::obs::MetricsRegistry::Global().ToJson();
    }
    out += "}\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  std::printf("%s: %zu item(s), k=%d, epsilon=%g%s\n", path.c_str(),
              corpus->items.size(), options.k, options.epsilon,
              osrs::obs::kCompiledIn
                  ? ""
                  : " (telemetry compiled out: -DOSRS_OBS=OFF)");
  for (const auto& [name, stats] : results) {
    PrintText(name, stats);
  }
  if (!options.registry_file.empty()) {
    std::printf("registry (%s):\n", options.registry_file.c_str());
    std::fputs(registry_snapshot.c_str(), stdout);
  } else if (options.registry) {
    std::fputs("registry:\n", stdout);
    std::fputs(osrs::obs::MetricsRegistry::Global().ToText().c_str(),
               stdout);
  }
  return 0;
}
