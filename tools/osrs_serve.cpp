// osrs_serve — the serving-layer daemon/CLI over one review corpus.
//
// Loads an `# osrs-corpus v1` file (or generates the synthetic cell-phone
// corpus when no file is given) and serves per-item summaries through
// SummaryServer: bounded queue with admission control, deadline-aware load
// shedding, single-flight request coalescing, and the epoch-keyed summary
// cache. Two modes:
//
//   * interactive (default) — a line protocol on stdin, one command per
//     line, until EOF/quit. The "connections" of the daemon:
//       get <item-id> [k]   serve a summary (outcome + entries)
//       bump                bump the corpus epoch (invalidates the cache)
//       stats               counters, cache stats, p50 solve cost
//       metrics             the registry in OpenMetrics text format
//       traces              recent request traces, one JSON line each
//       snapshot            force journal compaction into a fresh snapshot
//       drain               graceful drain (then the session ends)
//       quit
//   * --drive <n> — a closed-loop load driver: <n> requests issued from
//     --clients concurrent client threads round-robin over the items,
//     then the counters (and the accounting identity
//     submitted == admitted + rejected, admitted == completed+shed+failed)
//     are printed/checked. Exit 1 when the identity is violated. With
//     --state-dir the run finishes with a durability self-test: graceful
//     drain (final snapshot), restart from the state dir alone, and a
//     verification that the recovered epoch/items match and a fresh solve
//     succeeds.
//
// Durability: --state-dir <dir> persists the corpus (checksummed
// snapshots + an epoch-mutation journal, see store/state_store.h) and
// recovers committed state on startup. SIGTERM/SIGINT trigger a graceful
// drain — stop admitting, drain the queue within --drain-deadline-ms,
// write a final snapshot — and exit 0.
//
// Metrics export: --metrics-file <path> writes an OpenMetrics snapshot of
// the registry at exit (and, with --metrics-interval <sec>, periodically
// from a background thread that also logs a structured delta report).
//
// Exit codes: 0 success, 1 accounting violation (--drive), 2 usage/IO
// (corrupt durable state included).

#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/slog.h"
#include "common/strings.h"
#include "common/sync.h"
#include "datagen/cellphone_corpus.h"
#include "datagen/corpus_io.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/request_trace.h"
#include "serve/server.h"
#include "store/journal.h"

namespace {

using osrs::serve::ServeOutcome;
using osrs::serve::ServeOutcomeToString;
using osrs::serve::ServeRequest;
using osrs::serve::ServeResponse;
using osrs::serve::ServerCounters;
using osrs::serve::SummaryServer;

struct CliOptions {
  std::string path;  // empty = synthetic corpus
  double scale = 0.05;
  int64_t drive = -1;       // -1 = interactive
  int64_t mutate_every = 0;  // --drive: mutate after every n requests; 0=off
  int clients = 8;
  int k = 5;
  bool json = false;
  std::string metrics_file;       // empty = no file export
  double metrics_interval = 0.0;  // seconds; <= 0 = export at exit only
  osrs::serve::ServeOptions serve;
};

/// Set by the SIGTERM/SIGINT handler; the main loop observes it after the
/// interrupted read and runs the graceful-drain path. sig_atomic_t is the
/// only type async-signal-safe to write from a handler.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void HandleShutdownSignal(int signum) { g_shutdown_signal = signum; }

void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = &HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: the blocking stdin read must return (EINTR) so the
  // drain actually starts instead of waiting for the next input line.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// Periodic OpenMetrics exporter: every interval it snapshots the global
/// registry, writes the rendered text to `path` (when set, through the
/// failpoint-aware corpus_io helper), and logs one structured
/// "metrics report" event with the counter deltas since the last tick.
/// `ExportOnce` is also the final-flush entry point — --drive calls it
/// after the load run so ci can validate a deterministic snapshot.
class MetricsExporter {
 public:
  MetricsExporter(std::string path, double interval_seconds)
      : path_(std::move(path)) {
    if (interval_seconds > 0.0) {
      interval_ms_ = interval_seconds * 1000.0;
      thread_ = std::thread([this] { Loop(); });
    }
  }

  ~MetricsExporter() {
    if (!thread_.joinable()) return;
    {
      osrs::MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  osrs::Status ExportOnce() {
    osrs::obs::RegistrySnapshot snapshot =
        osrs::obs::MetricsRegistry::Global().Snapshot();
    int64_t changed = 0;
    int64_t delta_total = 0;
    {
      osrs::MutexLock lock(mutex_);
      for (const auto& counter : snapshot.counters) {
        auto [it, inserted] = last_counters_.emplace(counter.name, 0);
        int64_t delta = counter.value - it->second;
        if (delta != 0) {
          ++changed;
          delta_total += delta;
          it->second = counter.value;
        }
      }
    }
    osrs::Status status;
    if (!path_.empty()) {
      status = osrs::WriteTextFile(path_, osrs::obs::RenderOpenMetrics(snapshot));
    }
    OSRS_LOG(::osrs::slog::Level::kInfo, "serve", "metrics report",
             {"file", path_}, {"counters", snapshot.counters.size()},
             {"changed", changed}, {"delta_total", delta_total},
             {"write_ok", status.ok()});
    return status;
  }

 private:
  void Loop() {
    for (;;) {
      {
        osrs::MutexLock lock(mutex_);
        // WaitForMs returns false on timeout — a tick; true wake-ups are
        // either stop requests or spurious (re-wait the full interval).
        while (!stopping_ && cv_.WaitForMs(mutex_, interval_ms_)) {
        }
        if (stopping_) return;
      }
      osrs::Status status = ExportOnce();
      if (!status.ok()) {
        OSRS_LOG(::osrs::slog::Level::kError, "serve",
                 "metrics export failed",
                 {"file", path_}, {"detail", status.message()});
      }
    }
  }

  const std::string path_;
  double interval_ms_ = 0.0;
  osrs::Mutex mutex_;
  osrs::CondVar cv_;
  bool stopping_ OSRS_GUARDED_BY(mutex_) = false;
  std::map<std::string, int64_t> last_counters_ OSRS_GUARDED_BY(mutex_);
  std::thread thread_;
};

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: osrs_serve [options] [<corpus-file>]\n"
      "\n"
      "Serves per-item summaries from a SummaryServer (bounded queue,\n"
      "admission control, load shedding, coalescing, epoch-keyed cache).\n"
      "Without a corpus file a synthetic cell-phone corpus is generated.\n"
      "\n"
      "modes:\n"
      "  (default)           interactive stdin protocol:\n"
      "                        get <item-id> [k] | bump | stats |\n"
      "                        metrics | traces | snapshot | drain | quit\n"
      "  --drive <n>         issue n requests from --clients threads,\n"
      "                      print counters, verify accounting (with\n"
      "                      --state-dir: drain, restart, verify recovery)\n"
      "  --mutate-every <n>  in --drive mode, interleave one mutation\n"
      "                      (item update or epoch bump, alternating)\n"
      "                      per n requests — exercises the journal\n"
      "\n"
      "durability:\n"
      "  --state-dir <dir>   persist snapshots + mutation journal in dir\n"
      "                      (must exist); recover committed state at boot\n"
      "  --fsync-policy <p>  always | interval | never (default always)\n"
      "  --fsync-interval-ms <ms>\n"
      "                      max fsync gap under the interval policy\n"
      "  --compact-bytes <n> journal size triggering compaction\n"
      "  --drain-deadline-ms <ms>\n"
      "                      graceful-drain budget (SIGTERM/SIGINT, drain)\n"
      "  --watchdog-ms <ms>  cancel solves stalled longer than ms (0=off)\n"
      "\n"
      "options:\n"
      "  --threads <n>       solver worker threads (default: hardware)\n"
      "  --clients <n>       --drive client threads (default 8)\n"
      "  --queue <n>         max queue depth (default 256)\n"
      "  --max-wait-ms <ms>  admission bound on estimated wait\n"
      "  --deadline-ms <ms>  default per-request deadline\n"
      "  --cache <n>         summary cache capacity (default 1024)\n"
      "  --no-stale          never serve stale degraded summaries\n"
      "  --scale <s>         synthetic corpus scale (default 0.05)\n"
      "  -k <n>              summary size (default 5)\n"
      "  --json              counters as JSON instead of text\n"
      "  --metrics-file <f>  write an OpenMetrics registry snapshot to f\n"
      "                      at exit (and on every exporter tick)\n"
      "  --metrics-interval <sec>\n"
      "                      periodic export + structured delta report\n"
      "  --slow-ms <ms>      log the full span tree of requests slower\n"
      "                      than ms (0 = off)\n"
      "  --trace-ring <n>    recent-trace ring capacity (default 128)\n"
      "  -h, --help          this message\n"
      "\n"
      "exit codes: 0 success, 1 accounting violation, 2 usage or I/O\n",
      out);
}

void PrintStats(const SummaryServer& server, bool json) {
  ServerCounters counters = server.counters();
  osrs::serve::CacheStats cache = server.cache_stats();
  if (json) {
    std::printf(
        "{\"counters\":%s,\"cache\":{\"entries\":%lld,\"hits\":%lld,"
        "\"misses\":%lld,\"stale_hits\":%lld,\"evictions\":%lld},"
        "\"p50_solve_ms\":%.3f,\"epoch\":%llu,\"workers\":%d}\n",
        counters.ToJson().c_str(), static_cast<long long>(cache.entries),
        static_cast<long long>(cache.hits),
        static_cast<long long>(cache.misses),
        static_cast<long long>(cache.stale_hits),
        static_cast<long long>(cache.evictions), server.p50_solve_ms(),
        static_cast<unsigned long long>(server.epoch()),
        server.num_workers());
    return;
  }
  std::printf(
      "requests: %lld submitted, %lld admitted, %lld rejected\n"
      "outcomes: %lld completed, %lld shed, %lld failed "
      "(%lld coalesced, %lld cache hits, %lld degraded)\n"
      "solves:   %lld (p50 %.2f ms, %d workers, epoch %llu)\n"
      "cache:    %lld entries, %lld hits / %lld misses, %lld stale hits, "
      "%lld evictions\n",
      static_cast<long long>(counters.submitted),
      static_cast<long long>(counters.admitted),
      static_cast<long long>(counters.rejected),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.failed),
      static_cast<long long>(counters.coalesced),
      static_cast<long long>(counters.cache_hits),
      static_cast<long long>(counters.degraded),
      static_cast<long long>(counters.solves), server.p50_solve_ms(),
      server.num_workers(), static_cast<unsigned long long>(server.epoch()),
      static_cast<long long>(cache.entries),
      static_cast<long long>(cache.hits),
      static_cast<long long>(cache.misses),
      static_cast<long long>(cache.stale_hits),
      static_cast<long long>(cache.evictions));
}

int RunInteractive(SummaryServer& server, const CliOptions& options) {
  std::string line;
  char buffer[4096];
  for (;;) {
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) {
      // EOF or a signal-interrupted read; either way the loop is done.
      // The caller handles g_shutdown_signal (graceful drain).
      std::clearerr(stdin);
      break;
    }
    if (g_shutdown_signal != 0) break;
    line.assign(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    std::vector<std::string> parts = osrs::Split(line, ' ');
    if (parts.empty() || parts[0].empty()) continue;
    const std::string& command = parts[0];
    if (command == "quit" || command == "exit") break;
    if (command == "bump") {
      std::printf("epoch %llu\n",
                  static_cast<unsigned long long>(server.BumpEpoch()));
      continue;
    }
    if (command == "stats") {
      PrintStats(server, options.json);
      continue;
    }
    if (command == "metrics") {
      std::fputs(osrs::obs::RenderGlobalOpenMetrics().c_str(), stdout);
      continue;
    }
    if (command == "traces") {
      std::vector<osrs::obs::RequestTrace> traces = server.recent_traces();
      for (const osrs::obs::RequestTrace& trace : traces) {
        std::printf("%s\n", trace.ToJson().c_str());
      }
      std::printf("# %zu trace(s)\n", traces.size());
      continue;
    }
    if (command == "snapshot") {
      osrs::Status status = server.ForceSnapshot();
      if (status.ok()) {
        std::printf("snapshot written (journal compacted)\n");
      } else {
        std::printf("snapshot failed: %s\n", status.ToString().c_str());
      }
      continue;
    }
    if (command == "drain") {
      bool drained = server.Drain();
      std::printf("drain %s\n",
                  drained ? "complete" : "deadline expired (remainder shed)");
      // The server is stopped after a drain; the session is over.
      break;
    }
    if (command == "get") {
      if (parts.size() < 2) {
        std::fputs("error: get needs an item id\n", stdout);
        continue;
      }
      ServeRequest request;
      request.item_id = parts[1];
      request.k = options.k;
      if (parts.size() >= 3) {
        int64_t k = 0;
        if (!osrs::ParseInt64(parts[2], &k) || k < 0) {
          std::fputs("error: k must be a non-negative int\n", stdout);
          continue;
        }
        request.k = static_cast<int>(k);
      }
      ServeResponse response = server.Serve(request);
      if (!response.status.ok()) {
        std::printf("%s: %s\n", ServeOutcomeToString(response.outcome),
                    response.status.ToString().c_str());
        continue;
      }
      std::printf("%s%s (epoch %llu, %.2f ms):\n",
                  ServeOutcomeToString(response.outcome),
                  response.degraded ? " [degraded]" : "",
                  static_cast<unsigned long long>(response.epoch),
                  response.total_ms);
      for (const osrs::SummaryEntry& entry : response.summary.entries) {
        std::printf("  %s\n", entry.display.c_str());
      }
      continue;
    }
    std::printf(
        "error: unknown command '%s' "
        "(get/bump/stats/metrics/traces/snapshot/drain/quit)\n",
        command.c_str());
  }
  return 0;
}

int RunDrive(SummaryServer& server, const std::vector<std::string>& item_ids,
             const osrs::Item& mutation_template, const CliOptions& options) {
  int clients = options.clients > 0 ? options.clients : 1;
  int64_t total = options.drive;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &item_ids, &mutation_template, &options,
                          total, clients, c] {
      int64_t mutations = 0;
      for (int64_t i = c; i < total; i += clients) {
        // Client 0 interleaves mutations with its load so --drive also
        // exercises the journal write path (and, under ci fault
        // schedules, journal failure handling) instead of only reads.
        // Alternating update/bump covers both journal record types; the
        // update rewrites an existing id so the restart self-test's
        // snapshot_items count stays equal to the corpus size.
        if (c == 0 && options.mutate_every > 0 &&
            i % options.mutate_every == 0) {
          if (++mutations % 2 == 0) {
            server.BumpEpoch();
          } else {
            osrs::Item mutated = mutation_template;
            if (!mutated.reviews.empty() &&
                !mutated.reviews.front().sentences.empty()) {
              mutated.reviews.front().sentences.front().text +=
                  " [rev " + std::to_string(mutations) + "]";
            }
            server.UpdateItem(std::move(mutated));
          }
        }
        ServeRequest request;
        request.item_id = item_ids[static_cast<size_t>(i) % item_ids.size()];
        request.k = options.k;
        (void)server.Serve(request);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PrintStats(server, options.json);
  ServerCounters counters = server.counters();
  if (counters.submitted != counters.admitted + counters.rejected ||
      counters.admitted !=
          counters.completed + counters.shed + counters.failed) {
    std::fputs("osrs_serve: accounting identity violated\n", stderr);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.serve.summarizer.collect_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next_int = [&](const char* flag, int64_t* out) {
      if (i + 1 >= argc || !osrs::ParseInt64(argv[i + 1], out) || *out < 0) {
        std::fprintf(stderr, "osrs_serve: %s needs a non-negative int\n",
                     flag);
        return false;
      }
      ++i;
      return true;
    };
    auto next_double = [&](const char* flag, double* out) {
      if (i + 1 >= argc || !osrs::ParseDouble(argv[i + 1], out) ||
          *out < 0.0) {
        std::fprintf(stderr, "osrs_serve: %s needs a non-negative number\n",
                     flag);
        return false;
      }
      ++i;
      return true;
    };
    int64_t value = 0;
    if (arg == "--drive") {
      if (!next_int("--drive", &options.drive)) return 2;
    } else if (arg == "--mutate-every") {
      if (!next_int("--mutate-every", &options.mutate_every)) return 2;
    } else if (arg == "--threads") {
      if (!next_int("--threads", &value)) return 2;
      options.serve.num_threads = static_cast<int>(value);
    } else if (arg == "--clients") {
      if (!next_int("--clients", &value)) return 2;
      options.clients = static_cast<int>(value);
    } else if (arg == "--queue") {
      if (!next_int("--queue", &value) || value == 0) {
        std::fprintf(stderr, "osrs_serve: --queue needs a positive int\n");
        return 2;
      }
      options.serve.max_queue_depth = static_cast<size_t>(value);
    } else if (arg == "--max-wait-ms") {
      if (!next_double("--max-wait-ms", &options.serve.max_estimated_wait_ms))
        return 2;
    } else if (arg == "--deadline-ms") {
      if (!next_double("--deadline-ms", &options.serve.default_deadline_ms))
        return 2;
    } else if (arg == "--cache") {
      if (!next_int("--cache", &value)) return 2;
      options.serve.cache_capacity = static_cast<size_t>(value);
    } else if (arg == "--no-stale") {
      options.serve.serve_stale_when_over_budget = false;
    } else if (arg == "--state-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "osrs_serve: --state-dir needs a directory\n");
        return 2;
      }
      options.serve.state_dir = argv[++i];
    } else if (arg == "--fsync-policy") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "osrs_serve: --fsync-policy needs "
                     "always|interval|never\n");
        return 2;
      }
      auto policy = osrs::store::ParseFsyncPolicy(argv[++i]);
      if (!policy.ok()) {
        std::fprintf(stderr, "osrs_serve: %s\n",
                     policy.status().ToString().c_str());
        return 2;
      }
      options.serve.fsync_policy = *policy;
    } else if (arg == "--fsync-interval-ms") {
      if (!next_int("--fsync-interval-ms", &value)) return 2;
      options.serve.fsync_interval_ms = static_cast<uint64_t>(value);
    } else if (arg == "--compact-bytes") {
      if (!next_int("--compact-bytes", &value)) return 2;
      options.serve.journal_compact_threshold_bytes =
          static_cast<uint64_t>(value);
    } else if (arg == "--drain-deadline-ms") {
      if (!next_double("--drain-deadline-ms",
                       &options.serve.drain_deadline_ms))
        return 2;
    } else if (arg == "--watchdog-ms") {
      if (!next_double("--watchdog-ms",
                       &options.serve.watchdog_stall_threshold_ms))
        return 2;
    } else if (arg == "--metrics-file") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "osrs_serve: --metrics-file needs a path\n");
        return 2;
      }
      options.metrics_file = argv[++i];
    } else if (arg == "--metrics-interval") {
      if (!next_double("--metrics-interval", &options.metrics_interval))
        return 2;
    } else if (arg == "--slow-ms") {
      if (!next_double("--slow-ms",
                       &options.serve.slow_request_threshold_ms))
        return 2;
    } else if (arg == "--trace-ring") {
      if (!next_int("--trace-ring", &value)) return 2;
      options.serve.trace_ring_capacity = static_cast<size_t>(value);
    } else if (arg == "--scale") {
      if (!next_double("--scale", &options.scale)) return 2;
    } else if (arg == "-k") {
      if (!next_int("-k", &value)) return 2;
      options.k = static_cast<int>(value);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "osrs_serve: unknown option '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (options.path.empty()) {
      options.path = std::string(arg);
    } else {
      std::fprintf(stderr, "osrs_serve: more than one corpus file given\n");
      return 2;
    }
  }

  osrs::Corpus corpus;
  if (options.path.empty()) {
    osrs::CellPhoneCorpusOptions corpus_options;
    corpus_options.scale = options.scale;
    corpus = osrs::GenerateCellPhoneCorpus(corpus_options);
  } else {
    auto loaded = osrs::LoadCorpusFromFile(options.path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "osrs_serve: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    corpus = std::move(loaded).value();
  }
  if (corpus.items.empty()) {
    std::fputs("osrs_serve: corpus has no items\n", stderr);
    return 2;
  }

  std::vector<std::string> item_ids;
  item_ids.reserve(corpus.items.size());
  for (const osrs::Item& item : corpus.items) item_ids.push_back(item.id);
  // Kept out of the server so --mutate-every can rewrite a real item
  // (same id, tweaked text) after corpus.items is moved away.
  osrs::Item mutation_template = corpus.items.front();

  osrs::obs::MetricsRegistry::Global().SetEnabled(true);
  InstallSignalHandlers();
  auto server = std::make_unique<SummaryServer>(
      &corpus.ontology, std::move(corpus.items), options.serve);
  if (!server->recovery_status().ok()) {
    // Corrupt durable state is kDataLoss — refuse to serve rather than
    // silently run non-durable atop (or without) the committed state.
    std::fprintf(stderr, "osrs_serve: state recovery failed: %s\n",
                 server->recovery_status().ToString().c_str());
    return 2;
  }
  if (server->persistence_enabled()) {
    std::fprintf(stderr, "osrs_serve: recovered %s\n",
                 server->recovery_info().ToJson().c_str());
  }
  std::fprintf(stderr, "osrs_serve: %zu item(s), %d worker(s), queue %zu\n",
               item_ids.size(), server->num_workers(),
               options.serve.max_queue_depth);

  bool exporting =
      !options.metrics_file.empty() || options.metrics_interval > 0.0;
  MetricsExporter exporter(options.metrics_file, options.metrics_interval);

  int code = options.drive >= 0
                 ? RunDrive(*server, item_ids, mutation_template, options)
                 : RunInteractive(*server, options);

  if (g_shutdown_signal != 0) {
    // Graceful shutdown: stop admitting, drain within the deadline, write
    // the final snapshot (inside Drain), exit 0 — SIGTERM is routine
    // operations, not an error.
    bool drained = server->Drain();
    std::fprintf(stderr, "osrs_serve: signal %d: drain %s\n",
                 static_cast<int>(g_shutdown_signal),
                 drained ? "complete" : "deadline expired");
  } else if (code == 0 && options.drive >= 0 &&
             server->persistence_enabled()) {
    // Durability self-test: drain (final snapshot), restart from the state
    // dir ALONE (no initial corpus), and verify the recovered state serves.
    uint64_t epoch_before = server->epoch();
    bool drained = server->Drain();
    server.reset();
    SummaryServer restarted(&corpus.ontology, {}, options.serve);
    ServeRequest probe;
    probe.item_id = item_ids[0];
    probe.k = options.k;
    ServeResponse response = restarted.Serve(probe);
    bool ok = restarted.recovery_status().ok() &&
              restarted.recovery_info().found_snapshot &&
              restarted.recovery_info().snapshot_items == item_ids.size() &&
              restarted.epoch() == epoch_before && response.status.ok() &&
              response.outcome == ServeOutcome::kSolved;
    std::fprintf(stderr,
                 "osrs_serve: restart check %s (drain %s, recovered %s, "
                 "epoch %llu -> %llu, probe %s)\n",
                 ok ? "passed" : "FAILED", drained ? "complete" : "timeout",
                 restarted.recovery_info().ToJson().c_str(),
                 static_cast<unsigned long long>(epoch_before),
                 static_cast<unsigned long long>(restarted.epoch()),
                 ServeOutcomeToString(response.outcome));
    if (!ok) code = 1;
  }

  // Final flush: --drive runs (and interactive sessions) always leave one
  // complete snapshot behind, so ci can validate the exported format
  // deterministically regardless of the exporter tick phase.
  if (exporting) {
    osrs::Status status = exporter.ExportOnce();
    if (!status.ok()) {
      std::fprintf(stderr, "osrs_serve: metrics export: %s\n",
                   status.ToString().c_str());
      if (code == 0) code = 2;
    }
  }
  return code;
}
