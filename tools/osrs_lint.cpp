// osrs_lint — static validator for OSRS data files.
//
// Validates corpus files (`# osrs-corpus v1`), ontology files
// (`# osrs-ontology v1`), and review TSV files (the summarize_file
// format: "<rating>\t<text>" lines with "@item <id>" separators) without
// loading them through the strict parsers, so structural problems the
// library refuses to represent — ontology cycles, dangling concept
// references, NaN sentiments — surface as stable OSRS-XXX-NNN diagnostics
// instead of a single parse error or a crash.
//
// Usage: osrs_lint [options] <file>...
//   --json          one JSON object per file (JSON Lines) instead of text
//   --werror        warnings also fail the exit code
//   --max-depth <n> hierarchy depth bound (default 64)
//   --quiet         per-file summary lines only, no individual findings
//
// Exit codes: 0 all files clean, 1 validation findings, 2 usage/IO error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "validate/model_validator.h"
#include "validate/validation_report.h"

namespace {

using osrs::ModelValidator;
using osrs::ModelValidatorOptions;
using osrs::ValidationFinding;
using osrs::ValidationReport;

struct LintOptions {
  bool json = false;
  bool werror = false;
  bool quiet = false;
  ModelValidatorOptions validator;
};

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: osrs_lint [options] <file>...\n"
      "\n"
      "Validates OSRS corpus, ontology, and review-TSV files; prints\n"
      "structured findings (stable OSRS-XXX-NNN codes, see README.md).\n"
      "\n"
      "options:\n"
      "  --json          one JSON object per file (JSON Lines)\n"
      "  --werror        warnings also fail the exit code\n"
      "  --max-depth <n> hierarchy depth warning bound (default 64)\n"
      "  --quiet         summary lines only, no individual findings\n"
      "  -h, --help      this message\n"
      "\n"
      "exit codes: 0 clean, 1 validation findings, 2 usage or I/O error\n",
      out);
}

/// Validates the "<rating>\t<text>" / "@item <id>" review format the
/// examples consume. Codes: OSRS-TSV-001 malformed line (error),
/// OSRS-TSV-002 rating outside [-1, 1] (warning), OSRS-TSV-003 empty
/// review text (warning), OSRS-TSV-004 "@item" without an id (warning).
ValidationReport ValidateReviewTsv(std::string_view text,
                                   const ModelValidator& validator) {
  ValidationReport report = validator.MakeReport();
  size_t line_number = 0;
  for (const std::string& raw_line : osrs::Split(text, '\n')) {
    ++line_number;
    std::string_view line = osrs::Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::string location = osrs::StrFormat("line %zu", line_number);
    if (osrs::StartsWith(line, "@item")) {
      if (osrs::Trim(line.substr(5)).empty()) {
        report.AddWarning("OSRS-TSV-004", location,
                          "'@item' without an item id");
      }
      continue;
    }
    std::vector<std::string> fields = osrs::Split(line, '\t');
    double rating = 0.0;
    if (fields.size() < 2 || !osrs::ParseDouble(fields[0], &rating)) {
      report.AddError("OSRS-TSV-001", location,
                      "malformed line: expected '<rating><TAB><text>'");
      continue;
    }
    if (!std::isfinite(rating) || std::abs(rating) > 1.0) {
      report.AddWarning(
          "OSRS-TSV-002", location,
          osrs::StrFormat("rating %g outside the normalized scale [-1, 1]",
                          rating));
    }
    if (osrs::Trim(fields[1]).empty()) {
      report.AddWarning("OSRS-TSV-003", location, "empty review text");
    }
  }
  return report;
}

/// First non-empty, non-comment payload line decides the format; explicit
/// headers win.
const char* SniffFormat(std::string_view text) {
  for (const std::string& raw_line : osrs::Split(text, '\n')) {
    std::string_view line = osrs::Trim(raw_line);
    if (line.empty()) continue;
    if (osrs::StartsWith(line, "# osrs-corpus")) return "corpus";
    if (osrs::StartsWith(line, "# osrs-ontology")) return "ontology";
    if (line[0] == '#') continue;
    if (osrs::StartsWith(line, "@item")) return "review-tsv";
    if (line.size() >= 2 && line[1] == '\t') {
      switch (line[0]) {
        case 'C':
        case 'E':
          return "ontology";
        case 'D':
        case 'O':
        case 'I':
        case 'R':
        case 'S':
          return "corpus";
        default:
          break;
      }
    }
    double rating = 0.0;
    size_t tab = line.find('\t');
    if (tab != std::string_view::npos &&
        osrs::ParseDouble(line.substr(0, tab), &rating)) {
      return "review-tsv";
    }
    return nullptr;
  }
  return nullptr;
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *contents = buffer.str();
  return true;
}

void PrintReport(const std::string& path, const char* format,
                 const ValidationReport& report, const LintOptions& options) {
  if (options.json) {
    std::printf("{\"file\":\"%s\",\"format\":\"%s\",\"report\":%s}\n",
                osrs::JsonEscape(path).c_str(), format,
                report.ToJson().c_str());
    return;
  }
  if (report.empty()) {
    std::printf("%s: clean (%s)\n", path.c_str(), format);
    return;
  }
  std::printf("%s (%s):\n", path.c_str(), format);
  if (!options.quiet) {
    for (const ValidationFinding& finding : report.findings()) {
      std::printf("  %s\n", finding.ToString().c_str());
    }
    if (report.dropped() > 0) {
      std::printf("  (%zu further finding(s) dropped at the cap)\n",
                  report.dropped());
    }
  }
  std::printf("  %zu error(s), %zu warning(s)\n", report.error_count(),
              report.warning_count());
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--max-depth") {
      int64_t depth = 0;
      if (i + 1 >= argc || !osrs::ParseInt64(argv[i + 1], &depth) ||
          depth <= 0) {
        std::fprintf(stderr, "osrs_lint: --max-depth needs a positive int\n");
        return 2;
      }
      options.validator.max_depth = static_cast<int>(depth);
      ++i;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "osrs_lint: unknown option '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  ModelValidator validator(options.validator);
  bool any_errors = false;
  bool any_warnings = false;
  for (const std::string& path : paths) {
    std::string contents;
    if (!ReadFile(path, &contents)) {
      std::fprintf(stderr, "osrs_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    const char* format = SniffFormat(contents);
    if (format == nullptr) {
      std::fprintf(stderr,
                   "osrs_lint: '%s' is not a recognized corpus, ontology, "
                   "or review-TSV file\n",
                   path.c_str());
      return 2;
    }
    ValidationReport report;
    if (std::strcmp(format, "corpus") == 0) {
      report = validator.ValidateCorpusText(contents);
    } else if (std::strcmp(format, "ontology") == 0) {
      report = validator.ValidateOntologyText(contents);
    } else {
      report = ValidateReviewTsv(contents, validator);
    }
    PrintReport(path, format, report, options);
    any_errors = any_errors || report.error_count() > 0;
    any_warnings = any_warnings || report.warning_count() > 0;
  }
  if (any_errors || (options.werror && any_warnings)) return 1;
  return 0;
}
