#ifndef OSRS_BASELINES_MOST_POPULAR_H_
#define OSRS_BASELINES_MOST_POPULAR_H_

#include <string>

#include "baselines/sentence_selector.h"

namespace osrs {

/// "Most popular" baseline adapted from Hu & Liu [9] (§5.3): count
/// (aspect, polarity) pairs over all sentences — polarity is the boolean
/// sign of the sentiment, exactly the simplification the paper argues
/// against — then take the k most popular pairs and return one containing
/// sentence for each (the sentence where that aspect's sentiment is most
/// polarized, skipping already-used sentences).
class MostPopularSelector : public SentenceSelector {
 public:
  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "Most popular"; }
};

}  // namespace osrs

#endif  // OSRS_BASELINES_MOST_POPULAR_H_
