#ifndef OSRS_BASELINES_PROPORTIONAL_H_
#define OSRS_BASELINES_PROPORTIONAL_H_

#include <string>

#include "baselines/sentence_selector.h"

namespace osrs {

/// "Proportional" baseline adapted from Blair-Goldensohn et al. [3] (§5.3):
/// the k summary slots are allocated to (aspect, polarity) pairs
/// proportionally to their frequency (largest-remainder apportionment,
/// deterministic), and each slot is filled with the most extremely
/// polarized unused sentence mentioning that pair.
class ProportionalSelector : public SentenceSelector {
 public:
  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "Proportional"; }
};

}  // namespace osrs

#endif  // OSRS_BASELINES_PROPORTIONAL_H_
