#ifndef OSRS_BASELINES_LSA_H_
#define OSRS_BASELINES_LSA_H_

#include <string>

#include "baselines/sentence_selector.h"

namespace osrs {

/// LSA-based summarizer (Steinberger & Jezek [24]): SVD of the TF-IDF
/// term-sentence matrix; each sentence is scored by the length of its
/// representation in the top-r latent topic space,
/// score(s) = sqrt(Σ_t σ_t² v_{s,t}²), and the top k sentences win.
/// The truncated SVD is computed by orthogonal (subspace) iteration on the
/// sentence-side Gram matrix. Sentiment-agnostic baseline of §5.3.
class LsaSelector : public SentenceSelector {
 public:
  /// `topics` is the truncation rank r.
  explicit LsaSelector(int topics = 5) : topics_(topics) {}

  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "LSA"; }

 private:
  int topics_;
};

}  // namespace osrs

#endif  // OSRS_BASELINES_LSA_H_
