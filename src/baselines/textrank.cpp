#include "baselines/textrank.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "baselines/pagerank.h"
#include "common/strings.h"
#include "text/stopwords.h"

namespace osrs {
namespace {

std::unordered_set<std::string> ContentWords(
    const std::vector<std::string>& tokens) {
  std::unordered_set<std::string> words;
  for (const std::string& token : tokens) {
    if (!IsStopword(token) && token.size() > 1) words.insert(token);
  }
  return words;
}

/// Mihalcea & Tarau similarity: |overlap| / (log|a| + log|b|).
double Similarity(const std::unordered_set<std::string>& a,
                  const std::unordered_set<std::string>& b) {
  if (a.size() <= 1 || b.size() <= 1) return 0.0;
  size_t overlap = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (const std::string& word : small) {
    if (large.count(word)) ++overlap;
  }
  if (overlap == 0) return 0.0;
  return static_cast<double>(overlap) /
         (std::log(static_cast<double>(a.size())) +
          std::log(static_cast<double>(b.size())));
}

}  // namespace

Result<std::vector<int>> TextRankSelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));
  const size_t n = sentences.size();
  std::vector<std::unordered_set<std::string>> bags;
  bags.reserve(n);
  for (const auto& sentence : sentences) {
    bags.push_back(ContentWords(sentence.tokens));
  }

  std::vector<std::vector<std::pair<int, double>>> graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double sim = Similarity(bags[i], bags[j]);
      if (sim > 0.0) {
        graph[i].emplace_back(static_cast<int>(j), sim);
        graph[j].emplace_back(static_cast<int>(i), sim);
      }
    }
  }

  std::vector<double> scores = PageRank(graph);
  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });
  if (order.size() > static_cast<size_t>(k)) order.resize(static_cast<size_t>(k));
  return order;
}

}  // namespace osrs
