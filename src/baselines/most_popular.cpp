#include "baselines/most_popular.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace osrs {
namespace {

/// Aspect-polarity key: (concept, is_positive).
using PairKey = std::pair<ConceptId, bool>;

}  // namespace

Result<std::vector<int>> MostPopularSelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));

  // Count sentences mentioning each (aspect, polarity) pair.
  std::map<PairKey, int64_t> counts;
  for (const auto& sentence : sentences) {
    for (const auto& pair : sentence.pairs) {
      ++counts[{pair.concept_id, pair.sentiment >= 0.0}];
    }
  }
  std::vector<std::pair<PairKey, int64_t>> ranked(counts.begin(),
                                                  counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  std::vector<bool> used(sentences.size(), false);
  std::vector<int> selected;
  for (const auto& [key, count] : ranked) {
    if (static_cast<int>(selected.size()) >= k) break;
    // The containing sentence where this aspect is most polarized.
    int best = -1;
    double best_abs = -1.0;
    for (size_t s = 0; s < sentences.size(); ++s) {
      if (used[s]) continue;
      for (const auto& pair : sentences[s].pairs) {
        if (pair.concept_id != key.first ||
            (pair.sentiment >= 0.0) != key.second) {
          continue;
        }
        if (std::abs(pair.sentiment) > best_abs) {
          best_abs = std::abs(pair.sentiment);
          best = static_cast<int>(s);
        }
      }
    }
    if (best >= 0) {
      used[static_cast<size_t>(best)] = true;
      selected.push_back(best);
    }
  }
  return selected;
}

}  // namespace osrs
