#ifndef OSRS_BASELINES_COVERAGE_SELECTOR_H_
#define OSRS_BASELINES_COVERAGE_SELECTOR_H_

#include <string>

#include "baselines/sentence_selector.h"
#include "ontology/ontology.h"
#include "solver/greedy.h"

namespace osrs {

/// The paper's method packaged as a SentenceSelector for the §5.3
/// head-to-head: greedy k-Sentences Coverage with the ontology-aware,
/// sentiment-graded Definition 1 distance (ε defaults to the elbow-chosen
/// 0.5). Sentences without pairs are never selected — they cover nothing.
class CoverageGreedySelector : public SentenceSelector {
 public:
  /// `ontology` must outlive the selector.
  CoverageGreedySelector(const Ontology* ontology, double epsilon = 0.5);

  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "Ours (greedy)"; }

 private:
  const Ontology* ontology_;
  double epsilon_;
  GreedySummarizer greedy_;
};

}  // namespace osrs

#endif  // OSRS_BASELINES_COVERAGE_SELECTOR_H_
