#ifndef OSRS_BASELINES_SENTENCE_SELECTOR_H_
#define OSRS_BASELINES_SENTENCE_SELECTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace osrs {

/// One candidate sentence of an item, pre-tokenized, with its extracted
/// concept-sentiment pairs. The common currency of the §5.3 qualitative
/// comparison: every summarizer (ours and the five baselines) maps a
/// candidate list plus k to selected sentence indices.
struct CandidateSentence {
  int review_index = -1;
  int sentence_index = -1;
  std::string text;
  std::vector<std::string> tokens;
  std::vector<ConceptSentimentPair> pairs;
};

/// Flattens an item's sentences into candidates (tokenizing the text).
/// Sentences without pairs are kept — the text-only baselines (TextRank,
/// LexRank, LSA) can still pick them, which is part of why they lose on
/// sentiment error.
std::vector<CandidateSentence> BuildCandidates(const Item& item);

/// Interface of the extractive sentence summarizers compared in Fig. 6.
class SentenceSelector {
 public:
  virtual ~SentenceSelector() = default;

  /// Picks (up to) k distinct indices into `sentences`. Fails on k < 0.
  /// When fewer than k sentences exist, returns them all.
  virtual Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) = 0;

  /// Display name matching Table 2 ("Most popular", "TextRank", ...).
  virtual std::string name() const = 0;
};

/// Pairs of all selected sentences, for the sent-err measures.
std::vector<ConceptSentimentPair> PairsOfSelection(
    const std::vector<CandidateSentence>& sentences,
    const std::vector<int>& selected);

}  // namespace osrs

#endif  // OSRS_BASELINES_SENTENCE_SELECTOR_H_
