#include "baselines/lsa.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "text/stopwords.h"
#include "text/vocabulary.h"

namespace osrs {

Result<std::vector<int>> LsaSelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));
  if (topics_ <= 0) {
    return Status::InvalidArgument("topics must be positive");
  }
  const size_t n = sentences.size();
  if (n == 0) return std::vector<int>{};

  // TF-IDF term-sentence columns.
  Vocabulary vocab;
  for (const auto& sentence : sentences) {
    std::vector<std::string> content;
    for (const std::string& token : sentence.tokens) {
      if (!IsStopword(token)) content.push_back(token);
    }
    vocab.AddDocument(content);
  }
  std::vector<std::vector<std::pair<int, double>>> columns(n);
  for (size_t s = 0; s < n; ++s) {
    std::unordered_map<int, double> tf;
    for (const std::string& token : sentences[s].tokens) {
      if (IsStopword(token)) continue;
      int id = vocab.IdOf(token);
      if (id != kUnknownWord) tf[id] += 1.0;
    }
    for (auto& [id, weight] : tf) {
      columns[s].emplace_back(id, weight * vocab.Idf(id));
    }
  }

  // Sentence-side Gram matrix G = AᵀA (n×n, dense).
  std::vector<double> gram(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double sum = 0.0;
      size_t a = 0, b = 0;
      const auto& ci = columns[i];
      const auto& cj = columns[j];
      while (a < ci.size() && b < cj.size()) {
        if (ci[a].first < cj[b].first) {
          ++a;
        } else if (ci[a].first > cj[b].first) {
          ++b;
        } else {
          sum += ci[a].second * cj[b].second;
          ++a;
          ++b;
        }
      }
      gram[i * n + j] = sum;
      gram[j * n + i] = sum;
    }
  }

  // Orthogonal iteration for the top-r eigenpairs of G; eigenvalues of G
  // are the squared singular values, eigenvectors the right singular
  // vectors V of A.
  const int r = std::min<int>(topics_, static_cast<int>(n));
  Rng rng(4242);
  std::vector<std::vector<double>> basis(
      static_cast<size_t>(r), std::vector<double>(n));
  for (auto& column : basis) {
    for (double& value : column) value = rng.NextGaussian();
  }
  std::vector<double> scratch(n);
  auto multiply = [&](const std::vector<double>& x, std::vector<double>& y) {
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) sum += gram[i * n + j] * x[j];
      y[i] = sum;
    }
  };
  auto orthonormalize = [&]() {
    for (size_t c = 0; c < basis.size(); ++c) {
      for (size_t prev = 0; prev < c; ++prev) {
        double proj = Dot(basis[c], basis[prev]);
        for (size_t i = 0; i < n; ++i) basis[c][i] -= proj * basis[prev][i];
      }
      double norm = Norm2(basis[c]);
      if (norm < 1e-12) {
        for (double& value : basis[c]) value = rng.NextGaussian();
        norm = Norm2(basis[c]);
      }
      for (double& value : basis[c]) value /= norm;
    }
  };
  orthonormalize();
  for (int iter = 0; iter < 30; ++iter) {
    for (auto& column : basis) {
      multiply(column, scratch);
      column.swap(scratch);
    }
    orthonormalize();
  }

  // Steinberger-Jezek sentence scores: sqrt(Σ_t λ_t v_{s,t}²).
  std::vector<double> scores(n, 0.0);
  for (int t = 0; t < r; ++t) {
    multiply(basis[static_cast<size_t>(t)], scratch);
    double lambda =
        std::max(0.0, Dot(basis[static_cast<size_t>(t)], scratch));
    for (size_t s = 0; s < n; ++s) {
      double v = basis[static_cast<size_t>(t)][s];
      scores[s] += lambda * v * v;
    }
  }
  for (double& score : scores) score = std::sqrt(score);

  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });
  if (order.size() > static_cast<size_t>(k)) {
    order.resize(static_cast<size_t>(k));
  }
  return order;
}

}  // namespace osrs
