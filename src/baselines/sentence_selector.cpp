#include "baselines/sentence_selector.h"

#include "text/tokenizer.h"

namespace osrs {

std::vector<CandidateSentence> BuildCandidates(const Item& item) {
  std::vector<CandidateSentence> out;
  for (size_t r = 0; r < item.reviews.size(); ++r) {
    const Review& review = item.reviews[r];
    for (size_t s = 0; s < review.sentences.size(); ++s) {
      const Sentence& sentence = review.sentences[s];
      CandidateSentence candidate;
      candidate.review_index = static_cast<int>(r);
      candidate.sentence_index = static_cast<int>(s);
      candidate.text = sentence.text;
      candidate.tokens = Tokenize(sentence.text);
      candidate.pairs = sentence.pairs;
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

std::vector<ConceptSentimentPair> PairsOfSelection(
    const std::vector<CandidateSentence>& sentences,
    const std::vector<int>& selected) {
  std::vector<ConceptSentimentPair> out;
  for (int index : selected) {
    const auto& pairs = sentences[static_cast<size_t>(index)].pairs;
    out.insert(out.end(), pairs.begin(), pairs.end());
  }
  return out;
}

}  // namespace osrs
