#ifndef OSRS_BASELINES_TEXTRANK_H_
#define OSRS_BASELINES_TEXTRANK_H_

#include <string>

#include "baselines/sentence_selector.h"

namespace osrs {

/// TextRank [18]: sentences form a graph whose edge weights are the
/// stopword-filtered word overlap normalized by log sentence lengths
/// (Mihalcea & Tarau's similarity); PageRank scores rank sentences and the
/// top k are returned. Sentiment-agnostic by design — it serves as one of
/// the multi-document summarization baselines of §5.3.
class TextRankSelector : public SentenceSelector {
 public:
  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "TextRank"; }
};

}  // namespace osrs

#endif  // OSRS_BASELINES_TEXTRANK_H_
