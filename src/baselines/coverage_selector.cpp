#include "baselines/coverage_selector.h"

#include "common/logging.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"

namespace osrs {

CoverageGreedySelector::CoverageGreedySelector(const Ontology* ontology,
                                               double epsilon)
    : ontology_(ontology), epsilon_(epsilon) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
}

Result<std::vector<int>> CoverageGreedySelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  // Flatten pairs; remember each non-empty sentence as a candidate group.
  std::vector<ConceptSentimentPair> pairs;
  std::vector<std::vector<int>> groups;
  std::vector<int> group_to_sentence;
  for (size_t s = 0; s < sentences.size(); ++s) {
    if (sentences[s].pairs.empty()) continue;
    std::vector<int> member_indices;
    for (const auto& pair : sentences[s].pairs) {
      member_indices.push_back(static_cast<int>(pairs.size()));
      pairs.push_back(pair);
    }
    groups.push_back(std::move(member_indices));
    group_to_sentence.push_back(static_cast<int>(s));
  }

  PairDistance distance(ontology_, epsilon_);
  CoverageGraph graph = CoverageGraph::BuildForGroups(distance, pairs, groups);
  int effective_k = std::min<int>(k, graph.num_candidates());
  auto result = greedy_.Summarize(graph, effective_k);
  OSRS_RETURN_IF_ERROR(result.status());

  std::vector<int> selected;
  selected.reserve(result->selected.size());
  for (int group : result->selected) {
    selected.push_back(group_to_sentence[static_cast<size_t>(group)]);
  }
  return selected;
}

}  // namespace osrs
