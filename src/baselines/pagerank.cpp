#include "baselines/pagerank.h"

#include <cmath>

#include "common/logging.h"

namespace osrs {

std::vector<double> PageRank(
    const std::vector<std::vector<std::pair<int, double>>>& adjacency,
    double damping, int max_iterations, double tolerance) {
  const size_t n = adjacency.size();
  if (n == 0) return {};
  std::vector<double> out_weight(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [j, w] : adjacency[i]) {
      OSRS_CHECK_GE(w, 0.0);
      OSRS_CHECK_LT(static_cast<size_t>(j), n);
      out_weight[i] += w;
    }
  }

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double dangling_mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (out_weight[i] <= 0.0) dangling_mass += rank[i];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling_mass / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (size_t i = 0; i < n; ++i) {
      if (out_weight[i] <= 0.0) continue;
      double share = damping * rank[i] / out_weight[i];
      for (const auto& [j, w] : adjacency[i]) {
        next[static_cast<size_t>(j)] += share * w;
      }
    }
    double change = 0.0;
    for (size_t i = 0; i < n; ++i) change += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (change < tolerance) break;
  }
  return rank;
}

}  // namespace osrs
