#include "baselines/lexrank.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/pagerank.h"
#include "common/strings.h"
#include "text/stopwords.h"
#include "text/vocabulary.h"

namespace osrs {
namespace {

/// Sparse TF-IDF vector as sorted (term id, weight), L2-normalized.
std::vector<std::pair<int, double>> TfIdfVector(
    const std::vector<std::string>& tokens, const Vocabulary& vocab) {
  std::unordered_map<int, double> tf;
  for (const std::string& token : tokens) {
    if (IsStopword(token)) continue;
    int id = vocab.IdOf(token);
    if (id != kUnknownWord) tf[id] += 1.0;
  }
  std::vector<std::pair<int, double>> vec(tf.begin(), tf.end());
  double norm_sq = 0.0;
  for (auto& [id, weight] : vec) {
    weight *= vocab.Idf(id);
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0) {
    double norm = std::sqrt(norm_sq);
    for (auto& [id, weight] : vec) weight /= norm;
  }
  std::sort(vec.begin(), vec.end());
  return vec;
}

double SparseCosine(const std::vector<std::pair<int, double>>& a,
                    const std::vector<std::pair<int, double>>& b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      sum += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return sum;
}

}  // namespace

Result<std::vector<int>> LexRankSelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));
  const size_t n = sentences.size();

  Vocabulary vocab;
  for (const auto& sentence : sentences) {
    std::vector<std::string> content;
    for (const std::string& token : sentence.tokens) {
      if (!IsStopword(token)) content.push_back(token);
    }
    vocab.AddDocument(content);
  }

  std::vector<std::vector<std::pair<int, double>>> vectors;
  vectors.reserve(n);
  for (const auto& sentence : sentences) {
    vectors.push_back(TfIdfVector(sentence.tokens, vocab));
  }

  std::vector<std::vector<std::pair<int, double>>> graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double cosine = SparseCosine(vectors[i], vectors[j]);
      if (cosine >= cosine_threshold_) {
        graph[i].emplace_back(static_cast<int>(j), cosine);
        graph[j].emplace_back(static_cast<int>(i), cosine);
      }
    }
  }

  std::vector<double> scores = PageRank(graph);
  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });
  if (order.size() > static_cast<size_t>(k)) {
    order.resize(static_cast<size_t>(k));
  }
  return order;
}

}  // namespace osrs
