#ifndef OSRS_BASELINES_PAGERANK_H_
#define OSRS_BASELINES_PAGERANK_H_

#include <utility>
#include <vector>

namespace osrs {

/// Weighted PageRank over an undirected similarity graph given as
/// adjacency lists (neighbor, weight). Nodes with no outgoing weight
/// distribute uniformly (dangling handling). Returns one score per node;
/// scores sum to 1. `damping` is the usual 0.85; iterates until the L1
/// change drops below `tolerance` or `max_iterations` is hit.
std::vector<double> PageRank(
    const std::vector<std::vector<std::pair<int, double>>>& adjacency,
    double damping = 0.85, int max_iterations = 100,
    double tolerance = 1e-9);

}  // namespace osrs

#endif  // OSRS_BASELINES_PAGERANK_H_
