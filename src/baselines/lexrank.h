#ifndef OSRS_BASELINES_LEXRANK_H_
#define OSRS_BASELINES_LEXRANK_H_

#include <string>

#include "baselines/sentence_selector.h"

namespace osrs {

/// LexRank [6]: sentences are TF-IDF vectors; edges are cosine
/// similarities above a threshold; PageRank over the resulting graph ranks
/// sentences (continuous LexRank). Sentiment-agnostic baseline of §5.3.
class LexRankSelector : public SentenceSelector {
 public:
  /// `cosine_threshold` follows the original paper's 0.1 default.
  explicit LexRankSelector(double cosine_threshold = 0.1)
      : cosine_threshold_(cosine_threshold) {}

  Result<std::vector<int>> Select(
      const std::vector<CandidateSentence>& sentences, int k) override;

  std::string name() const override { return "LexRank"; }

 private:
  double cosine_threshold_;
};

}  // namespace osrs

#endif  // OSRS_BASELINES_LEXRANK_H_
