#include "baselines/proportional.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace osrs {
namespace {

using PairKey = std::pair<ConceptId, bool>;

}  // namespace

Result<std::vector<int>> ProportionalSelector::Select(
    const std::vector<CandidateSentence>& sentences, int k) {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));

  std::map<PairKey, int64_t> counts;
  int64_t total = 0;
  for (const auto& sentence : sentences) {
    for (const auto& pair : sentence.pairs) {
      ++counts[{pair.concept_id, pair.sentiment >= 0.0}];
      ++total;
    }
  }
  if (total == 0 || k == 0) return std::vector<int>{};

  // Largest-remainder apportionment of the k slots.
  struct Allocation {
    PairKey key;
    int64_t count;
    int slots;
    double remainder;
  };
  std::vector<Allocation> allocations;
  int assigned = 0;
  for (const auto& [key, count] : counts) {
    double exact = static_cast<double>(k) * static_cast<double>(count) /
                   static_cast<double>(total);
    int slots = static_cast<int>(exact);
    allocations.push_back({key, count, slots, exact - slots});
    assigned += slots;
  }
  std::sort(allocations.begin(), allocations.end(),
            [](const Allocation& a, const Allocation& b) {
              if (a.remainder != b.remainder) return a.remainder > b.remainder;
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  for (size_t i = 0; assigned < k && i < allocations.size(); ++i) {
    ++allocations[i].slots;
    ++assigned;
  }

  // Fill each slot with the most polarized unused sentence for its pair.
  std::vector<bool> used(sentences.size(), false);
  std::vector<int> selected;
  // Order pairs by popularity so big aspects pick first.
  std::sort(allocations.begin(), allocations.end(),
            [](const Allocation& a, const Allocation& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  for (const Allocation& alloc : allocations) {
    for (int slot = 0; slot < alloc.slots; ++slot) {
      if (static_cast<int>(selected.size()) >= k) break;
      int best = -1;
      double best_abs = -1.0;
      for (size_t s = 0; s < sentences.size(); ++s) {
        if (used[s]) continue;
        for (const auto& pair : sentences[s].pairs) {
          if (pair.concept_id != alloc.key.first ||
              (pair.sentiment >= 0.0) != alloc.key.second) {
            continue;
          }
          if (std::abs(pair.sentiment) > best_abs) {
            best_abs = std::abs(pair.sentiment);
            best = static_cast<int>(s);
          }
        }
      }
      if (best < 0) break;  // pair exhausted; leftover slots stay unfilled
      used[static_cast<size_t>(best)] = true;
      selected.push_back(best);
    }
  }
  return selected;
}

}  // namespace osrs
