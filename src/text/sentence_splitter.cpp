#include "text/sentence_splitter.h"

#include <array>
#include <cctype>

#include "common/strings.h"

namespace osrs {
namespace {

/// Common abbreviations whose trailing period does not end a sentence.
constexpr std::array<std::string_view, 12> kAbbreviations = {
    "dr", "mr", "mrs", "ms", "prof", "vs", "etc", "e.g", "i.e", "st", "jr",
    "approx"};

bool EndsWithAbbreviation(std::string_view text, size_t period_pos) {
  // Extract the word (possibly containing periods, for "e.g.") that ends at
  // period_pos.
  size_t start = period_pos;
  while (start > 0) {
    char c = text[start - 1];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '.') {
      --start;
    } else {
      break;
    }
  }
  std::string word = ToLower(text.substr(start, period_pos - start));
  for (std::string_view abbr : kAbbreviations) {
    if (word == abbr) return true;
  }
  // Single letters ("J. Smith") are initials.
  return word.size() == 1;
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n' || c == '!' || c == '?' ||
        (c == '.' && !EndsWithAbbreviation(text, i))) {
      // Consume runs of terminators ("!!", "...").
      while (i + 1 < text.size() &&
             (text[i + 1] == '.' || text[i + 1] == '!' ||
              text[i + 1] == '?')) {
        ++i;
      }
      std::string_view trimmed = Trim(current);
      if (!trimmed.empty()) sentences.emplace_back(trimmed);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  std::string_view trimmed = Trim(current);
  if (!trimmed.empty()) sentences.emplace_back(trimmed);
  return sentences;
}

}  // namespace osrs
