#include "text/porter_stemmer.h"

namespace osrs {
namespace {

/// Working buffer for one stemming run; implements the measure/condition
/// helpers of Porter's paper over the current (possibly shortened) word.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : w_(word) {}

  std::string Run() {
    if (w_.size() <= 2) return w_;
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    return w_;
  }

 private:
  bool IsConsonant(size_t i) const {
    char c = w_[i];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// Porter's m: the number of VC sequences in w_[0..end).
  int Measure(size_t end) const {
    int m = 0;
    size_t i = 0;
    // Skip initial consonants.
    while (i < end && IsConsonant(i)) ++i;
    while (i < end) {
      // Vowel run.
      while (i < end && !IsConsonant(i)) ++i;
      if (i >= end) break;
      // Consonant run completes a VC.
      ++m;
      while (i < end && IsConsonant(i)) ++i;
    }
    return m;
  }

  bool HasVowel(size_t end) const {
    for (size_t i = 0; i < end; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool EndsWithDoubleConsonant() const {
    size_t n = w_.size();
    return n >= 2 && w_[n - 1] == w_[n - 2] && IsConsonant(n - 1);
  }

  /// *o: stem ends cvc where the final c is not w, x or y.
  bool EndsCvc(size_t end) const {
    if (end < 3) return false;
    if (!IsConsonant(end - 3) || IsConsonant(end - 2) ||
        !IsConsonant(end - 1)) {
      return false;
    }
    char c = w_[end - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(std::string_view suffix) const {
    return w_.size() >= suffix.size() &&
           std::string_view(w_).substr(w_.size() - suffix.size()) == suffix;
  }

  size_t StemLen(std::string_view suffix) const {
    return w_.size() - suffix.size();
  }

  /// If the word ends with `suffix` and m(stem) > threshold, replaces the
  /// suffix and returns true.
  bool ReplaceIfMeasure(std::string_view suffix, std::string_view replacement,
                        int threshold) {
    if (!EndsWith(suffix)) return false;
    size_t stem = StemLen(suffix);
    if (Measure(stem) > threshold) {
      w_.resize(stem);
      w_.append(replacement);
      return true;
    }
    return true;  // suffix matched; rule consumed even if condition failed
  }

  void Step1a() {
    if (EndsWith("sses")) {
      w_.resize(w_.size() - 2);
    } else if (EndsWith("ies")) {
      w_.resize(w_.size() - 2);
    } else if (EndsWith("ss")) {
      // keep
    } else if (EndsWith("s")) {
      w_.resize(w_.size() - 1);
    }
  }

  void Step1b() {
    bool cleanup = false;
    if (EndsWith("eed")) {
      if (Measure(StemLen("eed")) > 0) w_.resize(w_.size() - 1);
    } else if (EndsWith("ed") && HasVowel(StemLen("ed"))) {
      w_.resize(w_.size() - 2);
      cleanup = true;
    } else if (EndsWith("ing") && HasVowel(StemLen("ing"))) {
      w_.resize(w_.size() - 3);
      cleanup = true;
    }
    if (cleanup) {
      if (EndsWith("at") || EndsWith("bl") || EndsWith("iz")) {
        w_.push_back('e');
      } else if (EndsWithDoubleConsonant() && !EndsWith("l") &&
                 !EndsWith("s") && !EndsWith("z")) {
        w_.resize(w_.size() - 1);
      } else if (Measure(w_.size()) == 1 && EndsCvc(w_.size())) {
        w_.push_back('e');
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && HasVowel(w_.size() - 1)) {
      w_[w_.size() - 1] = 'i';
    }
  }

  void Step2() {
    static constexpr std::pair<std::string_view, std::string_view> kRules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    };
    for (const auto& [suffix, replacement] : kRules) {
      if (EndsWith(suffix)) {
        ReplaceIfMeasure(suffix, replacement, 0);
        return;
      }
    }
  }

  void Step3() {
    static constexpr std::pair<std::string_view, std::string_view> kRules[] = {
        {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},    {"ness", ""},
    };
    for (const auto& [suffix, replacement] : kRules) {
      if (EndsWith(suffix)) {
        ReplaceIfMeasure(suffix, replacement, 0);
        return;
      }
    }
  }

  void Step4() {
    static constexpr std::string_view kSuffixes[] = {
        "al",   "ance", "ence", "er",  "ic",   "able", "ible", "ant",
        "ement", "ment", "ent",  "ou",  "ism",  "ate",  "iti",  "ous",
        "ive",  "ize",
    };
    for (std::string_view suffix : kSuffixes) {
      if (!EndsWith(suffix)) continue;
      size_t stem = StemLen(suffix);
      if (Measure(stem) > 1) w_.resize(stem);
      return;
    }
    // (m>1 and (*S or *T)) ION ->
    if (EndsWith("ion")) {
      size_t stem = StemLen("ion");
      if (Measure(stem) > 1 && stem > 0 &&
          (w_[stem - 1] == 's' || w_[stem - 1] == 't')) {
        w_.resize(stem);
      }
    }
  }

  void Step5a() {
    if (!EndsWith("e")) return;
    size_t stem = w_.size() - 1;
    int m = Measure(stem);
    if (m > 1 || (m == 1 && !EndsCvc(stem))) {
      w_.resize(stem);
    }
  }

  void Step5b() {
    if (Measure(w_.size()) > 1 && EndsWithDoubleConsonant() &&
        EndsWith("l")) {
      w_.resize(w_.size() - 1);
    }
  }

  std::string w_;
};

}  // namespace

std::string PorterStem(std::string_view word) { return Stemmer(word).Run(); }

}  // namespace osrs
