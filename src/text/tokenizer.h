#ifndef OSRS_TEXT_TOKENIZER_H_
#define OSRS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace osrs {

/// Lowercased word tokens of `text`. A token is a maximal run of ASCII
/// letters/digits, with embedded apostrophes kept ("don't" -> "don't",
/// hyphens split: "wi-fi" -> "wi", "fi"). Punctuation is dropped.
std::vector<std::string> Tokenize(std::string_view text);

/// Like Tokenize but also records each token's byte offset in `text`.
struct TokenSpan {
  std::string token;  // lowercased
  size_t offset;      // byte offset of the first character
};
std::vector<TokenSpan> TokenizeWithOffsets(std::string_view text);

}  // namespace osrs

#endif  // OSRS_TEXT_TOKENIZER_H_
