#include "text/vocabulary.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace osrs {

int Vocabulary::Add(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    int id = static_cast<int>(words_.size());
    words_.emplace_back(word);
    counts_.push_back(0);
    doc_frequencies_.push_back(0);
    it = index_.emplace(words_.back(), id).first;
  }
  ++counts_[static_cast<size_t>(it->second)];
  return it->second;
}

void Vocabulary::AddDocument(const std::vector<std::string>& words) {
  ++num_documents_;
  std::unordered_set<int> seen;
  for (const std::string& word : words) {
    int id = Add(word);
    if (seen.insert(id).second) {
      ++doc_frequencies_[static_cast<size_t>(id)];
    }
  }
}

int Vocabulary::IdOf(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnknownWord : it->second;
}

const std::string& Vocabulary::WordOf(int id) const {
  OSRS_CHECK_GE(id, 0);
  OSRS_CHECK_LT(static_cast<size_t>(id), words_.size());
  return words_[static_cast<size_t>(id)];
}

int64_t Vocabulary::CountOf(int id) const {
  OSRS_CHECK_GE(id, 0);
  OSRS_CHECK_LT(static_cast<size_t>(id), counts_.size());
  return counts_[static_cast<size_t>(id)];
}

int64_t Vocabulary::DocFrequencyOf(int id) const {
  OSRS_CHECK_GE(id, 0);
  OSRS_CHECK_LT(static_cast<size_t>(id), doc_frequencies_.size());
  return doc_frequencies_[static_cast<size_t>(id)];
}

double Vocabulary::Idf(int id) const {
  return std::log((1.0 + static_cast<double>(num_documents_)) /
                  (1.0 + static_cast<double>(DocFrequencyOf(id)))) +
         1.0;
}

std::vector<int> Vocabulary::MostFrequent(size_t limit) const {
  std::vector<int> ids(words_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  std::sort(ids.begin(), ids.end(), [this](int a, int b) {
    int64_t ca = counts_[static_cast<size_t>(a)];
    int64_t cb = counts_[static_cast<size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  if (ids.size() > limit) ids.resize(limit);
  return ids;
}

}  // namespace osrs
