#include "text/tokenizer.h"

#include <cctype>

namespace osrs {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<TokenSpan> TokenizeWithOffsets(std::string_view text) {
  std::vector<TokenSpan> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (!IsWordChar(text[i])) {
      ++i;
      continue;
    }
    size_t start = i;
    std::string token;
    while (i < n) {
      char c = text[i];
      if (IsWordChar(c)) {
        token.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        ++i;
      } else if (c == '\'' && i + 1 < n && IsWordChar(text[i + 1]) &&
                 !token.empty()) {
        token.push_back('\'');
        ++i;
      } else {
        break;
      }
    }
    tokens.push_back({std::move(token), start});
  }
  return tokens;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  for (TokenSpan& span : TokenizeWithOffsets(text)) {
    out.push_back(std::move(span.token));
  }
  return out;
}

}  // namespace osrs
