#ifndef OSRS_TEXT_VOCABULARY_H_
#define OSRS_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace osrs {

/// Sentinel for "word not interned".
inline constexpr int kUnknownWord = -1;

/// Interning table mapping words to dense ids, with occurrence counts and
/// document frequencies; the shared vocabulary layer under the embedding,
/// LSA and LexRank vectorizers.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `word` (adding it if new), bumps its count, and returns its id.
  int Add(std::string_view word);

  /// Bumps the document frequency of every distinct word in `words`
  /// (intern-if-new), typically called once per sentence/document.
  void AddDocument(const std::vector<std::string>& words);

  /// Id of `word`, or kUnknownWord.
  int IdOf(std::string_view word) const;

  const std::string& WordOf(int id) const;
  int64_t CountOf(int id) const;
  int64_t DocFrequencyOf(int id) const;

  size_t size() const { return words_.size(); }
  int64_t num_documents() const { return num_documents_; }

  /// Smoothed inverse document frequency: log((1 + N) / (1 + df)) + 1.
  double Idf(int id) const;

  /// Ids of the `limit` most frequent words (by total count, ties by id).
  std::vector<int> MostFrequent(size_t limit) const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  std::vector<int64_t> doc_frequencies_;
  int64_t num_documents_ = 0;
};

}  // namespace osrs

#endif  // OSRS_TEXT_VOCABULARY_H_
