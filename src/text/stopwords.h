#ifndef OSRS_TEXT_STOPWORDS_H_
#define OSRS_TEXT_STOPWORDS_H_

#include <string_view>

namespace osrs {

/// True for high-frequency English function words ("the", "of", "was", ...)
/// filtered out by the aspect miner and the embedding/LSA vectorizers.
/// Input must be lowercase.
bool IsStopword(std::string_view word);

}  // namespace osrs

#endif  // OSRS_TEXT_STOPWORDS_H_
