#ifndef OSRS_TEXT_SENTENCE_SPLITTER_H_
#define OSRS_TEXT_SENTENCE_SPLITTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace osrs {

/// Splits review text into sentences on '.', '!', '?' and newlines, with a
/// small abbreviation list ("dr.", "mr.", "e.g.", ...) to avoid false
/// breaks — sufficient for the short informal sentences of online reviews.
/// Empty/whitespace-only sentences are dropped; terminators are removed.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace osrs

#endif  // OSRS_TEXT_SENTENCE_SPLITTER_H_
