#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace osrs {
namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto& words = *new std::unordered_set<std::string>{
      "a",       "about",  "above",  "after",  "again",   "all",    "also",
      "am",      "an",     "and",    "any",    "are",     "as",     "at",
      "be",      "because", "been",  "before", "being",   "below",  "between",
      "both",    "but",    "by",     "can",    "could",   "did",    "do",
      "does",    "doing",  "down",   "during", "each",    "few",    "for",
      "from",    "further", "had",   "has",    "have",    "having", "he",
      "her",     "here",   "hers",   "him",    "his",     "how",    "i",
      "if",      "in",     "into",   "is",     "it",      "its",    "itself",
      "just",    "me",     "more",   "most",   "my",      "myself", "now",
      "of",      "off",    "on",     "once",   "only",    "or",     "other",
      "our",     "ours",   "out",    "over",   "own",     "s",      "same",
      "she",     "should", "so",     "some",   "such",    "t",      "than",
      "that",    "the",    "their",  "theirs", "them",    "then",   "there",
      "these",   "they",   "this",   "those",  "through", "to",     "too",
      "under",   "until",  "up",     "was",    "we",      "were",   "what",
      "when",    "where",  "which",  "while",  "who",     "whom",   "why",
      "will",    "with",   "would",  "you",    "your",    "yours",  "yourself",
      "it's",    "don't",  "didn't", "i'm",    "i've",    "he's",   "she's",
  };
  return words;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

}  // namespace osrs
