#ifndef OSRS_TEXT_PORTER_STEMMER_H_
#define OSRS_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace osrs {

/// Classic Porter (1980) suffix-stripping stemmer for English.
///
/// Used to normalize both the ontology term lexicon and review tokens so
/// the dictionary extractor matches morphological variants ("charging" ↔
/// "charge"). Input must be lowercase ASCII; words of length <= 2 are
/// returned unchanged, as in the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace osrs

#endif  // OSRS_TEXT_PORTER_STEMMER_H_
