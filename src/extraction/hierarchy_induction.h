#ifndef OSRS_EXTRACTION_HIERARCHY_INDUCTION_H_
#define OSRS_EXTRACTION_HIERARCHY_INDUCTION_H_

#include <string>
#include <vector>

#include "extraction/double_propagation.h"
#include "ontology/ontology.h"

namespace osrs {

/// Tuning of the distributional hierarchy inducer.
struct HierarchyInductionOptions {
  /// a nests under b when P(b | a) — the fraction of a's sentences that
  /// also mention b — reaches this threshold...
  double subsumption_threshold = 0.55;
  /// ...and the relation is asymmetric: P(b|a) - P(a|b) >= this margin.
  double asymmetry_margin = 0.1;
  /// Candidate pairs below this many co-occurring sentences are ignored.
  int min_cooccurrence = 3;
};

/// Induces an aspect hierarchy from co-occurrence statistics — the
/// automatic alternative to a curated hierarchy that §2 points to (Kim et
/// al. [12] learn an aspect-sentiment tree; this is the classical
/// distributional-subsumption variant of that idea): aspect a becomes a
/// child of aspect b when b appears in most sentences that mention a but
/// not vice versa ("battery" subsumes "battery life"). Term containment
/// ("battery" a prefix of "battery life") is used as a tie-strengthening
/// prior; aspects with no qualifying parent attach to the root. Parents
/// must have strictly higher sentence frequency, which makes the result a
/// forest (hence a DAG after rooting) by construction.
Ontology InduceAspectHierarchy(
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<ExtractedAspect>& aspects, const std::string& root_name,
    const HierarchyInductionOptions& options = {});

}  // namespace osrs

#endif  // OSRS_EXTRACTION_HIERARCHY_INDUCTION_H_
