#include "extraction/aho_corasick.h"

#include <deque>

#include "common/logging.h"

namespace osrs {

int TokenAhoCorasick::TokenId(const std::string& token) const {
  auto it = alphabet_.find(token);
  return it == alphabet_.end() ? -1 : it->second;
}

void TokenAhoCorasick::AddPattern(const std::vector<std::string>& tokens,
                                  int payload) {
  OSRS_CHECK(!built_);
  if (tokens.empty()) return;
  int state = 0;
  for (const std::string& token : tokens) {
    auto [it, inserted] =
        alphabet_.emplace(token, static_cast<int>(alphabet_.size()));
    int symbol = it->second;
    auto next_it = nodes_[static_cast<size_t>(state)].next.find(symbol);
    if (next_it == nodes_[static_cast<size_t>(state)].next.end()) {
      int new_state = static_cast<int>(nodes_.size());
      nodes_[static_cast<size_t>(state)].next.emplace(symbol, new_state);
      nodes_.emplace_back();
      state = new_state;
    } else {
      state = next_it->second;
    }
  }
  nodes_[static_cast<size_t>(state)].outputs.emplace_back(payload,
                                                          tokens.size());
  ++num_patterns_;
}

void TokenAhoCorasick::Build() {
  OSRS_CHECK(!built_);
  std::deque<int> queue;
  for (const auto& [symbol, child] : nodes_[0].next) {
    nodes_[static_cast<size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int state = queue.front();
    queue.pop_front();
    for (const auto& [symbol, child] : nodes_[static_cast<size_t>(state)].next) {
      // Follow failure links of the parent to find the child's fail state.
      int fail = nodes_[static_cast<size_t>(state)].fail;
      while (fail != 0 &&
             !nodes_[static_cast<size_t>(fail)].next.count(symbol)) {
        fail = nodes_[static_cast<size_t>(fail)].fail;
      }
      auto it = nodes_[static_cast<size_t>(fail)].next.find(symbol);
      int target = (it != nodes_[static_cast<size_t>(fail)].next.end() &&
                    it->second != child)
                       ? it->second
                       : 0;
      nodes_[static_cast<size_t>(child)].fail = target;
      // Inherit outputs from the fail state (suffix patterns).
      const auto& inherited = nodes_[static_cast<size_t>(target)].outputs;
      auto& outputs = nodes_[static_cast<size_t>(child)].outputs;
      outputs.insert(outputs.end(), inherited.begin(), inherited.end());
      queue.push_back(child);
    }
  }
  built_ = true;
}

std::vector<TokenAhoCorasick::Match> TokenAhoCorasick::Find(
    const std::vector<std::string>& tokens) const {
  OSRS_CHECK(built_);
  std::vector<Match> matches;
  int state = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    int symbol = TokenId(tokens[i]);
    if (symbol < 0) {
      state = 0;  // token absent from every pattern: hard reset
      continue;
    }
    while (state != 0 &&
           !nodes_[static_cast<size_t>(state)].next.count(symbol)) {
      state = nodes_[static_cast<size_t>(state)].fail;
    }
    auto it = nodes_[static_cast<size_t>(state)].next.find(symbol);
    state = it == nodes_[static_cast<size_t>(state)].next.end() ? 0
                                                                : it->second;
    for (const auto& [payload, length] :
         nodes_[static_cast<size_t>(state)].outputs) {
      matches.push_back({payload, i + 1 - length, i + 1});
    }
  }
  return matches;
}

}  // namespace osrs
