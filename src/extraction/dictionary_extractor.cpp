#include "extraction/dictionary_extractor.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace osrs {
namespace {

std::vector<std::string> StemAll(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) out.push_back(PorterStem(token));
  return out;
}

}  // namespace

DictionaryExtractor::DictionaryExtractor(const Ontology* ontology)
    : ontology_(ontology) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
  for (const auto& [term, concept_id] : ontology->term_lexicon()) {
    automaton_.AddPattern(StemAll(Tokenize(term)),
                          static_cast<int>(concept_id));
  }
  automaton_.Build();
}

std::vector<DictionaryExtractor::Mention> DictionaryExtractor::FindMentions(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenAhoCorasick::Match> matches =
      automaton_.Find(StemAll(tokens));
  // Longest-span-first resolution; ties to the leftmost, then the smaller
  // concept id for determinism.
  std::sort(matches.begin(), matches.end(),
            [](const TokenAhoCorasick::Match& a,
               const TokenAhoCorasick::Match& b) {
              size_t len_a = a.end - a.begin;
              size_t len_b = b.end - b.begin;
              if (len_a != len_b) return len_a > len_b;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.payload < b.payload;
            });
  std::vector<bool> taken(tokens.size(), false);
  std::vector<Mention> mentions;
  for (const auto& match : matches) {
    bool overlaps = false;
    for (size_t i = match.begin; i < match.end; ++i) {
      overlaps |= taken[i];
    }
    if (overlaps) continue;
    for (size_t i = match.begin; i < match.end; ++i) taken[i] = true;
    mentions.push_back(
        {static_cast<ConceptId>(match.payload), match.begin, match.end});
  }
  std::sort(mentions.begin(), mentions.end(),
            [](const Mention& a, const Mention& b) {
              return a.begin < b.begin;
            });
  return mentions;
}

std::vector<ConceptId> DictionaryExtractor::ExtractConcepts(
    const std::vector<std::string>& tokens) const {
  std::vector<ConceptId> concepts;
  for (const Mention& mention : FindMentions(tokens)) {
    if (std::find(concepts.begin(), concepts.end(), mention.concept_id) ==
        concepts.end()) {
      concepts.push_back(mention.concept_id);
    }
  }
  return concepts;
}

Result<std::vector<ConceptId>> DictionaryExtractor::TryExtractConcepts(
    const std::vector<std::string>& tokens) const {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.extraction.pairs"));
  return ExtractConcepts(tokens);
}

}  // namespace osrs
