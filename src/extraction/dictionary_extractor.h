#ifndef OSRS_EXTRACTION_DICTIONARY_EXTRACTOR_H_
#define OSRS_EXTRACTION_DICTIONARY_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "extraction/aho_corasick.h"
#include "ontology/ontology.h"

namespace osrs {

/// Maps sentence text spans to ontology concepts by dictionary lookup —
/// the repository's stand-in for MetaMap (§5.1): MetaMap is, for this
/// pipeline's purposes, a longest-span mapper from text to UMLS/SNOMED
/// concepts via the ontology's term lexicon.
///
/// Terms and sentence tokens are Porter-stemmed so morphological variants
/// match ("charging" ↔ "charge"). Overlapping candidate spans are resolved
/// longest-span-first, like MetaMap's preference for the most specific
/// mapping ("battery life" beats "battery").
class DictionaryExtractor {
 public:
  /// An accepted concept mention covering tokens [begin, end).
  struct Mention {
    ConceptId concept_id;
    size_t begin;
    size_t end;
  };

  /// Builds the automaton from `ontology`'s term lexicon. The ontology must
  /// be finalized and outlive the extractor.
  explicit DictionaryExtractor(const Ontology* ontology);

  /// Non-overlapping mentions in a tokenized sentence (longest span wins,
  /// leftmost on ties), in left-to-right order.
  std::vector<Mention> FindMentions(
      const std::vector<std::string>& tokens) const;

  /// Distinct concepts mentioned in the sentence, in first-mention order.
  std::vector<ConceptId> ExtractConcepts(
      const std::vector<std::string>& tokens) const;

  /// ExtractConcepts behind the "osrs.extraction.pairs" failpoint — the
  /// variant serve-time annotation calls so the chaos suite can fail or
  /// stall pair extraction like any other phase a live request crosses.
  /// Extraction itself cannot fail, so the only non-OK outcomes are
  /// injected ones.
  Result<std::vector<ConceptId>> TryExtractConcepts(
      const std::vector<std::string>& tokens) const;

  const Ontology& ontology() const { return *ontology_; }

 private:
  const Ontology* ontology_;
  TokenAhoCorasick automaton_;
};

}  // namespace osrs

#endif  // OSRS_EXTRACTION_DICTIONARY_EXTRACTOR_H_
