#ifndef OSRS_EXTRACTION_AHO_CORASICK_H_
#define OSRS_EXTRACTION_AHO_CORASICK_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace osrs {

/// Multi-pattern matcher over token sequences (Aho-Corasick automaton whose
/// alphabet is interned tokens rather than characters).
///
/// Patterns are token sequences with an integer payload; matching scans a
/// token sequence once and reports every (pattern, span) occurrence. Tokens
/// never seen in any pattern reset the automaton (no pattern can span
/// them), which is exactly the desired semantics.
class TokenAhoCorasick {
 public:
  /// An occurrence of pattern `payload` covering tokens [begin, end).
  struct Match {
    int payload;
    size_t begin;
    size_t end;
  };

  TokenAhoCorasick() = default;

  /// Registers a pattern before Build(). Empty patterns are ignored.
  void AddPattern(const std::vector<std::string>& tokens, int payload);

  /// Computes failure links; must be called once after all AddPattern calls
  /// and before Find.
  void Build();

  /// All matches in `tokens`, in increasing end-position order.
  std::vector<Match> Find(const std::vector<std::string>& tokens) const;

  size_t num_patterns() const { return num_patterns_; }

 private:
  struct Node {
    std::unordered_map<int, int> next;       // token id -> state
    int fail = 0;
    std::vector<std::pair<int, size_t>> outputs;  // (payload, length)
  };

  int TokenId(const std::string& token) const;

  bool built_ = false;
  size_t num_patterns_ = 0;
  std::unordered_map<std::string, int> alphabet_;
  std::vector<Node> nodes_{Node{}};
};

}  // namespace osrs

#endif  // OSRS_EXTRACTION_AHO_CORASICK_H_
