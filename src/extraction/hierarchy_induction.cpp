#include "extraction/hierarchy_induction.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs {
namespace {

/// True when the (possibly multi-word) `term` occurs as a contiguous token
/// run in `tokens`.
bool ContainsTerm(const std::vector<std::string>& tokens,
                  const std::vector<std::string>& term_tokens) {
  if (term_tokens.empty() || term_tokens.size() > tokens.size()) return false;
  for (size_t start = 0; start + term_tokens.size() <= tokens.size();
       ++start) {
    bool hit = true;
    for (size_t i = 0; i < term_tokens.size(); ++i) {
      if (tokens[start + i] != term_tokens[i]) {
        hit = false;
        break;
      }
    }
    if (hit) return true;
  }
  return false;
}

bool TermContains(const std::vector<std::string>& longer,
                  const std::vector<std::string>& shorter) {
  return longer.size() > shorter.size() && ContainsTerm(longer, shorter);
}

}  // namespace

Ontology InduceAspectHierarchy(
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<ExtractedAspect>& aspects, const std::string& root_name,
    const HierarchyInductionOptions& options) {
  const size_t n = aspects.size();
  std::vector<std::vector<std::string>> term_tokens(n);
  for (size_t a = 0; a < n; ++a) {
    term_tokens[a] = SplitWhitespace(aspects[a].term);
  }

  // Sentence-presence counts and pairwise co-occurrence counts.
  std::vector<int64_t> presence(n, 0);
  std::vector<std::vector<int64_t>> cooccurrence(
      n, std::vector<int64_t>(n, 0));
  std::vector<size_t> present_in_sentence;
  for (const auto& sentence : sentences) {
    present_in_sentence.clear();
    for (size_t a = 0; a < n; ++a) {
      if (ContainsTerm(sentence, term_tokens[a])) {
        present_in_sentence.push_back(a);
        ++presence[a];
      }
    }
    for (size_t i = 0; i < present_in_sentence.size(); ++i) {
      for (size_t j = i + 1; j < present_in_sentence.size(); ++j) {
        size_t a = present_in_sentence[i];
        size_t b = present_in_sentence[j];
        ++cooccurrence[a][b];
        ++cooccurrence[b][a];
      }
    }
  }

  // For each aspect pick the best subsuming parent.
  Ontology onto;
  ConceptId root = onto.AddConcept(root_name);
  OSRS_CHECK(onto.AddSynonym(root, root_name).ok());
  std::vector<ConceptId> concept_of(n);
  for (size_t a = 0; a < n; ++a) {
    concept_of[a] = onto.AddConcept(aspects[a].term);
    (void)onto.AddSynonym(concept_of[a], aspects[a].term);
  }
  for (size_t a = 0; a < n; ++a) {
    int best_parent = -1;
    double best_score = 0.0;
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      // Parents need strictly larger presence (breaks ties, prevents
      // cycles) and enough shared evidence.
      if (presence[b] <= presence[a]) continue;
      if (cooccurrence[a][b] < options.min_cooccurrence &&
          !TermContains(term_tokens[a], term_tokens[b])) {
        continue;
      }
      double p_b_given_a =
          presence[a] == 0
              ? 0.0
              : static_cast<double>(cooccurrence[a][b]) /
                    static_cast<double>(presence[a]);
      double p_a_given_b =
          presence[b] == 0
              ? 0.0
              : static_cast<double>(cooccurrence[a][b]) /
                    static_cast<double>(presence[b]);
      double score = p_b_given_a;
      // Term containment ("battery life" contains "battery") is strong
      // independent evidence of specialization.
      if (TermContains(term_tokens[a], term_tokens[b])) score += 0.5;
      bool subsumes = score >= options.subsumption_threshold &&
                      (p_b_given_a - p_a_given_b) >= options.asymmetry_margin;
      if (subsumes && score > best_score) {
        best_score = score;
        best_parent = static_cast<int>(b);
      }
    }
    ConceptId parent =
        best_parent < 0 ? root : concept_of[static_cast<size_t>(best_parent)];
    OSRS_CHECK(onto.AddEdge(parent, concept_of[a]).ok());
  }
  OSRS_CHECK_MSG(onto.Finalize().ok(),
                 "induced hierarchy must be a DAG (presence ordering "
                 "violated?)");
  return onto;
}

}  // namespace osrs
