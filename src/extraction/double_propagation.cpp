#include "extraction/double_propagation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"
#include "text/stopwords.h"

namespace osrs {
namespace {

/// Adjective-shaped: the suffix heuristic standing in for a POS tagger.
/// Deliberately conservative — suffixes like "-y"/"-ing"/"-al" also end
/// legitimate aspect nouns ("battery", "charging", "signal"), so only
/// strongly adjectival suffixes are used.
bool LooksLikeAdjective(const std::string& word) {
  for (const char* suffix : {"ful", "ous", "ive", "able", "ible", "ish",
                             "less"}) {
    if (EndsWith(word, suffix) && word.size() > std::string(suffix).size() + 2) {
      return true;
    }
  }
  return false;
}

bool IsTargetCandidate(const std::string& word,
                       const std::unordered_set<std::string>& opinion_words) {
  return word.size() >= 3 && !IsStopword(word) &&
         opinion_words.count(word) == 0 && !LooksLikeAdjective(word);
}

}  // namespace

DoublePropagation::DoublePropagation(DoublePropagationOptions options)
    : options_(options) {}

std::vector<ExtractedAspect> DoublePropagation::ExtractAspects(
    const std::vector<std::vector<std::string>>& sentences,
    const SentimentLexicon& lexicon) const {
  // Seed opinion set O from the lexicon (rule foundation of [22]).
  std::unordered_set<std::string> opinion_words;
  for (const auto& [word, strength] : lexicon.AllOpinionWords()) {
    opinion_words.insert(word);
  }

  std::unordered_set<std::string> targets;
  std::unordered_map<std::string, int64_t> target_counts;

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    bool changed = false;
    target_counts.clear();
    for (const auto& tokens : sentences) {
      // Positions of opinion words and known targets in this sentence.
      std::vector<bool> near_opinion(tokens.size(), false);
      std::vector<bool> near_target(tokens.size(), false);
      for (size_t i = 0; i < tokens.size(); ++i) {
        bool is_opinion = opinion_words.count(tokens[i]) > 0;
        bool is_target = targets.count(tokens[i]) > 0;
        if (!is_opinion && !is_target) continue;
        size_t lo = i >= static_cast<size_t>(options_.window)
                        ? i - static_cast<size_t>(options_.window)
                        : 0;
        size_t hi = std::min(tokens.size(),
                             i + static_cast<size_t>(options_.window) + 1);
        for (size_t j = lo; j < hi; ++j) {
          if (j == i) continue;
          if (is_opinion) near_opinion[j] = true;
          if (is_target) near_target[j] = true;
        }
      }
      for (size_t i = 0; i < tokens.size(); ++i) {
        // R1/R3 (targets from opinion words or other targets): a candidate
        // noun near an opinion word or a known target is a target.
        if ((near_opinion[i] || near_target[i]) &&
            IsTargetCandidate(tokens[i], opinion_words)) {
          ++target_counts[tokens[i]];
          if (targets.insert(tokens[i]).second) changed = true;
          // Bigram targets: two adjacent candidates form a compound aspect
          // ("battery life", "picture quality").
          if (i + 1 < tokens.size() &&
              IsTargetCandidate(tokens[i + 1], opinion_words)) {
            ++target_counts[tokens[i] + " " + tokens[i + 1]];
          }
        }
        // R2/R4 (opinion words from targets): adjective-shaped words near a
        // known target become opinion words.
        if (near_target[i] && LooksLikeAdjective(tokens[i]) &&
            !IsStopword(tokens[i]) && targets.count(tokens[i]) == 0) {
          if (opinion_words.insert(tokens[i]).second) changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // Prune by frequency; a bigram also requires its frequency, and absorbs
  // nothing from its unigrams (both can survive independently, as in the
  // paper's aspect list where "screen" and "screen resolution" coexist).
  std::vector<ExtractedAspect> aspects;
  for (const auto& [term, count] : target_counts) {
    if (count >= options_.min_aspect_frequency) {
      aspects.push_back({term, count});
    }
  }
  std::sort(aspects.begin(), aspects.end(),
            [](const ExtractedAspect& a, const ExtractedAspect& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.term < b.term;
            });
  if (aspects.size() > static_cast<size_t>(options_.max_aspects)) {
    aspects.resize(static_cast<size_t>(options_.max_aspects));
  }
  return aspects;
}

Ontology BuildAspectHierarchy(const std::vector<ExtractedAspect>& aspects,
                              const std::string& root_name) {
  Ontology onto;
  ConceptId root = onto.AddConcept(root_name);
  OSRS_CHECK(onto.AddSynonym(root, root_name).ok());

  // First pass: create concepts (term -> id).
  std::unordered_map<std::string, ConceptId> by_term;
  for (const ExtractedAspect& aspect : aspects) {
    if (by_term.count(aspect.term)) continue;
    ConceptId id = onto.AddConcept(aspect.term);
    by_term.emplace(aspect.term, id);
    // Synonym registration can conflict with the root name; skip silently.
    (void)onto.AddSynonym(id, aspect.term);
  }
  // Second pass: attach each aspect under the longest proper prefix/suffix
  // aspect ("battery life" under "battery", "screen resolution" under
  // "screen" or "resolution" — prefix preferred), else under the root.
  for (const auto& [term, id] : by_term) {
    ConceptId parent = root;
    std::vector<std::string> words = SplitWhitespace(term);
    if (words.size() >= 2) {
      std::string prefix = words.front();
      std::string suffix = words.back();
      auto it = by_term.find(prefix);
      if (it != by_term.end() && it->second != id) {
        parent = it->second;
      } else {
        it = by_term.find(suffix);
        if (it != by_term.end() && it->second != id) parent = it->second;
      }
    }
    OSRS_CHECK(onto.AddEdge(parent, id).ok());
  }
  OSRS_CHECK_MSG(onto.Finalize().ok(), "aspect hierarchy must be a DAG");
  return onto;
}

}  // namespace osrs
