#ifndef OSRS_EXTRACTION_DOUBLE_PROPAGATION_H_
#define OSRS_EXTRACTION_DOUBLE_PROPAGATION_H_

#include <string>
#include <vector>

#include "ontology/ontology.h"
#include "sentiment/lexicon.h"

namespace osrs {

/// Tuning of the Double Propagation aspect miner.
struct DoublePropagationOptions {
  /// Propagation rounds (targets ↔ opinion words).
  int max_iterations = 4;
  /// Token window within which an opinion word "modifies" a target.
  int window = 3;
  /// Aspects below this corpus frequency are pruned.
  int min_aspect_frequency = 3;
  /// At most this many aspects survive, frequency-ranked (the paper keeps
  /// the 100 most popular, §5.1).
  int max_aspects = 100;
};

/// An extracted product aspect with its corpus frequency.
struct ExtractedAspect {
  std::string term;  // unigram or bigram, lowercase
  int64_t frequency = 0;
};

/// Window-based approximation of Double Propagation (Qiu et al. [22]): seed
/// opinion words from the graded lexicon, extract nearby candidate nouns as
/// aspect targets, learn new adjective-shaped opinion words near known
/// targets, and repeat. Without a dependency parser the "modifies" relation
/// is approximated by token distance (see DESIGN.md's substitution table);
/// the output contract is the same: a frequency-ranked aspect list.
class DoublePropagation {
 public:
  explicit DoublePropagation(DoublePropagationOptions options = {});

  /// Mines aspects (unigrams and bigrams) from tokenized sentences.
  std::vector<ExtractedAspect> ExtractAspects(
      const std::vector<std::vector<std::string>>& sentences,
      const SentimentLexicon& lexicon) const;

 private:
  DoublePropagationOptions options_;
};

/// Arranges mined aspects into a hierarchy rooted at `root_name`: aspect A
/// becomes a child of aspect B when A's term properly extends B's term with
/// an extra token ("battery life" under "battery"); all other aspects hang
/// off the root. Each aspect registers its term as an extraction synonym.
/// This mirrors §5.1's manually-built hierarchy construction step.
Ontology BuildAspectHierarchy(const std::vector<ExtractedAspect>& aspects,
                              const std::string& root_name);

}  // namespace osrs

#endif  // OSRS_EXTRACTION_DOUBLE_PROPAGATION_H_
