#include "serve/server.h"

#include <algorithm>
#include <exception>
#include <new>
#include <utility>

#include "common/slog.h"
#include "common/strings.h"
#include "fault/failpoint.h"

namespace osrs::serve {
namespace {

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("osrs.serve.queue_depth");
  return gauge;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("osrs.serve.inflight");
  return gauge;
}

obs::Counter* ServeCounter(const char* name) {
  // One interned handle per name; the registry returns stable pointers so
  // the static map here costs a lookup only on first use per call site.
  return obs::MetricsRegistry::Global().GetCounter(name);
}

const std::vector<double>& LatencyBounds() {
  static const std::vector<double> bounds = {0.1, 0.25, 0.5,  1,   2.5,
                                             5,   10,   25,   50,  100,
                                             250, 500,  1000, 2500, 5000};
  return bounds;
}

obs::Histogram* QueueMsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("osrs.serve.queue_ms",
                                                  LatencyBounds());
  return histogram;
}

obs::Histogram* SolveMsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("osrs.serve.solve_ms",
                                                  LatencyBounds());
  return histogram;
}

obs::Histogram* TotalMsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("osrs.serve.total_ms",
                                                  LatencyBounds());
  return histogram;
}

}  // namespace

const char* ServeOutcomeToString(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kRejected:
      return "rejected";
    case ServeOutcome::kCacheHit:
      return "cache_hit";
    case ServeOutcome::kCoalesced:
      return "coalesced";
    case ServeOutcome::kSolved:
      return "solved";
    case ServeOutcome::kDegraded:
      return "degraded";
    case ServeOutcome::kShed:
      return "shed";
    case ServeOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string ServerCounters::ToJson() const {
  return StrFormat(
      "{\"submitted\":%lld,\"admitted\":%lld,\"rejected\":%lld,"
      "\"completed\":%lld,\"shed\":%lld,\"failed\":%lld,"
      "\"coalesced\":%lld,\"solves\":%lld,\"cache_hits\":%lld,"
      "\"degraded\":%lld,\"epoch_bumps\":%lld,\"watchdog_stalls\":%lld}",
      static_cast<long long>(submitted), static_cast<long long>(admitted),
      static_cast<long long>(rejected), static_cast<long long>(completed),
      static_cast<long long>(shed), static_cast<long long>(failed),
      static_cast<long long>(coalesced), static_cast<long long>(solves),
      static_cast<long long>(cache_hits), static_cast<long long>(degraded),
      static_cast<long long>(epoch_bumps),
      static_cast<long long>(watchdog_stalls));
}

/// One in-flight solve plus every request attached to it. The first
/// request for a given (item, epoch, options, k) creates the flight and
/// donates its budget; later requests attach under mutex_ and simply wait.
/// A flight is removed from the coalescing map before its waiters are
/// woken, so no request can attach to an already-completed flight.
struct SummaryServer::Flight {
  std::string coalesce_key;
  CacheKey cache_key;
  ExecutionBudget budget;
  Stopwatch queued;  // reset at enqueue; read at dequeue for queue_ms
  /// Guarded by the owning SummaryServer's mutex_ until map removal, then
  /// read by the completing worker only. The analysis cannot name an
  /// owner's capability from a nested struct, so this stays a comment-
  /// level invariant (see common/sync.h).
  int requests = 1;
  /// The leader's request trace, handed over at enqueue and owned by the
  /// processing worker until CompleteFlight moves it onto the response
  /// (same handoff discipline as `requests`). Followers only call the
  /// const, construction-immutable ElapsedNanos() on it.
  obs::RequestTrace trace;
  size_t root_span = 0;  // index of the still-open kServe root in `trace`

  Mutex mutex;
  CondVar cv;
  bool done OSRS_GUARDED_BY(mutex) = false;
  ServeResponse response OSRS_GUARDED_BY(mutex);
};

int SummaryServer::ResolveWorkerCount(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

SummaryServer::SummaryServer(const Ontology* ontology, std::vector<Item> items,
                             ServeOptions options)
    : ontology_(ontology),
      options_(std::move(options)),
      options_fingerprint_(OptionsFingerprint(options_.summarizer)),
      num_workers_(ResolveWorkerCount(options_.num_threads)),
      cache_(options_.cache_capacity),
      solve_cost_(LatencyBounds()),
      trace_ring_(options_.trace_ring_capacity) {
  // Recovery runs before any worker exists: the first admitted request
  // must already see the committed durable state.
  if (!options_.state_dir.empty()) RecoverState(&items);
  {
    MutexLock lock(items_mutex_);
    for (Item& item : items) {
      std::string id = item.id;
      items_[std::move(id)] = std::make_shared<const Item>(std::move(item));
    }
  }
  // First boot (or first boot with a fresh state dir): make the initial
  // corpus durable immediately so a crash before the first mutation still
  // recovers the served items, not an empty store.
  if (store_ != nullptr && !recovery_info_.found_snapshot) {
    Status status = store_->Compact(CaptureState());
    if (!status.ok()) {
      OSRS_LOG(slog::Level::kWarn, "serve",
               "initial state snapshot failed; will retry on next mutation",
               {"detail", status.ToString()});
    }
  }
  workers_.reserve(static_cast<size_t>(num_workers_));
  worker_states_.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
  for (int w = 0; w < num_workers_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  if (options_.watchdog_stall_threshold_ms > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

SummaryServer::~SummaryServer() { Stop(); }

void SummaryServer::RecoverState(std::vector<Item>* initial_items) {
  store::StateStoreOptions store_options;
  store_options.dir = options_.state_dir;
  store_options.fsync_policy = options_.fsync_policy;
  store_options.fsync_interval_ms = options_.fsync_interval_ms;
  store_options.compact_threshold_bytes =
      options_.journal_compact_threshold_bytes;
  auto store = std::make_unique<store::StateStore>(std::move(store_options));

  store::SnapshotData recovered;
  Result<store::RecoveryInfo> info = store->Recover(&recovered);
  if (!info.ok()) {
    // Surface, don't mask: a kDataLoss here means committed durable bytes
    // are corrupt, and silently serving without them (or atop them) would
    // be worse than refusing. The server still constructs — the caller
    // decides whether a non-OK recovery_status() is fatal (osrs_serve
    // exits) — but persistence stays off so nothing overwrites evidence.
    recovery_status_ = info.status();
    OSRS_LOG(slog::Level::kError, "serve", "state recovery failed",
             {"state_dir", options_.state_dir},
             {"detail", recovery_status_.ToString()});
    return;
  }
  recovery_info_ = *info;
  store_ = std::move(store);
  // Recovered state overlays the constructor-supplied corpus: the caller
  // passes the cold base corpus, the store holds every mutation that was
  // committed on top of it before the crash/restart.
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < initial_items->size(); ++i) {
    index[(*initial_items)[i].id] = i;
  }
  for (Item& item : recovered.items) {
    auto it = index.find(item.id);
    if (it != index.end()) {
      (*initial_items)[it->second] = std::move(item);
    } else {
      initial_items->push_back(std::move(item));
    }
  }
  epoch_.Restore(recovered.epoch);
  OSRS_LOG(slog::Level::kInfo, "serve", "state recovered",
           {"state_dir", options_.state_dir},
           {"generation", recovery_info_.generation},
           {"snapshot_items", recovery_info_.snapshot_items},
           {"journal_records", recovery_info_.journal_records_replayed},
           {"truncated_tail_bytes", recovery_info_.truncated_tail_bytes},
           {"epoch", recovery_info_.epoch});
}

store::SnapshotData SummaryServer::CaptureState() {
  store::SnapshotData state;
  {
    MutexLock lock(items_mutex_);
    state.items.reserve(items_.size());
    for (const auto& [id, item] : items_) state.items.push_back(*item);
  }
  state.epoch = epoch_.value();
  return state;
}

void SummaryServer::JournalMutation(const Item* item, uint64_t epoch_after) {
  if (store_ == nullptr) return;
  Status status = item != nullptr
                      ? store_->AppendUpdateItem(*item, epoch_after)
                      : store_->AppendBumpEpoch(epoch_after);
  if (!status.ok()) {
    OSRS_LOG(slog::Level::kWarn, "serve", "journal append failed",
             {"code", StatusCodeToString(status.code())},
             {"detail", status.message()});
    ServeCounter("osrs.serve.journal_errors")->Increment();
  }
  // Compaction both bounds replay time (size threshold) and self-heals a
  // poisoned journal: the fresh snapshot carries the full in-memory state,
  // so the mutation that failed to journal above is durable after all.
  if (store_->ShouldCompact()) {
    Status compacted = store_->Compact(CaptureState());
    if (!compacted.ok()) {
      OSRS_LOG(slog::Level::kWarn, "serve", "journal compaction failed",
               {"code", StatusCodeToString(compacted.code())},
               {"detail", compacted.message()});
      ServeCounter("osrs.serve.journal_errors")->Increment();
    } else {
      ServeCounter("osrs.serve.compactions")->Increment();
    }
  }
}

uint64_t SummaryServer::BumpEpoch() {
  MutexLock mutation_lock(mutation_mutex_);
  uint64_t next = epoch_.Bump();
  {
    MutexLock lock(counters_mutex_);
    ++counters_.epoch_bumps;
  }
  JournalMutation(nullptr, next);
  return next;
}

void SummaryServer::UpdateItem(Item item) {
  MutexLock mutation_lock(mutation_mutex_);
  auto snapshot = std::make_shared<const Item>(std::move(item));
  {
    MutexLock lock(items_mutex_);
    items_[snapshot->id] = snapshot;
  }
  uint64_t next = epoch_.Bump();
  {
    MutexLock lock(counters_mutex_);
    ++counters_.epoch_bumps;
  }
  JournalMutation(snapshot.get(), next);
}

Status SummaryServer::ForceSnapshot() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "persistence is disabled (no state_dir configured)");
  }
  MutexLock mutation_lock(mutation_mutex_);
  OSRS_RETURN_IF_ERROR(store_->Compact(CaptureState()));
  ServeCounter("osrs.serve.compactions")->Increment();
  return Status::OK();
}

ServeResponse SummaryServer::Serve(const ServeRequest& request) {
  Stopwatch total;
  ServeResponse response = ServeImpl(request);
  response.total_ms = total.ElapsedMillis();
  // The response-level degraded flag is authoritative; mirror it onto the
  // summary so callers that only look at ItemSummary see it too. The
  // request/trace ids mirror the same way for log correlation.
  if (response.degraded) response.summary.degraded = true;
  if (response.status.ok()) {
    response.summary.request_id = response.request_id;
    response.summary.trace_id = response.trace_id;
  }
  TotalMsHistogram()->Observe(response.total_ms);
  if (options_.slow_request_threshold_ms > 0.0 &&
      response.total_ms > options_.slow_request_threshold_ms) {
    OSRS_LOG_T(slog::Level::kWarn, "serve", response.trace_id,
               "slow request", {"request_id", response.request_id},
               {"outcome", ServeOutcomeToString(response.outcome)},
               {"total_ms", response.total_ms},
               {"queue_ms", response.queue_ms},
               {"spans", response.trace.ToJson()});
  }
  trace_ring_.Push(response.trace);
  return response;
}

ServeResponse SummaryServer::ServeImpl(const ServeRequest& request) {
  // Every request gets a deterministic identity before anything can fail:
  // ids start at 1, trace ids are the SplitMix64 image of the request id.
  obs::RequestTrace trace;
  trace.context.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.context.trace_id = obs::DeriveTraceId(trace.context.request_id);
  const size_t root_span = trace.BeginSpan(obs::RequestSpanKind::kServe);

  {
    MutexLock lock(counters_mutex_);
    ++counters_.submitted;
  }

  // Closes the root span and hands the finished trace to the response —
  // the single exit path for every outcome decided on this thread.
  auto finalize = [&trace, root_span](ServeResponse* response) {
    trace.EndSpan(root_span);
    response->request_id = trace.context.request_id;
    response->trace_id = trace.context.trace_id;
    response->trace = std::move(trace);
  };

  auto reject = [this, &trace, &finalize](Status status) {
    {
      MutexLock lock(counters_mutex_);
      ++counters_.rejected;
    }
    ServeCounter("osrs.serve.rejected")->Increment();
    OSRS_LOG_T(slog::Level::kInfo, "serve", trace.context.trace_id,
               "request rejected",
               {"request_id", trace.context.request_id},
               {"code", StatusCodeToString(status.code())},
               {"detail", status.message()});
    ServeResponse response;
    response.status = std::move(status);
    response.outcome = ServeOutcome::kRejected;
    finalize(&response);
    return response;
  };

  // A stopped or draining server rejects everything, cache hits included —
  // Stop() promises no request started after it observes server state, and
  // Drain() promises the admitted set stops growing the moment it begins.
  {
    MutexLock lock(mutex_);
    if (stopping_ || draining_) {
      return reject(Status::Unavailable(
          draining_ ? "server is draining" : "server is stopped"));
    }
  }

  // The admission failpoint models a failure of the serving front door
  // itself (listener overload, malformed transport frame): the request is
  // turned away before touching queue or cache.
  if (Status admit = OSRS_FAILPOINT("osrs.serve.admit"); !admit.ok()) {
    return reject(std::move(admit));
  }

  if (request.k < 0) {
    return reject(Status::InvalidArgument(
        StrFormat("k must be >= 0, got %d", request.k)));
  }

  std::shared_ptr<const Item> item;
  {
    MutexLock lock(items_mutex_);
    auto it = items_.find(request.item_id);
    if (it != items_.end()) item = it->second;
  }
  if (item == nullptr) {
    return reject(Status::NotFound(
        StrFormat("no item '%s' loaded", request.item_id.c_str())));
  }

  double deadline_ms = request.deadline_ms > 0.0
                           ? request.deadline_ms
                           : options_.default_deadline_ms;
  ExecutionBudget budget;
  if (deadline_ms > 0.0) budget.SetDeadlineMs(deadline_ms);

  uint64_t epoch_now = epoch_.value();
  CacheKey key{request.item_id, epoch_now, options_fingerprint_, request.k};

  // Exact cache read. A cache failpoint injection means the cache is
  // unavailable, never that the request fails: degrade to a miss.
  if (!request.bypass_cache) {
    size_t probe_span = trace.BeginSpan(obs::RequestSpanKind::kCacheProbe);
    Status cache_status = OSRS_FAILPOINT("osrs.serve.cache");
    ItemSummary cached;
    bool hit = cache_status.ok() && cache_.Lookup(key, &cached);
    trace.EndSpan(probe_span);
    if (hit) {
      {
        MutexLock lock(counters_mutex_);
        ++counters_.admitted;
        ++counters_.completed;
        ++counters_.cache_hits;
      }
      ServeCounter("osrs.serve.cache_hit")->Increment();
      ServeResponse response;
      response.status = Status::OK();
      response.summary = std::move(cached);
      response.outcome = ServeOutcome::kCacheHit;
      response.epoch = epoch_now;
      finalize(&response);
      return response;
    }
    ServeCounter("osrs.serve.cache_miss")->Increment();
  }

  std::shared_ptr<Flight> flight;
  bool attached = false;
  int64_t attach_ns = 0;  // offset into the leader's trace at attach time
  std::string coalesce_key =
      StrFormat("%s\x1f%llu\x1f%llx\x1f%d", request.item_id.c_str(),
                static_cast<unsigned long long>(epoch_now),
                static_cast<unsigned long long>(options_fingerprint_),
                request.k);
  size_t admission_span = trace.BeginSpan(obs::RequestSpanKind::kAdmission);
  {
    ReleasableMutexLock lock(mutex_);
    if (stopping_ || draining_) {
      lock.Release();
      trace.EndSpan(admission_span);
      return reject(Status::Unavailable("server is stopping"));
    }
    auto it = flights_.find(coalesce_key);
    if (it != flights_.end()) {
      // Single-flight coalescing: ride the existing solve. Waiters adopt
      // the leader's budget — their own deadline no longer matters because
      // they add zero marginal work.
      flight = it->second;
      ++flight->requests;
      attached = true;
      // Safe concurrent read: only the construction-immutable clock base
      // of the leader's trace (see RequestTrace::ElapsedNanos).
      attach_ns = flight->trace.ElapsedNanos();
      {
        MutexLock counters_lock(counters_mutex_);
        ++counters_.admitted;
        ++counters_.coalesced;
      }
      ServeCounter("osrs.serve.coalesced")->Increment();
    } else {
      // Admission control. Queue depth first (absolute backstop), then the
      // wait estimate once enough solve costs have been observed.
      if (queue_.size() >= options_.max_queue_depth) {
        lock.Release();
        trace.EndSpan(admission_span);
        return reject(Status::ResourceExhausted(
            StrFormat("queue full (%zu requests)", options_.max_queue_depth)));
      }
      double p50 = p50_solve_ms();
      if (p50 > 0.0) {
        double estimated_wait_ms = static_cast<double>(queue_.size() + 1) *
                                   p50 / static_cast<double>(num_workers_);
        if (options_.max_estimated_wait_ms > 0.0 &&
            estimated_wait_ms > options_.max_estimated_wait_ms) {
          lock.Release();
          trace.EndSpan(admission_span);
          return reject(Status::ResourceExhausted(
              StrFormat("estimated wait %.1f ms exceeds policy bound %.1f ms",
                        estimated_wait_ms, options_.max_estimated_wait_ms)));
        }
        if (budget.has_deadline() &&
            estimated_wait_ms > budget.RemainingMs()) {
          lock.Release();
          trace.EndSpan(admission_span);
          return reject(Status::ResourceExhausted(StrFormat(
              "estimated wait %.1f ms exceeds the request deadline",
              estimated_wait_ms)));
        }
      }
      flight = std::make_shared<Flight>();
      flight->coalesce_key = coalesce_key;
      flight->cache_key = std::move(key);
      flight->budget = budget;
      flight->queued.Reset();
      // Hand the trace to the worker with the flight (the root span stays
      // open; CompleteFlight closes it). After the move this thread only
      // waits — it records nothing further.
      trace.EndSpan(admission_span);
      flight->root_span = root_span;
      flight->trace = std::move(trace);
      flights_.emplace(coalesce_key, flight);
      queue_.push_back(flight);
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
      {
        MutexLock counters_lock(counters_mutex_);
        ++counters_.admitted;
      }
      ServeCounter("osrs.serve.admitted")->Increment();
      work_cv_.NotifyOne();
    }
  }
  if (attached) trace.EndSpan(admission_span);

  ServeResponse response;
  {
    MutexLock lock(flight->mutex);
    // Explicit wait loop (not the predicate overload): the analysis
    // checks this read of `done` against the held capability, which a
    // lambda body would escape (see common/sync.h).
    while (!flight->done) flight->cv.Wait(flight->mutex);
    response = flight->response;
  }
  if (attached) {
    if (response.outcome == ServeOutcome::kSolved) {
      response.outcome = ServeOutcome::kCoalesced;
    }
    // The follower shares the leader's span tree (solve span included)
    // but keeps its own identity: restamp the ids and append the wait on
    // the shared flight as one closed span. Offsets stay coherent — the
    // copied trace carries the leader's clock base.
    int64_t wake_ns = response.trace.ElapsedNanos();
    response.trace.context = trace.context;
    response.trace.AddSpan(obs::RequestSpanKind::kCoalescedWait, attach_ns,
                           wake_ns - attach_ns);
    response.request_id = trace.context.request_id;
    response.trace_id = trace.context.trace_id;
  }
  return response;
}

void SummaryServer::WorkerLoop(int worker_index) {
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      flight = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    ProcessFlight(flight, worker_index);
  }
}

void SummaryServer::WatchdogLoop() {
  // Fires at most once per (worker, solve generation): a genuinely wedged
  // solve gets one cancellation and one log line, not one per poll.
  std::vector<uint64_t> last_fired(worker_states_.size(), 0);
  int64_t threshold_ns = static_cast<int64_t>(
      options_.watchdog_stall_threshold_ms * 1e6);
  for (;;) {
    {
      MutexLock lock(watchdog_mutex_);
      if (watchdog_stop_) return;
      watchdog_cv_.WaitForMs(watchdog_mutex_,
                             std::max(options_.watchdog_poll_ms, 1.0));
      if (watchdog_stop_) return;
    }
    int64_t now_ns = watchdog_clock_.ElapsedNanos();
    for (size_t w = 0; w < worker_states_.size(); ++w) {
      WorkerState& state = *worker_states_[w];
      // Read the generation BEFORE the start time: if the worker moves to
      // a new solve between the two reads, the stale generation makes the
      // dedup check fail harmlessly rather than cancelling the new solve.
      uint64_t generation = state.generation.load(std::memory_order_acquire);
      int64_t start_ns = state.solve_start_ns.load(std::memory_order_acquire);
      if (start_ns < 0 || generation == last_fired[w]) continue;
      if (now_ns - start_ns < threshold_ns) continue;
      last_fired[w] = generation;
      state.cancel.Cancel();
      {
        MutexLock lock(counters_mutex_);
        ++counters_.watchdog_stalls;
      }
      ServeCounter("osrs.serve.watchdog_stalls")->Increment();
      OSRS_LOG(slog::Level::kWarn, "serve", "watchdog cancelled stalled solve",
               {"worker", static_cast<uint64_t>(w)},
               {"stalled_ms", static_cast<double>(now_ns - start_ns) * 1e-6},
               {"threshold_ms", options_.watchdog_stall_threshold_ms});
    }
  }
}

void SummaryServer::ProcessFlight(const std::shared_ptr<Flight>& flight,
                                  int worker_index) {
  double queue_ms = flight->queued.ElapsedMillis();
  QueueMsHistogram()->Observe(queue_ms);
  // The queue wait is only measurable now, so it enters the trace as an
  // already-closed span backdated to the enqueue instant.
  int64_t queue_ns = static_cast<int64_t>(queue_ms * 1e6);
  int64_t dequeue_ns = flight->trace.ElapsedNanos();
  flight->trace.AddSpan(obs::RequestSpanKind::kQueueWait,
                        std::max<int64_t>(dequeue_ns - queue_ns, 0),
                        queue_ns);

  ServeResponse response;
  response.queue_ms = queue_ms;
  response.epoch = flight->cache_key.epoch;

  // Deadline-aware shedding: when what is left of the request's budget
  // cannot plausibly fund a solve (observed p50 x safety factor), starting
  // one only burns a worker that admitted requests behind it need. Prefer
  // a stale cached answer; shed outright otherwise.
  size_t shed_span =
      flight->trace.BeginSpan(obs::RequestSpanKind::kShedDecision);
  double remaining_ms = flight->budget.RemainingMs();
  double p50 = p50_solve_ms();
  bool over_budget =
      remaining_ms <= 0.0 ||
      (p50 > 0.0 && remaining_ms < p50 * options_.shed_safety_factor);
  flight->trace.EndSpan(shed_span);
  if (over_budget) {
    if (!TryServeStale(*flight, &response)) {
      OSRS_LOG_T(slog::Level::kWarn, "serve",
                 flight->trace.context.trace_id, "request shed",
                 {"item", flight->cache_key.item_id},
                 {"remaining_ms", std::max(remaining_ms, 0.0)},
                 {"p50_solve_ms", p50}, {"queue_ms", queue_ms});
      response.status = Status::ResourceExhausted(StrFormat(
          "shed: %.1f ms of budget left, p50 solve cost is %.1f ms",
          std::max(remaining_ms, 0.0), p50));
      response.outcome = ServeOutcome::kShed;
    }
    CompleteFlight(flight, std::move(response));
    return;
  }

  std::shared_ptr<const Item> item;
  {
    MutexLock lock(items_mutex_);
    auto it = items_.find(flight->cache_key.item_id);
    if (it != items_.end()) item = it->second;
  }
  if (item == nullptr) {
    // UpdateItem cannot remove items today, but keep the invariant local:
    // a flight must never dereference a null item.
    response.status = Status::NotFound(StrFormat(
        "item '%s' disappeared", flight->cache_key.item_id.c_str()));
    response.outcome = ServeOutcome::kFailed;
    CompleteFlight(flight, std::move(response));
    return;
  }

  InflightGauge()->Increment();
  // Publish progress for the watchdog: bump the generation, then the
  // start time (the watchdog reads them in the opposite order, so a torn
  // pair fails its dedup check instead of cancelling the wrong solve),
  // and thread this worker's CancellationFlag into the solve's budget.
  WorkerState& worker_state = *worker_states_[static_cast<size_t>(
      worker_index)];
  worker_state.cancel.Reset();
  ExecutionBudget budget = flight->budget;
  budget.AddCancellation(&worker_state.cancel);
  worker_state.generation.fetch_add(1, std::memory_order_acq_rel);
  worker_state.solve_start_ns.store(watchdog_clock_.ElapsedNanos(),
                                    std::memory_order_release);
  Stopwatch solve_watch;
  size_t solve_span = flight->trace.BeginSpan(obs::RequestSpanKind::kSolve);
  Result<ItemSummary> solved =
      GuardedSolve(*item, flight->cache_key.k, budget);
  flight->trace.EndSpan(solve_span);
  worker_state.solve_start_ns.store(-1, std::memory_order_release);
  double solve_ms = solve_watch.ElapsedMillis();
  InflightGauge()->Decrement();
  SolveMsHistogram()->Observe(solve_ms);
  {
    MutexLock lock(counters_mutex_);
    ++counters_.solves;
  }
  ServeCounter("osrs.serve.solves")->Increment();

  if (solved.ok()) {
    ObserveSolveCost(solve_ms);
    // The per-phase solver breakdown (collect_stats on) rides the request
    // trace, so a slow solve is attributable below the kSolve span.
    if (!solved->stats.empty()) {
      flight->trace.AttachSolverStats(solved->stats);
    }
    if (solved->degraded) {
      OSRS_LOG_T(slog::Level::kWarn, "serve",
                 flight->trace.context.trace_id, "solve degraded",
                 {"item", flight->cache_key.item_id},
                 {"stop_reason", StatusCodeToString(solved->stop_reason)},
                 {"solve_ms", solve_ms});
    }
    // Only full-budget answers enter the cache — the exact-hit
    // bit-identity contract depends on it. A cache failpoint injection
    // skips the insert (cache unavailable), nothing else.
    if (!solved->degraded) {
      if (OSRS_FAILPOINT("osrs.serve.cache").ok()) {
        cache_.Insert(flight->cache_key, *solved);
      }
    }
    response.status = Status::OK();
    response.degraded = solved->degraded;
    response.summary = std::move(solved).value();
    response.outcome = ServeOutcome::kSolved;
    CompleteFlight(flight, std::move(response));
    return;
  }

  // Solve failed. Permanent input errors and cancellation propagate as-is;
  // transient failures (injected faults, allocation pressure, budget trips
  // at entry) fall back to a stale cached answer when one exists.
  Status failure = solved.status();
  bool permanent = failure.code() == StatusCode::kInvalidArgument ||
                   failure.code() == StatusCode::kCancelled;
  if (!permanent && TryServeStale(*flight, &response)) {
    CompleteFlight(flight, std::move(response));
    return;
  }
  OSRS_LOG_T(slog::Level::kError, "serve", flight->trace.context.trace_id,
             "solve failed", {"item", flight->cache_key.item_id},
             {"code", StatusCodeToString(failure.code())},
             {"detail", failure.message()}, {"permanent", permanent});
  response.status = std::move(failure);
  response.outcome = ServeOutcome::kFailed;
  CompleteFlight(flight, std::move(response));
}

bool SummaryServer::TryServeStale(Flight& flight, ServeResponse* response) {
  if (!options_.serve_stale_when_over_budget) return false;
  obs::RequestSpanScope scope(&flight.trace,
                              obs::RequestSpanKind::kStaleFallback);
  ItemSummary stale;
  uint64_t stale_epoch = 0;
  if (!cache_.LookupLatest(flight.cache_key.item_id,
                           flight.cache_key.options_fingerprint,
                           flight.cache_key.k, &stale, &stale_epoch)) {
    return false;
  }
  OSRS_LOG_T(slog::Level::kWarn, "serve", flight.trace.context.trace_id,
             "serving stale summary", {"item", flight.cache_key.item_id},
             {"stale_epoch", stale_epoch},
             {"current_epoch", flight.cache_key.epoch});
  response->status = Status::OK();
  response->summary = std::move(stale);
  response->summary.degraded = true;
  response->degraded = true;
  response->epoch = stale_epoch;
  response->outcome = ServeOutcome::kDegraded;
  return true;
}

Result<ItemSummary> SummaryServer::GuardedSolve(const Item& item, int k,
                                                const ExecutionBudget& budget) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.serve.solve"));
  // Exception boundary: whatever escapes a solve — an injected bad_alloc,
  // a real allocation failure, a defect — is isolated to this flight. The
  // process must outlive any single request.
  try {
    ReviewSummarizer summarizer(ontology_, options_.summarizer);
    return summarizer.Summarize(item, k, budget);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failure during solve");
  } catch (const std::exception& e) {
    return Status::Internal(
        StrFormat("exception escaped solve: %s", e.what()));
  } catch (...) {
    return Status::Internal("unknown exception escaped solve");
  }
}

void SummaryServer::CompleteFlight(const std::shared_ptr<Flight>& flight,
                                   ServeResponse response) {
  int requests;
  bool drained_empty;
  {
    // Remove from the coalescing map first: after this no request can
    // attach, so the request count is final.
    MutexLock lock(mutex_);
    auto it = flights_.find(flight->coalesce_key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
    requests = flight->requests;
    drained_empty = flights_.empty() && queue_.empty();
  }
  if (drained_empty) drain_cv_.NotifyAll();
  {
    MutexLock lock(counters_mutex_);
    switch (response.outcome) {
      case ServeOutcome::kShed:
        counters_.shed += requests;
        break;
      case ServeOutcome::kFailed:
        counters_.failed += requests;
        break;
      default:
        counters_.completed += requests;
        break;
    }
    if (response.degraded) counters_.degraded += requests;
  }
  switch (response.outcome) {
    case ServeOutcome::kShed:
      ServeCounter("osrs.serve.shed")->Add(requests);
      break;
    case ServeOutcome::kFailed:
      ServeCounter("osrs.serve.failed")->Add(requests);
      break;
    default:
      ServeCounter("osrs.serve.completed")->Add(requests);
      break;
  }
  if (response.degraded) ServeCounter("osrs.serve.degraded")->Add(requests);
  // Close the root span and move the finished trace onto the response:
  // the leader reads it back as its own; followers copy it and restamp.
  flight->trace.EndSpan(flight->root_span);
  response.request_id = flight->trace.context.request_id;
  response.trace_id = flight->trace.context.trace_id;
  response.trace = std::move(flight->trace);
  {
    MutexLock lock(flight->mutex);
    flight->response = std::move(response);
    flight->done = true;
  }
  flight->cv.NotifyAll();
}

void SummaryServer::ObserveSolveCost(double ms) {
  MutexLock lock(cost_mutex_);
  solve_cost_.Observe(ms);
  if (solve_cost_.total_count >= options_.min_cost_samples) {
    p50_solve_ms_cached_ = solve_cost_.Quantile(0.5);
  }
}

double SummaryServer::p50_solve_ms() const {
  MutexLock lock(cost_mutex_);
  return p50_solve_ms_cached_;
}

obs::HistogramSnapshot SummaryServer::solve_cost_snapshot() const {
  MutexLock lock(cost_mutex_);
  return solve_cost_;
}

void SummaryServer::Stop() {
  std::deque<std::shared_ptr<Flight>> drained;
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    if (stopping_ && queue_.empty() && workers_.empty()) return;
    stopping_ = true;
    drained.swap(queue_);
    // Claim the worker threads under the same lock that guards them: a
    // concurrent Stop() (or the destructor racing an explicit Stop) sees
    // an empty vector and returns instead of double-joining. The join
    // itself happens below, after the lock is dropped, so workers can
    // still acquire mutex_ to observe stopping_ and drain.
    workers.swap(workers_);
    QueueDepthGauge()->Set(0);
  }
  work_cv_.NotifyAll();
  for (const std::shared_ptr<Flight>& flight : drained) {
    ServeResponse response;
    response.status = Status::Unavailable("server stopped before the solve");
    response.outcome = ServeOutcome::kFailed;
    response.epoch = flight->cache_key.epoch;
    CompleteFlight(flight, std::move(response));
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  {
    MutexLock lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.NotifyAll();
  if (watchdog_.joinable()) watchdog_.join();
  // Final fsync of whatever the journal holds: Stop() is also the
  // destructor's path, and mutations journaled under kInterval may still
  // be inside the fsync window.
  if (store_ != nullptr) {
    Status status = store_->Close();
    if (!status.ok()) {
      OSRS_LOG(slog::Level::kWarn, "serve", "journal close failed",
               {"detail", status.ToString()});
    }
  }
}

bool SummaryServer::Drain(double deadline_ms) {
  if (deadline_ms <= 0.0) deadline_ms = options_.drain_deadline_ms;
  {
    MutexLock lock(mutex_);
    // Stop admitting; workers keep consuming the queue. Idempotent: a
    // second Drain just waits alongside the first.
    draining_ = true;
  }
  bool drained;
  {
    Stopwatch waited;
    MutexLock lock(mutex_);
    while (!(flights_.empty() && queue_.empty())) {
      double remaining_ms = deadline_ms - waited.ElapsedMillis();
      if (remaining_ms <= 0.0) break;
      drain_cv_.WaitForMs(mutex_, remaining_ms);
    }
    drained = flights_.empty() && queue_.empty();
  }
  if (!drained) {
    OSRS_LOG(slog::Level::kWarn, "serve",
             "drain deadline expired; shedding the remainder",
             {"deadline_ms", deadline_ms});
  }
  // Stop() sheds whatever the deadline cut off (kUnavailable), joins the
  // workers and the watchdog, and closes the journal. The final snapshot
  // comes after, so it captures a fully quiesced state.
  Stop();
  if (store_ != nullptr) {
    Status status = store_->Compact(CaptureState());
    if (!status.ok()) {
      OSRS_LOG(slog::Level::kWarn, "serve", "final drain snapshot failed",
               {"detail", status.ToString()});
    }
  }
  return drained;
}

ServerCounters SummaryServer::counters() const {
  MutexLock lock(counters_mutex_);
  return counters_;
}

}  // namespace osrs::serve
