#ifndef OSRS_SERVE_SERVER_H_
#define OSRS_SERVE_SERVER_H_

// The overload-resilient serving layer: a long-lived SummaryServer that
// answers per-item summary requests from a worker pool behind a bounded
// queue, staying correct and responsive when offered load exceeds solve
// capacity. Four mechanisms compose (see DESIGN.md, "Serving
// architecture"):
//
//   * admission control — Serve() rejects with kResourceExhausted before
//     enqueueing when the queue is full or the estimated wait (queue depth
//     x observed p50 solve cost / workers) exceeds policy or the request's
//     own deadline;
//   * deadline-aware load shedding — a worker dequeuing a request whose
//     remaining budget cannot cover the observed p50 solve cost drops it
//     (kResourceExhausted) instead of starting a doomed solve, unless a
//     degraded answer is available;
//   * single-flight coalescing — concurrent requests for the same
//     (item, epoch, options, k) attach to one in-flight solve and all
//     receive its result, so a hot item costs one solve;
//   * graceful degradation — when over budget or when a solve fails
//     transiently, the server answers with the cached previous-epoch
//     summary (flagged degraded) rather than erroring, when one exists.
//
// Results are cached in a bounded LRU keyed by (item, corpus epoch,
// options fingerprint, k); BumpEpoch() invalidates the whole corpus
// generation in O(1) without touching entries. Failpoints
// osrs.serve.{admit,solve,cache} let the chaos suite drive every path;
// an exception escaping a solve (injected bad_alloc included) is isolated
// to that request — the process never dies.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/review_summarizer.h"
#include "common/execution_budget.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "ontology/ontology.h"
#include "serve/summary_cache.h"
#include "store/state_store.h"

namespace osrs::serve {

/// Server configuration. The summarizer options apply to every solve; the
/// per-request knobs are deadline and k only, so one options fingerprint
/// covers the whole server lifetime.
struct ServeOptions {
  ReviewSummarizerOptions summarizer;
  /// Worker threads; 0 = hardware concurrency.
  int num_threads = 0;
  /// Admission bound: requests beyond this queue depth are rejected with
  /// kResourceExhausted. Must be >= 1.
  size_t max_queue_depth = 256;
  /// Admission bound on estimated wait (queue depth x p50 / workers) in
  /// milliseconds; <= 0 disables the wait-based check.
  double max_estimated_wait_ms = 0.0;
  /// Deadline for requests that do not carry their own; <= 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// LRU capacity in summaries; 0 disables caching (and with it the
  /// degraded stale-answer path).
  size_t cache_capacity = 1024;
  /// When true (default) an over-budget or transiently failed request is
  /// answered with the latest cached summary for its item (any epoch),
  /// flagged degraded, instead of being shed/failed.
  bool serve_stale_when_over_budget = true;
  /// Load shedding triggers when remaining budget < p50 x this factor.
  double shed_safety_factor = 1.0;
  /// Solve-cost observations required before the p50 estimate gates
  /// admission and shedding (cold-start protection: with fewer samples
  /// only queue depth and already-expired deadlines shed).
  int64_t min_cost_samples = 20;
  /// Completed request traces retained in memory (recent_traces(), the
  /// osrs_serve `traces` REPL verb); 0 disables retention. Oldest are
  /// evicted first.
  size_t trace_ring_capacity = 128;
  /// Requests whose total latency exceeds this emit their full span tree
  /// as one structured "slow request" log event; <= 0 disables.
  double slow_request_threshold_ms = 0.0;
  /// Durability: directory for the snapshot + journal pair (see
  /// store/state_store.h). Empty disables persistence entirely. The
  /// directory must exist; construction recovers the committed state from
  /// it before any worker starts.
  std::string state_dir;
  /// When a journal record counts as committed (store/journal.h).
  store::FsyncPolicy fsync_policy = store::FsyncPolicy::kEveryRecord;
  /// Max ms between journal fsyncs under FsyncPolicy::kInterval.
  uint64_t fsync_interval_ms = 50;
  /// Journal size that triggers automatic compaction into a fresh
  /// snapshot; 0 disables size-based compaction.
  uint64_t journal_compact_threshold_bytes = 8ull << 20;
  /// Default deadline for Drain() when the caller passes <= 0.
  double drain_deadline_ms = 5000.0;
  /// Watchdog: a solve running longer than this is cancelled through its
  /// worker's CancellationFlag (the solver returns its degraded incumbent
  /// or kCancelled); <= 0 disables the watchdog thread.
  double watchdog_stall_threshold_ms = 0.0;
  /// How often the watchdog samples worker progress.
  double watchdog_poll_ms = 20.0;
};

/// One summary request. The item must have been loaded into the server.
struct ServeRequest {
  std::string item_id;
  int k = 5;
  /// Wall-clock budget for this request (queue wait included); <= 0 uses
  /// ServeOptions::default_deadline_ms.
  double deadline_ms = 0.0;
  /// Skip the exact-hit cache read (the result is still inserted).
  bool bypass_cache = false;
};

/// Where a response came from — the failure-semantics-v3 taxonomy
/// (DESIGN.md): every request ends in exactly one of these.
enum class ServeOutcome {
  kRejected,   // admission control refused it (kResourceExhausted)
  kCacheHit,   // exact current-epoch cache hit
  kCoalesced,  // attached to another request's in-flight solve
  kSolved,     // a fresh solve (possibly internally degraded by budget)
  kDegraded,   // answered with a stale cached summary, flagged degraded
  kShed,       // dropped at dequeue: budget could not fund a solve
  kFailed,     // solve failed and no degraded answer existed
};

const char* ServeOutcomeToString(ServeOutcome outcome);

/// One request's answer plus serving diagnostics.
struct ServeResponse {
  Status status;        // OK for kCacheHit/kCoalesced/kSolved/kDegraded
  ItemSummary summary;  // default-constructed on error
  ServeOutcome outcome = ServeOutcome::kFailed;
  /// True when `summary` is not a fresh full-budget answer: either the
  /// solve degraded internally (summary.degraded) or a stale epoch was
  /// served. Mirrored into summary.degraded.
  bool degraded = false;
  /// Corpus epoch the summary was solved under (== epoch at submit time
  /// for fresh solves; older for stale degraded answers).
  uint64_t epoch = 0;
  double queue_ms = 0.0;  // admission to dequeue (0 for cache hits)
  double total_ms = 0.0;  // Serve() entry to return
  /// Monotonic per-server id of this request and the 64-bit trace id
  /// derived from it (obs::DeriveTraceId). Coalesced followers keep their
  /// own ids while sharing the leader's solve span.
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  /// The request's span tree: balanced (every span closed) for every
  /// outcome, with queue-wait and solve spans for requests that reached a
  /// worker. Mirrored into the server's trace ring.
  obs::RequestTrace trace;
};

/// Monotonic request accounting. Invariants (checked by serve_test and
/// bench_serve): submitted == admitted + rejected, and — once the queue is
/// drained — admitted == completed + shed + failed. `completed` includes
/// cache hits, coalesced waiters, fresh solves, and degraded answers.
struct ServerCounters {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t failed = 0;
  int64_t coalesced = 0;   // waiters that attached to an in-flight solve
  int64_t solves = 0;      // solver invocations (not per-request)
  int64_t cache_hits = 0;  // exact-epoch hits
  int64_t degraded = 0;    // responses with degraded == true
  int64_t epoch_bumps = 0;
  int64_t watchdog_stalls = 0;  // solves cancelled by the stall watchdog

  std::string ToJson() const;
};

/// Long-lived serving daemon over one annotated corpus. Serve() is
/// thread-safe and blocking — callers are the "connections"; concurrency
/// comes from calling it on many threads, a worker pool solves behind the
/// queue. Construction starts the workers; destruction (or Stop) drains
/// the queue, failing still-queued requests with kUnavailable, and joins.
class SummaryServer {
 public:
  /// `ontology` must outlive the server; `items` are copied in and served
  /// by Item::id (duplicate ids: last wins).
  SummaryServer(const Ontology* ontology, std::vector<Item> items,
                ServeOptions options);
  ~SummaryServer();
  SummaryServer(const SummaryServer&) = delete;
  SummaryServer& operator=(const SummaryServer&) = delete;

  /// Answers one request (blocking). Never throws; every failure mode is
  /// a Status per the ServeOutcome taxonomy.
  ServeResponse Serve(const ServeRequest& request)
      OSRS_EXCLUDES(mutex_, items_mutex_, counters_mutex_, cost_mutex_);

  /// Invalidates every cached summary by advancing the corpus epoch —
  /// O(1), no cache traversal. In-flight solves complete under the epoch
  /// they started with and cache as already-stale entries. With
  /// persistence on, the bump is journaled before this returns.
  uint64_t BumpEpoch()
      OSRS_EXCLUDES(mutation_mutex_, items_mutex_, counters_mutex_);
  uint64_t epoch() const { return epoch_.value(); }

  /// Replaces (or adds) one item and bumps the epoch — the minimal
  /// "reviews arrived" mutation the future incremental engine will do
  /// in-place. With persistence on, the mutation is journaled (committed
  /// per the fsync policy) before this returns.
  void UpdateItem(Item item)
      OSRS_EXCLUDES(mutation_mutex_, items_mutex_, counters_mutex_);

  /// Stops accepting requests, fails whatever is still queued with
  /// kUnavailable, and joins the workers (watchdog included). Idempotent.
  void Stop() OSRS_EXCLUDES(mutex_, counters_mutex_, watchdog_mutex_);

  /// Graceful drain: stops admitting new requests, waits for every
  /// admitted flight to complete (up to `deadline_ms`; <= 0 uses
  /// ServeOptions::drain_deadline_ms), then stops the workers — shedding
  /// with kUnavailable whatever the deadline cut off — and writes a final
  /// snapshot when persistence is on. Returns true when everything
  /// admitted completed within the deadline. Idempotent; safe to race
  /// with Stop().
  bool Drain(double deadline_ms = 0.0)
      OSRS_EXCLUDES(mutex_, items_mutex_, counters_mutex_, mutation_mutex_,
                    watchdog_mutex_);

  /// Compacts the journal into a fresh snapshot of the current state now
  /// (the osrs_serve `snapshot` verb). kFailedPrecondition when
  /// persistence is disabled.
  Status ForceSnapshot()
      OSRS_EXCLUDES(mutex_, items_mutex_, mutation_mutex_);

  /// OK when persistence is off or recovery succeeded; the recovery
  /// failure (kDataLoss for corrupt durable state) otherwise. A server
  /// with a failed recovery starts empty and does not persist — callers
  /// that care (osrs_serve does) must check before serving traffic.
  const Status& recovery_status() const { return recovery_status_; }
  /// What startup recovery found (valid when recovery_status() is OK and
  /// persistence is on).
  const store::RecoveryInfo& recovery_info() const { return recovery_info_; }
  bool persistence_enabled() const { return store_ != nullptr; }

  ServerCounters counters() const OSRS_EXCLUDES(counters_mutex_);
  /// The most recent completed request traces, oldest first (bounded by
  /// ServeOptions::trace_ring_capacity).
  std::vector<obs::RequestTrace> recent_traces() const {
    return trace_ring_.Snapshot();
  }
  CacheStats cache_stats() const { return cache_.stats(); }
  /// Observed solve-cost distribution (the shed threshold's input).
  obs::HistogramSnapshot solve_cost_snapshot() const
      OSRS_EXCLUDES(cost_mutex_);
  /// Current p50 solve-cost estimate in ms (0 until min_cost_samples).
  double p50_solve_ms() const OSRS_EXCLUDES(cost_mutex_);
  int num_workers() const { return num_workers_; }

 private:
  struct Flight;

  /// Per-worker progress the watchdog samples. The solve start time is a
  /// nanosecond offset on the shared watchdog clock (-1 = idle);
  /// `generation` increments per solve so the watchdog fires at most once
  /// per stalled solve. Atomics, not a mutex: the watchdog must read
  /// while the worker is wedged inside a solve.
  struct WorkerState {
    std::atomic<int64_t> solve_start_ns{-1};
    std::atomic<uint64_t> generation{0};
    CancellationFlag cancel;
  };

  static int ResolveWorkerCount(int requested);

  ServeResponse ServeImpl(const ServeRequest& request)
      OSRS_EXCLUDES(mutex_, items_mutex_, counters_mutex_, cost_mutex_);
  void WorkerLoop(int worker_index) OSRS_EXCLUDES(mutex_);
  void ProcessFlight(const std::shared_ptr<Flight>& flight, int worker_index)
      OSRS_EXCLUDES(mutex_, items_mutex_, counters_mutex_, cost_mutex_);
  void WatchdogLoop() OSRS_EXCLUDES(watchdog_mutex_, counters_mutex_);
  /// Recovers committed state from options_.state_dir into items_/epoch_
  /// (overlaying `initial_items`) and persists the merged initial state.
  void RecoverState(std::vector<Item>* initial_items)
      OSRS_EXCLUDES(items_mutex_);
  /// Snapshot of the current corpus (items + epoch) for compaction.
  store::SnapshotData CaptureState() OSRS_EXCLUDES(items_mutex_);
  /// Journals one mutation and auto-compacts when due; never fails the
  /// in-memory mutation — persistence trouble is logged and the journal
  /// self-heals through compaction on the next mutation.
  void JournalMutation(const Item* item, uint64_t epoch_after)
      OSRS_REQUIRES(mutation_mutex_) OSRS_EXCLUDES(items_mutex_);
  /// Removes the flight from the coalescing map, applies per-request
  /// accounting (once per attached request), fills the flight's response,
  /// and wakes every waiter.
  void CompleteFlight(const std::shared_ptr<Flight>& flight,
                      ServeResponse response)
      OSRS_EXCLUDES(mutex_, counters_mutex_);
  void ObserveSolveCost(double ms) OSRS_EXCLUDES(cost_mutex_);
  Result<ItemSummary> GuardedSolve(const Item& item, int k,
                                   const ExecutionBudget& budget);
  /// Stale-cache fallback; returns true and fills `response` when a
  /// degraded answer exists and policy allows serving it. Records a
  /// kStaleFallback span on the flight's trace either way.
  bool TryServeStale(Flight& flight, ServeResponse* response);

  const Ontology* ontology_;
  const ServeOptions options_;
  const uint64_t options_fingerprint_;
  /// Fixed at construction (immutable thereafter, so admission may read
  /// it without a lock).
  const int num_workers_;

  /// Immutable snapshots so a worker can solve against an item while
  /// UpdateItem swaps the map entry underneath it.
  mutable Mutex items_mutex_;  // UpdateItem vs worker reads
  std::unordered_map<std::string, std::shared_ptr<const Item>> items_
      OSRS_GUARDED_BY(items_mutex_);

  CorpusEpoch epoch_;
  SummaryCache cache_;

  /// Serializes corpus mutations with their journal appends so the
  /// journal's record order matches epoch order exactly (replay must
  /// reproduce the same final state).
  mutable Mutex mutation_mutex_;
  /// Null when persistence is off (no --state-dir) or recovery failed.
  /// Set once during construction, so the pointer itself is read without
  /// a lock; the StateStore serializes its own internals.
  std::unique_ptr<store::StateStore> store_;
  Status recovery_status_;
  store::RecoveryInfo recovery_info_;

  /// Queue + coalescing state under one mutex. workers_ lives here too:
  /// Stop() swaps the thread vector out under the lock so two concurrent
  /// Stop() calls (or Stop racing the destructor) cannot both join —
  /// the join itself happens after the lock is dropped.
  Mutex mutex_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Flight>> queue_ OSRS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
      OSRS_GUARDED_BY(mutex_);
  bool stopping_ OSRS_GUARDED_BY(mutex_) = false;
  /// Drain mode: admission rejects (kUnavailable) but workers keep
  /// draining the queue, unlike stopping_ which also stops the workers.
  bool draining_ OSRS_GUARDED_BY(mutex_) = false;
  /// Notified whenever flights_ empties (a flight completed); Drain waits
  /// on it under mutex_.
  CondVar drain_cv_;
  /// Per-worker ReviewSummarizer instances live in WorkerLoop.
  std::vector<std::thread> workers_ OSRS_GUARDED_BY(mutex_);

  /// Stall watchdog. The states vector is sized at construction and never
  /// resized, so workers and the watchdog index it without a lock; the
  /// mutex exists only for the watchdog's interruptible sleep.
  Stopwatch watchdog_clock_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  mutable Mutex watchdog_mutex_;
  CondVar watchdog_cv_;
  bool watchdog_stop_ OSRS_GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;

  /// Solve-cost estimate feeding admission and shedding. Kept as a plain
  /// snapshot under its own mutex so the policy works even when the
  /// global metrics registry is disabled or compiled out.
  mutable Mutex cost_mutex_;
  obs::HistogramSnapshot solve_cost_ OSRS_GUARDED_BY(cost_mutex_);
  double p50_solve_ms_cached_ OSRS_GUARDED_BY(cost_mutex_) = 0.0;

  /// Request accounting (own mutex: counters are read by admission while
  /// workers update them).
  mutable Mutex counters_mutex_;
  ServerCounters counters_ OSRS_GUARDED_BY(counters_mutex_);

  /// Request-id source (ids start at 1) and the ring of completed traces.
  std::atomic<uint64_t> next_request_id_{0};
  obs::TraceRing trace_ring_;
};

}  // namespace osrs::serve

#endif  // OSRS_SERVE_SERVER_H_
