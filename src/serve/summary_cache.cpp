#include "serve/summary_cache.h"

#include <functional>
#include <utility>

#include "common/strings.h"

namespace osrs::serve {

size_t SummaryCache::KeyHash::operator()(const CacheKey& key) const {
  size_t h = std::hash<std::string>{}(key.item_id);
  auto mix = [&h](uint64_t value) {
    h ^= std::hash<uint64_t>{}(value) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
  };
  mix(key.epoch);
  mix(key.options_fingerprint);
  mix(static_cast<uint64_t>(key.k));
  return h;
}

std::string SummaryCache::LatestIndexKey(const std::string& item_id,
                                         uint64_t options_fingerprint,
                                         int k) {
  return StrFormat("%s\x1f%llx\x1f%d", item_id.c_str(),
                   static_cast<unsigned long long>(options_fingerprint), k);
}

SummaryCache::SummaryCache(size_t capacity) : capacity_(capacity) {}

bool SummaryCache::Lookup(const CacheKey& key, ItemSummary* out) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *out = it->second->summary;
  return true;
}

bool SummaryCache::LookupLatest(const std::string& item_id,
                                uint64_t options_fingerprint, int k,
                                ItemSummary* out, uint64_t* epoch_out) {
  MutexLock lock(mutex_);
  auto it = latest_.find(LatestIndexKey(item_id, options_fingerprint, k));
  if (it == latest_.end()) return false;
  ++stats_.stale_hits;
  *out = it->second->summary;
  *epoch_out = it->second->key.epoch;
  return true;
}

void SummaryCache::Insert(const CacheKey& key, const ItemSummary& summary) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a coalesced flight may insert what a racing
    // request already cached).
    it->second->summary = summary;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, summary});
  index_.emplace(key, lru_.begin());
  latest_[LatestIndexKey(key.item_id, key.options_fingerprint, key.k)] =
      lru_.begin();
  ++stats_.inserts;
}

void SummaryCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  latest_.clear();
}

CacheStats SummaryCache::stats() const {
  MutexLock lock(mutex_);
  CacheStats out = stats_;
  out.entries = static_cast<int64_t>(lru_.size());
  return out;
}

void SummaryCache::EraseLocked(std::list<Entry>::iterator it) {
  std::string latest_key =
      LatestIndexKey(it->key.item_id, it->key.options_fingerprint, it->key.k);
  auto latest_it = latest_.find(latest_key);
  if (latest_it != latest_.end() && latest_it->second == it) {
    latest_.erase(latest_it);
  }
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace osrs::serve
