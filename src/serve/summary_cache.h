#ifndef OSRS_SERVE_SUMMARY_CACHE_H_
#define OSRS_SERVE_SUMMARY_CACHE_H_

// Bounded LRU summary cache of the serving layer, keyed by
// (item id, corpus epoch, options fingerprint, k).
//
// The epoch in the key is what makes invalidation O(1): bumping the
// corpus epoch (SummaryServer::BumpEpoch) does not touch the cache at
// all — every existing entry simply stops matching exact lookups and ages
// out through normal LRU eviction. Stale entries are still reachable
// through LookupLatest, which is how the server serves a degraded
// previous-epoch summary when a request's budget cannot fund a fresh
// solve. Only non-degraded summaries may be inserted, so an exact hit is
// bit-identical to a fresh full-budget solve under the same options.
//
// Thread-safe; every operation is O(1) amortized under one mutex. Lock
// discipline is compile-checked: every container is OSRS_GUARDED_BY the
// cache mutex and the one lock-held helper is OSRS_REQUIRES-annotated
// (see src/common/sync.h).

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "api/review_summarizer.h"
#include "common/sync.h"

namespace osrs::serve {

/// Exact cache identity of one summary.
struct CacheKey {
  std::string item_id;
  uint64_t epoch = 0;
  uint64_t options_fingerprint = 0;
  int k = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.epoch == b.epoch &&
           a.options_fingerprint == b.options_fingerprint && a.k == b.k &&
           a.item_id == b.item_id;
  }
};

/// Point-in-time cache statistics (monotonic except `entries`).
struct CacheStats {
  int64_t entries = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stale_hits = 0;  // LookupLatest fallbacks that found an entry
  int64_t evictions = 0;
  int64_t inserts = 0;
};

class SummaryCache {
 public:
  /// `capacity` is the maximum number of cached summaries; 0 disables the
  /// cache entirely (every lookup misses, every insert is dropped).
  explicit SummaryCache(size_t capacity);
  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  /// Exact lookup; a hit copies the summary into `out` and refreshes the
  /// entry's LRU position.
  bool Lookup(const CacheKey& key, ItemSummary* out) OSRS_EXCLUDES(mutex_);

  /// Epoch-agnostic lookup: the most recently *inserted* entry for
  /// (item_id, options_fingerprint, k), whatever epoch it was solved
  /// under. `epoch_out` receives that epoch so the caller can tell a
  /// current-epoch hit from a stale one. Does not refresh LRU position —
  /// degraded fallbacks should not keep stale entries alive forever.
  bool LookupLatest(const std::string& item_id, uint64_t options_fingerprint,
                    int k, ItemSummary* out, uint64_t* epoch_out)
      OSRS_EXCLUDES(mutex_);

  /// Inserts (or refreshes) `summary` under `key`, evicting the least
  /// recently used entry when full. Callers must only insert non-degraded
  /// summaries — the bit-identity contract above depends on it.
  void Insert(const CacheKey& key, const ItemSummary& summary)
      OSRS_EXCLUDES(mutex_);

  /// Drops every entry (stats keep accumulating).
  void Clear() OSRS_EXCLUDES(mutex_);

  CacheStats stats() const OSRS_EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    ItemSummary summary;
  };

  struct KeyHash {
    size_t operator()(const CacheKey& key) const;
  };

  /// (item_id, fingerprint, k) rendered as a flat string — the index the
  /// epoch-agnostic LookupLatest goes through.
  static std::string LatestIndexKey(const std::string& item_id,
                                    uint64_t options_fingerprint, int k);

  void EraseLocked(std::list<Entry>::iterator it) OSRS_REQUIRES(mutex_);

  const size_t capacity_;

  mutable Mutex mutex_;
  /// front = most recently used
  std::list<Entry> lru_ OSRS_GUARDED_BY(mutex_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index_
      OSRS_GUARDED_BY(mutex_);
  /// Latest inserted epoch per (item, fingerprint, k); entries point into
  /// lru_ and are erased when their target is evicted.
  std::unordered_map<std::string, std::list<Entry>::iterator> latest_
      OSRS_GUARDED_BY(mutex_);
  CacheStats stats_ OSRS_GUARDED_BY(mutex_);
};

}  // namespace osrs::serve

#endif  // OSRS_SERVE_SUMMARY_CACHE_H_
