#ifndef OSRS_COVERAGE_ITEM_GRAPH_H_
#define OSRS_COVERAGE_ITEM_GRAPH_H_

#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/model.h"
#include "coverage/coverage_graph.h"

namespace osrs {

/// A coverage graph built from one item at a chosen granularity, together
/// with the provenance needed to map selected candidates back to pairs,
/// sentences or reviews.
struct ItemGraph {
  SummaryGranularity granularity = SummaryGranularity::kPairs;
  /// The item's pairs in reading order (the W side of the graph).
  std::vector<PairOccurrence> occurrences;
  /// For sentence/review granularity: member pair indices per candidate.
  /// Empty for pair granularity (candidates are the pairs themselves).
  std::vector<std::vector<int>> groups;
  /// For sentence/review granularity: (review index, sentence index) of
  /// each candidate; sentence index is -1 at review granularity.
  std::vector<std::pair<int, int>> group_origin;
  CoverageGraph graph;
};

/// Builds the §4.1/§4.5 graph for `item`. Sentences/reviews without any
/// concept-sentiment pair are not candidates (they can never cover
/// anything), matching the candidate sets the paper's solvers see.
/// `num_threads` is forwarded to the CoverageGraph builders (1 = serial,
/// 0 = hardware concurrency); the graph is identical at every count.
ItemGraph BuildItemGraph(const PairDistance& distance, const Item& item,
                         SummaryGranularity granularity, int num_threads = 1);

/// Fallible BuildItemGraph: forwards `options` to the CoverageGraph
/// TryBuild* constructors, so an over-budget graph surfaces as
/// kResourceExhausted (and the "osrs.coverage.alloc" failpoint applies).
/// Same output as BuildItemGraph when it succeeds.
Result<ItemGraph> TryBuildItemGraph(const PairDistance& distance,
                                    const Item& item,
                                    SummaryGranularity granularity,
                                    const CoverageBuildOptions& options);

}  // namespace osrs

#endif  // OSRS_COVERAGE_ITEM_GRAPH_H_
