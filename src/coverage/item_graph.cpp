#include "coverage/item_graph.h"

#include "common/logging.h"
#include "core/cost.h"

namespace osrs {

ItemGraph BuildItemGraph(const PairDistance& distance, const Item& item,
                         SummaryGranularity granularity, int num_threads) {
  ItemGraph out;
  out.granularity = granularity;
  out.occurrences = CollectPairs(item);
  std::vector<ConceptSentimentPair> pairs = PairsOf(out.occurrences);

  if (granularity == SummaryGranularity::kPairs) {
    out.graph = CoverageGraph::BuildForPairs(distance, pairs, num_threads);
    return out;
  }

  // Group consecutive occurrences by sentence or review. CollectPairs
  // emits pairs in reading order, so each group is a contiguous run.
  int current_review = -1;
  int current_sentence = -1;
  for (size_t i = 0; i < out.occurrences.size(); ++i) {
    const PairOccurrence& occ = out.occurrences[i];
    bool new_group =
        granularity == SummaryGranularity::kSentences
            ? (occ.review_index != current_review ||
               occ.sentence_index != current_sentence)
            : (occ.review_index != current_review);
    if (new_group) {
      out.groups.emplace_back();
      out.group_origin.emplace_back(
          occ.review_index,
          granularity == SummaryGranularity::kSentences ? occ.sentence_index
                                                        : -1);
      current_review = occ.review_index;
      current_sentence = occ.sentence_index;
    }
    out.groups.back().push_back(static_cast<int>(i));
  }
  out.graph =
      CoverageGraph::BuildForGroups(distance, pairs, out.groups, num_threads);
  return out;
}

}  // namespace osrs
