#include "coverage/item_graph.h"

#include "common/logging.h"
#include "core/cost.h"

namespace osrs {
namespace {

/// Fills everything but `graph`: occurrences, and for sentence/review
/// granularity the candidate groups. Returns the item's pairs (the W side).
/// CollectPairs emits pairs in reading order, so each group is a
/// contiguous run of consecutive occurrences.
std::vector<ConceptSentimentPair> PrepareItemGraph(
    const Item& item, SummaryGranularity granularity, ItemGraph& out) {
  out.granularity = granularity;
  out.occurrences = CollectPairs(item);
  std::vector<ConceptSentimentPair> pairs = PairsOf(out.occurrences);
  if (granularity == SummaryGranularity::kPairs) return pairs;

  int current_review = -1;
  int current_sentence = -1;
  for (size_t i = 0; i < out.occurrences.size(); ++i) {
    const PairOccurrence& occ = out.occurrences[i];
    bool new_group =
        granularity == SummaryGranularity::kSentences
            ? (occ.review_index != current_review ||
               occ.sentence_index != current_sentence)
            : (occ.review_index != current_review);
    if (new_group) {
      out.groups.emplace_back();
      out.group_origin.emplace_back(
          occ.review_index,
          granularity == SummaryGranularity::kSentences ? occ.sentence_index
                                                        : -1);
      current_review = occ.review_index;
      current_sentence = occ.sentence_index;
    }
    out.groups.back().push_back(static_cast<int>(i));
  }
  return pairs;
}

}  // namespace

ItemGraph BuildItemGraph(const PairDistance& distance, const Item& item,
                         SummaryGranularity granularity, int num_threads) {
  ItemGraph out;
  std::vector<ConceptSentimentPair> pairs =
      PrepareItemGraph(item, granularity, out);
  if (granularity == SummaryGranularity::kPairs) {
    out.graph = CoverageGraph::BuildForPairs(distance, pairs, num_threads);
  } else {
    out.graph =
        CoverageGraph::BuildForGroups(distance, pairs, out.groups, num_threads);
  }
  return out;
}

Result<ItemGraph> TryBuildItemGraph(const PairDistance& distance,
                                    const Item& item,
                                    SummaryGranularity granularity,
                                    const CoverageBuildOptions& options) {
  ItemGraph out;
  std::vector<ConceptSentimentPair> pairs =
      PrepareItemGraph(item, granularity, out);
  Result<CoverageGraph> graph =
      granularity == SummaryGranularity::kPairs
          ? CoverageGraph::TryBuildForPairs(distance, pairs, options)
          : CoverageGraph::TryBuildForGroups(distance, pairs, out.groups,
                                             options);
  OSRS_RETURN_IF_ERROR(graph.status());
  out.graph = std::move(graph).value();
  return out;
}

}  // namespace osrs
