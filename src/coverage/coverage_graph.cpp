#include "coverage/coverage_graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/simd.h"
#include "common/strings.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* WindowHitsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.coverage.window_hits");
  return counter;
}

obs::Counter* BuildsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.coverage.builds");
  return counter;
}

obs::Gauge* ShardImbalanceGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "osrs.coverage.shard_imbalance_pct");
  return gauge;
}

/// First pass of §4.1: bucket pair indices by concept, each bucket sorted
/// by sentiment so the Definition 1 eps test becomes a binary-searched
/// window instead of a full scan. Flattened into three parallel arrays to
/// keep the per-(target, ancestor) lookup allocation- and hash-free.
struct ConceptBuckets {
  /// Bucket index per concept id; -1 when no pair carries that concept.
  std::vector<int32_t> bucket_of_concept;
  /// Bucket b spans [offsets[b], offsets[b + 1]) of the two arrays below.
  std::vector<size_t> offsets;
  /// Sentiments ascending within each bucket (ties broken by pair index).
  std::vector<double> sentiments;
  /// Pair indices parallel to `sentiments`.
  std::vector<int> pair_indices;
};

ConceptBuckets BucketByConcept(const Ontology& onto,
                               const std::vector<ConceptSentimentPair>& pairs) {
  ConceptBuckets buckets;
  buckets.bucket_of_concept.assign(onto.num_concepts(), -1);
  int32_t num_buckets = 0;
  std::vector<size_t> bucket_sizes;
  for (const ConceptSentimentPair& pair : pairs) {
    int32_t& slot = buckets.bucket_of_concept[static_cast<size_t>(pair.concept_id)];
    if (slot < 0) {
      slot = num_buckets++;
      bucket_sizes.push_back(0);
    }
    ++bucket_sizes[static_cast<size_t>(slot)];
  }
  buckets.offsets.assign(static_cast<size_t>(num_buckets) + 1, 0);
  for (int32_t b = 0; b < num_buckets; ++b) {
    buckets.offsets[static_cast<size_t>(b) + 1] =
        buckets.offsets[static_cast<size_t>(b)] +
        bucket_sizes[static_cast<size_t>(b)];
  }
  buckets.sentiments.resize(pairs.size());
  buckets.pair_indices.resize(pairs.size());
  std::vector<size_t> cursor(buckets.offsets.begin(),
                             buckets.offsets.end() - 1);
  for (size_t i = 0; i < pairs.size(); ++i) {
    int32_t b = buckets.bucket_of_concept[static_cast<size_t>(pairs[i].concept_id)];
    size_t slot = cursor[static_cast<size_t>(b)]++;
    buckets.sentiments[slot] = pairs[i].sentiment;
    buckets.pair_indices[slot] = static_cast<int>(i);
  }
  // Sort each bucket by (sentiment, pair index); the pair-index tiebreak
  // keeps construction deterministic under duplicate sentiments.
  std::vector<std::pair<double, int>> scratch;
  for (int32_t b = 0; b < num_buckets; ++b) {
    size_t begin = buckets.offsets[static_cast<size_t>(b)];
    size_t end = buckets.offsets[static_cast<size_t>(b) + 1];
    scratch.clear();
    for (size_t i = begin; i < end; ++i) {
      scratch.emplace_back(buckets.sentiments[i], buckets.pair_indices[i]);
    }
    std::sort(scratch.begin(), scratch.end());
    for (size_t i = 0; i < scratch.size(); ++i) {
      buckets.sentiments[begin + i] = scratch[i].first;
      buckets.pair_indices[begin + i] = scratch[i].second;
    }
  }
  return buckets;
}

/// Second pass of §4.1 over targets [w_begin, w_end): for each target pair
/// w, walk the precomputed ancestor closure of its concept and
/// binary-search each ancestor bucket's `[s - eps, s + eps]` sentiment
/// window. The window bounds carry a small absolute slack so rounding in
/// `s ± eps` can never exclude a candidate; the exact Definition 1
/// predicate `|s1 - s2| <= eps` then decides inside the window, keeping
/// the emitted edge set bit-identical to a full-scan builder. Calls
/// `emit(u_pair_index, w, weight)` once per covering (pair, target)
/// combination, with w ascending. Returns the number of edges emitted.
template <typename EmitFn>
size_t ForEachCoveringPairInRange(const PairDistance& distance,
                                  const std::vector<ConceptSentimentPair>& pairs,
                                  const ConceptBuckets& buckets, int w_begin,
                                  int w_end, const EmitFn& emit) {
  const Ontology& onto = distance.ontology();
  const ConceptId root = onto.root();
  const double eps = distance.epsilon();
  // Sentiments live in [-1, 1]; 1e-9 dwarfs the worst-case rounding of
  // `s ± eps` (a few ulps) while admitting essentially no extra window
  // candidates for the exact predicate to reject.
  const double kWindowSlack = 1e-9;
  // Windows at least this long go through the vectorized eps predicate
  // (simd::EpsWindowMask); shorter ones scan scalar. The kernel evaluates
  // the *same* exact `|ds| <= eps` predicate with the same IEEE ops, so
  // the emitted edge set is independent of the threshold — it only moves
  // the crossover where the mask setup pays for itself.
  constexpr size_t kSimdWindowThreshold = 16;
  std::vector<uint64_t> window_mask;  // per-shard scratch, reused across w
  size_t emitted = 0;
  for (int w = w_begin; w < w_end; ++w) {
    const ConceptSentimentPair& target = pairs[static_cast<size_t>(w)];
    for (const AncestorEntry& ancestor : onto.AncestorsOf(target.concept_id)) {
      int32_t b =
          buckets.bucket_of_concept[static_cast<size_t>(ancestor.concept_id)];
      if (b < 0) continue;
      const double weight = static_cast<double>(ancestor.distance);
      size_t begin = buckets.offsets[static_cast<size_t>(b)];
      size_t end = buckets.offsets[static_cast<size_t>(b) + 1];
      if (ancestor.concept_id != root) {
        const double* first = buckets.sentiments.data() + begin;
        const double* last = buckets.sentiments.data() + end;
        begin += static_cast<size_t>(
            std::lower_bound(first, last, target.sentiment - eps - kWindowSlack) -
            first);
        end -= static_cast<size_t>(
            last - std::upper_bound(first, last,
                                    target.sentiment + eps + kWindowSlack));
        if (end - begin >= kSimdWindowThreshold) {
          const size_t window = end - begin;
          window_mask.resize((window + 63) / 64);
          simd::EpsWindowMask(buckets.sentiments.data() + begin, window,
                              target.sentiment, eps, window_mask.data());
          for (size_t word = 0; word < window_mask.size(); ++word) {
            uint64_t bits = window_mask[word];
            while (bits != 0) {
              size_t i = begin + (word << 6) +
                         static_cast<size_t>(std::countr_zero(bits));
              emit(buckets.pair_indices[i], w, weight);
              ++emitted;
              bits &= bits - 1;
            }
          }
          continue;
        }
        for (size_t i = begin; i < end; ++i) {
          if (std::abs(buckets.sentiments[i] - target.sentiment) > eps) {
            continue;
          }
          emit(buckets.pair_indices[i], w, weight);
          ++emitted;
        }
      } else {
        // The root covers every pair regardless of sentiment.
        for (size_t i = begin; i < end; ++i) {
          emit(buckets.pair_indices[i], w, weight);
          ++emitted;
        }
      }
    }
  }
  return emitted;
}

/// Resolves the builder thread count: <= 0 means hardware concurrency,
/// and shards never outnumber targets (an empty shard is pure overhead).
int ResolveNumThreads(int num_threads, size_t num_targets) {
  if (num_threads <= 0) {
    unsigned hardware = std::thread::hardware_concurrency();
    num_threads = static_cast<int>(std::max(1u, hardware));
  }
  if (num_targets == 0) return 1;
  return std::min<int>(num_threads, static_cast<int>(num_targets));
}

/// Runs `shard_fn(shard, w_begin, w_end)` over `num_shards` contiguous,
/// ascending, near-equal target ranges — shard 0 on the calling thread.
/// Each shard must record only into shard-local state; `shard_fn` returns
/// its emitted edge count, collected into the result for the imbalance
/// telemetry.
template <typename ShardFn>
std::vector<size_t> RunSharded(int num_targets, int num_shards,
                               const ShardFn& shard_fn) {
  std::vector<size_t> emitted(static_cast<size_t>(num_shards), 0);
  auto bounds = [&](int shard) {
    int64_t lo = static_cast<int64_t>(num_targets) * shard / num_shards;
    int64_t hi = static_cast<int64_t>(num_targets) * (shard + 1) / num_shards;
    return std::pair<int, int>(static_cast<int>(lo), static_cast<int>(hi));
  };
  if (num_shards == 1) {
    emitted[0] = shard_fn(0, 0, num_targets);
    return emitted;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_shards) - 1);
  for (int shard = 1; shard < num_shards; ++shard) {
    auto [lo, hi] = bounds(shard);
    workers.emplace_back([&emitted, &shard_fn, shard, lo, hi]() {
      emitted[static_cast<size_t>(shard)] = shard_fn(shard, lo, hi);
    });
  }
  auto [lo0, hi0] = bounds(0);
  emitted[0] = shard_fn(0, lo0, hi0);
  for (std::thread& worker : workers) worker.join();
  return emitted;
}

/// Records the build telemetry: total eps-window hits (== edges emitted)
/// and the shard imbalance in percent — (max - min) emitted per shard,
/// relative to the max; 0 for a serial build or perfectly even shards.
void RecordBuildTelemetry(const std::vector<size_t>& emitted_per_shard) {
  size_t total = 0, max_emitted = 0, min_emitted = SIZE_MAX;
  for (size_t emitted : emitted_per_shard) {
    total += emitted;
    max_emitted = std::max(max_emitted, emitted);
    min_emitted = std::min(min_emitted, emitted);
  }
  BuildsCounter()->Increment();
  WindowHitsCounter()->Add(static_cast<int64_t>(total));
  int64_t imbalance_pct = 0;
  if (emitted_per_shard.size() > 1 && max_emitted > 0) {
    imbalance_pct = static_cast<int64_t>(
        (max_emitted - min_emitted) * 100 / max_emitted);
  }
  ShardImbalanceGauge()->Set(imbalance_pct);
}

std::vector<double> RootDistances(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs) {
  std::vector<double> root_distance(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    root_distance[i] = distance.FromRoot(pairs[i]);
  }
  return root_distance;
}

/// Exact forward-edge total after a counting pass: the sum of every
/// (shard, candidate) degree.
size_t TotalCountedEdges(const std::vector<std::vector<size_t>>& shard_degree) {
  size_t total = 0;
  for (const std::vector<size_t>& degree : shard_degree) {
    for (size_t d : degree) total += d;
  }
  return total;
}

/// The TryBuild* memory gate, evaluated between the counting and scatter
/// passes: the edge total is exact, nothing is allocated yet, so an
/// over-budget build degrades to a clean kResourceExhausted instead of an
/// allocation failure mid-construction.
Status CheckMemoryBudget(const CoverageBuildOptions& options, size_t num_edges,
                         size_t num_candidates, size_t num_targets,
                         bool weighted) {
  if (options.max_memory_bytes == 0) return Status::OK();
  size_t needed = CoverageGraph::EstimateBytes(num_edges, num_candidates,
                                               num_targets, weighted);
  if (needed <= options.max_memory_bytes) return Status::OK();
  return Status::ResourceExhausted(StrFormat(
      "coverage graph needs %zu bytes (%zu edges, %zu candidates, "
      "%zu targets) but max_memory_bytes is %zu",
      needed, num_edges, num_candidates, num_targets,
      options.max_memory_bytes));
}

}  // namespace

size_t CoverageGraph::EstimateBytes(size_t num_edges, size_t num_candidates,
                                    size_t num_targets, bool weighted) {
  // Both CSR directions as SoA lanes (endpoint int32 + distance float per
  // edge — byte-identical to the former 8-byte Edge struct), both offset
  // arrays, root distances in double and in the float kernel lane, and
  // (when built weighted) the multiplicity array.
  size_t bytes = 2 * num_edges * (sizeof(int32_t) + sizeof(float));
  bytes += (num_candidates + 1 + num_targets + 1) * sizeof(size_t);
  bytes += num_targets * (sizeof(double) + sizeof(float));
  if (weighted) bytes += num_targets * sizeof(double);
  return bytes;
}

Result<CoverageGraph> CoverageGraph::BuildForPairsImpl(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const CoverageBuildOptions& options, bool weighted) {
  obs::TraceSpan build_span(obs::Phase::kBuildCoverageGraph);
  const ConceptBuckets buckets = BucketByConcept(distance.ontology(), pairs);
  const int num_targets = static_cast<int>(pairs.size());
  const int num_candidates = num_targets;
  const int num_shards = ResolveNumThreads(options.num_threads, pairs.size());

  // Counting pass: the full closure/window enumeration with degrees as the
  // only output. Nothing is materialized, so the pass reads only the hot
  // bucket arrays. Per-target backward degrees are shared but race-free —
  // each target belongs to exactly one shard.
  std::vector<std::vector<size_t>> shard_degree(
      static_cast<size_t>(num_shards));
  std::vector<size_t> backward_degree(static_cast<size_t>(num_targets), 0);
  std::vector<size_t> emitted = RunSharded(
      num_targets, num_shards, [&](int shard, int w_begin, int w_end) {
        std::vector<size_t>& degree = shard_degree[static_cast<size_t>(shard)];
        degree.assign(static_cast<size_t>(num_candidates), 0);
        return ForEachCoveringPairInRange(
            distance, pairs, buckets, w_begin, w_end,
            [&](int u, int w, double /*weight*/) {
              ++degree[static_cast<size_t>(u)];
              ++backward_degree[static_cast<size_t>(w)];
            });
      });
  RecordBuildTelemetry(emitted);
  OSRS_RETURN_IF_ERROR(CheckMemoryBudget(
      options, TotalCountedEdges(shard_degree),
      static_cast<size_t>(num_candidates), static_cast<size_t>(num_targets),
      weighted));

  // Scatter pass: re-run the same enumeration, writing every edge straight
  // into both final CSR slots. Forward rows fill through per-(shard,
  // candidate) cursors over disjoint slices — each shard emits ascending
  // targets, so rows come out sorted with no intermediate buffers and no
  // sort. Backward rows fill through one sequential per-shard cursor:
  // target w's coverers are emitted consecutively and targets ascend, so
  // the backward CSR needs no transpose pass at all.
  CoverageGraph graph;
  graph.root_distance_ = RootDistances(distance, pairs);
  graph.root_distance_f32_.assign(graph.root_distance_.begin(),
                                  graph.root_distance_.end());
  graph.PrepareForwardScatter(num_candidates, shard_degree);
  graph.PrepareBackwardFill(num_targets, backward_degree);
  RunSharded(num_targets, num_shards,
             [&](int shard, int w_begin, int w_end) {
               std::vector<size_t>& cursor =
                   shard_degree[static_cast<size_t>(shard)];
               size_t backward_cursor =
                   graph.backward_offsets_[static_cast<size_t>(w_begin)];
               size_t shard_emitted = ForEachCoveringPairInRange(
                   distance, pairs, buckets, w_begin, w_end,
                   [&](int u, int w, double weight) {
                     const float fw = static_cast<float>(weight);
                     const size_t fslot = cursor[static_cast<size_t>(u)]++;
                     graph.forward_endpoint_[fslot] = w;
                     graph.forward_distance_[fslot] = fw;
                     graph.backward_endpoint_[backward_cursor] = u;
                     graph.backward_distance_[backward_cursor] = fw;
                     ++backward_cursor;
                   });
               OSRS_DCHECK_EQ(
                   backward_cursor,
                   graph.backward_offsets_[static_cast<size_t>(w_end)]);
               return shard_emitted;
             });
  obs::TraceStat(obs::Stat::kGraphEdgesBuilt,
                 static_cast<int64_t>(graph.num_edges()));
  return graph;
}

CoverageGraph CoverageGraph::BuildForPairs(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs, int num_threads) {
  CoverageBuildOptions options;
  options.num_threads = num_threads;
  // No memory limit and no failpoint on the legacy path, so the impl
  // cannot fail.
  auto graph = BuildForPairsImpl(distance, pairs, options, /*weighted=*/false);
  OSRS_CHECK(graph.ok());
  return std::move(graph).value();
}

Result<CoverageGraph> CoverageGraph::TryBuildForPairs(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const CoverageBuildOptions& options) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.coverage.alloc"));
  return BuildForPairsImpl(distance, pairs, options, /*weighted=*/false);
}

CoverageGraph CoverageGraph::BuildForPairsWeighted(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<double>& target_weights, int num_threads) {
  OSRS_CHECK_EQ(target_weights.size(), pairs.size());
  CoverageGraph graph = BuildForPairs(distance, pairs, num_threads);
  graph.target_weights_ = target_weights;
  return graph;
}

Result<CoverageGraph> CoverageGraph::TryBuildForPairsWeighted(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<double>& target_weights,
    const CoverageBuildOptions& options) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.coverage.alloc"));
  if (target_weights.size() != pairs.size()) {
    return Status::InvalidArgument(
        StrFormat("target_weights has %zu entries for %zu pairs",
                  target_weights.size(), pairs.size()));
  }
  auto graph = BuildForPairsImpl(distance, pairs, options, /*weighted=*/true);
  OSRS_RETURN_IF_ERROR(graph.status());
  graph->target_weights_ = target_weights;
  return graph;
}

namespace {

/// Key of a DedupePairs bucket: a concept plus a quantized sentiment.
struct DedupeKey {
  ConceptId concept_id;
  int64_t sentiment_bucket;

  bool operator==(const DedupeKey& other) const {
    return concept_id == other.concept_id &&
           sentiment_bucket == other.sentiment_bucket;
  }
};

/// Mixes the concept and bucket words with splitmix64-style avalanching;
/// either field alone is low-entropy (small ids, clustered buckets).
struct DedupeKeyHash {
  size_t operator()(const DedupeKey& key) const {
    uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(key.concept_id));
    h = (h << 32) ^ static_cast<uint64_t>(key.sentiment_bucket);
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace

DedupedPairs DedupePairs(const std::vector<ConceptSentimentPair>& pairs,
                         double sentiment_quantum) {
  OSRS_CHECK_GT(sentiment_quantum, 0.0);
  DedupedPairs out;
  out.representative_of.resize(pairs.size());
  // Bucket key: (concept, quantized sentiment). Representatives are
  // assigned in first-occurrence order, so the output is independent of
  // the map's iteration order.
  std::unordered_map<DedupeKey, int, DedupeKeyHash> bucket_to_representative;
  bucket_to_representative.reserve(pairs.size());
  std::vector<double> sentiment_sums;
  for (size_t i = 0; i < pairs.size(); ++i) {
    int64_t bucket = static_cast<int64_t>(
        std::floor(pairs[i].sentiment / sentiment_quantum));
    auto [it, inserted] = bucket_to_representative.emplace(
        DedupeKey{pairs[i].concept_id, bucket},
        static_cast<int>(out.pairs.size()));
    if (inserted) {
      out.pairs.push_back(pairs[i]);
      out.weights.push_back(0.0);
      sentiment_sums.push_back(0.0);
    }
    int rep = it->second;
    out.representative_of[i] = rep;
    out.weights[static_cast<size_t>(rep)] += 1.0;
    sentiment_sums[static_cast<size_t>(rep)] += pairs[i].sentiment;
  }
  // Representative sentiment = bucket mean (stays within the bucket).
  for (size_t r = 0; r < out.pairs.size(); ++r) {
    out.pairs[r].sentiment = sentiment_sums[r] / out.weights[r];
  }
  return out;
}

Result<CoverageGraph> CoverageGraph::BuildForGroupsImpl(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<std::vector<int>>& groups,
    const CoverageBuildOptions& options) {
  obs::TraceSpan build_span(obs::Phase::kBuildCoverageGraph);
  // Map each pair index to its owning group (a pair belongs to exactly one
  // sentence / review).
  std::vector<int> group_of(pairs.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int pair_index : groups[g]) {
      OSRS_DCHECK_GE(pair_index, 0);
      OSRS_DCHECK_LT(static_cast<size_t>(pair_index), pairs.size());
      OSRS_DCHECK_MSG(group_of[static_cast<size_t>(pair_index)] == -1,
                      "pair " << pair_index << " assigned to two groups");
      group_of[static_cast<size_t>(pair_index)] = static_cast<int>(g);
    }
  }

  const ConceptBuckets buckets = BucketByConcept(distance.ontology(), pairs);
  const int num_targets = static_cast<int>(pairs.size());
  const int num_candidates = static_cast<int>(groups.size());
  const int num_shards = ResolveNumThreads(options.num_threads, pairs.size());

  // Counting pass. Pair-level emits aggregate to group level: one group
  // may reach the same target through several member pairs, and
  // last_target dedupes those without a hash map — every emit for target w
  // happens before any emit for w + 1 within a shard, and each target is
  // wholly owned by one shard, so the group's previous target is all the
  // state dedupe needs.
  std::vector<std::vector<size_t>> shard_degree(
      static_cast<size_t>(num_shards));
  std::vector<size_t> backward_degree(static_cast<size_t>(num_targets), 0);
  std::vector<size_t> emitted = RunSharded(
      num_targets, num_shards, [&](int shard, int w_begin, int w_end) {
        std::vector<size_t>& degree = shard_degree[static_cast<size_t>(shard)];
        degree.assign(static_cast<size_t>(num_candidates), 0);
        std::vector<int> last_target(groups.size(), -1);
        return ForEachCoveringPairInRange(
            distance, pairs, buckets, w_begin, w_end,
            [&](int u, int w, double /*weight*/) {
              int g = group_of[static_cast<size_t>(u)];
              if (g < 0) return;  // pair not part of any candidate group
              if (last_target[static_cast<size_t>(g)] == w) return;
              last_target[static_cast<size_t>(g)] = w;
              ++degree[static_cast<size_t>(g)];
              ++backward_degree[static_cast<size_t>(w)];
            });
      });
  RecordBuildTelemetry(emitted);
  OSRS_RETURN_IF_ERROR(CheckMemoryBudget(
      options, TotalCountedEdges(shard_degree),
      static_cast<size_t>(num_candidates), static_cast<size_t>(num_targets),
      /*weighted=*/false));

  // Scatter pass: identical enumeration; a repeat (group, target) emit
  // min-merges its weight into the forward and backward slots recorded by
  // last_findex/last_bindex instead of consuming new ones, keeping
  // Definition 2's minimum over member pairs in both CSR copies.
  CoverageGraph graph;
  graph.root_distance_ = RootDistances(distance, pairs);
  graph.root_distance_f32_.assign(graph.root_distance_.begin(),
                                  graph.root_distance_.end());
  graph.PrepareForwardScatter(num_candidates, shard_degree);
  graph.PrepareBackwardFill(num_targets, backward_degree);
  RunSharded(
      num_targets, num_shards, [&](int shard, int w_begin, int w_end) {
        std::vector<size_t>& cursor =
            shard_degree[static_cast<size_t>(shard)];
        size_t backward_cursor =
            graph.backward_offsets_[static_cast<size_t>(w_begin)];
        std::vector<int> last_target(groups.size(), -1);
        std::vector<size_t> last_findex(groups.size(), 0);
        std::vector<size_t> last_bindex(groups.size(), 0);
        size_t shard_emitted = ForEachCoveringPairInRange(
            distance, pairs, buckets, w_begin, w_end,
            [&](int u, int w, double weight) {
              int g = group_of[static_cast<size_t>(u)];
              if (g < 0) return;
              const float fw = static_cast<float>(weight);
              if (last_target[static_cast<size_t>(g)] == w) {
                float& forward_distance =
                    graph.forward_distance_[last_findex[static_cast<size_t>(g)]];
                if (fw < forward_distance) {
                  forward_distance = fw;
                  graph.backward_distance_[last_bindex[static_cast<size_t>(g)]] =
                      fw;
                }
              } else {
                last_target[static_cast<size_t>(g)] = w;
                const size_t fslot = cursor[static_cast<size_t>(g)];
                last_findex[static_cast<size_t>(g)] = fslot;
                last_bindex[static_cast<size_t>(g)] = backward_cursor;
                graph.forward_endpoint_[fslot] = w;
                graph.forward_distance_[fslot] = fw;
                ++cursor[static_cast<size_t>(g)];
                graph.backward_endpoint_[backward_cursor] = g;
                graph.backward_distance_[backward_cursor] = fw;
                ++backward_cursor;
              }
            });
        OSRS_DCHECK_EQ(backward_cursor,
                       graph.backward_offsets_[static_cast<size_t>(w_end)]);
        return shard_emitted;
      });
  obs::TraceStat(obs::Stat::kGraphEdgesBuilt,
                 static_cast<int64_t>(graph.num_edges()));
  return graph;
}

CoverageGraph CoverageGraph::BuildForGroups(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<std::vector<int>>& groups, int num_threads) {
  CoverageBuildOptions options;
  options.num_threads = num_threads;
  // No memory limit and no failpoint on the legacy path, so the impl
  // cannot fail.
  auto graph = BuildForGroupsImpl(distance, pairs, groups, options);
  OSRS_CHECK(graph.ok());
  return std::move(graph).value();
}

Result<CoverageGraph> CoverageGraph::TryBuildForGroups(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<std::vector<int>>& groups,
    const CoverageBuildOptions& options) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.coverage.alloc"));
  return BuildForGroupsImpl(distance, pairs, groups, options);
}

void CoverageGraph::PrepareForwardScatter(
    int num_candidates, std::vector<std::vector<size_t>>& shard_degree) {
  OSRS_CHECK(!shard_degree.empty());
  // Serial prefix sum (O(candidates × shards), cheap). shard_degree[s][u]
  // becomes the scatter cursor for shard s's slice of candidate u's
  // forward row; slices are consecutive in shard order, so after the
  // scatter pass it holds the slice end == the start of shard s + 1's
  // slice.
  forward_offsets_.assign(static_cast<size_t>(num_candidates) + 1, 0);
  size_t running = 0;
  for (int u = 0; u < num_candidates; ++u) {
    forward_offsets_[static_cast<size_t>(u)] = running;
    for (std::vector<size_t>& degree : shard_degree) {
      size_t d = degree[static_cast<size_t>(u)];
      degree[static_cast<size_t>(u)] = running;
      running += d;
    }
  }
  forward_offsets_[static_cast<size_t>(num_candidates)] = running;
  forward_endpoint_.resize(running);
  forward_distance_.resize(running);
}

void CoverageGraph::PrepareBackwardFill(
    int num_targets, const std::vector<size_t>& backward_degree) {
  backward_offsets_.assign(static_cast<size_t>(num_targets) + 1, 0);
  for (int w = 0; w < num_targets; ++w) {
    backward_offsets_[static_cast<size_t>(w) + 1] =
        backward_offsets_[static_cast<size_t>(w)] +
        backward_degree[static_cast<size_t>(w)];
  }
  OSRS_CHECK_EQ(backward_offsets_[static_cast<size_t>(num_targets)],
                forward_endpoint_.size());
  backward_endpoint_.resize(forward_endpoint_.size());
  backward_distance_.resize(forward_distance_.size());
}

CoverageGraph::EdgeLanes CoverageGraph::ForwardLanesOf(int u) const {
  OSRS_DCHECK_GE(u, 0);
  OSRS_DCHECK_LT(u, num_candidates());
  const size_t begin = forward_offsets_[static_cast<size_t>(u)];
  return {forward_endpoint_.data() + begin, forward_distance_.data() + begin,
          forward_offsets_[static_cast<size_t>(u) + 1] - begin};
}

CoverageGraph::EdgeLanes CoverageGraph::BackwardLanesOf(int w) const {
  OSRS_DCHECK_GE(w, 0);
  OSRS_DCHECK_LT(w, num_targets());
  const size_t begin = backward_offsets_[static_cast<size_t>(w)];
  return {backward_endpoint_.data() + begin,
          backward_distance_.data() + begin,
          backward_offsets_[static_cast<size_t>(w) + 1] - begin};
}

double CoverageGraph::EmptySummaryCost() const {
  double total = 0.0;
  for (size_t w = 0; w < root_distance_.size(); ++w) {
    total += root_distance_[w] * target_weight(static_cast<int>(w));
  }
  return total;
}

double CoverageGraph::CostOfSelection(const std::vector<int>& selected) const {
  std::vector<float> best(root_distance_f32_.size());
  return CostOfSelection(std::span<const int>(selected),
                         std::span<float>(best));
}

double CoverageGraph::CostOfSelection(std::span<const int> selected,
                                      std::span<float> best_scratch) const {
  OSRS_DCHECK_EQ(best_scratch.size(), root_distance_f32_.size());
  std::copy(root_distance_f32_.begin(), root_distance_f32_.end(),
            best_scratch.begin());
  for (int u : selected) {
    const EdgeLanes lanes = ForwardLanesOf(u);
    for (size_t i = 0; i < lanes.size; ++i) {
      float& b = best_scratch[static_cast<size_t>(lanes.endpoint[i])];
      if (lanes.distance[i] < b) b = lanes.distance[i];
    }
  }
  double total = 0.0;
  for (size_t w = 0; w < best_scratch.size(); ++w) {
    total += static_cast<double>(best_scratch[w]) *
             target_weight(static_cast<int>(w));
  }
  return total;
}

double CoverageGraph::AverageCandidateDegree() const {
  if (num_candidates() == 0) return 0.0;
  return static_cast<double>(num_edges()) /
         static_cast<double>(num_candidates());
}

}  // namespace osrs
