#include "coverage/coverage_graph.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "obs/trace.h"

namespace osrs {
namespace {

/// First pass of §4.1: bucket pair indices by concept.
std::unordered_map<ConceptId, std::vector<int>> BucketByConcept(
    const std::vector<ConceptSentimentPair>& pairs) {
  std::unordered_map<ConceptId, std::vector<int>> buckets;
  for (size_t i = 0; i < pairs.size(); ++i) {
    buckets[pairs[i].concept_id].push_back(static_cast<int>(i));
  }
  return buckets;
}

/// Second pass of §4.1, shared by both builders: for each target pair w,
/// walk the ancestors of its concept and report every candidate pair u
/// sitting on an ancestor that covers w. Calls `emit(u_pair_index, w,
/// weight)` once per covering (pair, target) combination.
template <typename EmitFn>
void ForEachCoveringPair(const PairDistance& distance,
                         const std::vector<ConceptSentimentPair>& pairs,
                         const EmitFn& emit) {
  const Ontology& onto = distance.ontology();
  const ConceptId root = onto.root();
  const double eps = distance.epsilon();
  auto buckets = BucketByConcept(pairs);
  for (int w = 0; w < static_cast<int>(pairs.size()); ++w) {
    const ConceptSentimentPair& target = pairs[static_cast<size_t>(w)];
    for (const auto& [ancestor, hop_distance] :
         onto.AncestorsWithDistance(target.concept_id)) {
      auto it = buckets.find(ancestor);
      if (it == buckets.end()) continue;
      const bool ancestor_is_root = (ancestor == root);
      for (int u : it->second) {
        const ConceptSentimentPair& source = pairs[static_cast<size_t>(u)];
        if (!ancestor_is_root &&
            std::abs(source.sentiment - target.sentiment) > eps) {
          continue;
        }
        emit(u, w, static_cast<double>(hop_distance));
      }
    }
  }
}

std::vector<double> RootDistances(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs) {
  std::vector<double> root_distance(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    root_distance[i] = distance.FromRoot(pairs[i]);
  }
  return root_distance;
}

}  // namespace

CoverageGraph CoverageGraph::BuildForPairs(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs) {
  obs::TraceSpan build_span(obs::Phase::kBuildCoverageGraph);
  std::vector<std::vector<Edge>> per_candidate(pairs.size());
  ForEachCoveringPair(distance, pairs, [&](int u, int w, double weight) {
    per_candidate[static_cast<size_t>(u)].push_back({w, weight});
  });
  CoverageGraph graph;
  graph.Assemble(static_cast<int>(pairs.size()),
                 static_cast<int>(pairs.size()), std::move(per_candidate),
                 RootDistances(distance, pairs));
  obs::TraceStat(obs::Stat::kGraphEdgesBuilt,
                 static_cast<int64_t>(graph.num_edges()));
  return graph;
}

CoverageGraph CoverageGraph::BuildForPairsWeighted(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<double>& target_weights) {
  OSRS_CHECK_EQ(target_weights.size(), pairs.size());
  CoverageGraph graph = BuildForPairs(distance, pairs);
  graph.target_weights_ = target_weights;
  return graph;
}

DedupedPairs DedupePairs(const std::vector<ConceptSentimentPair>& pairs,
                         double sentiment_quantum) {
  OSRS_CHECK_GT(sentiment_quantum, 0.0);
  DedupedPairs out;
  out.representative_of.resize(pairs.size());
  // Bucket key: (concept, quantized sentiment).
  std::map<std::pair<ConceptId, int64_t>, int> bucket_to_representative;
  std::vector<double> sentiment_sums;
  for (size_t i = 0; i < pairs.size(); ++i) {
    int64_t bucket = static_cast<int64_t>(
        std::floor(pairs[i].sentiment / sentiment_quantum));
    auto [it, inserted] = bucket_to_representative.emplace(
        std::make_pair(pairs[i].concept_id, bucket),
        static_cast<int>(out.pairs.size()));
    if (inserted) {
      out.pairs.push_back(pairs[i]);
      out.weights.push_back(0.0);
      sentiment_sums.push_back(0.0);
    }
    int rep = it->second;
    out.representative_of[i] = rep;
    out.weights[static_cast<size_t>(rep)] += 1.0;
    sentiment_sums[static_cast<size_t>(rep)] += pairs[i].sentiment;
  }
  // Representative sentiment = bucket mean (stays within the bucket).
  for (size_t r = 0; r < out.pairs.size(); ++r) {
    out.pairs[r].sentiment = sentiment_sums[r] / out.weights[r];
  }
  return out;
}

CoverageGraph CoverageGraph::BuildForGroups(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& pairs,
    const std::vector<std::vector<int>>& groups) {
  obs::TraceSpan build_span(obs::Phase::kBuildCoverageGraph);
  // Map each pair index to its owning group (a pair belongs to exactly one
  // sentence / review).
  std::vector<int> group_of(pairs.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int pair_index : groups[g]) {
      OSRS_DCHECK_GE(pair_index, 0);
      OSRS_DCHECK_LT(static_cast<size_t>(pair_index), pairs.size());
      OSRS_DCHECK_MSG(group_of[static_cast<size_t>(pair_index)] == -1,
                      "pair " << pair_index << " assigned to two groups");
      group_of[static_cast<size_t>(pair_index)] = static_cast<int>(g);
    }
  }

  // Aggregate pair-level edges to group level keeping the minimum weight.
  // last_seen/best avoid a hash map: targets arrive in increasing w per the
  // emit order, but one group may reach the same w through several member
  // pairs, so dedupe with a per-(group) scratch of the current target.
  std::vector<std::vector<Edge>> per_candidate(groups.size());
  std::vector<int> last_target(groups.size(), -1);
  ForEachCoveringPair(distance, pairs, [&](int u, int w, double weight) {
    int g = group_of[static_cast<size_t>(u)];
    if (g < 0) return;  // pair not part of any candidate group
    auto& edges = per_candidate[static_cast<size_t>(g)];
    if (last_target[static_cast<size_t>(g)] == w && !edges.empty() &&
        edges.back().endpoint == w) {
      edges.back().weight = std::min(edges.back().weight, weight);
    } else {
      edges.push_back({w, weight});
      last_target[static_cast<size_t>(g)] = w;
    }
  });

  CoverageGraph graph;
  graph.Assemble(static_cast<int>(groups.size()),
                 static_cast<int>(pairs.size()), std::move(per_candidate),
                 RootDistances(distance, pairs));
  obs::TraceStat(obs::Stat::kGraphEdgesBuilt,
                 static_cast<int64_t>(graph.num_edges()));
  return graph;
}

void CoverageGraph::Assemble(int num_candidates, int num_targets,
                             std::vector<std::vector<Edge>> per_candidate,
                             std::vector<double> root_distance) {
  OSRS_CHECK_EQ(per_candidate.size(), static_cast<size_t>(num_candidates));
  OSRS_CHECK_EQ(root_distance.size(), static_cast<size_t>(num_targets));
  root_distance_ = std::move(root_distance);

  size_t total_edges = 0;
  for (const auto& edges : per_candidate) total_edges += edges.size();

  forward_offsets_.assign(static_cast<size_t>(num_candidates) + 1, 0);
  forward_edges_.clear();
  forward_edges_.reserve(total_edges);
  std::vector<size_t> backward_degree(static_cast<size_t>(num_targets), 0);
  for (int u = 0; u < num_candidates; ++u) {
    auto& edges = per_candidate[static_cast<size_t>(u)];
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) {
                return a.endpoint < b.endpoint;
              });
    for (const Edge& e : edges) {
      forward_edges_.push_back(e);
      ++backward_degree[static_cast<size_t>(e.endpoint)];
    }
    forward_offsets_[static_cast<size_t>(u) + 1] = forward_edges_.size();
  }

  backward_offsets_.assign(static_cast<size_t>(num_targets) + 1, 0);
  for (int w = 0; w < num_targets; ++w) {
    backward_offsets_[static_cast<size_t>(w) + 1] =
        backward_offsets_[static_cast<size_t>(w)] +
        backward_degree[static_cast<size_t>(w)];
  }
  backward_edges_.resize(total_edges);
  std::vector<size_t> cursor(backward_offsets_.begin(),
                             backward_offsets_.end() - 1);
  for (int u = 0; u < num_candidates; ++u) {
    for (size_t i = forward_offsets_[static_cast<size_t>(u)];
         i < forward_offsets_[static_cast<size_t>(u) + 1]; ++i) {
      const Edge& e = forward_edges_[i];
      backward_edges_[cursor[static_cast<size_t>(e.endpoint)]++] = {
          u, e.weight};
    }
  }
}

std::span<const CoverageGraph::Edge> CoverageGraph::EdgesOf(int u) const {
  OSRS_DCHECK_GE(u, 0);
  OSRS_DCHECK_LT(u, num_candidates());
  return {forward_edges_.data() + forward_offsets_[static_cast<size_t>(u)],
          forward_offsets_[static_cast<size_t>(u) + 1] -
              forward_offsets_[static_cast<size_t>(u)]};
}

std::span<const CoverageGraph::Edge> CoverageGraph::CoveringOf(int w) const {
  OSRS_DCHECK_GE(w, 0);
  OSRS_DCHECK_LT(w, num_targets());
  return {backward_edges_.data() + backward_offsets_[static_cast<size_t>(w)],
          backward_offsets_[static_cast<size_t>(w) + 1] -
              backward_offsets_[static_cast<size_t>(w)]};
}

double CoverageGraph::EmptySummaryCost() const {
  double total = 0.0;
  for (size_t w = 0; w < root_distance_.size(); ++w) {
    total += root_distance_[w] * target_weight(static_cast<int>(w));
  }
  return total;
}

double CoverageGraph::CostOfSelection(const std::vector<int>& selected) const {
  std::vector<double> best(root_distance_);
  for (int u : selected) {
    for (const Edge& e : EdgesOf(u)) {
      double& b = best[static_cast<size_t>(e.endpoint)];
      b = std::min(b, e.weight);
    }
  }
  double total = 0.0;
  for (size_t w = 0; w < best.size(); ++w) {
    total += best[w] * target_weight(static_cast<int>(w));
  }
  return total;
}

double CoverageGraph::AverageCandidateDegree() const {
  if (num_candidates() == 0) return 0.0;
  return static_cast<double>(forward_edges_.size()) /
         static_cast<double>(num_candidates());
}

}  // namespace osrs
