#ifndef OSRS_COVERAGE_COVERAGE_GRAPH_H_
#define OSRS_COVERAGE_COVERAGE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "core/distance.h"
#include "core/model.h"

namespace osrs {

/// Options shared by the fallible TryBuild* graph constructors.
struct CoverageBuildOptions {
  /// Shard count for the two construction passes: 1 = serial (default),
  /// 0 = hardware concurrency. Bit-identical output at every value.
  int num_threads = 1;
  /// When non-zero, an upper bound on the bytes the finished graph may
  /// occupy (both CSR copies, offsets, root distances). The counting pass
  /// already knows the exact edge total before anything is allocated, so
  /// an over-budget build returns kResourceExhausted *without* attempting
  /// the allocation — no bad_alloc, no partially built graph. 0 = no limit.
  size_t max_memory_bytes = 0;
};

/// The edge-weighted bipartite graph G = (U, W, E) of §4.1.
///
/// W is always the item's concept-sentiment pair multiset P (the coverage
/// targets). U is the candidate set: the pairs themselves for k-Pairs
/// Coverage, or sentences/reviews — groups of pair indices — for the §4.5
/// variants. An edge (u, w) with weight d(u, w) exists iff candidate u
/// covers target w at finite Definition 1 distance; for a group candidate
/// the weight is the minimum over its member pairs.
///
/// Storage is CSR in both directions: the greedy algorithm walks forward
/// edges (candidate → targets) when applying a selection and backward edges
/// (target → candidates) to find the neighbor-of-neighbor keys to update.
///
/// The CSR is structure-of-arrays: each direction keeps a 64-byte-aligned
/// endpoint lane (int32) and a distance lane (float) rather than an array
/// of {endpoint, distance} structs. The SIMD kernels (common/simd.h)
/// stream one lane per register — 8 endpoints or 8 distances per load —
/// which an interleaved layout would halve; scalar consumers keep the
/// struct view through EdgesOf/CoveringOf, whose iterator zips the lanes
/// back into Edge values.
class CoverageGraph {
 public:
  /// A half-edge view: the opposite endpoint and the coverage distance.
  /// The weight is float — coverage distances are small integer hop counts
  /// (min over hops for group candidates), which float represents exactly.
  /// Edges are materialized from the lanes on access; nothing stores them.
  struct Edge {
    int32_t endpoint;
    float weight;
  };

  /// One CSR row as raw lane pointers — the view the SIMD kernels consume.
  /// `endpoint[i]` pairs with `distance[i]`; both lanes are slices of
  /// 64-byte-aligned arrays (the slice itself starts at an arbitrary
  /// offset; the kernels use unaligned loads).
  struct EdgeLanes {
    const int32_t* endpoint = nullptr;
    const float* distance = nullptr;
    size_t size = 0;
  };

  /// Random-access range zipping the two lanes of a CSR row back into Edge
  /// values for scalar consumers (tests, LP assembly, local search). The
  /// iterator yields Edge by value; binding `const Edge&` in a range-for
  /// works as usual (lifetime extension).
  class EdgeRange {
   public:
    class Iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = Edge;
      using difference_type = std::ptrdiff_t;
      using reference = Edge;
      using pointer = const Edge*;

      Iterator() = default;
      Iterator(const int32_t* endpoint, const float* distance)
          : endpoint_(endpoint), distance_(distance) {}

      Edge operator*() const { return Edge{*endpoint_, *distance_}; }
      Edge operator[](difference_type i) const {
        return Edge{endpoint_[i], distance_[i]};
      }
      Iterator& operator++() {
        ++endpoint_;
        ++distance_;
        return *this;
      }
      Iterator operator++(int) {
        Iterator copy = *this;
        ++*this;
        return copy;
      }
      Iterator& operator+=(difference_type n) {
        endpoint_ += n;
        distance_ += n;
        return *this;
      }
      friend Iterator operator+(Iterator it, difference_type n) {
        return it += n;
      }
      friend difference_type operator-(const Iterator& a, const Iterator& b) {
        return a.endpoint_ - b.endpoint_;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.endpoint_ == b.endpoint_;
      }
      friend bool operator!=(const Iterator& a, const Iterator& b) {
        return a.endpoint_ != b.endpoint_;
      }

     private:
      const int32_t* endpoint_ = nullptr;
      const float* distance_ = nullptr;
    };

    EdgeRange() = default;
    EdgeRange(EdgeLanes lanes) : lanes_(lanes) {}  // NOLINT

    Iterator begin() const { return {lanes_.endpoint, lanes_.distance}; }
    Iterator end() const {
      return {lanes_.endpoint + lanes_.size, lanes_.distance + lanes_.size};
    }
    size_t size() const { return lanes_.size; }
    bool empty() const { return lanes_.size == 0; }
    Edge operator[](size_t i) const {
      return Edge{lanes_.endpoint[i], lanes_.distance[i]};
    }
    EdgeLanes lanes() const { return lanes_; }

   private:
    EdgeLanes lanes_;
  };

  /// Builds the k-Pairs graph: U = W = `pairs`. Mirrors the paper's two-pass
  /// construction — bucket pairs by concept (each bucket sorted by
  /// sentiment), then for each target walk its concept's precomputed
  /// ancestor closure and binary-search the `[s - eps, s + eps]` sentiment
  /// window of every ancestor bucket, so inner-loop work is proportional to
  /// the edges emitted rather than the bucket sizes.
  ///
  /// Construction is two passes over the same enumeration: a counting pass
  /// (degrees only, nothing materialized) and a scatter pass writing every
  /// edge directly into its final CSR slot — no intermediate edge buffers
  /// and no per-candidate sort. `num_threads` shards the targets across
  /// workers (1 = serial, the default; 0 = hardware concurrency); the
  /// resulting graph is bit-identical at every thread count.
  static CoverageGraph BuildForPairs(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs, int num_threads = 1);

  /// Builds the §4.5 graph: U = `groups` (each a list of indices into
  /// `pairs`, e.g. the pairs of one sentence), W = `pairs`. Same
  /// `num_threads` contract as BuildForPairs; each target is processed
  /// wholly by one shard, which keeps the per-group minimum-weight dedupe
  /// exact.
  static CoverageGraph BuildForGroups(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups, int num_threads = 1);

  /// Like BuildForPairs but with a multiplicity per target: target w
  /// contributes weight[w] · d(F, w) to the cost. Together with DedupePairs
  /// this collapses the many duplicate pairs of real review sets (the same
  /// popular aspect mentioned with near-identical sentiment) into one
  /// weighted target, shrinking the graph without changing any cost.
  static CoverageGraph BuildForPairsWeighted(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<double>& target_weights, int num_threads = 1);

  /// Fallible variants of the three builders. Same construction, same
  /// bit-identical output, but resource failures surface as Status instead
  /// of crashing: a build whose counting pass predicts more than
  /// `options.max_memory_bytes` of graph storage returns kResourceExhausted
  /// before allocating, and the "osrs.coverage.alloc" failpoint
  /// (src/fault/failpoint.h) is evaluated on entry — only here, so callers
  /// of the legacy value-returning builders are never affected by an armed
  /// failpoint. Prefer these on any path with a RetryPolicy above it.
  static Result<CoverageGraph> TryBuildForPairs(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const CoverageBuildOptions& options);
  static Result<CoverageGraph> TryBuildForGroups(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups,
      const CoverageBuildOptions& options);
  static Result<CoverageGraph> TryBuildForPairsWeighted(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<double>& target_weights,
      const CoverageBuildOptions& options);

  /// Bytes of heap storage this graph's vectors occupy (capacity-exact for
  /// a freshly built graph). The same formula the TryBuild* memory gate
  /// evaluates pre-allocation.
  static size_t EstimateBytes(size_t num_edges, size_t num_candidates,
                              size_t num_targets, bool weighted);

  int num_candidates() const { return static_cast<int>(forward_offsets_.size()) - 1; }
  int num_targets() const { return static_cast<int>(root_distance_.size()); }
  size_t num_edges() const { return forward_endpoint_.size(); }

  /// Targets covered by candidate `u` with their distances.
  EdgeRange EdgesOf(int u) const { return EdgeRange(ForwardLanesOf(u)); }

  /// Candidates covering target `w` with their distances.
  EdgeRange CoveringOf(int w) const { return EdgeRange(BackwardLanesOf(w)); }

  /// Raw SoA lanes of candidate u's forward row (targets + distances) —
  /// what the SIMD gain/update kernels stream.
  EdgeLanes ForwardLanesOf(int u) const;

  /// Raw SoA lanes of target w's backward row (coverers + distances).
  EdgeLanes BackwardLanesOf(int w) const;

  /// d(r, pair_w): the always-available root coverage distance of target w.
  double root_distance(int w) const { return root_distance_[w]; }

  /// The root distances as a 64-byte-aligned float lane (exact: hop
  /// counts), indexed by target — the solvers' initial best[] image.
  const float* root_distances_f32() const { return root_distance_f32_.data(); }

  /// Multiplicity of target w (1.0 unless built weighted).
  double target_weight(int w) const {
    return target_weights_.empty()
               ? 1.0
               : target_weights_[static_cast<size_t>(w)];
  }

  /// The multiplicity lane for the SIMD kernels: null when the graph is
  /// unweighted (all ones), else `num_targets()` doubles.
  const double* target_weights_or_null() const {
    return target_weights_.empty() ? nullptr : target_weights_.data();
  }

  /// Σ_w root_distance(w) — the cost of the empty summary.
  double EmptySummaryCost() const;

  /// Definition 2 cost of selecting candidate set `selected` (indices into
  /// U), computed from the graph: Σ_w min(root, min over selected coverers).
  double CostOfSelection(const std::vector<int>& selected) const;

  /// Allocation-free form for hot callers (rounding trials, local-search
  /// passes): `best_scratch` must hold num_targets() floats and is fully
  /// overwritten. Distances are integral hop counts — exact in float — so
  /// the result is identical to the owning overload.
  double CostOfSelection(std::span<const int> selected,
                         std::span<float> best_scratch) const;

  /// Mean forward degree of candidates (graph sparsity diagnostic; §4.4's
  /// running-time discussion depends on it).
  double AverageCandidateDegree() const;

  /// An empty graph (no candidates, no targets). Mostly useful as a
  /// placeholder before assignment from one of the builders.
  CoverageGraph() = default;

 private:
  /// Shared implementations behind the legacy Build* (infallible, no limit)
  /// and TryBuild* (memory-gated) entry points. The gate runs between the
  /// counting and scatter passes, where the exact edge total is known but
  /// nothing has been allocated yet.
  static Result<CoverageGraph> BuildForPairsImpl(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const CoverageBuildOptions& options, bool weighted);
  static Result<CoverageGraph> BuildForGroupsImpl(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups,
      const CoverageBuildOptions& options);

  /// Turns the per-(shard, candidate) forward degree counts of the builders'
  /// counting pass into forward_offsets_ plus disjoint scatter cursors (one
  /// serial prefix sum), and sizes forward_edges_. On return,
  /// `shard_degree[s][u]` is the first forward_edges_ slot of shard s's
  /// slice of candidate u's row; slices are consecutive in shard order, so
  /// after the builders' scatter pass it holds the slice end.
  void PrepareForwardScatter(int num_candidates,
                             std::vector<std::vector<size_t>>& shard_degree);

  /// Prefix-sums the per-target covering counts into backward_offsets_ and
  /// sizes backward_edges_. The scatter pass then fills backward rows
  /// in-line: targets are enumerated in ascending order within each shard
  /// and shards own contiguous target ranges, so every shard's backward
  /// writes are purely sequential over a disjoint range — no transpose
  /// pass. Rows hold a target's coverers in emission (closure × bucket)
  /// order, which is fixed per target and thus identical at every shard
  /// count.
  void PrepareBackwardFill(int num_targets,
                           const std::vector<size_t>& backward_degree);

  // Forward CSR, structure-of-arrays: candidate u's row is
  // forward_endpoint_/forward_distance_[forward_offsets_[u] ..
  // forward_offsets_[u + 1]). Lanes are 64-byte aligned for the SIMD
  // kernels' streaming loads.
  std::vector<size_t> forward_offsets_;
  AlignedVector<int32_t> forward_endpoint_;
  AlignedVector<float> forward_distance_;
  // Backward CSR, same layout: target w is covered by the row at
  // backward_offsets_[w].
  std::vector<size_t> backward_offsets_;
  AlignedVector<int32_t> backward_endpoint_;
  AlignedVector<float> backward_distance_;
  std::vector<double> root_distance_;
  AlignedVector<float> root_distance_f32_;  // same values, kernel lane
  std::vector<double> target_weights_;      // empty = all ones
};

/// Collapses duplicate pairs: pairs with the same concept whose sentiments
/// fall in the same quantization bucket of width `sentiment_quantum` merge
/// into one representative (the bucket's weighted mean sentiment) with a
/// multiplicity. Returns the unique pairs, their weights, and for each
/// input pair the index of its representative.
struct DedupedPairs {
  std::vector<ConceptSentimentPair> pairs;
  std::vector<double> weights;
  std::vector<int> representative_of;  // per input pair
};
DedupedPairs DedupePairs(const std::vector<ConceptSentimentPair>& pairs,
                         double sentiment_quantum);

}  // namespace osrs

#endif  // OSRS_COVERAGE_COVERAGE_GRAPH_H_
