#ifndef OSRS_COVERAGE_COVERAGE_GRAPH_H_
#define OSRS_COVERAGE_COVERAGE_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/distance.h"
#include "core/model.h"

namespace osrs {

/// Options shared by the fallible TryBuild* graph constructors.
struct CoverageBuildOptions {
  /// Shard count for the two construction passes: 1 = serial (default),
  /// 0 = hardware concurrency. Bit-identical output at every value.
  int num_threads = 1;
  /// When non-zero, an upper bound on the bytes the finished graph may
  /// occupy (both CSR copies, offsets, root distances). The counting pass
  /// already knows the exact edge total before anything is allocated, so
  /// an over-budget build returns kResourceExhausted *without* attempting
  /// the allocation — no bad_alloc, no partially built graph. 0 = no limit.
  size_t max_memory_bytes = 0;
};

/// The edge-weighted bipartite graph G = (U, W, E) of §4.1.
///
/// W is always the item's concept-sentiment pair multiset P (the coverage
/// targets). U is the candidate set: the pairs themselves for k-Pairs
/// Coverage, or sentences/reviews — groups of pair indices — for the §4.5
/// variants. An edge (u, w) with weight d(u, w) exists iff candidate u
/// covers target w at finite Definition 1 distance; for a group candidate
/// the weight is the minimum over its member pairs.
///
/// Storage is CSR in both directions: the greedy algorithm walks forward
/// edges (candidate → targets) when applying a selection and backward edges
/// (target → candidates) to find the neighbor-of-neighbor keys to update.
class CoverageGraph {
 public:
  /// A half-edge: the opposite endpoint and the coverage distance. The
  /// weight is stored as float — coverage distances are small integer hop
  /// counts (min over hops for group candidates), which float represents
  /// exactly, and the 8-byte edge halves the CSR's memory traffic, the
  /// dominant cost of construction and of the solvers' edge walks.
  struct Edge {
    int32_t endpoint;
    float weight;
  };

  /// Builds the k-Pairs graph: U = W = `pairs`. Mirrors the paper's two-pass
  /// construction — bucket pairs by concept (each bucket sorted by
  /// sentiment), then for each target walk its concept's precomputed
  /// ancestor closure and binary-search the `[s - eps, s + eps]` sentiment
  /// window of every ancestor bucket, so inner-loop work is proportional to
  /// the edges emitted rather than the bucket sizes.
  ///
  /// Construction is two passes over the same enumeration: a counting pass
  /// (degrees only, nothing materialized) and a scatter pass writing every
  /// edge directly into its final CSR slot — no intermediate edge buffers
  /// and no per-candidate sort. `num_threads` shards the targets across
  /// workers (1 = serial, the default; 0 = hardware concurrency); the
  /// resulting graph is bit-identical at every thread count.
  static CoverageGraph BuildForPairs(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs, int num_threads = 1);

  /// Builds the §4.5 graph: U = `groups` (each a list of indices into
  /// `pairs`, e.g. the pairs of one sentence), W = `pairs`. Same
  /// `num_threads` contract as BuildForPairs; each target is processed
  /// wholly by one shard, which keeps the per-group minimum-weight dedupe
  /// exact.
  static CoverageGraph BuildForGroups(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups, int num_threads = 1);

  /// Like BuildForPairs but with a multiplicity per target: target w
  /// contributes weight[w] · d(F, w) to the cost. Together with DedupePairs
  /// this collapses the many duplicate pairs of real review sets (the same
  /// popular aspect mentioned with near-identical sentiment) into one
  /// weighted target, shrinking the graph without changing any cost.
  static CoverageGraph BuildForPairsWeighted(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<double>& target_weights, int num_threads = 1);

  /// Fallible variants of the three builders. Same construction, same
  /// bit-identical output, but resource failures surface as Status instead
  /// of crashing: a build whose counting pass predicts more than
  /// `options.max_memory_bytes` of graph storage returns kResourceExhausted
  /// before allocating, and the "osrs.coverage.alloc" failpoint
  /// (src/fault/failpoint.h) is evaluated on entry — only here, so callers
  /// of the legacy value-returning builders are never affected by an armed
  /// failpoint. Prefer these on any path with a RetryPolicy above it.
  static Result<CoverageGraph> TryBuildForPairs(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const CoverageBuildOptions& options);
  static Result<CoverageGraph> TryBuildForGroups(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups,
      const CoverageBuildOptions& options);
  static Result<CoverageGraph> TryBuildForPairsWeighted(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<double>& target_weights,
      const CoverageBuildOptions& options);

  /// Bytes of heap storage this graph's vectors occupy (capacity-exact for
  /// a freshly built graph). The same formula the TryBuild* memory gate
  /// evaluates pre-allocation.
  static size_t EstimateBytes(size_t num_edges, size_t num_candidates,
                              size_t num_targets, bool weighted);

  int num_candidates() const { return static_cast<int>(forward_offsets_.size()) - 1; }
  int num_targets() const { return static_cast<int>(root_distance_.size()); }
  size_t num_edges() const { return forward_edges_.size(); }

  /// Targets covered by candidate `u` with their distances.
  std::span<const Edge> EdgesOf(int u) const;

  /// Candidates covering target `w` with their distances.
  std::span<const Edge> CoveringOf(int w) const;

  /// d(r, pair_w): the always-available root coverage distance of target w.
  double root_distance(int w) const { return root_distance_[w]; }

  /// Multiplicity of target w (1.0 unless built weighted).
  double target_weight(int w) const {
    return target_weights_.empty()
               ? 1.0
               : target_weights_[static_cast<size_t>(w)];
  }

  /// Σ_w root_distance(w) — the cost of the empty summary.
  double EmptySummaryCost() const;

  /// Definition 2 cost of selecting candidate set `selected` (indices into
  /// U), computed from the graph: Σ_w min(root, min over selected coverers).
  double CostOfSelection(const std::vector<int>& selected) const;

  /// Mean forward degree of candidates (graph sparsity diagnostic; §4.4's
  /// running-time discussion depends on it).
  double AverageCandidateDegree() const;

  /// An empty graph (no candidates, no targets). Mostly useful as a
  /// placeholder before assignment from one of the builders.
  CoverageGraph() = default;

 private:
  /// Shared implementations behind the legacy Build* (infallible, no limit)
  /// and TryBuild* (memory-gated) entry points. The gate runs between the
  /// counting and scatter passes, where the exact edge total is known but
  /// nothing has been allocated yet.
  static Result<CoverageGraph> BuildForPairsImpl(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const CoverageBuildOptions& options, bool weighted);
  static Result<CoverageGraph> BuildForGroupsImpl(
      const PairDistance& distance,
      const std::vector<ConceptSentimentPair>& pairs,
      const std::vector<std::vector<int>>& groups,
      const CoverageBuildOptions& options);

  /// Turns the per-(shard, candidate) forward degree counts of the builders'
  /// counting pass into forward_offsets_ plus disjoint scatter cursors (one
  /// serial prefix sum), and sizes forward_edges_. On return,
  /// `shard_degree[s][u]` is the first forward_edges_ slot of shard s's
  /// slice of candidate u's row; slices are consecutive in shard order, so
  /// after the builders' scatter pass it holds the slice end.
  void PrepareForwardScatter(int num_candidates,
                             std::vector<std::vector<size_t>>& shard_degree);

  /// Prefix-sums the per-target covering counts into backward_offsets_ and
  /// sizes backward_edges_. The scatter pass then fills backward rows
  /// in-line: targets are enumerated in ascending order within each shard
  /// and shards own contiguous target ranges, so every shard's backward
  /// writes are purely sequential over a disjoint range — no transpose
  /// pass. Rows hold a target's coverers in emission (closure × bucket)
  /// order, which is fixed per target and thus identical at every shard
  /// count.
  void PrepareBackwardFill(int num_targets,
                           const std::vector<size_t>& backward_degree);

  // Forward CSR: candidate u covers forward_edges_[forward_offsets_[u] ..].
  std::vector<size_t> forward_offsets_;
  std::vector<Edge> forward_edges_;
  // Backward CSR: target w is covered by backward_edges_[...].
  std::vector<size_t> backward_offsets_;
  std::vector<Edge> backward_edges_;
  std::vector<double> root_distance_;
  std::vector<double> target_weights_;  // empty = all ones
};

/// Collapses duplicate pairs: pairs with the same concept whose sentiments
/// fall in the same quantization bucket of width `sentiment_quantum` merge
/// into one representative (the bucket's weighted mean sentiment) with a
/// multiplicity. Returns the unique pairs, their weights, and for each
/// input pair the index of its representative.
struct DedupedPairs {
  std::vector<ConceptSentimentPair> pairs;
  std::vector<double> weights;
  std::vector<int> representative_of;  // per input pair
};
DedupedPairs DedupePairs(const std::vector<ConceptSentimentPair>& pairs,
                         double sentiment_quantum);

}  // namespace osrs

#endif  // OSRS_COVERAGE_COVERAGE_GRAPH_H_
