#ifndef OSRS_CORE_COST_H_
#define OSRS_CORE_COST_H_

#include <vector>

#include "core/distance.h"
#include "core/model.h"

namespace osrs {

/// Reference (brute-force) implementation of the Definition 2 cost:
///
///   C(F, P) = Σ_{p ∈ P} min_{f ∈ F ∪ {r}} d(f, p)
///
/// The implicit root member of F makes every distance finite, so the cost is
/// always well defined. O(|F|·|P|) pair-distance evaluations; the solvers
/// maintain the same quantity incrementally via the coverage graph, and the
/// tests cross-check them against this implementation.
double SummaryCost(const PairDistance& distance,
                   const std::vector<ConceptSentimentPair>& summary,
                   const std::vector<ConceptSentimentPair>& pairs);

/// Distance from summary F (plus the implicit root) to a single pair.
double DistanceToSummary(const PairDistance& distance,
                         const std::vector<ConceptSentimentPair>& summary,
                         const ConceptSentimentPair& pair);

/// Fraction of pairs in `pairs` covered by a non-root member of `summary`
/// (used by the §5.3 elbow-method threshold selection).
double CoveredFraction(const PairDistance& distance,
                       const std::vector<ConceptSentimentPair>& summary,
                       const std::vector<ConceptSentimentPair>& pairs);

}  // namespace osrs

#endif  // OSRS_CORE_COST_H_
