#ifndef OSRS_CORE_MODEL_H_
#define OSRS_CORE_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ontology/ontology.h"

namespace osrs {

/// A concept occurrence with its estimated sentiment in [-1, 1] (§2).
struct ConceptSentimentPair {
  ConceptId concept_id = kInvalidConcept;
  double sentiment = 0.0;

  friend bool operator==(const ConceptSentimentPair& a,
                         const ConceptSentimentPair& b) {
    return a.concept_id == b.concept_id && a.sentiment == b.sentiment;
  }
};

/// One sentence of a review: its raw text plus the concept-sentiment pairs
/// extracted from it.
struct Sentence {
  std::string text;
  std::vector<ConceptSentimentPair> pairs;
};

/// One customer review: ordered sentences plus the reviewer's star rating
/// normalized to [-1, 1] (used as weak supervision for sentiment training).
struct Review {
  std::vector<Sentence> sentences;
  double rating = 0.0;
};

/// An item under review (a doctor or a phone) with all of its reviews.
struct Item {
  std::string id;
  std::vector<Review> reviews;
};

/// Where in an item's reviews a pair occurred; the solvers work over flat
/// pair lists and use the provenance to group pairs by sentence/review for
/// the k-Sentences / k-Reviews variants (§4.5).
struct PairOccurrence {
  ConceptSentimentPair pair;
  int review_index = -1;
  int sentence_index = -1;  // within the review
};

/// Validates the sentiment values of every pair in `item`: each must be
/// finite and inside [-1, 1] (the §2 model's sentiment scale). Returns
/// InvalidArgument naming the offending review/sentence otherwise. Called
/// at the ingestion boundaries (annotator output, summarizer input) so a
/// NaN can never silently propagate through the Definition-2 cost sums.
Status ValidateItem(const Item& item);

/// Flattens all pairs of `item` in reading order, recording provenance.
std::vector<PairOccurrence> CollectPairs(const Item& item);

/// Strips provenance, keeping the pairs only.
std::vector<ConceptSentimentPair> PairsOf(
    const std::vector<PairOccurrence>& occurrences);

/// Copy of `item` keeping only the first `max_reviews` reviews.
Item TruncateReviews(const Item& item, size_t max_reviews);

/// Copy of `item` keeping whole reviews (in order) until at most
/// `max_pairs` concept-sentiment pairs are included. Used by the
/// experiment harness to cap per-item (I)LP sizes; at least one review is
/// kept even if it alone exceeds the budget.
Item TruncateToPairBudget(const Item& item, size_t max_pairs);

/// Granularity at which representatives are selected (§2's two problems;
/// sentences and reviews share one machinery per §4.5).
enum class SummaryGranularity {
  kPairs,
  kSentences,
  kReviews,
};

const char* SummaryGranularityToString(SummaryGranularity granularity);

}  // namespace osrs

#endif  // OSRS_CORE_MODEL_H_
