#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace osrs {

Status ValidateItem(const Item& item) {
  for (size_t r = 0; r < item.reviews.size(); ++r) {
    const Review& review = item.reviews[r];
    for (size_t s = 0; s < review.sentences.size(); ++s) {
      for (const ConceptSentimentPair& pair : review.sentences[s].pairs) {
        if (!std::isfinite(pair.sentiment)) {
          return Status::InvalidArgument(StrFormat(
              "item '%s' review %zu sentence %zu: non-finite sentiment",
              item.id.c_str(), r, s));
        }
        if (pair.sentiment < -1.0 || pair.sentiment > 1.0) {
          return Status::InvalidArgument(StrFormat(
              "item '%s' review %zu sentence %zu: sentiment %g outside "
              "[-1, 1]",
              item.id.c_str(), r, s, pair.sentiment));
        }
      }
    }
  }
  return Status::OK();
}

std::vector<PairOccurrence> CollectPairs(const Item& item) {
  std::vector<PairOccurrence> out;
  for (size_t r = 0; r < item.reviews.size(); ++r) {
    const Review& review = item.reviews[r];
    for (size_t s = 0; s < review.sentences.size(); ++s) {
      for (const ConceptSentimentPair& pair : review.sentences[s].pairs) {
        out.push_back({pair, static_cast<int>(r), static_cast<int>(s)});
      }
    }
  }
  return out;
}

std::vector<ConceptSentimentPair> PairsOf(
    const std::vector<PairOccurrence>& occurrences) {
  std::vector<ConceptSentimentPair> out;
  out.reserve(occurrences.size());
  for (const PairOccurrence& occ : occurrences) out.push_back(occ.pair);
  return out;
}

Item TruncateReviews(const Item& item, size_t max_reviews) {
  Item out;
  out.id = item.id;
  size_t keep = std::min(max_reviews, item.reviews.size());
  out.reviews.assign(item.reviews.begin(),
                     item.reviews.begin() + static_cast<long>(keep));
  return out;
}

Item TruncateToPairBudget(const Item& item, size_t max_pairs) {
  Item out;
  out.id = item.id;
  size_t pairs = 0;
  for (const Review& review : item.reviews) {
    size_t review_pairs = 0;
    for (const Sentence& sentence : review.sentences) {
      review_pairs += sentence.pairs.size();
    }
    if (!out.reviews.empty() && pairs + review_pairs > max_pairs) break;
    out.reviews.push_back(review);
    pairs += review_pairs;
  }
  return out;
}

const char* SummaryGranularityToString(SummaryGranularity granularity) {
  switch (granularity) {
    case SummaryGranularity::kPairs:
      return "pairs";
    case SummaryGranularity::kSentences:
      return "sentences";
    case SummaryGranularity::kReviews:
      return "reviews";
  }
  return "unknown";
}

}  // namespace osrs
