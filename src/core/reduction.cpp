#include "core/reduction.h"

#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace osrs {

KPairsReduction BuildKPairsReduction(const SetCoverInstance& instance) {
  obs::TraceSpan build_span(obs::Phase::kReductionBuild);
  OSRS_CHECK_GT(instance.universe_size, 0);
  OSRS_CHECK(!instance.sets.empty());
  OSRS_CHECK_GE(instance.k, 1);
  const int m = static_cast<int>(instance.sets.size());
  const int n = instance.universe_size;

  KPairsReduction out;
  Ontology& onto = out.ontology;
  ConceptId root = onto.AddConcept("r");

  out.c_nodes.reserve(m);
  out.e_nodes.reserve(m);
  for (int i = 0; i < m; ++i) {
    ConceptId ci = onto.AddConcept(StrFormat("c%d", i));
    ConceptId ei = onto.AddConcept(StrFormat("e%d", i));
    OSRS_CHECK(onto.AddEdge(root, ci).ok());
    OSRS_CHECK(onto.AddEdge(ci, ei).ok());
    out.c_nodes.push_back(ci);
    out.e_nodes.push_back(ei);
  }
  out.d_nodes.reserve(n);
  for (int j = 0; j < n; ++j) {
    out.d_nodes.push_back(onto.AddConcept(StrFormat("d%d", j)));
  }
  for (int i = 0; i < m; ++i) {
    for (int element : instance.sets[i]) {
      OSRS_CHECK_MSG(element >= 0 && element < n,
                     "element " << element << " outside universe");
      OSRS_CHECK(onto.AddEdge(out.c_nodes[i], out.d_nodes[element]).ok());
    }
  }
  // Every universe element must appear in some set, else the reduction DAG
  // leaves d_j unreachable (and the Set Cover instance is trivially "no").
  OSRS_CHECK_MSG(onto.Finalize().ok(),
                 "reduction DAG invalid — some element in no set?");

  // One pair per non-root node, all with sentiment 0 (2m + n pairs).
  out.pairs.reserve(static_cast<size_t>(2 * m + n));
  out.set_pair_index.reserve(m);
  for (int i = 0; i < m; ++i) {
    out.set_pair_index.push_back(static_cast<int>(out.pairs.size()));
    out.pairs.push_back({out.c_nodes[i], 0.0});
    out.pairs.push_back({out.e_nodes[i], 0.0});
  }
  for (int j = 0; j < n; ++j) {
    out.pairs.push_back({out.d_nodes[j], 0.0});
  }

  out.k = instance.k;
  out.target = 3.0 * m + n - 2.0 * instance.k;
  return out;
}

bool IsSetCover(const SetCoverInstance& instance,
                const std::vector<int>& chosen_sets) {
  std::vector<bool> covered(static_cast<size_t>(instance.universe_size),
                            false);
  for (int set_index : chosen_sets) {
    if (set_index < 0 ||
        set_index >= static_cast<int>(instance.sets.size())) {
      return false;
    }
    for (int element : instance.sets[static_cast<size_t>(set_index)]) {
      covered[static_cast<size_t>(element)] = true;
    }
  }
  for (bool c : covered) {
    if (!c) return false;
  }
  return true;
}

}  // namespace osrs
