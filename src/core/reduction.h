#ifndef OSRS_CORE_REDUCTION_H_
#define OSRS_CORE_REDUCTION_H_

#include <vector>

#include "core/model.h"
#include "ontology/ontology.h"

namespace osrs {

/// A Set Cover instance (S, U, k): universe {0..universe_size-1}, a
/// collection of subsets, and a budget k.
struct SetCoverInstance {
  int universe_size = 0;
  std::vector<std::vector<int>> sets;
  int k = 0;
};

/// The k-Pairs Coverage instance produced by the Theorem 1 reduction
/// (Fig. 2): for each set S_i a chain r → c_i → e_i, for each element u_j a
/// node d_j that is a child of c_i for every set containing u_j; one pair
/// per non-root node, all with sentiment 0; target t = 3m + n - 2k.
struct KPairsReduction {
  Ontology ontology;
  std::vector<ConceptSentimentPair> pairs;
  int k = 0;
  double target = 0.0;
  /// pairs[set_pair_index[i]] is the pair sitting on c_i; selecting exactly
  /// these (for a cover) achieves the target cost.
  std::vector<int> set_pair_index;
  /// Concept ids of the c_i / e_i / d_j nodes for test introspection.
  std::vector<ConceptId> c_nodes;
  std::vector<ConceptId> e_nodes;
  std::vector<ConceptId> d_nodes;
};

/// Builds the Theorem 1 reduction from `instance`. Any epsilon > 0 works
/// since all sentiments are equal.
KPairsReduction BuildKPairsReduction(const SetCoverInstance& instance);

/// Reference check: does `chosen_sets` cover the universe?
bool IsSetCover(const SetCoverInstance& instance,
                const std::vector<int>& chosen_sets);

}  // namespace osrs

#endif  // OSRS_CORE_REDUCTION_H_
