#include "core/cost.h"

#include <algorithm>
#include <cmath>

namespace osrs {

double DistanceToSummary(const PairDistance& distance,
                         const std::vector<ConceptSentimentPair>& summary,
                         const ConceptSentimentPair& pair) {
  double best = distance.FromRoot(pair);
  for (const ConceptSentimentPair& f : summary) {
    best = std::min(best, distance(f, pair));
  }
  return best;
}

double SummaryCost(const PairDistance& distance,
                   const std::vector<ConceptSentimentPair>& summary,
                   const std::vector<ConceptSentimentPair>& pairs) {
  double total = 0.0;
  for (const ConceptSentimentPair& p : pairs) {
    total += DistanceToSummary(distance, summary, p);
  }
  return total;
}

double CoveredFraction(const PairDistance& distance,
                       const std::vector<ConceptSentimentPair>& summary,
                       const std::vector<ConceptSentimentPair>& pairs) {
  if (pairs.empty()) return 0.0;
  size_t covered = 0;
  for (const ConceptSentimentPair& p : pairs) {
    for (const ConceptSentimentPair& f : summary) {
      if (distance.Covers(f, p)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(pairs.size());
}

}  // namespace osrs
