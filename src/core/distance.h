#ifndef OSRS_CORE_DISTANCE_H_
#define OSRS_CORE_DISTANCE_H_

#include <limits>

#include "core/model.h"
#include "ontology/ontology.h"

namespace osrs {

/// Distance value meaning "does not cover" (Definition 1's ∞ branch).
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// The directed pair distance of Definition 1.
///
///   d(p1, p2) = d(r, c2)      if c1 is the root r
///             = d(c1, c2)     if c1 is an ancestor-or-self of c2 and
///                             |s1 - s2| <= eps
///             = ∞             otherwise
///
/// where d(c1, c2) is the shortest directed path length in the hierarchy.
/// p1 "covers" p2 iff the distance is finite. Note the asymmetry: a general
/// concept covers its specializations (at close sentiment) but not vice
/// versa, and the root covers everything regardless of sentiment.
class PairDistance {
 public:
  /// `ontology` must be finalized and outlive this object. `epsilon` is the
  /// sentiment threshold ε > 0 of Definition 1.
  PairDistance(const Ontology* ontology, double epsilon);

  /// d(p1, p2); kInfiniteDistance when p1 does not cover p2.
  double operator()(const ConceptSentimentPair& p1,
                    const ConceptSentimentPair& p2) const;

  /// True iff p1 covers p2 (finite distance).
  bool Covers(const ConceptSentimentPair& p1,
              const ConceptSentimentPair& p2) const;

  /// Distance from the implicit root pair to p (always finite): d(r, c_p).
  double FromRoot(const ConceptSentimentPair& p) const;

  double epsilon() const { return epsilon_; }
  const Ontology& ontology() const { return *ontology_; }

 private:
  const Ontology* ontology_;
  double epsilon_;
};

}  // namespace osrs

#endif  // OSRS_CORE_DISTANCE_H_
