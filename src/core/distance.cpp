#include "core/distance.h"

#include <cmath>

#include "common/logging.h"

namespace osrs {

PairDistance::PairDistance(const Ontology* ontology, double epsilon)
    : ontology_(ontology), epsilon_(epsilon) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
  OSRS_CHECK_GT(epsilon, 0.0);
}

double PairDistance::operator()(const ConceptSentimentPair& p1,
                                const ConceptSentimentPair& p2) const {
  // Debug-only: this is the O(|pairs|^2)-call distance kernel, and id
  // validity is a caller contract (strict mode verifies it up front via
  // ModelValidator, release builds must not pay per-call).
  OSRS_DCHECK_GE(p1.concept_id, 0);
  OSRS_DCHECK_LT(static_cast<size_t>(p1.concept_id),
                 ontology_->num_concepts());
  OSRS_DCHECK_GE(p2.concept_id, 0);
  OSRS_DCHECK_LT(static_cast<size_t>(p2.concept_id),
                 ontology_->num_concepts());
  if (p1.concept_id == ontology_->root()) {
    return static_cast<double>(ontology_->DepthFromRoot(p2.concept_id));
  }
  if (std::abs(p1.sentiment - p2.sentiment) > epsilon_) {
    return kInfiniteDistance;
  }
  int d = ontology_->AncestorDistance(p1.concept_id, p2.concept_id);
  return d < 0 ? kInfiniteDistance : static_cast<double>(d);
}

bool PairDistance::Covers(const ConceptSentimentPair& p1,
                          const ConceptSentimentPair& p2) const {
  return std::isfinite((*this)(p1, p2));
}

double PairDistance::FromRoot(const ConceptSentimentPair& p) const {
  return static_cast<double>(ontology_->DepthFromRoot(p.concept_id));
}

}  // namespace osrs
