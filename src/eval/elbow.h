#ifndef OSRS_EVAL_ELBOW_H_
#define OSRS_EVAL_ELBOW_H_

#include <vector>

#include "core/model.h"
#include "ontology/ontology.h"

namespace osrs {

/// One sweep of the §5.3 elbow method for choosing the sentiment threshold
/// ε used by the greedy summarizer.
struct ElbowResult {
  std::vector<double> epsilons;
  /// Fraction of review pairs covered by the greedy size-k summary at each
  /// ε (non-decreasing in ε; the curve's knee is the chosen threshold).
  std::vector<double> covered_fraction;
  double chosen_epsilon = 0.0;
};

/// Runs greedy k-Pairs summaries across `epsilons` (must be increasing)
/// and picks the knee of the coverage curve by the maximum-distance-to-
/// chord rule: past the knee, raising ε stops buying coverage — the
/// "rate of covered sentences significantly drops" criterion of §5.3.
ElbowResult SelectEpsilonByElbow(const Ontology& ontology,
                                 const std::vector<ConceptSentimentPair>& pairs,
                                 int k, std::vector<double> epsilons);

}  // namespace osrs

#endif  // OSRS_EVAL_ELBOW_H_
