#include "eval/sentiment_eval.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace osrs {

SentimentEvalResult EvaluateSentiment(
    const SentimentEstimator& estimator,
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<double>& references) {
  OSRS_CHECK_EQ(sentences.size(), references.size());
  SentimentEvalResult result;
  result.num_sentences = sentences.size();
  if (sentences.empty()) return result;

  std::vector<double> predictions;
  predictions.reserve(sentences.size());
  double abs_error = 0.0;
  size_t polar = 0, polar_hits = 0;
  for (size_t i = 0; i < sentences.size(); ++i) {
    double predicted = estimator.ScoreSentence(sentences[i]);
    predictions.push_back(predicted);
    abs_error += std::abs(predicted - references[i]);
    if (std::abs(references[i]) > 0.25) {
      ++polar;
      if ((predicted >= 0.0) == (references[i] >= 0.0)) ++polar_hits;
    }
  }
  result.mean_absolute_error =
      abs_error / static_cast<double>(sentences.size());
  result.polarity_accuracy =
      polar == 0 ? 0.0
                 : static_cast<double>(polar_hits) / static_cast<double>(polar);

  // Pearson correlation.
  double mean_p = Mean(predictions);
  double mean_r = Mean(references);
  double cov = 0.0, var_p = 0.0, var_r = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double dp = predictions[i] - mean_p;
    double dr = references[i] - mean_r;
    cov += dp * dr;
    var_p += dp * dp;
    var_r += dr * dr;
  }
  if (var_p > 1e-12 && var_r > 1e-12) {
    result.pearson = cov / std::sqrt(var_p * var_r);
  }
  return result;
}

}  // namespace osrs
