#include "eval/coverage_report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"
#include "core/cost.h"

namespace osrs {

CoverageReport AnalyzeCoverage(
    const PairDistance& distance,
    const std::vector<ConceptSentimentPair>& summary,
    const std::vector<ConceptSentimentPair>& pairs) {
  CoverageReport report;
  report.num_pairs = pairs.size();
  report.summary_size = summary.size();

  std::set<ConceptId> all_concepts;
  std::set<ConceptId> covered_concepts;
  double covered_distance_sum = 0.0;
  size_t covered = 0;
  for (const ConceptSentimentPair& pair : pairs) {
    all_concepts.insert(pair.concept_id);
    report.empty_cost += distance.FromRoot(pair);
    double best = kInfiniteDistance;
    for (const ConceptSentimentPair& f : summary) {
      best = std::min(best, distance(f, pair));
    }
    if (std::isfinite(best)) {
      ++covered;
      covered_distance_sum += best;
      covered_concepts.insert(pair.concept_id);
      report.cost += std::min(best, distance.FromRoot(pair));
    } else {
      report.cost += distance.FromRoot(pair);
    }
  }
  report.covered_fraction =
      pairs.empty() ? 0.0
                    : static_cast<double>(covered) /
                          static_cast<double>(pairs.size());
  report.mean_covered_distance =
      covered == 0 ? 0.0 : covered_distance_sum / static_cast<double>(covered);
  report.cost_reduction =
      report.empty_cost <= 0.0 ? 0.0
                               : 1.0 - report.cost / report.empty_cost;
  report.distinct_concepts = all_concepts.size();
  report.covered_concepts = covered_concepts.size();
  return report;
}

std::string CoverageReport::ToString() const {
  std::string out;
  out += StrFormat("summary of %zu / %zu pairs\n", summary_size, num_pairs);
  out += StrFormat("  cost            %.1f (empty %.1f, reduction %.1f%%)\n",
                   cost, empty_cost, 100.0 * cost_reduction);
  out += StrFormat("  covered pairs   %.1f%% (mean distance %.2f)\n",
                   100.0 * covered_fraction, mean_covered_distance);
  out += StrFormat("  covered concepts %zu / %zu\n", covered_concepts,
                   distinct_concepts);
  return out;
}

std::string RenderPairsOnHierarchy(
    const Ontology& ontology, const std::vector<ConceptSentimentPair>& pairs,
    size_t max_concepts) {
  std::map<ConceptId, std::vector<double>> by_concept;
  for (const ConceptSentimentPair& pair : pairs) {
    by_concept[pair.concept_id].push_back(pair.sentiment);
  }
  // Most-mentioned concepts first.
  std::vector<std::pair<ConceptId, const std::vector<double>*>> ordered;
  ordered.reserve(by_concept.size());
  for (const auto& [concept_id, sentiments] : by_concept) {
    ordered.emplace_back(concept_id, &sentiments);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->size() != b.second->size()) {
                return a.second->size() > b.second->size();
              }
              return a.first < b.first;
            });
  if (max_concepts > 0 && ordered.size() > max_concepts) {
    ordered.resize(max_concepts);
  }
  std::string out;
  for (const auto& [concept_id, sentiments] : ordered) {
    out += StrFormat("depth %d  %-40s ", ontology.DepthFromRoot(concept_id),
                     ontology.name(concept_id).c_str());
    for (size_t i = 0; i < std::min<size_t>(sentiments->size(), 10); ++i) {
      out += StrFormat("(%+.1f) ", (*sentiments)[i]);
    }
    if (sentiments->size() > 10) out += "...";
    out += '\n';
  }
  return out;
}

}  // namespace osrs
