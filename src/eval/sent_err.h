#ifndef OSRS_EVAL_SENT_ERR_H_
#define OSRS_EVAL_SENT_ERR_H_

#include <vector>

#include "core/model.h"
#include "ontology/ontology.h"

namespace osrs {

/// The §5.3 summary-quality measures (Eq. 1), as root-mean-square error:
///
/// For each pair p = (c_p, s_p) of the original reviews,
///   - if c_p appears in the summary F: err = min |s_f - s_p| over the
///     summary pairs on c_p;
///   - else if an ancestor of c_p appears in F: the sentiments of c_p's
///     LOWEST (closest) such ancestor are used;
///   - else: err = |s_p| (missing concept read as neutral), or, in the
///     penalized variant, err = max(|1 - s_p|, |-1 - s_p|) (the largest
///     possible error on the [-1, 1] scale).
///
/// sent-err(P, F) = sqrt(mean of err²). Lower is better. Unlike the
/// Definition 2 coverage cost, the measure is sentiment-space distance, so
/// it does not structurally favor our coverage objective (§5.3's fairness
/// argument).
double SentErr(const Ontology& ontology,
               const std::vector<ConceptSentimentPair>& review_pairs,
               const std::vector<ConceptSentimentPair>& summary_pairs,
               bool penalized);

}  // namespace osrs

#endif  // OSRS_EVAL_SENT_ERR_H_
