#ifndef OSRS_EVAL_SENTIMENT_EVAL_H_
#define OSRS_EVAL_SENTIMENT_EVAL_H_

#include <vector>

#include "sentiment/estimator.h"

namespace osrs {

/// Accuracy of a sentence-sentiment estimator against reference scores.
struct SentimentEvalResult {
  size_t num_sentences = 0;
  /// Mean absolute error of predicted vs reference sentiment.
  double mean_absolute_error = 0.0;
  /// Pearson correlation of predictions and references (0 when degenerate).
  double pearson = 0.0;
  /// Fraction of sign agreements among references with |s| > 0.25.
  double polarity_accuracy = 0.0;
};

/// Scores `estimator` on tokenized sentences with reference sentiments
/// (e.g. the corpus generator's ground truth). Sizes must match.
SentimentEvalResult EvaluateSentiment(
    const SentimentEstimator& estimator,
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<double>& references);

}  // namespace osrs

#endif  // OSRS_EVAL_SENTIMENT_EVAL_H_
