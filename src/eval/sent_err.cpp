#include "eval/sent_err.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace osrs {

double SentErr(const Ontology& ontology,
               const std::vector<ConceptSentimentPair>& review_pairs,
               const std::vector<ConceptSentimentPair>& summary_pairs,
               bool penalized) {
  if (review_pairs.empty()) return 0.0;

  // Sentiments present in the summary, per concept.
  std::unordered_map<ConceptId, std::vector<double>> summary_by_concept;
  for (const auto& pair : summary_pairs) {
    summary_by_concept[pair.concept_id].push_back(pair.sentiment);
  }
  auto closest_sentiment_gap = [&](ConceptId concept_id,
                                   double sentiment) -> double {
    const auto& sentiments = summary_by_concept.at(concept_id);
    double best = std::numeric_limits<double>::infinity();
    for (double s : sentiments) best = std::min(best, std::abs(s - sentiment));
    return best;
  };

  double sum_sq = 0.0;
  for (const auto& pair : review_pairs) {
    double err;
    if (summary_by_concept.count(pair.concept_id)) {
      err = closest_sentiment_gap(pair.concept_id, pair.sentiment);
    } else {
      // Lowest (minimum-distance) ancestor present in the summary.
      // AncestorsOf is sorted by (distance, concept id), so the first hit
      // is a closest ancestor.
      ConceptId lowest = kInvalidConcept;
      for (const AncestorEntry& entry :
           ontology.AncestorsOf(pair.concept_id)) {
        if (entry.concept_id != pair.concept_id &&
            summary_by_concept.count(entry.concept_id)) {
          lowest = entry.concept_id;
          break;
        }
      }
      if (lowest != kInvalidConcept) {
        err = closest_sentiment_gap(lowest, pair.sentiment);
      } else if (penalized) {
        err = std::max(std::abs(1.0 - pair.sentiment),
                       std::abs(-1.0 - pair.sentiment));
      } else {
        err = std::abs(pair.sentiment);
      }
    }
    sum_sq += err * err;
  }
  return std::sqrt(sum_sq / static_cast<double>(review_pairs.size()));
}

}  // namespace osrs
