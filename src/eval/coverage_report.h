#ifndef OSRS_EVAL_COVERAGE_REPORT_H_
#define OSRS_EVAL_COVERAGE_REPORT_H_

#include <string>
#include <vector>

#include "core/distance.h"
#include "core/model.h"

namespace osrs {

/// Diagnostics of one summary against the full pair set — the quantities
/// the paper's evaluation discusses (coverage cost, covered fraction) plus
/// the breakdowns a practitioner wants when tuning ε or k.
struct CoverageReport {
  /// Definition 2 cost of the summary.
  double cost = 0.0;
  /// Cost of the empty summary (everything on the root) — the baseline the
  /// summary is improving on.
  double empty_cost = 0.0;
  /// 1 - cost/empty_cost; 0 when nothing improves, 1 when fully covered.
  double cost_reduction = 0.0;
  /// Fraction of pairs covered by a non-root summary member.
  double covered_fraction = 0.0;
  /// Mean Definition 1 distance from the summary to covered pairs.
  double mean_covered_distance = 0.0;
  /// Distinct concepts among the pairs / among covered pairs.
  size_t distinct_concepts = 0;
  size_t covered_concepts = 0;
  size_t num_pairs = 0;
  size_t summary_size = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes the report for `summary` over `pairs` under `distance`.
CoverageReport AnalyzeCoverage(const PairDistance& distance,
                               const std::vector<ConceptSentimentPair>& summary,
                               const std::vector<ConceptSentimentPair>& pairs);

/// Fig.-1-style text rendering: the pair multiset grouped by concept with
/// depths and sentiments, ordered by frequency. `max_concepts` limits the
/// output; 0 means all.
std::string RenderPairsOnHierarchy(
    const Ontology& ontology, const std::vector<ConceptSentimentPair>& pairs,
    size_t max_concepts = 10);

}  // namespace osrs

#endif  // OSRS_EVAL_COVERAGE_REPORT_H_
