#include "eval/elbow.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/cost.h"
#include "core/distance.h"
#include "coverage/coverage_graph.h"
#include "solver/greedy.h"

namespace osrs {

ElbowResult SelectEpsilonByElbow(const Ontology& ontology,
                                 const std::vector<ConceptSentimentPair>& pairs,
                                 int k,
                                 std::vector<double> epsilons) {
  OSRS_CHECK(!epsilons.empty());
  OSRS_CHECK(std::is_sorted(epsilons.begin(), epsilons.end()));
  ElbowResult result;
  result.epsilons = std::move(epsilons);

  GreedySummarizer greedy;
  for (double eps : result.epsilons) {
    PairDistance distance(&ontology, eps);
    CoverageGraph graph = CoverageGraph::BuildForPairs(distance, pairs);
    int effective_k = std::min<int>(k, graph.num_candidates());
    auto summary = greedy.Summarize(graph, effective_k);
    OSRS_CHECK(summary.ok());
    std::vector<ConceptSentimentPair> selected;
    for (int u : summary->selected) {
      selected.push_back(pairs[static_cast<size_t>(u)]);
    }
    result.covered_fraction.push_back(
        CoveredFraction(distance, selected, pairs));
  }

  // Knee: the point farthest from the chord between the curve's endpoints
  // (in the normalized (ε, coverage) plane).
  const size_t n = result.epsilons.size();
  if (n == 1) {
    result.chosen_epsilon = result.epsilons[0];
    return result;
  }
  double x0 = result.epsilons.front(), x1 = result.epsilons.back();
  double y0 = result.covered_fraction.front(),
         y1 = result.covered_fraction.back();
  double x_span = std::max(x1 - x0, 1e-12);
  double y_span = std::max(std::abs(y1 - y0), 1e-12);
  double best_distance = -1.0;
  size_t best_index = 0;
  for (size_t i = 0; i < n; ++i) {
    double x = (result.epsilons[i] - x0) / x_span;
    double y = (result.covered_fraction[i] - y0) / y_span;
    // Distance from the normalized chord y = x (endpoints (0,0)-(1,1)).
    double distance = std::abs(y - x) / std::sqrt(2.0);
    if (distance > best_distance) {
      best_distance = distance;
      best_index = i;
    }
  }
  result.chosen_epsilon = result.epsilons[best_index];
  return result;
}

}  // namespace osrs
