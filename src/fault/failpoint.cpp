#include "fault/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "common/slog.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace osrs::fault {
namespace {

const char* FailActionName(FailAction action) {
  switch (action) {
    case FailAction::kError:
      return "error";
    case FailAction::kThrowBadAlloc:
      return "throw_bad_alloc";
    case FailAction::kDelay:
      return "delay";
  }
  return "unknown";
}

obs::Counter* InjectionsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.fault.injections");
  return counter;
}

/// Lower-snake-case StatusCode names accepted by `error(code)`.
bool ParseStatusCodeName(std::string_view name, StatusCode* out) {
  struct Entry {
    std::string_view name;
    StatusCode code;
  };
  static constexpr Entry kEntries[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"failed_precondition", StatusCode::kFailedPrecondition},
      {"out_of_range", StatusCode::kOutOfRange},
      {"internal", StatusCode::kInternal},
      {"unimplemented", StatusCode::kUnimplemented},
      {"resource_exhausted", StatusCode::kResourceExhausted},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"cancelled", StatusCode::kCancelled},
      {"unavailable", StatusCode::kUnavailable},
      {"data_loss", StatusCode::kDataLoss},
  };
  for (const Entry& entry : kEntries) {
    if (entry.name == name) {
      *out = entry.code;
      return true;
    }
  }
  return false;
}

/// Splits "head(args)" into head and args; args empty when there are no
/// parentheses. Returns false on unbalanced parentheses or trailing text.
bool SplitCall(std::string_view text, std::string_view* head,
               std::string_view* args) {
  size_t open = text.find('(');
  if (open == std::string_view::npos) {
    *head = text;
    *args = {};
    return true;
  }
  if (text.back() != ')') return false;
  *head = text.substr(0, open);
  *args = text.substr(open + 1, text.size() - open - 2);
  return true;
}

Status MalformedSpec(std::string_view text, const char* why) {
  return Status::InvalidArgument(
      StrFormat("malformed failpoint spec '%.*s': %s",
                static_cast<int>(text.size()), text.data(), why));
}

}  // namespace

Result<std::pair<std::string, FailpointSpec>> ParseFailpointSpec(
    std::string_view text) {
  text = Trim(text);
  size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return MalformedSpec(text, "expected name=action[:trigger]");
  }
  std::string name(Trim(text.substr(0, eq)));
  std::string_view rest = Trim(text.substr(eq + 1));

  // The trigger separator is the first ':' outside parentheses (failpoint
  // names themselves may not contain ':').
  size_t colon = std::string_view::npos;
  int depth = 0;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '(') ++depth;
    if (rest[i] == ')') --depth;
    if (rest[i] == ':' && depth == 0) {
      colon = i;
      break;
    }
  }
  std::string_view action_text =
      Trim(colon == std::string_view::npos ? rest : rest.substr(0, colon));
  std::string_view trigger_text =
      colon == std::string_view::npos ? std::string_view("always")
                                      : Trim(rest.substr(colon + 1));

  FailpointSpec spec;
  std::string_view head, args;
  if (!SplitCall(action_text, &head, &args)) {
    return MalformedSpec(text, "unbalanced action arguments");
  }
  if (head == "error") {
    spec.action = FailAction::kError;
    if (!ParseStatusCodeName(Trim(args), &spec.code)) {
      return MalformedSpec(text, "error() needs a status code name like "
                                 "'unavailable' or 'resource_exhausted'");
    }
    if (spec.code == StatusCode::kOk) {
      return MalformedSpec(text, "error() cannot inject OK");
    }
  } else if (head == "bad_alloc") {
    if (!args.empty()) return MalformedSpec(text, "bad_alloc takes no args");
    spec.action = FailAction::kThrowBadAlloc;
  } else if (head == "delay") {
    spec.action = FailAction::kDelay;
    if (!ParseDouble(Trim(args), &spec.delay_ms) || spec.delay_ms < 0.0) {
      return MalformedSpec(text, "delay() needs non-negative milliseconds");
    }
  } else {
    return MalformedSpec(text,
                         "unknown action (error(code), bad_alloc, delay(ms))");
  }

  if (!SplitCall(trigger_text, &head, &args)) {
    return MalformedSpec(text, "unbalanced trigger arguments");
  }
  if (head == "always") {
    if (!args.empty()) return MalformedSpec(text, "always takes no args");
    spec.trigger = FailTrigger::kAlways;
  } else if (head == "once") {
    if (!args.empty()) return MalformedSpec(text, "once takes no args");
    spec.trigger = FailTrigger::kOnce;
  } else if (head == "times" || head == "every") {
    spec.trigger =
        head == "times" ? FailTrigger::kTimes : FailTrigger::kEveryNth;
    if (!ParseInt64(Trim(args), &spec.n) || spec.n < 1) {
      return MalformedSpec(text, "times()/every() need an integer >= 1");
    }
  } else if (head == "prob") {
    spec.trigger = FailTrigger::kProbability;
    std::vector<std::string> parts = Split(args, ',');
    if (parts.empty() || parts.size() > 2 ||
        !ParseDouble(Trim(parts[0]), &spec.probability) ||
        spec.probability < 0.0 || spec.probability > 1.0) {
      return MalformedSpec(text, "prob() needs p in [0,1] plus optional seed");
    }
    if (parts.size() == 2) {
      int64_t seed = 0;
      if (!ParseInt64(Trim(parts[1]), &seed) || seed < 0) {
        return MalformedSpec(text, "prob() seed must be a non-negative int");
      }
      spec.seed = static_cast<uint64_t>(seed);
    }
  } else {
    return MalformedSpec(
        text, "unknown trigger (always, once, times(N), every(N), prob(p))");
  }
  return std::make_pair(std::move(name), std::move(spec));
}

void Failpoint::Arm(FailpointSpec spec) {
  MutexLock lock(mutex_);
  spec_ = std::move(spec);
  fired_ = 0;
  rng_.seed(spec_.seed);
  hits_.store(0, std::memory_order_relaxed);
  injections_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  MutexLock lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  fired_ = 0;
}

Status Failpoint::Evaluate() {
  FailpointSpec spec;
  {
    MutexLock lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    hits_.fetch_add(1, std::memory_order_relaxed);
    bool fire = false;
    switch (spec_.trigger) {
      case FailTrigger::kAlways:
        fire = true;
        break;
      case FailTrigger::kOnce:
        fire = fired_ == 0;
        break;
      case FailTrigger::kTimes:
        fire = fired_ < spec_.n;
        break;
      case FailTrigger::kEveryNth:
        fire = hits_.load(std::memory_order_relaxed) % spec_.n == 0;
        break;
      case FailTrigger::kProbability: {
        std::uniform_real_distribution<double> uniform(0.0, 1.0);
        fire = uniform(rng_) < spec_.probability;
        break;
      }
    }
    if (!fire) return Status::OK();
    ++fired_;
    injections_.fetch_add(1, std::memory_order_relaxed);
    spec = spec_;
  }
  InjectionsCounter()->Increment();
  OSRS_LOG(::osrs::slog::Level::kDebug, "fault", "failpoint injected",
           {"failpoint", name_}, {"action", FailActionName(spec.action)});
  switch (spec.action) {
    case FailAction::kError: {
      std::string message =
          spec.message.empty()
              ? StrFormat("injected by failpoint '%s'", name_.c_str())
              : spec.message;
      return Status(spec.code, std::move(message));
    }
    case FailAction::kThrowBadAlloc:
      throw std::bad_alloc();
    case FailAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.delay_ms));
      return Status::OK();
  }
  return Status::OK();
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = []() {
    auto* r = new FailpointRegistry();
    // Environment arming happens exactly once, before any site can
    // evaluate. A malformed spec cannot surface as a Status from static
    // init, so it is logged and ignored — failing the whole process over
    // a typo would defeat the point of fault *testing*.
    if (const char* env = std::getenv("OSRS_FAILPOINTS");
        env != nullptr && env[0] != '\0') {
      Status status = r->ArmFromSpec(env);
      if (!status.ok()) {
        OSRS_LOG(::osrs::slog::Level::kError, "fault",
                 "OSRS_FAILPOINTS spec ignored",
                 {"code", StatusCodeToString(status.code())},
                 {"detail", status.message()});
        r->DisarmAll();
      }
    }
    return r;
  }();
  return *registry;
}

Failpoint* FailpointRegistry::Get(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Status FailpointRegistry::ArmFromSpec(std::string_view specs) {
  for (const std::string& part : Split(specs, ';')) {
    if (Trim(part).empty()) continue;
    auto parsed = ParseFailpointSpec(part);
    OSRS_RETURN_IF_ERROR(parsed.status());
    Get(parsed->first)->Arm(std::move(parsed->second));
  }
  return Status::OK();
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mutex_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, point] : points_) {
    if (point->armed()) names.push_back(name);
  }
  return names;
}

std::vector<std::pair<std::string, int64_t>>
FailpointRegistry::InjectionCounts() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> counts;
  for (const auto& [name, point] : points_) {
    if (point->injections() > 0) counts.emplace_back(name, point->injections());
  }
  return counts;
}

}  // namespace osrs::fault
