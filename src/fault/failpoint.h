#ifndef OSRS_FAULT_FAILPOINT_H_
#define OSRS_FAULT_FAILPOINT_H_

// Deterministic fault injection: a process-wide registry of named
// failpoints compiled into the production code paths that can actually
// fail (I/O, closure builds, graph allocation, LP pivots, solver steps).
//
// A failpoint is a named hook. Disarmed — the default — it costs one
// relaxed atomic load at the site. Armed with a FailpointSpec it evaluates
// a trigger on every hit (always, once, first-N, every-Nth, seeded
// Bernoulli) and, when the trigger fires, performs an action: return a
// chosen error Status, throw std::bad_alloc, or inject latency. Triggers
// are deterministic under a fixed seed and a fixed hit order, which is
// what lets tests/chaos_test.cpp replay a randomized failure schedule and
// assert bit-identical outcomes.
//
// Arming is programmatic (FailpointRegistry::Arm) or environmental: the
// OSRS_FAILPOINTS environment variable holds a ';'-separated list of
// specs, parsed once on first registry use:
//
//   OSRS_FAILPOINTS="osrs.io.read=error(unavailable):every(3);
//                    osrs.lp.pivot=bad_alloc:prob(0.01,42)"
//
// Spec grammar (see README.md, "Failure semantics"):
//
//   spec    := name '=' action [':' trigger]
//   action  := 'error(' code ')' | 'bad_alloc' | 'delay(' ms ')'
//   trigger := 'always' | 'once' | 'times(' N ')' | 'every(' N ')'
//            | 'prob(' p [',' seed] ')'
//
// where `code` is a lower-snake-case StatusCode name ("unavailable",
// "internal", "resource_exhausted", ...). The default trigger is 'always'.
//
// The cmake option OSRS_FAILPOINTS (default ON, mirroring OSRS_OBS)
// defines OSRS_FAILPOINTS_ENABLED; with -DOSRS_FAILPOINTS=OFF the
// OSRS_FAILPOINT site macro compiles to Status::OK() — a constant the
// optimizer deletes — so production builds can strip the subsystem
// entirely (bench/bench_retry_overhead measures both configurations).

#ifndef OSRS_FAILPOINTS_ENABLED
#define OSRS_FAILPOINTS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace osrs::fault {

/// False when the tree was configured with -DOSRS_FAILPOINTS=OFF.
inline constexpr bool kCompiledIn = OSRS_FAILPOINTS_ENABLED != 0;

/// What an armed failpoint does when its trigger fires.
enum class FailAction {
  /// Evaluate() returns Status(code, message) — the site propagates it.
  kError,
  /// Evaluate() throws std::bad_alloc, simulating an allocation failure
  /// anywhere the site sits (exercises the BatchSummarizer exception
  /// boundary).
  kThrowBadAlloc,
  /// Evaluate() sleeps for delay_ms, then returns OK — simulates an I/O
  /// hiccup or allocation stall without failing the operation.
  kDelay,
};

/// When an armed failpoint's action runs.
enum class FailTrigger {
  kAlways,       // every hit
  kOnce,         // the first hit only
  kTimes,        // the first n hits
  kEveryNth,     // hits n, 2n, 3n, ... (1-based)
  kProbability,  // per-hit Bernoulli(p) from a seeded per-failpoint RNG
};

/// Full arming configuration of one failpoint.
struct FailpointSpec {
  FailAction action = FailAction::kError;
  /// For kError: the injected code. kUnavailable models transient I/O.
  StatusCode code = StatusCode::kUnavailable;
  /// For kError: injected message; empty = "injected by failpoint '<name>'".
  std::string message;
  /// For kDelay: milliseconds to sleep.
  double delay_ms = 0.0;
  FailTrigger trigger = FailTrigger::kAlways;
  /// For kTimes / kEveryNth: the N (must be >= 1).
  int64_t n = 1;
  /// For kProbability: fire probability in [0, 1].
  double probability = 1.0;
  /// For kProbability: RNG seed — fixed seed + fixed hit order =
  /// reproducible schedule.
  uint64_t seed = 1;
};

/// Parses one `name=action[:trigger]` spec. Returns the failpoint name and
/// the parsed spec, or InvalidArgument describing the malformed component.
Result<std::pair<std::string, FailpointSpec>> ParseFailpointSpec(
    std::string_view text);

/// One named failpoint. Thread-safe: any number of sites may Evaluate()
/// concurrently while another thread arms or disarms. Obtain instances
/// from FailpointRegistry::Get — handles are stable for the process
/// lifetime, so sites cache them in function-local statics.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// One relaxed load — the fast path the OSRS_FAILPOINT macro checks
  /// before paying for Evaluate().
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Installs `spec` and resets the trigger state (hit and fire counts,
  /// RNG reseeded from spec.seed).
  void Arm(FailpointSpec spec) OSRS_EXCLUDES(mutex_);

  /// Disarms; Evaluate() returns OK until re-armed. Trigger state resets.
  void Disarm() OSRS_EXCLUDES(mutex_);

  /// Evaluates one hit: advances the trigger and, when it fires, performs
  /// the action — returns the injected Status for kError, throws
  /// std::bad_alloc for kThrowBadAlloc, sleeps then returns OK for kDelay.
  /// Returns OK when disarmed or the trigger does not fire.
  Status Evaluate() OSRS_EXCLUDES(mutex_);

  /// Total Evaluate() calls since the last Arm().
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Times the trigger fired (and the action ran) since the last Arm().
  int64_t injections() const {
    return injections_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> injections_{0};

  /// Guards the trigger state; the armed_/hits_/injections_ atomics stay
  /// outside it so the disarmed fast path is one relaxed load.
  mutable Mutex mutex_;
  FailpointSpec spec_ OSRS_GUARDED_BY(mutex_);
  int64_t fired_ OSRS_GUARDED_BY(mutex_) = 0;
  std::mt19937_64 rng_ OSRS_GUARDED_BY(mutex_);  // kProbability draws
};

/// Global name-interned failpoint registry, mirroring obs::MetricsRegistry:
/// Get returns a stable handle per name (first call creates it). The first
/// Global() call parses the OSRS_FAILPOINTS environment variable, so any
/// binary can be driven into a failure schedule without code changes.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Stable handle for `name`; creates the failpoint on first use.
  Failpoint* Get(std::string_view name) OSRS_EXCLUDES(mutex_);

  /// Parses and arms a ';'-separated list of specs (the OSRS_FAILPOINTS
  /// grammar). On a malformed spec nothing past it is armed and the error
  /// identifies the offending component.
  Status ArmFromSpec(std::string_view specs) OSRS_EXCLUDES(mutex_);

  /// Disarms every registered failpoint (handles stay valid). Tests call
  /// this between schedules.
  void DisarmAll() OSRS_EXCLUDES(mutex_);

  /// Names of currently armed failpoints, sorted.
  std::vector<std::string> ArmedNames() const OSRS_EXCLUDES(mutex_);

  /// (name, injections) for every registered failpoint with at least one
  /// injection since its last Arm(), sorted by name.
  std::vector<std::pair<std::string, int64_t>> InjectionCounts() const
      OSRS_EXCLUDES(mutex_);

 private:
  FailpointRegistry() = default;

  mutable Mutex mutex_;
  // Sorted iteration for rendering; unique_ptr keeps handles stable.
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_
      OSRS_GUARDED_BY(mutex_);
};

}  // namespace osrs::fault

// The site macro: a Status-yielding expression, OK unless the named
// failpoint is armed and fires. Sites that can return Status wrap it in
// OSRS_RETURN_IF_ERROR; the bad_alloc action bypasses the return value by
// throwing. Compiled to a bare Status::OK() under -DOSRS_FAILPOINTS=OFF.
#if OSRS_FAILPOINTS_ENABLED
#define OSRS_FAILPOINT(name)                                          \
  ([]() -> ::osrs::Status {                                           \
    static ::osrs::fault::Failpoint* osrs_failpoint =                 \
        ::osrs::fault::FailpointRegistry::Global().Get(name);         \
    if (!osrs_failpoint->armed()) return ::osrs::Status::OK();        \
    return osrs_failpoint->Evaluate();                                \
  }())
#else
#define OSRS_FAILPOINT(name) ::osrs::Status::OK()
#endif

#endif  // OSRS_FAULT_FAILPOINT_H_
