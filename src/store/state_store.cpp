#include "store/state_store.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/slog.h"
#include "common/strings.h"
#include "store/atomic_file.h"

namespace osrs::store {
namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".osnap";
constexpr std::string_view kJournalPrefix = "journal-";
constexpr std::string_view kJournalSuffix = ".wal";

std::string GenName(std::string_view prefix, uint64_t gen,
                    std::string_view suffix) {
  return StrFormat("%s%016llx%s", std::string(prefix).c_str(),
                   static_cast<unsigned long long>(gen),
                   std::string(suffix).c_str());
}

/// Parses "<prefix><16 hex>suffix" into a generation; false otherwise.
bool ParseGenName(const std::string& name, std::string_view prefix,
                  std::string_view suffix, uint64_t* gen) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(prefix.size() + 16, suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *gen = value;
  return true;
}

Result<std::vector<uint64_t>> ListSnapshotGenerations(const std::string& dir) {
  errno = 0;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    int saved = errno;
    return Status::Unavailable(StrFormat("cannot open state dir '%s': %s "
                                         "(errno %d)",
                                         dir.c_str(), std::strerror(saved),
                                         saved));
  }
  std::vector<uint64_t> generations;
  while (struct dirent* entry = ::readdir(handle)) {
    uint64_t gen = 0;
    if (ParseGenName(entry->d_name, kSnapshotPrefix, kSnapshotSuffix, &gen)) {
      generations.push_back(gen);
    }
  }
  ::closedir(handle);
  std::sort(generations.begin(), generations.end());
  return generations;
}

}  // namespace

std::string RecoveryInfo::ToJson() const {
  return StrFormat(
      "{\"generation\":%llu,\"found_snapshot\":%s,\"snapshot_items\":%llu,"
      "\"journal_records_replayed\":%llu,\"truncated_tail_bytes\":%llu,"
      "\"epoch\":%llu}",
      static_cast<unsigned long long>(generation),
      found_snapshot ? "true" : "false",
      static_cast<unsigned long long>(snapshot_items),
      static_cast<unsigned long long>(journal_records_replayed),
      static_cast<unsigned long long>(truncated_tail_bytes),
      static_cast<unsigned long long>(epoch));
}

StateStore::StateStore(StateStoreOptions options)
    : options_(std::move(options)),
      journal_(options_.fsync_policy, options_.fsync_interval_ms) {}

StateStore::~StateStore() { (void)Close(); }

std::string StateStore::SnapshotPath(uint64_t gen) const {
  return options_.dir + "/" + GenName(kSnapshotPrefix, gen, kSnapshotSuffix);
}

std::string StateStore::JournalPath(uint64_t gen) const {
  return options_.dir + "/" + GenName(kJournalPrefix, gen, kJournalSuffix);
}

Result<RecoveryInfo> StateStore::Recover(SnapshotData* state_out) {
  MutexLock lock(mutex_);
  OSRS_CHECK_MSG(!recovered_, "StateStore::Recover called twice");

  Result<std::vector<uint64_t>> generations =
      ListSnapshotGenerations(options_.dir);
  if (!generations.ok()) return generations.status();

  RecoveryInfo info;
  SnapshotData state;
  if (generations->empty()) {
    // Fresh directory: commit an empty generation-1 snapshot immediately
    // so "the committed state" is well-defined from the first instant.
    generation_ = 1;
    state.epoch = 0;
    OSRS_RETURN_IF_ERROR(
        SnapshotWriter().Write(SnapshotPath(generation_), state));
    info.generation = generation_;
  } else {
    // Newest snapshot wins. It was written atomically, so a corrupt one
    // means real bit rot, not a crash artifact — surface kDataLoss rather
    // than silently falling back to an older state and resurrecting
    // already-superseded data.
    generation_ = generations->back();
    Result<SnapshotData> snapshot =
        SnapshotReader().Read(SnapshotPath(generation_));
    if (!snapshot.ok()) return snapshot.status();
    state = std::move(*snapshot);
    info.found_snapshot = true;
    info.generation = generation_;
    info.snapshot_items = state.items.size();

    Result<ReplayResult> replay = ReplayJournal(JournalPath(generation_));
    if (!replay.ok() && replay.status().code() != StatusCode::kNotFound) {
      return replay.status();
    }
    if (replay.ok()) {
      info.journal_records_replayed = replay->records.size();
      info.truncated_tail_bytes = replay->truncated_tail_bytes;
      for (JournalRecord& record : replay->records) {
        state.epoch = record.epoch_after;
        if (record.type == JournalRecordType::kUpdateItem) {
          auto it = std::find_if(state.items.begin(), state.items.end(),
                                 [&](const Item& existing) {
                                   return existing.id == record.item.id;
                                 });
          if (it != state.items.end()) {
            *it = std::move(record.item);
          } else {
            state.items.push_back(std::move(record.item));
          }
        }
      }
      OSRS_RETURN_IF_ERROR(
          journal_.Open(JournalPath(generation_), replay->valid_bytes));
    }
    // Older generations should have been deleted by the compaction that
    // superseded them; a crash between rename and delete leaves them.
    // Clean up now — the newest generation is authoritative.
    for (size_t i = 0; i + 1 < generations->size(); ++i) {
      (void)RemoveFile(SnapshotPath((*generations)[i]));
      (void)RemoveFile(JournalPath((*generations)[i]));
    }
  }
  if (!journal_.open()) {
    OSRS_RETURN_IF_ERROR(journal_.Open(JournalPath(generation_), 0));
  }
  info.epoch = state.epoch;
  recovered_ = true;
  if (state_out != nullptr) *state_out = std::move(state);
  return info;
}

Status StateStore::AppendUpdateItem(const Item& item, uint64_t epoch_after) {
  MutexLock lock(mutex_);
  OSRS_CHECK_MSG(recovered_, "StateStore append before Recover");
  if (persistence_failed_) {
    return Status::DataLoss(
        "state store persistence failed earlier; compact to recover");
  }
  return journal_.AppendUpdateItem(item, epoch_after);
}

Status StateStore::AppendBumpEpoch(uint64_t epoch_after) {
  MutexLock lock(mutex_);
  OSRS_CHECK_MSG(recovered_, "StateStore append before Recover");
  if (persistence_failed_) {
    return Status::DataLoss(
        "state store persistence failed earlier; compact to recover");
  }
  return journal_.AppendBumpEpoch(epoch_after);
}

bool StateStore::ShouldCompact() {
  MutexLock lock(mutex_);
  if (!recovered_) return false;
  if (journal_.poisoned() || persistence_failed_) return true;
  return options_.compact_threshold_bytes > 0 &&
         journal_.bytes_written() >= options_.compact_threshold_bytes;
}

Status StateStore::Compact(const SnapshotData& state) {
  MutexLock lock(mutex_);
  OSRS_CHECK_MSG(recovered_, "StateStore::Compact before Recover");
  return CompactLocked(state);
}

Status StateStore::CompactLocked(const SnapshotData& state) {
  uint64_t next_gen = generation_ + 1;
  // Order is the invariant: the new snapshot must be DURABLE before
  // anything of the old generation is touched, so a crash at any point
  // leaves at least one complete generation recoverable.
  WriteStage stage = WriteStage::kNone;
  Status status = AtomicWriteFile(SnapshotPath(next_gen),
                                  SnapshotWriter::Serialize(state), &stage);
  if (!status.ok()) {
    if (stage == WriteStage::kRenamed) {
      // The new snapshot is visible but its directory entry may not
      // survive power loss. Journaling against EITHER generation now
      // risks replaying against the wrong base; refuse further appends
      // until a clean compaction succeeds.
      persistence_failed_ = true;
      OSRS_LOG(slog::Level::kWarn, "store",
               "compaction post-rename failure left generation ambiguous",
               {"detail", status.ToString()});
    }
    return status;
  }

  // Switch journals. A failure opening the new journal keeps the new
  // snapshot (it is complete and newest, so recovery uses it) but marks
  // persistence failed since mutations can no longer be journaled.
  Status close_status = journal_.Close();
  generation_ = next_gen;
  Status open_status = journal_.Open(JournalPath(next_gen), 0);
  if (!open_status.ok()) {
    persistence_failed_ = true;
    return open_status;
  }
  persistence_failed_ = false;
  (void)close_status;  // old journal is superseded; its close errors moot

  // Delete the superseded generation. Best effort: leftovers are cleaned
  // by the next Recover, and the new snapshot already supersedes them.
  (void)RemoveFile(SnapshotPath(next_gen - 1));
  (void)RemoveFile(JournalPath(next_gen - 1));
  (void)SyncParentDir(SnapshotPath(next_gen));
  return Status::OK();
}

Status StateStore::Close() {
  MutexLock lock(mutex_);
  return journal_.Close();
}

bool StateStore::persistence_failed() {
  MutexLock lock(mutex_);
  return persistence_failed_;
}

uint64_t StateStore::journal_bytes() {
  MutexLock lock(mutex_);
  return journal_.bytes_written();
}

uint64_t StateStore::generation() {
  MutexLock lock(mutex_);
  return generation_;
}

}  // namespace osrs::store
