#ifndef OSRS_STORE_WIRE_H_
#define OSRS_STORE_WIRE_H_

// Little-endian binary wire encoding of the durable state (src/store
// snapshots and journal payloads). Deliberately binary with explicit
// length prefixes — unlike the human-editable corpus text format
// (datagen/corpus_io.h), durable state must round-trip arbitrary sentence
// text (tabs and newlines included) and be byte-stable so the per-section
// CRC32C checks mean something. Every multi-byte integer is written
// little-endian through shifts (no memcpy of host-endian words), so a
// snapshot written on any build reads identically on any other.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/model.h"

namespace osrs::store {

/// Append-only byte sink the encoders write through.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF64(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked cursor over an encoded buffer. Every Get* returns false
/// (and poisons the reader) on underrun, so decoders check once at the
/// end instead of per field; a poisoned reader never advances again.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI32(int32_t* v);
  bool GetF64(double* v);
  bool GetString(std::string* v);

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Appends the canonical encoding of `item` (id, reviews, sentences,
/// concept-sentiment pairs) to `w`. Two Items with equal field values
/// produce identical bytes — the bit-identity the recovery tests compare.
void EncodeItem(const Item& item, ByteWriter* w);

/// Convenience: the canonical encoding as a standalone string.
std::string EncodeItemToString(const Item& item);

/// Decodes one EncodeItem record. Returns false on underrun or a count
/// field large enough to overrun the buffer (`r` is left poisoned).
bool DecodeItem(ByteReader* r, Item* item);

}  // namespace osrs::store

#endif  // OSRS_STORE_WIRE_H_
