#ifndef OSRS_STORE_STATE_STORE_H_
#define OSRS_STORE_STATE_STORE_H_

// Durable state directory: the snapshot + journal pair behind the serving
// layer's --state-dir. One StateStore owns one directory laid out as
//
//   snapshot-<gen 16-hex>.osnap   full state as of generation <gen>
//   journal-<gen 16-hex>.wal      mutations appended AFTER that snapshot
//   *.tmp                         in-flight atomic writes; never read
//
// exactly one generation is live at a time. The lifecycle:
//
//   Recover     scan dir -> load newest snapshot -> replay its journal
//               (torn tail truncated) -> open the journal for appending
//   Append*     frame + append + fsync-per-policy one mutation record
//   Compact     write snapshot gen+1 -> start empty journal gen+1 ->
//               delete gen's files; bounds replay time and clears a
//               poisoned journal
//
// Crash ordering in Compact is what makes recovery unambiguous: the new
// snapshot becomes durable BEFORE the old generation is deleted, so every
// instant has at least one complete generation on disk. A failure after
// the new snapshot's rename but before its directory fsync is the one
// ambiguous window; the store poisons itself (persistence_failed) rather
// than journal against a generation that might vanish on power loss.
//
// Thread-safety: all public methods are safe to call concurrently; a
// single internal mutex serializes appends and compaction so the journal
// byte stream and the generation switch are race-free.

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "core/model.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace osrs::store {

struct StateStoreOptions {
  /// Directory holding the snapshot/journal files. Must exist.
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Max ms between fsyncs under FsyncPolicy::kInterval.
  uint64_t fsync_interval_ms = 50;
  /// Journal size that triggers ShouldCompact(). 0 disables size-based
  /// compaction (explicit Compact calls still work).
  uint64_t compact_threshold_bytes = 8ull << 20;
};

/// What Recover reconstructed — surfaced through the server so operators
/// (and the ci crash-recovery stage) can audit what a restart recovered.
struct RecoveryInfo {
  /// Generation whose snapshot seeded the state; 0 with found_snapshot
  /// false means a fresh directory.
  uint64_t generation = 0;
  bool found_snapshot = false;
  uint64_t snapshot_items = 0;
  uint64_t journal_records_replayed = 0;
  /// Bytes of torn final record dropped from the journal tail (normal
  /// after a crash mid-append; the record was never committed).
  uint64_t truncated_tail_bytes = 0;
  /// Epoch after snapshot + replay.
  uint64_t epoch = 0;

  std::string ToJson() const;
};

class StateStore {
 public:
  explicit StateStore(StateStoreOptions options);
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Scans the directory, loads the newest snapshot, replays its journal,
  /// and opens the journal for appending. On a fresh directory writes an
  /// empty generation-1 snapshot so there is always a committed state.
  /// kDataLoss from a snapshot/journal interior means durable bytes are
  /// corrupt — surfaced, not masked, because silently dropping committed
  /// mutations would be worse than refusing to start.
  Result<RecoveryInfo> Recover(SnapshotData* state_out)
      OSRS_EXCLUDES(mutex_);

  /// Journals one item upsert / epoch bump. OK means the record is
  /// committed per the fsync policy. kDataLoss means the journal is
  /// poisoned (torn write) — call Compact with the full state to recover.
  Status AppendUpdateItem(const Item& item, uint64_t epoch_after)
      OSRS_EXCLUDES(mutex_);
  Status AppendBumpEpoch(uint64_t epoch_after) OSRS_EXCLUDES(mutex_);

  /// True when the journal has grown past the compaction threshold or is
  /// poisoned and needs a fresh generation.
  bool ShouldCompact() OSRS_EXCLUDES(mutex_);

  /// Writes `state` as the next generation's snapshot, switches to its
  /// empty journal, and deletes the previous generation's files.
  Status Compact(const SnapshotData& state) OSRS_EXCLUDES(mutex_);

  /// Final fsync + close of the journal (e.g. on graceful shutdown).
  Status Close() OSRS_EXCLUDES(mutex_);

  /// True after a failure left durability ambiguous (post-rename dir-fsync
  /// failure during compaction, or an unrecoverable journal). Appends are
  /// refused until a successful Compact.
  bool persistence_failed() OSRS_EXCLUDES(mutex_);

  /// Current journal size in committed bytes (tests, metrics).
  uint64_t journal_bytes() OSRS_EXCLUDES(mutex_);
  uint64_t generation() OSRS_EXCLUDES(mutex_);

  /// Path helpers, exposed for tests and tools that need to corrupt or
  /// inspect specific generations.
  std::string SnapshotPath(uint64_t gen) const;
  std::string JournalPath(uint64_t gen) const;

 private:
  Status CompactLocked(const SnapshotData& state) OSRS_REQUIRES(mutex_);

  const StateStoreOptions options_;

  Mutex mutex_;
  JournalWriter journal_ OSRS_GUARDED_BY(mutex_);
  uint64_t generation_ OSRS_GUARDED_BY(mutex_) = 0;
  bool recovered_ OSRS_GUARDED_BY(mutex_) = false;
  bool persistence_failed_ OSRS_GUARDED_BY(mutex_) = false;
};

}  // namespace osrs::store

#endif  // OSRS_STORE_STATE_STORE_H_
