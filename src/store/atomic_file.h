#ifndef OSRS_STORE_ATOMIC_FILE_H_
#define OSRS_STORE_ATOMIC_FILE_H_

// Atomic durable file replacement — the one primitive every durable
// artifact in the tree goes through (snapshots, the corpus text format,
// metrics exports). The contract: after AtomicWriteFile returns OK the
// file at `path` contains exactly `contents` and survives a crash; after
// it returns an error the previous file (or absence of one) is still
// observable and no partial write ever is. Achieved the standard way:
//
//   write <path>.tmp  ->  fsync(tmp)  ->  rename(tmp, path)  ->  fsync(dir)
//
// rename(2) is atomic on POSIX filesystems, so a crash at any instant
// leaves either the old file or the new one, never a blend. The
// kill-point chaos suite drives every stage through the failpoints
//
//   osrs.store.write   evaluated per write chunk (a mid-payload failure
//                      leaves a partial temp file — exactly what a crash
//                      mid-write leaves — which readers never look at)
//   osrs.store.fsync   before each fsync (temp file and directory)
//   osrs.store.rename  before the rename
//
// and recovery must come out bit-exact (tests/store_recovery_test.cpp).

#include <string>
#include <string_view>

#include "common/status.h"

namespace osrs::store {

/// Stage reached by an AtomicWriteFile attempt — what a caller that must
/// reason about crash-ambiguity needs to know. Everything before kRenamed
/// is clean (the old file is intact); a failure at or after kRenamed means
/// the new contents are visible but their directory entry may not be
/// durable yet.
enum class WriteStage {
  kNone,     // nothing observable happened
  kRenamed,  // new contents visible; dir entry possibly not yet durable
  kDurable,  // fully durable
};

/// Atomically replaces `path` with `contents` (temp + fsync + rename +
/// directory fsync). On failure the temp file is removed when possible and
/// `stage_out` (optional) reports how far the attempt got. I/O failures
/// are kUnavailable with errno context; injected failpoint statuses pass
/// through as-is.
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       WriteStage* stage_out = nullptr);

/// Reads the whole file, mirroring corpus_io::ReadTextFile's failure
/// contract (missing file = kNotFound, everything else kUnavailable) but
/// honoring the durability layer's own `osrs.store.read` failpoint so
/// chaos schedules can hit recovery reads without also failing unrelated
/// corpus traffic.
Result<std::string> ReadFileBytes(const std::string& path);

/// fsyncs the directory containing `path` so a created/renamed/unlinked
/// entry is durable. Evaluates the `osrs.store.fsync` failpoint.
Status SyncParentDir(const std::string& path);

/// Removes `path`, ignoring a missing file. Used by compaction to drop
/// superseded snapshot/journal generations.
Status RemoveFile(const std::string& path);

}  // namespace osrs::store

#endif  // OSRS_STORE_ATOMIC_FILE_H_
