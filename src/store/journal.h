#ifndef OSRS_STORE_JOURNAL_H_
#define OSRS_STORE_JOURNAL_H_

// Append-only epoch-mutation journal. Between snapshots, every corpus
// mutation (item upsert, epoch bump) appends one CRC-framed record; on
// startup the journal is replayed atop the newest valid snapshot to
// reconstruct the committed state. Record framing (little-endian):
//
//   u32 payload_len | u32 payload_crc (CRC32C) | payload bytes
//   payload: u8 type | u64 epoch_after | type-specific body
//     type 1 (kUpdateItem): wire::EncodeItem bytes
//     type 2 (kBumpEpoch):  empty body
//
// Crash semantics, the whole point of the framing:
//   - A record is COMMITTED only once Append returns OK. A torn tail
//     (partial final record — short header, short payload, or CRC
//     mismatch at the very end) is what a crash mid-append leaves; replay
//     silently truncates it, never fails. Corruption BEFORE the final
//     record means bytes that were committed are now wrong → kDataLoss.
//   - On a failed append the writer poisons itself: a torn write leaves
//     bytes whose length we no longer trust, so continuing to append
//     would corrupt the interior of the file. The owner must recover
//     (compact to a fresh snapshot) before journaling again.
//   - On an fsync failure the writer ftruncates back to the pre-record
//     offset before reporting the error, so the committed prefix and the
//     on-disk bytes agree exactly even in the failure path. If even the
//     truncate fails the writer poisons itself as above.
//
// Fsync policy trades durability window against throughput:
//   kEveryRecord  fsync before Append returns — zero-loss, slowest
//   kInterval     fsync when `fsync_interval_ms` has elapsed since the
//                 last one — bounded loss window, near-zero overhead
//   kNever        leave it to the OS — benchmarks and tests only

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace osrs::store {

enum class FsyncPolicy {
  kEveryRecord,
  kInterval,
  kNever,
};

/// Parses "always" / "interval" / "never" (the --fsync-policy flag values).
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

enum class JournalRecordType : uint8_t {
  kUpdateItem = 1,
  kBumpEpoch = 2,
};

/// One replayed mutation. `item` is meaningful only for kUpdateItem.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kBumpEpoch;
  uint64_t epoch_after = 0;
  Item item;
};

/// What a replay found. `truncated_tail_bytes` > 0 means a torn final
/// record was dropped (normal after a crash, worth logging, not an error).
struct ReplayResult {
  std::vector<JournalRecord> records;
  uint64_t truncated_tail_bytes = 0;
  uint64_t valid_bytes = 0;
};

/// Appends CRC-framed mutation records to one journal file. Not
/// thread-safe; the owner (StateStore) serializes appends.
class JournalWriter {
 public:
  JournalWriter(FsyncPolicy policy, uint64_t fsync_interval_ms)
      : policy_(policy), fsync_interval_ms_(fsync_interval_ms) {}
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending, creating it if absent. `existing_bytes`
  /// is the validated length from replay — appends continue from there.
  Status Open(const std::string& path, uint64_t existing_bytes);

  /// Closes the current file (final fsync under kInterval) if open.
  Status Close();

  Status AppendUpdateItem(const Item& item, uint64_t epoch_after);
  Status AppendBumpEpoch(uint64_t epoch_after);

  /// Forces an fsync now regardless of policy (used before snapshots).
  Status Sync();

  /// True once a torn write or failed truncate-undo made further appends
  /// unsafe. The owner must compact to a fresh generation to clear it.
  bool poisoned() const { return poisoned_; }
  bool open() const { return file_ != nullptr; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  Status AppendRecord(const std::string& payload);
  Status MaybeSync();

  FsyncPolicy policy_;
  uint64_t fsync_interval_ms_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
  bool poisoned_ = false;
  // Monotonic ms timestamp of the last fsync, for kInterval.
  uint64_t last_sync_ms_ = 0;
};

/// Builds the framed payload for an UpdateItem/BumpEpoch record —
/// exposed so tests can craft exact byte sequences.
std::string EncodeUpdateItemPayload(const Item& item, uint64_t epoch_after);
std::string EncodeBumpEpochPayload(uint64_t epoch_after);

/// Replays `bytes` (an entire journal file). Evaluates the
/// `osrs.store.replay` failpoint once per record. Torn tails truncate;
/// interior corruption returns kDataLoss.
Result<ReplayResult> ReplayJournalBytes(const std::string& bytes,
                                        const std::string& origin);

/// Reads `path` and replays it. kNotFound passes through for a missing
/// file (a fresh directory has no journal yet).
Result<ReplayResult> ReplayJournal(const std::string& path);

}  // namespace osrs::store

#endif  // OSRS_STORE_JOURNAL_H_
