#include "store/wire.h"

#include <cstring>

namespace osrs::store {

void ByteWriter::PutF64(double v) {
  // Bit pattern through memcpy (no type punning), then explicit
  // little-endian byte order — NaN payloads and signed zeros round-trip
  // exactly, which the bit-identity recovery contract requires.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

bool ByteReader::Take(size_t n, const char** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::GetI32(int32_t* v) {
  uint32_t raw = 0;
  if (!GetU32(&raw)) return false;
  *v = static_cast<int32_t>(raw);
  return true;
}

bool ByteReader::GetF64(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::GetString(std::string* v) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

void EncodeItem(const Item& item, ByteWriter* w) {
  w->PutString(item.id);
  w->PutU32(static_cast<uint32_t>(item.reviews.size()));
  for (const Review& review : item.reviews) {
    w->PutF64(review.rating);
    w->PutU32(static_cast<uint32_t>(review.sentences.size()));
    for (const Sentence& sentence : review.sentences) {
      w->PutString(sentence.text);
      w->PutU32(static_cast<uint32_t>(sentence.pairs.size()));
      for (const ConceptSentimentPair& pair : sentence.pairs) {
        w->PutI32(pair.concept_id);
        w->PutF64(pair.sentiment);
      }
    }
  }
}

std::string EncodeItemToString(const Item& item) {
  ByteWriter w;
  EncodeItem(item, &w);
  return w.Take();
}

bool DecodeItem(ByteReader* r, Item* item) {
  item->reviews.clear();
  if (!r->GetString(&item->id)) return false;
  uint32_t num_reviews = 0;
  if (!r->GetU32(&num_reviews)) return false;
  // Every review costs at least 12 encoded bytes (rating + sentence
  // count), so a count that exceeds remaining/12 is corrupt — reject it
  // before reserving memory for it.
  if (num_reviews > r->remaining() / 12 + 1) return false;
  item->reviews.reserve(num_reviews);
  for (uint32_t rv = 0; rv < num_reviews; ++rv) {
    Review review;
    if (!r->GetF64(&review.rating)) return false;
    uint32_t num_sentences = 0;
    if (!r->GetU32(&num_sentences)) return false;
    if (num_sentences > r->remaining() / 8 + 1) return false;
    review.sentences.reserve(num_sentences);
    for (uint32_t s = 0; s < num_sentences; ++s) {
      Sentence sentence;
      if (!r->GetString(&sentence.text)) return false;
      uint32_t num_pairs = 0;
      if (!r->GetU32(&num_pairs)) return false;
      if (num_pairs > r->remaining() / 12 + 1) return false;
      sentence.pairs.reserve(num_pairs);
      for (uint32_t p = 0; p < num_pairs; ++p) {
        ConceptSentimentPair pair;
        if (!r->GetI32(&pair.concept_id)) return false;
        if (!r->GetF64(&pair.sentiment)) return false;
        sentence.pairs.push_back(pair);
      }
      review.sentences.push_back(std::move(sentence));
    }
    item->reviews.push_back(std::move(review));
  }
  return true;
}

}  // namespace osrs::store
