#include "store/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "fault/failpoint.h"

namespace osrs::store {
namespace {

std::string ErrnoDetail() {
  int saved = errno;
  return StrFormat("%s (errno %d)", std::strerror(saved), saved);
}

std::string ParentDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Writes `contents` to the open file in bounded chunks, evaluating the
/// osrs.store.write failpoint before each chunk — an injection mid-payload
/// leaves a genuinely torn file, the same artifact a crash leaves.
Status WriteChunked(std::FILE* file, const std::string& path,
                    std::string_view contents) {
  constexpr size_t kChunk = 1 << 18;  // 256 KiB
  size_t offset = 0;
  do {
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.write"));
    size_t n = std::min(kChunk, contents.size() - offset);
    errno = 0;
    if (std::fwrite(contents.data() + offset, 1, n, file) != n) {
      return Status::Unavailable(StrFormat("short write to '%s': %s",
                                           path.c_str(),
                                           ErrnoDetail().c_str()));
    }
    offset += n;
  } while (offset < contents.size());
  return Status::OK();
}

Status FsyncFile(std::FILE* file, const std::string& path) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.fsync"));
  errno = 0;
  if (std::fflush(file) != 0 || ::fsync(::fileno(file)) != 0) {
    return Status::Unavailable(StrFormat("fsync '%s' failed: %s",
                                         path.c_str(),
                                         ErrnoDetail().c_str()));
  }
  return Status::OK();
}

}  // namespace

Status SyncParentDir(const std::string& path) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.fsync"));
  std::string dir = ParentDirOf(path);
  errno = 0;
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable(StrFormat("open dir '%s' failed: %s",
                                         dir.c_str(), ErrnoDetail().c_str()));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    return Status::Unavailable(StrFormat("fsync dir '%s' failed: %s",
                                         dir.c_str(), ErrnoDetail().c_str()));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       WriteStage* stage_out) {
  if (stage_out != nullptr) *stage_out = WriteStage::kNone;
  std::string tmp = path + ".tmp";
  errno = 0;
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable(StrFormat("cannot open '%s' for writing: %s",
                                         tmp.c_str(), ErrnoDetail().c_str()));
  }
  Status status = WriteChunked(file, tmp, contents);
  if (status.ok()) status = FsyncFile(file, tmp);
  std::fclose(file);
  if (status.ok()) {
    status = OSRS_FAILPOINT("osrs.store.rename");
    if (status.ok()) {
      errno = 0;
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        status = Status::Unavailable(StrFormat("rename '%s' -> '%s': %s",
                                               tmp.c_str(), path.c_str(),
                                               ErrnoDetail().c_str()));
      }
    }
  }
  if (!status.ok()) {
    // The attempt never made the new contents visible; removing the temp
    // restores the exact pre-call state. (A real crash would leave the
    // temp behind — readers ignore *.tmp, so both worlds look identical.)
    (void)std::remove(tmp.c_str());
    return status;
  }
  if (stage_out != nullptr) *stage_out = WriteStage::kRenamed;
  // The rename is visible; making the directory entry durable is the last
  // step. A failure here is the one ambiguous stage (new file present but
  // possibly not crash-durable) — stage_out lets callers poison
  // themselves rather than continue against an uncertain generation.
  OSRS_RETURN_IF_ERROR(SyncParentDir(path));
  if (stage_out != nullptr) *stage_out = WriteStage::kDurable;
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.read"));
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("cannot open '%s': %s", path.c_str(),
                                        ErrnoDetail().c_str()));
    }
    return Status::Unavailable(StrFormat("cannot open '%s': %s", path.c_str(),
                                         ErrnoDetail().c_str()));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  errno = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Unavailable(StrFormat("read error on '%s': %s",
                                         path.c_str(), ErrnoDetail().c_str()));
  }
  return contents;
}

Status RemoveFile(const std::string& path) {
  errno = 0;
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Unavailable(StrFormat("remove '%s' failed: %s",
                                         path.c_str(), ErrnoDetail().c_str()));
  }
  return Status::OK();
}

}  // namespace osrs::store
