#ifndef OSRS_STORE_SNAPSHOT_H_
#define OSRS_STORE_SNAPSHOT_H_

// Atomic checksummed snapshots of the served corpus state. A snapshot is
// the full (items, epoch) state at one instant, written through the
// atomic-file primitive so it is either fully present or absent — never
// torn. The on-disk layout (all integers little-endian):
//
//   header  "OSRSSNP1" | u32 version | u32 num_sections | u64 epoch
//           | u32 header_crc                      (CRC32C of the 24 bytes)
//   section u32 type | u32 payload_crc | u64 payload_len | payload bytes
//           ... repeated num_sections times, no trailing bytes allowed
//
// Section type 1 (items): u64 item_count + wire::EncodeItem records in
// ascending id order — the canonical order, so two snapshots of equal
// state are byte-identical and the recovery tests can compare bytes.
//
// Every read-side defect — bad magic, unknown version, CRC mismatch,
// truncation mid-section, trailing garbage — is kDataLoss: non-retryable,
// the bytes themselves are wrong. A missing file stays kNotFound and an
// I/O hiccup stays kUnavailable, so recovery policy can tell "nothing
// there" / "try again" / "corrupt" apart.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace osrs::store {

/// The durable state a snapshot captures.
struct SnapshotData {
  uint64_t epoch = 0;
  /// Canonical order: ascending id. SnapshotWriter sorts on write, so
  /// callers may pass any order.
  std::vector<Item> items;
};

/// Serializes SnapshotData and writes it atomically (temp + fsync +
/// rename + dir fsync via atomic_file.h, under the osrs.store.* failpoints).
class SnapshotWriter {
 public:
  /// Serializes `data` into the format above.
  static std::string Serialize(const SnapshotData& data);

  /// Atomically writes `data` to `path`. After OK the snapshot is durable;
  /// after an error the previous `path` contents (if any) are untouched.
  Status Write(const std::string& path, const SnapshotData& data) const;
};

/// Reads and fully validates one snapshot file.
class SnapshotReader {
 public:
  /// Parses the serialized format (section CRCs, structure) without I/O.
  static Result<SnapshotData> Parse(const std::string& bytes,
                                    const std::string& origin);

  /// Reads `path` (osrs.store.read failpoint) and parses it. kNotFound for
  /// a missing file, kUnavailable for I/O trouble, kDataLoss for any
  /// validation failure.
  Result<SnapshotData> Read(const std::string& path) const;
};

}  // namespace osrs::store

#endif  // OSRS_STORE_SNAPSHOT_H_
