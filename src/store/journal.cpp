#include "store/journal.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32c.h"
#include "common/strings.h"
#include "fault/failpoint.h"
#include "store/atomic_file.h"
#include "store/wire.h"

namespace osrs::store {
namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
// Frames large enough to be absurd are treated as corruption rather than
// attempted as allocations. The largest legitimate payload is one encoded
// Item; 1 GiB is orders of magnitude past anything the corpus produces.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

std::string ErrnoDetail() {
  int saved = errno;
  return StrFormat("%s (errno %d)", std::strerror(saved), saved);
}

uint64_t MonotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Corrupt(const std::string& origin, uint64_t offset,
               const std::string& what) {
  return Status::DataLoss(StrFormat("journal '%s' at offset %llu: %s",
                                    origin.c_str(),
                                    static_cast<unsigned long long>(offset),
                                    what.c_str()));
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kEveryRecord;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return Status::InvalidArgument(StrFormat(
      "unknown fsync policy '%s' (want always|interval|never)", name.c_str()));
}

std::string EncodeUpdateItemPayload(const Item& item, uint64_t epoch_after) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(JournalRecordType::kUpdateItem));
  w.PutU64(epoch_after);
  EncodeItem(item, &w);
  return w.Take();
}

std::string EncodeBumpEpochPayload(uint64_t epoch_after) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(JournalRecordType::kBumpEpoch));
  w.PutU64(epoch_after);
  return w.Take();
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status JournalWriter::Open(const std::string& path, uint64_t existing_bytes) {
  OSRS_CHECK_MSG(file_ == nullptr, "JournalWriter::Open while already open");
  // "ab" appends at EOF; replay already validated `existing_bytes`, and a
  // torn tail beyond it must be cut off before appending or the torn bytes
  // would corrupt the interior of the file.
  errno = 0;
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::Unavailable(StrFormat("cannot open journal '%s': %s",
                                         path.c_str(), ErrnoDetail().c_str()));
  }
  std::fclose(probe);
  errno = 0;
  if (::truncate(path.c_str(), static_cast<off_t>(existing_bytes)) != 0) {
    return Status::Unavailable(StrFormat("truncate journal '%s' to %llu: %s",
                                         path.c_str(),
                                         static_cast<unsigned long long>(
                                             existing_bytes),
                                         ErrnoDetail().c_str()));
  }
  errno = 0;
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable(StrFormat("cannot open journal '%s': %s",
                                         path.c_str(), ErrnoDetail().c_str()));
  }
  path_ = path;
  bytes_written_ = existing_bytes;
  poisoned_ = false;
  last_sync_ms_ = MonotonicMs();
  return Status::OK();
}

Status JournalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status status = Status::OK();
  if (!poisoned_ && policy_ != FsyncPolicy::kNever) status = Sync();
  std::fclose(file_);
  file_ = nullptr;
  return status;
}

Status JournalWriter::AppendUpdateItem(const Item& item,
                                       uint64_t epoch_after) {
  return AppendRecord(EncodeUpdateItemPayload(item, epoch_after));
}

Status JournalWriter::AppendBumpEpoch(uint64_t epoch_after) {
  return AppendRecord(EncodeBumpEpochPayload(epoch_after));
}

Status JournalWriter::AppendRecord(const std::string& payload) {
  if (poisoned_) {
    return Status::DataLoss(StrFormat(
        "journal '%s' is poisoned by an earlier torn write; compact to a "
        "fresh generation before appending",
        path_.c_str()));
  }
  OSRS_CHECK_MSG(file_ != nullptr, "AppendRecord on closed journal");

  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data(), payload.size()));
  std::string header = frame.Take();

  // The write failpoint sits BETWEEN header and payload: an injection
  // leaves a genuinely torn record on disk — the same artifact a crash
  // mid-append leaves — which replay must drop as an uncommitted tail.
  errno = 0;
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    poisoned_ = true;
    return Status::Unavailable(StrFormat("journal '%s' header write: %s",
                                         path_.c_str(),
                                         ErrnoDetail().c_str()));
  }
  Status injected = OSRS_FAILPOINT("osrs.store.write");
  if (!injected.ok()) {
    // Flush the torn header so the on-disk file really is torn (a crash
    // would not have left it buffered in userspace), then poison.
    (void)std::fflush(file_);
    poisoned_ = true;
    return injected;
  }
  errno = 0;
  if (std::fwrite(payload.data(), 1, payload.size(), file_) !=
      payload.size()) {
    (void)std::fflush(file_);
    poisoned_ = true;
    return Status::Unavailable(StrFormat("journal '%s' payload write: %s",
                                         path_.c_str(),
                                         ErrnoDetail().c_str()));
  }

  uint64_t record_bytes = header.size() + payload.size();
  Status sync_status = MaybeSync();
  if (!sync_status.ok()) {
    // The record reached the OS but its durability is unknown. Undo it —
    // truncate back to the pre-record offset — so the committed prefix and
    // the on-disk bytes agree exactly. Only if the undo itself fails is
    // the writer left poisoned.
    (void)std::fflush(file_);
    errno = 0;
    if (::ftruncate(::fileno(file_), static_cast<off_t>(bytes_written_)) !=
            0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
      poisoned_ = true;
    }
    return sync_status;
  }
  bytes_written_ += record_bytes;
  return Status::OK();
}

Status JournalWriter::MaybeSync() {
  switch (policy_) {
    case FsyncPolicy::kEveryRecord:
      return Sync();
    case FsyncPolicy::kInterval: {
      uint64_t now = MonotonicMs();
      if (now - last_sync_ms_ >= fsync_interval_ms_) return Sync();
      // Still flush to the OS so a process crash (not machine crash)
      // loses nothing; only the fsync is deferred.
      errno = 0;
      if (std::fflush(file_) != 0) {
        return Status::Unavailable(StrFormat("journal '%s' flush: %s",
                                             path_.c_str(),
                                             ErrnoDetail().c_str()));
      }
      return Status::OK();
    }
    case FsyncPolicy::kNever:
      errno = 0;
      if (std::fflush(file_) != 0) {
        return Status::Unavailable(StrFormat("journal '%s' flush: %s",
                                             path_.c_str(),
                                             ErrnoDetail().c_str()));
      }
      return Status::OK();
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  OSRS_CHECK_MSG(file_ != nullptr, "Sync on closed journal");
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.fsync"));
  errno = 0;
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::Unavailable(StrFormat("journal '%s' fsync: %s",
                                         path_.c_str(),
                                         ErrnoDetail().c_str()));
  }
  last_sync_ms_ = MonotonicMs();
  return Status::OK();
}

Result<ReplayResult> ReplayJournalBytes(const std::string& bytes,
                                        const std::string& origin) {
  ReplayResult result;
  size_t off = 0;
  while (off < bytes.size()) {
    size_t record_start = off;
    size_t avail = bytes.size() - off;
    // Any defect in the FINAL record is a torn tail from a crash
    // mid-append — truncate, don't fail. The same defect with more bytes
    // after it means committed interior bytes are wrong — kDataLoss.
    if (avail < kFrameHeaderBytes) {
      result.truncated_tail_bytes = avail;
      break;
    }
    uint32_t payload_len = 0, payload_crc = 0;
    {
      ByteReader header(std::string_view(bytes.data() + off, 8));
      header.GetU32(&payload_len);
      header.GetU32(&payload_crc);
    }
    if (payload_len > kMaxPayloadBytes) {
      return Corrupt(origin, record_start, "implausible record length");
    }
    if (avail - kFrameHeaderBytes < payload_len) {
      result.truncated_tail_bytes = avail;
      break;
    }
    std::string_view payload(bytes.data() + off + kFrameHeaderBytes,
                             payload_len);
    if (Crc32c(payload.data(), payload.size()) != payload_crc) {
      if (off + kFrameHeaderBytes + payload_len == bytes.size()) {
        result.truncated_tail_bytes = avail;
        break;
      }
      return Corrupt(origin, record_start, "record checksum mismatch");
    }
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.store.replay"));

    ByteReader r(payload);
    uint8_t raw_type = 0;
    uint64_t epoch_after = 0;
    if (!r.GetU8(&raw_type) || !r.GetU64(&epoch_after)) {
      return Corrupt(origin, record_start, "short record payload");
    }
    JournalRecord record;
    record.epoch_after = epoch_after;
    switch (static_cast<JournalRecordType>(raw_type)) {
      case JournalRecordType::kUpdateItem:
        record.type = JournalRecordType::kUpdateItem;
        if (!DecodeItem(&r, &record.item) || r.remaining() != 0) {
          return Corrupt(origin, record_start, "malformed UpdateItem record");
        }
        break;
      case JournalRecordType::kBumpEpoch:
        record.type = JournalRecordType::kBumpEpoch;
        if (r.remaining() != 0) {
          return Corrupt(origin, record_start, "malformed BumpEpoch record");
        }
        break;
      default:
        return Corrupt(
            origin, record_start,
            StrFormat("unknown record type %u", unsigned{raw_type}));
    }
    result.records.push_back(std::move(record));
    off += kFrameHeaderBytes + payload_len;
  }
  result.valid_bytes = off;
  return result;
}

Result<ReplayResult> ReplayJournal(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ReplayJournalBytes(*bytes, path);
}

}  // namespace osrs::store
