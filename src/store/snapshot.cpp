#include "store/snapshot.h"

#include <algorithm>
#include <string_view>

#include "common/crc32c.h"
#include "common/strings.h"
#include "store/atomic_file.h"
#include "store/wire.h"

namespace osrs::store {
namespace {

constexpr std::string_view kMagic = "OSRSSNP1";
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSectionItems = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;  // magic, version, n, epoch
constexpr size_t kSectionHeaderBytes = 4 + 4 + 8;  // type, crc, len

Status Corrupt(const std::string& origin, const std::string& what) {
  return Status::DataLoss(
      StrFormat("snapshot '%s': %s", origin.c_str(), what.c_str()));
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status ParseItemsSection(std::string_view payload, const std::string& origin,
                         std::vector<Item>* items) {
  ByteReader section(payload);
  uint64_t count = 0;
  if (!section.GetU64(&count)) return Corrupt(origin, "truncated item count");
  // Each item encodes to >= 8 bytes (id length + review count), so a
  // larger count cannot fit the remaining payload.
  if (count > section.remaining() / 8 + 1) {
    return Corrupt(origin, "implausible item count");
  }
  items->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Item item;
    if (!DecodeItem(&section, &item)) {
      return Corrupt(origin, "malformed item record");
    }
    items->push_back(std::move(item));
  }
  if (section.remaining() != 0) {
    return Corrupt(origin, "trailing bytes in items section");
  }
  return Status::OK();
}

}  // namespace

std::string SnapshotWriter::Serialize(const SnapshotData& data) {
  // Canonical item order so equal states serialize to equal bytes.
  std::vector<const Item*> ordered;
  ordered.reserve(data.items.size());
  for (const Item& item : data.items) ordered.push_back(&item);
  std::sort(ordered.begin(), ordered.end(),
            [](const Item* a, const Item* b) { return a->id < b->id; });

  ByteWriter items_section;
  items_section.PutU64(ordered.size());
  for (const Item* item : ordered) EncodeItem(*item, &items_section);
  std::string items_payload = items_section.Take();

  // The magic goes in raw (no length prefix) so the header has fixed
  // offsets; its CRC covers everything before the crc field itself.
  ByteWriter out;
  for (char c : kMagic) out.PutU8(static_cast<uint8_t>(c));
  out.PutU32(kVersion);
  out.PutU32(1);  // num_sections
  out.PutU64(data.epoch);
  out.PutU32(Crc32c(out.bytes().data(), out.bytes().size()));

  out.PutU32(kSectionItems);
  out.PutU32(Crc32c(items_payload.data(), items_payload.size()));
  out.PutU64(items_payload.size());
  std::string result = out.Take();
  result += items_payload;
  return result;
}

Status SnapshotWriter::Write(const std::string& path,
                             const SnapshotData& data) const {
  return AtomicWriteFile(path, Serialize(data));
}

Result<SnapshotData> SnapshotReader::Parse(const std::string& bytes,
                                           const std::string& origin) {
  if (bytes.size() < kHeaderBytes + 4) {
    return Corrupt(origin, "truncated header");
  }
  if (std::string_view(bytes.data(), kMagic.size()) != kMagic) {
    return Corrupt(origin, "bad magic");
  }
  uint32_t version = LoadU32(bytes.data() + 8);
  uint32_t num_sections = LoadU32(bytes.data() + 12);
  uint64_t epoch = LoadU64(bytes.data() + 16);
  uint32_t header_crc = LoadU32(bytes.data() + kHeaderBytes);
  if (Crc32c(bytes.data(), kHeaderBytes) != header_crc) {
    return Corrupt(origin, "header checksum mismatch");
  }
  if (version != kVersion) {
    return Corrupt(origin, StrFormat("unsupported version %u", version));
  }

  SnapshotData data;
  data.epoch = epoch;
  bool saw_items = false;
  size_t off = kHeaderBytes + 4;
  for (uint32_t s = 0; s < num_sections; ++s) {
    if (bytes.size() - off < kSectionHeaderBytes) {
      return Corrupt(origin, "truncated section header");
    }
    uint32_t type = LoadU32(bytes.data() + off);
    uint32_t payload_crc = LoadU32(bytes.data() + off + 4);
    uint64_t payload_len = LoadU64(bytes.data() + off + 8);
    off += kSectionHeaderBytes;
    if (payload_len > bytes.size() - off) {
      return Corrupt(origin, "truncated section payload");
    }
    std::string_view payload(bytes.data() + off, payload_len);
    off += payload_len;
    if (Crc32c(payload.data(), payload.size()) != payload_crc) {
      return Corrupt(origin,
                     StrFormat("section %u checksum mismatch", type));
    }
    if (type == kSectionItems) {
      if (saw_items) return Corrupt(origin, "duplicate items section");
      saw_items = true;
      OSRS_RETURN_IF_ERROR(ParseItemsSection(payload, origin, &data.items));
    }
    // Unknown section types are skipped (their checksum already verified)
    // so a future writer can append sections without breaking this reader.
  }
  if (off != bytes.size()) return Corrupt(origin, "trailing bytes");
  if (!saw_items) return Corrupt(origin, "missing items section");
  return data;
}

Result<SnapshotData> SnapshotReader::Read(const std::string& path) const {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(*bytes, path);
}

}  // namespace osrs::store
