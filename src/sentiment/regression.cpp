#include "sentiment/regression.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs {
namespace {

/// In-place Cholesky solve of the SPD system a·x = b (a is n×n row-major).
/// Returns false when `a` is not positive definite.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, int n) {
  // Decompose a = L L^T (lower triangle stored in place).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        sum -= a[static_cast<size_t>(i) * n + k] *
               a[static_cast<size_t>(j) * n + k];
      }
      if (i == j) {
        if (sum <= 1e-12) return false;
        a[static_cast<size_t>(i) * n + j] = std::sqrt(sum);
      } else {
        a[static_cast<size_t>(i) * n + j] =
            sum / a[static_cast<size_t>(j) * n + j];
      }
    }
  }
  // Forward substitution L z = b.
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      sum -= a[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * n + i];
  }
  // Back substitution L^T x = z.
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= a[static_cast<size_t>(k) * n + i] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * n + i];
  }
  return true;
}

}  // namespace

Result<RidgeRegression> RidgeRegression::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    double lambda) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument(
        StrFormat("need matching non-empty x (%zu) and y (%zu)", x.size(),
                  y.size()));
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("lambda must be positive");
  }
  const int d = static_cast<int>(x[0].size());
  for (const auto& row : x) {
    if (static_cast<int>(row.size()) != d) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  const int n = d + 1;  // + intercept

  // Normal equations (X'X + λI) w = X'y with an appended all-ones feature.
  std::vector<double> a(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  for (size_t r = 0; r < x.size(); ++r) {
    for (int i = 0; i < n; ++i) {
      double xi = i < d ? x[r][static_cast<size_t>(i)] : 1.0;
      b[static_cast<size_t>(i)] += xi * y[r];
      for (int j = 0; j <= i; ++j) {
        double xj = j < d ? x[r][static_cast<size_t>(j)] : 1.0;
        a[static_cast<size_t>(i) * n + j] += xi * xj;
      }
    }
  }
  // Symmetrize and regularize (not the intercept).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      a[static_cast<size_t>(i) * n + j] = a[static_cast<size_t>(j) * n + i];
    }
  }
  for (int i = 0; i < d; ++i) {
    a[static_cast<size_t>(i) * n + i] += lambda;
  }
  a[static_cast<size_t>(d) * n + d] += 1e-9;  // keep intercept row SPD

  if (!CholeskySolve(a, b, n)) {
    return Status::Internal("normal equations not positive definite");
  }
  RidgeRegression model;
  model.weights_.assign(b.begin(), b.begin() + d);
  model.intercept_ = b[static_cast<size_t>(d)];
  return model;
}

double RidgeRegression::Predict(const std::vector<double>& features) const {
  OSRS_CHECK_EQ(features.size(), weights_.size());
  double sum = intercept_;
  for (size_t i = 0; i < features.size(); ++i) {
    sum += weights_[i] * features[i];
  }
  return sum;
}

}  // namespace osrs
