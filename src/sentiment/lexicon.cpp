#include "sentiment/lexicon.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"

namespace osrs {

struct SentimentLexicon::Tables {
  std::unordered_map<std::string, double> opinion;
  std::unordered_map<std::string, double> modifiers;
  std::unordered_set<std::string> negators;
  // Opinion words sorted by strength for WordForStrength lookups.
  std::vector<std::pair<double, std::string>> by_strength;
  // The predicative-adjective subset, same ordering.
  std::vector<std::pair<double, std::string>> adjectives_by_strength;
};

namespace {

SentimentLexicon::Tables* BuildTables() {
  auto* t = new SentimentLexicon::Tables();
  // Graded opinion words. Strengths follow the usual 5-level scheme used by
  // graded lexicons (±0.3 weak, ±0.5 moderate, ±0.75 strong, ±0.95 extreme).
  const std::pair<const char*, double> kOpinion[] = {
      // Positive.
      {"good", 0.5},        {"great", 0.75},      {"excellent", 0.95},
      {"amazing", 0.95},    {"awesome", 0.9},     {"fantastic", 0.9},
      {"wonderful", 0.85},  {"outstanding", 0.9}, {"perfect", 0.95},
      {"superb", 0.9},      {"love", 0.8},        {"loved", 0.8},
      {"nice", 0.5},        {"fine", 0.35},       {"decent", 0.35},
      {"solid", 0.5},       {"impressive", 0.7},  {"beautiful", 0.7},
      {"best", 0.9},        {"better", 0.4},      {"happy", 0.6},
      {"pleased", 0.6},     {"satisfied", 0.55},  {"recommend", 0.6},
      {"recommended", 0.6}, {"fast", 0.45},       {"quick", 0.4},
      {"smooth", 0.5},      {"sharp", 0.5},       {"crisp", 0.55},
      {"bright", 0.45},     {"responsive", 0.55}, {"reliable", 0.6},
      {"sturdy", 0.5},      {"helpful", 0.6},     {"friendly", 0.6},
      {"caring", 0.65},     {"professional", 0.6}, {"thorough", 0.55},
      {"knowledgeable", 0.65}, {"attentive", 0.6}, {"courteous", 0.55},
      {"gentle", 0.5},      {"comfortable", 0.5}, {"clean", 0.45},
      {"affordable", 0.5},  {"cheap", 0.3},       {"worth", 0.5},
      {"pleasant", 0.55},   {"enjoy", 0.55},      {"enjoyed", 0.55},
      {"works", 0.35},      {"worked", 0.35},     {"compassionate", 0.7},
      {"excellently", 0.9}, {"flawless", 0.9},    {"vibrant", 0.6},
      {"durable", 0.55},    {"loud", 0.35},       {"clear", 0.5},
      {"accurate", 0.55},   {"efficient", 0.55},  {"generous", 0.55},
      // Negative.
      {"bad", -0.5},        {"poor", -0.55},      {"terrible", -0.9},
      {"horrible", -0.9},   {"awful", -0.9},      {"worst", -0.95},
      {"worse", -0.45},     {"hate", -0.8},       {"hated", -0.8},
      {"disappointing", -0.6}, {"disappointed", -0.6}, {"useless", -0.75},
      {"broken", -0.7},     {"defective", -0.75}, {"slow", -0.45},
      {"laggy", -0.55},     {"cheap-feeling", -0.4}, {"flimsy", -0.5},
      {"weak", -0.45},      {"dim", -0.4},        {"blurry", -0.5},
      {"grainy", -0.45},    {"fuzzy", -0.4},      {"unreliable", -0.6},
      {"rude", -0.7},       {"dismissive", -0.6}, {"arrogant", -0.6},
      {"careless", -0.6},   {"unprofessional", -0.65}, {"dirty", -0.5},
      {"painful", -0.6},    {"uncomfortable", -0.5}, {"expensive", -0.4},
      {"overpriced", -0.55}, {"waste", -0.7},     {"regret", -0.65},
      {"avoid", -0.6},      {"problem", -0.4},    {"problems", -0.4},
      {"issue", -0.35},     {"issues", -0.35},    {"fails", -0.6},
      {"failed", -0.6},     {"failure", -0.65},   {"crash", -0.6},
      {"crashes", -0.6},    {"freezes", -0.55},   {"drains", -0.5},
      {"scratches", -0.4},  {"cracked", -0.6},    {"dreadful", -0.85},
      {"mediocre", -0.35},  {"noisy", -0.4},      {"muffled", -0.45},
      {"misdiagnosed", -0.8}, {"unhelpful", -0.55}, {"late", -0.35},
      {"overheats", -0.6},  {"dead", -0.65},      {"faulty", -0.65},
  };
  for (const auto& [word, strength] : kOpinion) {
    t->opinion.emplace(word, strength);
    t->by_strength.emplace_back(strength, word);
  }
  std::sort(t->by_strength.begin(), t->by_strength.end());

  // Words that read naturally after a copula ("the X is ___").
  const char* kPredicativeAdjectives[] = {
      "good",        "great",      "excellent",  "amazing",    "awesome",
      "fantastic",   "wonderful",  "outstanding", "perfect",   "superb",
      "nice",        "fine",       "decent",     "solid",      "impressive",
      "beautiful",   "fast",       "quick",      "smooth",     "sharp",
      "crisp",       "bright",     "responsive", "reliable",   "sturdy",
      "helpful",     "friendly",   "caring",     "professional", "thorough",
      "knowledgeable", "attentive", "courteous", "gentle",     "comfortable",
      "clean",       "affordable", "pleasant",   "flawless",   "vibrant",
      "durable",     "loud",       "clear",      "accurate",   "efficient",
      "bad",         "poor",       "terrible",   "horrible",   "awful",
      "disappointing", "useless",  "broken",     "defective",  "slow",
      "laggy",       "flimsy",     "weak",       "dim",        "blurry",
      "grainy",      "fuzzy",      "unreliable", "rude",       "dismissive",
      "arrogant",    "careless",   "unprofessional", "dirty",  "painful",
      "uncomfortable", "expensive", "overpriced", "dreadful",  "mediocre",
      "noisy",       "muffled",    "unhelpful",  "faulty",     "dead",
  };
  for (const char* word : kPredicativeAdjectives) {
    auto it = t->opinion.find(word);
    OSRS_CHECK_MSG(it != t->opinion.end(),
                   "adjective '" << word << "' missing from opinion table");
    t->adjectives_by_strength.emplace_back(it->second, word);
  }
  std::sort(t->adjectives_by_strength.begin(),
            t->adjectives_by_strength.end());

  const std::pair<const char*, double> kModifiers[] = {
      {"very", 1.5},     {"really", 1.4},   {"extremely", 1.8},
      {"incredibly", 1.7}, {"so", 1.3},     {"super", 1.5},
      {"absolutely", 1.6}, {"totally", 1.4}, {"quite", 1.2},
      {"pretty", 1.15},  {"somewhat", 0.6}, {"slightly", 0.45},
      {"little", 0.55},  {"bit", 0.55},     {"fairly", 0.8},
      {"rather", 0.9},   {"mildly", 0.5},   {"barely", 0.35},
  };
  for (const auto& [word, factor] : kModifiers) {
    t->modifiers.emplace(word, factor);
  }

  for (const char* word :
       {"not", "no", "never", "n't", "don't", "doesn't", "didn't", "isn't",
        "wasn't", "aren't", "won't", "can't", "cannot", "couldn't",
        "wouldn't", "hardly", "without", "neither", "nor"}) {
    t->negators.insert(word);
  }
  return t;
}

}  // namespace

SentimentLexicon::SentimentLexicon() : tables_(BuildTables()) {}

const SentimentLexicon& SentimentLexicon::Default() {
  static const SentimentLexicon& lexicon = *new SentimentLexicon();
  return lexicon;
}

double SentimentLexicon::OpinionStrength(std::string_view word) const {
  auto it = tables_->opinion.find(std::string(word));
  return it == tables_->opinion.end() ? 0.0 : it->second;
}

double SentimentLexicon::ModifierFactor(std::string_view word) const {
  auto it = tables_->modifiers.find(std::string(word));
  return it == tables_->modifiers.end() ? 1.0 : it->second;
}

bool SentimentLexicon::IsNegator(std::string_view word) const {
  return tables_->negators.count(std::string(word)) > 0;
}

double SentimentLexicon::ScoreSentence(
    const std::vector<std::string>& tokens) const {
  double total = 0.0;
  int hits = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    double strength = OpinionStrength(tokens[i]);
    if (strength == 0.0) continue;
    double factor = 1.0;
    bool negated = false;
    // Look back at up to three preceding tokens for modifiers/negators.
    for (size_t back = 1; back <= 3 && back <= i; ++back) {
      const std::string& prev = tokens[i - back];
      factor *= ModifierFactor(prev);
      if (IsNegator(prev)) negated = !negated;
    }
    double contribution = strength * factor;
    if (negated) contribution *= -0.8;  // "not great" is mildly negative
    total += contribution;
    ++hits;
  }
  if (hits == 0) return 0.0;
  return Clamp(total / static_cast<double>(hits), -1.0, 1.0);
}

std::vector<std::pair<std::string, double>>
SentimentLexicon::AllOpinionWords() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(tables_->opinion.size());
  for (const auto& [word, strength] : tables_->opinion) {
    out.emplace_back(word, strength);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

const std::string& ClosestByStrength(
    const std::vector<std::pair<double, std::string>>& sorted,
    double target) {
  OSRS_CHECK(!sorted.empty());
  auto it = std::lower_bound(
      sorted.begin(), sorted.end(), target,
      [](const std::pair<double, std::string>& entry, double value) {
        return entry.first < value;
      });
  if (it == sorted.end()) return sorted.back().second;
  if (it == sorted.begin()) return it->second;
  auto prev = std::prev(it);
  return (target - prev->first) <= (it->first - target) ? prev->second
                                                        : it->second;
}

}  // namespace

const std::string& SentimentLexicon::WordForStrength(double target) const {
  return ClosestByStrength(tables_->by_strength, target);
}

const std::string& SentimentLexicon::AdjectiveForStrength(
    double target) const {
  return ClosestByStrength(tables_->adjectives_by_strength, target);
}

}  // namespace osrs
