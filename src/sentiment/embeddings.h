#ifndef OSRS_SENTIMENT_EMBEDDINGS_H_
#define OSRS_SENTIMENT_EMBEDDINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/vocabulary.h"

namespace osrs {

/// Training knobs for the co-occurrence embeddings.
struct EmbeddingOptions {
  /// Latent dimensions of the word vectors.
  int dimensions = 32;
  /// Only this many most frequent words get vectors.
  int max_vocab = 4000;
  /// Symmetric co-occurrence window (tokens on each side).
  int window = 4;
  /// Subspace (power) iterations of the randomized eigendecomposition.
  int power_iterations = 12;
  uint64_t seed = 17;
};

/// Distributed word representations from PPMI co-occurrence statistics
/// factorized with a randomized truncated eigendecomposition.
///
/// This is the repository's stand-in for the paper's doc2vec sentence
/// vectors (§5.1): fixed-size sentence representations are formed as
/// IDF-weighted averages of word vectors, then fed to the ridge-regression
/// sentiment estimator. Unsupervised, deterministic given the seed.
class CooccurrenceEmbeddings {
 public:
  /// Trains on tokenized sentences.
  static CooccurrenceEmbeddings Train(
      const std::vector<std::vector<std::string>>& sentences,
      const EmbeddingOptions& options);

  int dimensions() const { return dimensions_; }
  size_t vocabulary_size() const { return vectors_.size(); }

  bool Contains(std::string_view word) const;

  /// The word's vector; zeros for out-of-vocabulary words.
  std::vector<double> VectorOf(std::string_view word) const;

  /// IDF-weighted mean of member word vectors, L2-normalized; the zero
  /// vector when no token is in vocabulary.
  std::vector<double> SentenceVector(
      const std::vector<std::string>& tokens) const;

 private:
  CooccurrenceEmbeddings() = default;

  int dimensions_ = 0;
  Vocabulary vocabulary_;
  std::vector<int> embedding_row_;           // vocab id -> row or -1
  std::vector<std::vector<double>> vectors_; // row -> vector
  std::vector<double> idf_;                  // row -> idf weight
};

}  // namespace osrs

#endif  // OSRS_SENTIMENT_EMBEDDINGS_H_
