#ifndef OSRS_SENTIMENT_REGRESSION_H_
#define OSRS_SENTIMENT_REGRESSION_H_

#include <vector>

#include "common/status.h"

namespace osrs {

/// L2-regularized linear regression solved in closed form via Cholesky on
/// the (d+1)x(d+1) normal equations (an intercept column is appended
/// internally). The paper formulates sentence-sentiment estimation "as a
/// standard regression problem" over sentence vectors (§5.1); this is that
/// regressor.
class RidgeRegression {
 public:
  /// Fits on rows `x` (all of equal dimension) with targets `y`.
  /// `lambda` > 0 is the ridge penalty (not applied to the intercept).
  static Result<RidgeRegression> Fit(
      const std::vector<std::vector<double>>& x, const std::vector<double>& y,
      double lambda);

  /// Predicted target for a feature vector of the training dimension.
  double Predict(const std::vector<double>& features) const;

  /// Learned coefficients (without intercept).
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  RidgeRegression() = default;

  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace osrs

#endif  // OSRS_SENTIMENT_REGRESSION_H_
